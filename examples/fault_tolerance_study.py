#!/usr/bin/env python3
"""Fault-tolerance study: error rate vs retry policy on representative load.

The scenario the fault-injection subsystem exists for: how much client-side
resilience (retries, circuit breaking) buys back as the platform degrades.
We replay the same FaaSRail-generated load through a simulated cluster
wrapped in a ``FaultyBackend`` at increasing injected error rates, under
three client policies, and report the delivered fraction and latency tax.

Everything is seed-driven, so every cell of the table is reproducible.

Run:  python examples/fault_tolerance_study.py
"""

from repro.core import shrink
from repro.loadgen import CircuitBreaker, RetryPolicy, generate_request_trace, replay
from repro.platform import (
    FaaSCluster,
    FaultProfile,
    FaultyBackend,
    OutageWindow,
    breaker_uptime,
    outcome_summary,
    profiles_from_spec,
)
from repro.traces import synthetic_azure_trace
from repro.workloads import build_default_pool

ERROR_RATES = (0.0, 0.02, 0.05, 0.10, 0.20)

POLICIES = {
    "no-retry": lambda: dict(retry=RetryPolicy(max_attempts=1)),
    "retry-3x": lambda: dict(retry=RetryPolicy(max_attempts=3,
                                               base_delay_s=0.05)),
    "retry+breaker": lambda: dict(
        retry=RetryPolicy(max_attempts=3, base_delay_s=0.05),
        breaker=CircuitBreaker(failure_threshold=10, reset_timeout_s=5.0),
    ),
}


def run_cell(trace, profiles, error_rate, policy_kwargs):
    cluster = FaaSCluster(profiles, n_nodes=8, node_memory_mb=16_384.0)
    profile = FaultProfile(error_rate=error_rate,
                           latency_spike_rate=error_rate / 2,
                           seed=17)
    backend = FaultyBackend(cluster, profile)
    result = replay(trace, backend, **policy_kwargs)
    summary = outcome_summary(result)
    counts = summary["counts"]
    return {
        "delivered": summary["delivered_fraction"],
        "shed": counts["shed"],
        "failed": counts["error"] + counts["timeout"] + counts["dropped"],
        "mean_attempts": summary["mean_attempts"],
    }


def main() -> None:
    print("building load: 2000 fns -> 15 min @ 10 rps ...")
    azure = synthetic_azure_trace(n_functions=2000, seed=17)
    pool = build_default_pool()
    spec = shrink(azure, pool, max_rps=10.0, duration_minutes=15, seed=17)
    trace = generate_request_trace(spec, seed=17)
    profiles = profiles_from_spec(spec)
    print(f"{trace.n_requests} requests over {trace.duration_s:.0f}s\n")

    header = (f"{'policy':<15} {'err rate':>9} {'delivered':>10} "
              f"{'failed':>7} {'shed':>6} {'attempts':>9}")
    print(header)
    print("-" * len(header))
    for name, make_kwargs in POLICIES.items():
        for err in ERROR_RATES:
            cell = run_cell(trace, profiles, err, make_kwargs())
            print(f"{name:<15} {err:>8.0%} {cell['delivered']:>9.2%} "
                  f"{cell['failed']:>7} {cell['shed']:>6} "
                  f"{cell['mean_attempts']:>9.2f}")
        print()

    # ------------------------------------------------------------------
    # where the breaker earns its keep: a 90-second platform outage
    # ------------------------------------------------------------------
    print("scenario 2: total outage during t in [300, 390) ...\n")
    outage = FaultProfile(outages=[OutageWindow(300.0, 390.0)], seed=17)
    header = (f"{'policy':<15} {'delivered':>10} {'failed':>7} "
              f"{'shed':>6} {'wasted attempts':>16}")
    print(header)
    print("-" * len(header))
    for name, kwargs in (
        ("retry-3x", dict(retry=RetryPolicy(max_attempts=3,
                                            base_delay_s=0.05))),
        ("retry+breaker", dict(
            retry=RetryPolicy(max_attempts=3, base_delay_s=0.05),
            breaker=CircuitBreaker(failure_threshold=10,
                                   reset_timeout_s=10.0),
        )),
    ):
        cluster = FaaSCluster(profiles, n_nodes=8,
                              node_memory_mb=16_384.0)
        result = replay(trace, FaultyBackend(cluster, outage), **kwargs)
        counts = result.outcome_counts()
        wasted = (int(result.attempts.sum())
                  - int((result.attempts > 0).sum()))
        print(f"{name:<15} "
              f"{outcome_summary(result)['delivered_fraction']:>9.2%} "
              f"{counts['error'] + counts['timeout']:>7} "
              f"{counts['shed']:>6} {wasted:>16}")
        br = kwargs.get("breaker")
        if br is not None:
            up = breaker_uptime(br, trace.duration_s)
            print(f"{'':<15} breaker open {up['open']:.1%} of the trace, "
                  f"{up['n_transitions']} transitions")
    print()

    print(
        "reading: without retries the delivered fraction tracks\n"
        "1 - error_rate exactly -- every injected fault is a lost\n"
        "request.  Three backoff attempts push delivery above 99% until\n"
        "the error rate reaches tens of percent (surviving probability\n"
        "decays as error_rate^attempts).  Adding the circuit breaker\n"
        "trades a little availability (shed requests during open\n"
        "windows) for bounded attempt volume when the platform is\n"
        "persistently unhealthy -- the classic resilience trade-off,\n"
        "now measurable under representative load."
    )


if __name__ == "__main__":
    main()
