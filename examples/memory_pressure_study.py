#!/usr/bin/env python3
"""Memory-pressure study: keep-alive TTL vs memory held vs cold starts.

The cold-start / memory-waste trade-off from the paper's motivation
("providers keep [functions] cached even when idling, effectively wasting
memory"), measured on the simulator with memory tracking enabled: longer
TTLs buy warm starts at the price of idle sandbox memory, and undersized
nodes force evictions that claw the cold starts back.

Run:  python examples/memory_pressure_study.py
"""

from repro.core import shrink
from repro.loadgen import generate_request_trace, replay
from repro.platform import (
    FaaSCluster,
    FixedKeepAlive,
    memory_utilization,
    profiles_from_spec,
    summarize,
)
from repro.traces import synthetic_azure_trace
from repro.workloads import build_default_pool

TTLS_S = (0.0, 30.0, 120.0, 600.0, 3600.0)
NODE_MEMORY_MB = (4_096.0, 16_384.0)


def main() -> None:
    print("generating FaaSRail load (1500 fns -> 15 min @ 6 rps) ...")
    azure = synthetic_azure_trace(n_functions=1500, seed=47)
    pool = build_default_pool()
    spec = shrink(azure, pool, max_rps=6.0, duration_minutes=15, seed=47)
    load = generate_request_trace(spec, seed=47)
    profiles = profiles_from_spec(spec)
    print(f"   {load.n_requests:,} requests, {len(profiles)} workloads\n")

    header = (f"{'node mem':>9} {'ttl':>7} {'cold%':>7} {'p99 ms':>10} "
              f"{'mem util':>9} {'peak MiB':>9}")
    print(header)
    print("-" * len(header))
    for node_mb in NODE_MEMORY_MB:
        for ttl in TTLS_S:
            backend = FaaSCluster(
                profiles, n_nodes=4, node_memory_mb=node_mb,
                keepalive=FixedKeepAlive(ttl), track_memory=True,
            )
            result = replay(load, backend)
            s = summarize(result.records)
            util = memory_utilization(backend.memory_samples, node_mb)
            print(f"{node_mb:>8.0f}M {ttl:>6.0f}s "
                  f"{100 * s['cold_fraction']:>6.2f}% "
                  f"{s['latency_ms']['p99']:>10.1f} "
                  f"{util['mean']:>8.1%} {util['peak_mb']:>9.0f}")
        print()

    print(
        "reading: each TTL step trades idle memory for warm starts; on the\n"
        "small nodes the gain saturates early because LRU eviction undoes\n"
        "the caching -- the provider-side dilemma the trace papers (and\n"
        "FaaSRail's representative popularity skew) make visible."
    )


if __name__ == "__main__":
    main()
