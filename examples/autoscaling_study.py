#!/usr/bin/env python3
"""Autoscaling study: elasticity under diurnal, representative load.

FaaSRail's thumbnails compress a whole day's load curve into the
experiment, which is exactly what a cluster autoscaler has to ride: the
morning ramp, the afternoon peak, the overnight trough.  This example
replays the same generated load against a fixed-size cluster and an
elastic one, comparing latency, cold starts, and node-hours
(the provider's bill).

Run:  python examples/autoscaling_study.py
"""

import numpy as np

from repro.core import shrink
from repro.loadgen import generate_request_trace, replay
from repro.platform import (
    FaaSCluster,
    ReactiveAutoscaler,
    profiles_from_spec,
    summarize,
)
from repro.traces import synthetic_azure_trace
from repro.workloads import build_default_pool


def node_hours(events, horizon_s, initial_nodes):
    """Integrate node count over the experiment from scaling events."""
    t_prev, n_prev, total = 0.0, initial_nodes, 0.0
    for t, n in events:
        total += n_prev * (t - t_prev)
        t_prev, n_prev = t, n
    total += n_prev * (horizon_s - t_prev)
    return total / 3600.0


def main() -> None:
    print("generating a 2-hour FaaSRail miniature of the Azure day ...")
    azure = synthetic_azure_trace(n_functions=2000, seed=61)
    pool = build_default_pool()
    spec = shrink(azure, pool, max_rps=12.0, duration_minutes=120, seed=61)
    load = generate_request_trace(spec, seed=61)
    profiles = profiles_from_spec(spec)
    horizon = spec.duration_minutes * 60.0
    rel = spec.aggregate_per_minute / spec.aggregate_per_minute.max()
    print(f"   {load.n_requests:,} requests; load varies "
          f"{rel.min():.2f}..1.00 of peak across the experiment\n")

    results = {}
    for label, nodes, policy in (
        ("fixed-12", 12, None),
        ("fixed-4", 4, None),
        ("elastic", 4, ReactiveAutoscaler(
            min_nodes=2, max_nodes=16, target_busy_per_node=3.0,
            evaluate_every_s=30.0, scale_down_grace_s=180.0)),
    ):
        backend = FaaSCluster(profiles, n_nodes=nodes,
                              node_memory_mb=8_192.0, cores_per_node=4,
                              autoscaler=policy)
        summary = summarize(replay(load, backend).records)
        hours = (node_hours(policy.events, horizon, nodes)
                 if policy else nodes * horizon / 3600.0)
        results[label] = (summary, hours, len(backend.nodes))

    header = (f"{'cluster':<10} {'cold%':>7} {'p50 ms':>9} {'p99 ms':>10} "
              f"{'node-hours':>11} {'final nodes':>12}")
    print(header)
    print("-" * len(header))
    for label, (s, hours, final_n) in results.items():
        lat = s["latency_ms"]
        print(f"{label:<10} {100 * s['cold_fraction']:>6.2f}% "
              f"{lat['p50']:>9.1f} {lat['p99']:>10.1f} "
              f"{hours:>11.2f} {final_n:>12}")

    elastic_hours = results["elastic"][1]
    fixed_hours = results["fixed-12"][1]
    print(f"\nreading: the elastic cluster delivers latency close to the "
          f"over-provisioned\nfixed-12 cluster at "
          f"{elastic_hours / fixed_hours:.0%} of its node-hours, by riding "
          f"the diurnal curve the\nFaaSRail thumbnail preserved.  Flat "
          f"(Poisson) load would make this study\nmeaningless -- there "
          f"would be nothing to scale to.")
    assert np.isfinite(elastic_hours)


if __name__ == "__main__":
    main()
