#!/usr/bin/env python3
"""Smirnov Transform mode: distribution-faithful load at arbitrary rates.

Demonstrates paper section 3.2.2 on both traces: draw request samples
whose execution-duration distribution follows the trace's, compare the
linear (paper-faithful) and step inverse-CDF flavours, and replay one
sample at a constant rate with each arrival model.

Run:  python examples/smirnov_sampling.py
"""

from repro.core import smirnov_request_sample
from repro.loadgen import generate_smirnov_trace
from repro.stats.distance import ks_relative_band
from repro.traces import synthetic_azure_trace, synthetic_huawei_trace
from repro.workloads import build_default_pool


def describe(label, trace, sample):
    counts = trace.invocations_per_function.astype(float)
    mask = counts > 0
    ks = ks_relative_band(sample.mapped_runtime_ms,
                          trace.durations_ms[mask],
                          y_weights=counts[mask])
    shares = sorted(sample.family_shares().items(), key=lambda kv: -kv[1])
    top = ", ".join(f"{f}={s:.1%}" for f, s in shares[:3])
    print(f"  {label:<28} KS={ks:.4f}  top families: {top}")


def main() -> None:
    pool = build_default_pool()
    azure = synthetic_azure_trace(n_functions=3000, seed=31)
    huawei = synthetic_huawei_trace(seed=31)

    print("sampling 30,000 requests per trace via the Smirnov Transform:")
    for trace, name in ((azure, "azure"), (huawei, "huawei")):
        for method in ("linear", "step"):
            sample = smirnov_request_sample(
                trace, pool, 30_000, seed=31, inverse_method=method)
            describe(f"{name} / {method}-inverse", trace, sample)

    print("\nreplaying the azure sample at a constant 50 rps:")
    sample = smirnov_request_sample(azure, pool, 30_000, seed=31)
    for mode in ("poisson", "uniform", "equidistant"):
        req = generate_smirnov_trace(sample, rate_rps=50.0, seed=31,
                                     arrival_mode=mode)
        per_sec = req.per_second_rate().astype(float)
        iod = per_sec.var() / per_sec.mean()
        print(f"  {mode:<12} horizon={req.duration_s:7.1f}s  "
              f"per-second index of dispersion={iod:.3f}")

    print(
        "\nreading: the linear inverse (the paper's choice) smooths the\n"
        "Huawei staircase -- its 104 functions leave wide CDF gaps the\n"
        "interpolation fills; the step inverse reproduces the atoms\n"
        "exactly.  Poisson arrivals keep second-scale burstiness (IoD~1);\n"
        "equidistant flattens it."
    )


if __name__ == "__main__":
    main()
