#!/usr/bin/env python3
"""Scheduler study: load balancing under skewed, bursty FaaS load.

A cluster-level experiment in the spirit of paper section 2.2
("Cluster-level policies"): replay the same FaaSRail-generated load
against three schedulers and observe the affinity-vs-balance tension --
hash affinity maximises warm starts but concentrates the popular
functions' load; random spraying balances nodes but multiplies sandboxes.

Run:  python examples/scheduler_study.py
"""

from repro.core import shrink
from repro.loadgen import generate_request_trace, replay
from repro.platform import (
    FaaSCluster,
    HashAffinityScheduler,
    LeastLoadedScheduler,
    RandomScheduler,
    profiles_from_spec,
    summarize,
)
from repro.traces import synthetic_azure_trace
from repro.workloads import build_default_pool

SCHEDULERS = {
    "random": lambda: RandomScheduler(seed=0),
    "least-loaded": LeastLoadedScheduler,
    "hash-affinity": lambda: HashAffinityScheduler(spill_threshold=8),
}


def main() -> None:
    print("generating FaaSRail load (2500 fns -> 20 min @ 10 rps) ...")
    azure = synthetic_azure_trace(n_functions=2500, seed=23)
    pool = build_default_pool()
    spec = shrink(azure, pool, max_rps=10.0, duration_minutes=20, seed=23)
    load = generate_request_trace(spec, seed=23)
    profiles = profiles_from_spec(spec)
    print(f"   {load.n_requests:,} requests across "
          f"{len(profiles)} distinct workloads\n")

    header = (f"{'scheduler':<14} {'cold%':>7} {'p50 ms':>9} {'p99 ms':>10} "
              f"{'queue ms':>9} {'imbalance':>10}")
    print(header)
    print("-" * len(header))
    for name, factory in SCHEDULERS.items():
        backend = FaaSCluster(
            profiles, n_nodes=8, node_memory_mb=8_192.0,
            scheduler=factory(),
        )
        s = summarize(replay(load, backend).records)
        lat = s["latency_ms"]
        print(f"{name:<14} {100 * s['cold_fraction']:>6.2f}% "
              f"{lat['p50']:>9.1f} {lat['p99']:>10.1f} "
              f"{s['queueing_ms_mean']:>9.2f} "
              f"{s['node_imbalance']:>9.2f}x")

    print(
        "\nreading: hash affinity wins on cold starts (sandbox reuse) but\n"
        "its imbalance column shows the popular functions' nodes running\n"
        "hot -- the exact effect the paper warns gets missed when load\n"
        "generators drop the trace's popularity skew."
    )


if __name__ == "__main__":
    main()
