#!/usr/bin/env python3
"""Cold-start study: keep-alive policies under representative load.

The kind of research experiment FaaSRail exists to serve (paper section
2.2, "Cold-starts"): compare keep-alive policies on the simulated cluster
under (a) FaaSRail's representative load and (b) the plain-Poisson
baseline.  The punchline is methodological: the baseline's uniform
popularity makes every function look alike, badly overestimating the
cold-start rate an adaptive policy sees in production-shaped load.

Run:  python examples/coldstart_study.py
"""

from repro.baselines import plain_poisson_trace
from repro.core import shrink
from repro.loadgen import generate_request_trace, replay
from repro.platform import (
    FaaSCluster,
    FixedKeepAlive,
    HistogramKeepAlive,
    NoKeepAlive,
    WorkloadProfile,
    profiles_from_spec,
    summarize,
)
from repro.traces import synthetic_azure_trace
from repro.workloads import build_default_pool, vanilla_functionbench

POLICIES = {
    "no-keepalive": NoKeepAlive,
    "fixed-10min": lambda: FixedKeepAlive(600.0),
    "fixed-60s": lambda: FixedKeepAlive(60.0),
    "histogram-p90": lambda: HistogramKeepAlive(percentile=90.0),
}


def run_policy(trace, profiles, policy_factory):
    backend = FaaSCluster(
        profiles, n_nodes=8, node_memory_mb=16_384.0,
        keepalive=policy_factory(),
    )
    result = replay(trace, backend)
    return summarize(result.records)


def main() -> None:
    print("building load: FaaSRail (2000 fns -> 20min @ 8rps) "
          "vs plain Poisson ...")
    azure = synthetic_azure_trace(n_functions=2000, seed=11)
    pool = build_default_pool()
    spec = shrink(azure, pool, max_rps=8.0, duration_minutes=20, seed=11)
    faasrail_load = generate_request_trace(spec, seed=11)
    faasrail_profiles = profiles_from_spec(spec)

    poisson_load = plain_poisson_trace(8.0, 20, seed=11)
    vanilla = vanilla_functionbench()
    poisson_profiles = {
        w.workload_id: WorkloadProfile(w.workload_id, w.runtime_ms,
                                       w.memory_mb)
        for w in vanilla
    }

    header = (f"{'policy':<16} {'load':<10} {'cold%':>7} {'p50 ms':>9} "
              f"{'p99 ms':>10} {'queue ms':>9}")
    print("\n" + header)
    print("-" * len(header))
    for name, factory in POLICIES.items():
        for label, load, profiles in (
            ("faasrail", faasrail_load, faasrail_profiles),
            ("poisson", poisson_load, poisson_profiles),
        ):
            s = run_policy(load, profiles, factory)
            lat = s["latency_ms"]
            print(f"{name:<16} {label:<10} "
                  f"{100 * s['cold_fraction']:>6.2f}% "
                  f"{lat['p50']:>9.1f} {lat['p99']:>10.1f} "
                  f"{s['queueing_ms_mean']:>9.2f}")

    print(
        "\nreading: the Poisson baseline drives only 10 workloads, so any\n"
        "keep-alive at all keeps everything warm -- it wildly\n"
        "underestimates cold starts.  FaaSRail load carries thousands of\n"
        "Functions with a long idle tail: the hot head stays warm, the\n"
        "tail pays cold starts, and policies genuinely separate -- the\n"
        "trade-off keep-alive research actually navigates."
    )


if __name__ == "__main__":
    main()
