#!/usr/bin/env python3
"""The real-data path: Azure-schema CSVs -> fit -> regenerate -> shrink.

The build environment has no network, so this example *simulates having
the real dataset*: it dumps a synthetic day to the exact CSV layout of
the Azure Functions public release, then treats those files as if they
were the download --

1. load the CSVs (``load_azure_day``: the same call works on the genuine
   dataset),
2. characterise the trace and EM-fit generator parameters from it,
3. regenerate a *new* consistent synthetic day from the fitted
   parameters (arbitrarily many days from one observed day),
4. run the shrink ray on the loaded trace and report fidelity.

Run:  python examples/real_data_pipeline.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import shrink
from repro.core.spec_ops import fidelity_report
from repro.stats import EmpiricalCDF, ks_distance
from repro.traces import (
    characterize_trace,
    dump_azure_day,
    fit_generator_from_trace,
    load_azure_day,
    synthetic_azure_trace,
)
from repro.traces.synth import sample_duration_mixture
from repro.workloads import build_default_pool


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="faasrail_csvs_"))
    print(f"0. writing a synthetic day as Azure-layout CSVs -> {workdir}")
    dump_azure_day(synthetic_azure_trace(n_functions=2500, seed=73),
                   workdir)

    print("1. loading the CSVs back (same call works on the real dataset)")
    trace = load_azure_day(workdir, name="azure-from-csv")
    info = characterize_trace(trace)
    print(f"   {info['n_functions']} functions, "
          f"{info['total_invocations']:,} invocations; "
          f"{info['duration_ms']['frac_subsecond']:.0%} of functions "
          f"sub-second, top 8% hold "
          f"{info['popularity']['top8pct_share']:.1%} of invocations")

    print("2. EM-fitting generator parameters from the observed day ...")
    fitted = fit_generator_from_trace(trace, seed=73)
    for comp in fitted["duration_mixture"]:
        print(f"   component: weight={comp.weight:.2f} "
              f"median={comp.median_ms:.0f}ms sigma={comp.sigma:.2f}")
    print(f"   popularity exponent: {fitted['popularity_exponent']:.2f}")

    print("3. regenerating durations from the fit ...")
    regen = sample_duration_mixture(
        trace.n_functions, fitted["duration_mixture"],
        np.random.default_rng(74), lo_ms=1.0, hi_ms=600_000.0)
    ks = ks_distance(EmpiricalCDF.from_samples(regen),
                     EmpiricalCDF.from_samples(trace.durations_ms))
    print(f"   regenerated-vs-observed duration KS = {ks:.4f}")

    print("4. shrinking the loaded trace to 20 min @ 8 rps ...")
    spec = shrink(trace, build_default_pool(), max_rps=8.0,
                  duration_minutes=20, seed=73)
    rep = fidelity_report(spec, trace)
    print(f"   {rep['total_requests']:,} requests; duration "
          f"KS={rep['invocation_duration_ks']:.4f}, load-shape "
          f"corr={rep['load_shape_corr']:.3f}")
    print("\nthe identical four steps run unchanged on the genuine Azure "
          "Functions 2019 release.")


if __name__ == "__main__":
    main()
