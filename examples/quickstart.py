#!/usr/bin/env python3
"""Quickstart: trace -> shrink ray -> request trace in ~20 lines.

Builds a synthetic Azure-like day, fits the augmented FunctionBench pool
to it, downscales to a 30-minute / 10-RPS experiment, and realises the
spec into timestamped requests -- the end-to-end FaaSRail workflow.

Run:  python examples/quickstart.py
"""

from repro import generate, shrink
from repro.stats.distance import ks_relative_band
from repro.traces import synthetic_azure_trace
from repro.workloads import build_default_pool


def main() -> None:
    print("1. building a synthetic Azure-like trace day ...")
    trace = synthetic_azure_trace(n_functions=4000, seed=7)
    print(f"   {trace.n_functions} functions, "
          f"{trace.total_invocations:,} invocations, "
          f"busiest minute {trace.busiest_minute_rate:,}/min")

    print("2. building the augmented workload pool ...")
    pool = build_default_pool()
    print(f"   {len(pool)} distinct workloads from "
          f"{len(pool.families())} FunctionBench benchmarks")

    print("3. shrinking to a 30-minute, max-10-RPS experiment ...")
    spec = shrink(trace, pool, max_rps=10.0, duration_minutes=30, seed=7)
    print(f"   {spec.n_functions} mapped Functions, "
          f"{spec.total_requests:,} requests, "
          f"busiest minute {spec.busiest_minute_rate}/min "
          f"(cap {int(spec.max_rps * 60)})")

    print("4. generating the timestamped request trace ...")
    requests = generate(spec, seed=7)
    shares = requests.family_shares()
    top3 = sorted(shares, key=shares.get, reverse=True)[:3]
    print(f"   {requests.n_requests:,} requests over "
          f"{requests.duration_s:.0f}s; most common families: {top3}")

    counts = trace.invocations_per_function.astype(float)
    mask = counts > 0
    ks = ks_relative_band(requests.runtimes_ms, trace.durations_ms[mask],
                          y_weights=counts[mask])
    print(f"5. fidelity: invocation-duration KS vs trace = {ks:.4f} "
          "(lower is better; <0.05 is a faithful downscale)")

    spec.save("/tmp/faasrail_quickstart_spec.json")
    print("   spec saved to /tmp/faasrail_quickstart_spec.json "
          "(replayable via `repro replay --spec ...`)")


if __name__ == "__main__":
    main()
