#!/usr/bin/env python3
"""Sub-minute burstiness: modelled arrivals vs recorded per-second rates.

The paper models within-minute arrivals as Poisson because Azure only
reports minutes, and flags consuming Huawei's *per-second* rates as future
work (section 3.3).  This example runs that extension: refine a Huawei-like
trace to second resolution, then compare the second-scale burstiness of

- Poisson-modelled sub-minute arrivals (the paper's default),
- uniform and equidistant models, and
- the "trace-seconds" path that replays the recorded seconds verbatim.

Run:  python examples/huawei_subminute.py
"""

import numpy as np

from repro.core import SpecEntry
from repro.loadgen import (
    generate_from_second_matrix,
    generate_request_trace,
)
from repro.core.spec import ExperimentSpec
from repro.stats import burstiness_parameter, index_of_dispersion
from repro.traces import expand_to_seconds, synthetic_huawei_trace


def main() -> None:
    print("building a Huawei-like trace window with per-second rates ...")
    hw = synthetic_huawei_trace(total_invocations=2_000_000, seed=53)
    window = hw.minute_range(600, 615)  # 15 busy minutes
    seconds = expand_to_seconds(window, seed=53, burst_gamma_shape=0.35)
    print(f"   {window.n_functions} functions, "
          f"{window.total_invocations:,} invocations over 15 min; "
          f"busiest recorded second: {seconds.busiest_second_rate:,}\n")

    entries = [
        SpecEntry(str(f), f"w:{i}", "pyaes", 10.0, 32.0)
        for i, f in enumerate(window.function_ids)
    ]
    spec = ExperimentSpec(
        name="hw-window", source_trace=hw.name,
        max_rps=window.busiest_minute_rate / 60.0,
        entries=entries, per_minute=window.per_minute.astype(np.int64),
    )

    recorded_iod = index_of_dispersion(seconds.aggregate_per_second)
    print(f"{'arrival model':<16} {'IoD(sec)':>9} {'burstiness B':>13}")
    print("-" * 42)
    print(f"{'recorded trace':<16} {recorded_iod:>9.2f} "
          f"{'—':>13}")
    for mode in ("poisson", "uniform", "equidistant"):
        req = generate_request_trace(spec, seed=53, arrival_mode=mode)
        per_sec = req.per_second_rate(seconds.n_seconds)[: seconds.n_seconds]
        iod = index_of_dispersion(per_sec)
        b = burstiness_parameter(np.diff(req.timestamps_s))
        print(f"{mode:<16} {iod:>9.2f} {b:>13.3f}")
    req = generate_from_second_matrix(seconds.per_second, entries, seed=53)
    per_sec = req.per_second_rate(seconds.n_seconds)[: seconds.n_seconds]
    b = burstiness_parameter(np.diff(req.timestamps_s))
    print(f"{'trace-seconds':<16} {index_of_dispersion(per_sec):>9.2f} "
          f"{b:>13.3f}")

    print(
        "\nreading: Poisson sub-minute modelling reproduces *some*\n"
        "burstiness (IoD near 1) but cannot reach the recorded second-\n"
        "scale spikes; the trace-seconds path preserves them exactly --\n"
        "which is why the paper flags per-second replay as the natural\n"
        "next step for burst-sensitive studies."
    )


if __name__ == "__main__":
    main()
