"""Cluster-level request schedulers.

The pluggable "which node serves this request" policies the scheduling
examples exercise under FaaSRail load:

- :class:`RandomScheduler` -- uniform random spraying;
- :class:`LeastLoadedScheduler` -- fewest in-flight invocations;
- :class:`HashAffinityScheduler` -- workload-sticky placement (maximises
  warm-sandbox reuse, risks imbalance under skewed popularity -- exactly
  the tension the paper's cluster-level discussion highlights).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:
    import numpy.typing as npt

    from repro.platform.simcore import Node

__all__ = [
    "HashAffinityScheduler",
    "LeastLoadedScheduler",
    "LocalityAwareScheduler",
    "PowerOfTwoScheduler",
    "RandomScheduler",
]


class RandomScheduler:
    """Uniformly random node choice."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def pick(self, nodes: Sequence[Node], workload_id: str) -> int:
        del workload_id
        return int(self._rng.integers(0, len(nodes)))

    #: Load-independent picks: the bulk path never needs to validate
    #: busy counts against a threshold (see ``HashAffinityScheduler``).
    bulk_busy_threshold: int | None = None

    def pick_many(
        self, nodes: Sequence[Node], workload_ids: Sequence[str]
    ) -> npt.NDArray[np.int64]:
        """Batched :meth:`pick` for the array engine's bulk path.

        One draw per request, bitwise stream-equal to sequential
        ``pick`` calls (``Generator.integers`` consumes the stream
        identically whether sized or scalar -- pinned by the simulator
        property suite), so bulk and scalar submission see identical
        placements.
        """
        return np.asarray(
            self._rng.integers(0, len(nodes), size=len(workload_ids)),
            dtype=np.int64,
        )

    def snapshot(self) -> Any:
        """Opaque RNG state, to rewind a speculative batched pick."""
        return self._rng.bit_generator.state

    def restore(self, state: Any) -> None:
        """Rewind to a :meth:`snapshot` (the array engine calls this
        when a speculative bulk batch must fall back to scalar picks)."""
        self._rng.bit_generator.state = state


class LeastLoadedScheduler:
    """Node with the fewest busy sandboxes (ties to the lowest index)."""

    def pick(self, nodes: Sequence[Node], workload_id: str) -> int:
        del workload_id
        loads = [n.busy_count for n in nodes]
        return int(np.argmin(loads))


class PowerOfTwoScheduler:
    """Power-of-two-choices: probe two random nodes, take the less busy.

    The classic randomized load-balancing result: two random probes give
    near-least-loaded balance at O(1) cost, without the full-cluster scan
    ``LeastLoadedScheduler`` implies (which is what makes it attractive to
    the cluster-scheduler literature the paper's section 2.2 surveys).
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def pick(self, nodes: Sequence[Node], workload_id: str) -> int:
        del workload_id
        n = len(nodes)
        if n == 1:
            return 0
        a, b = self._rng.choice(n, size=2, replace=False)
        return int(a if nodes[a].busy_count <= nodes[b].busy_count else b)


class LocalityAwareScheduler:
    """Prefer nodes already holding a warm sandbox for the workload.

    A Palette-style locality hint (paper's cluster-level references):
    route to the least-busy node with a warm sandbox for this workload;
    when none exists, fall back to the globally least-busy node.  Warm
    reuse rises without hash affinity's hot-node pathology -- at the cost
    of inspecting per-node sandbox state.
    """

    def pick(self, nodes: Sequence[Node], workload_id: str) -> int:
        warm = [k for k, n in enumerate(nodes)
                if workload_id in n.idle]
        candidates = warm if warm else range(len(nodes))
        return int(min(candidates, key=lambda k: nodes[k].busy_count))


class HashAffinityScheduler:
    """Deterministic workload-to-node stickiness with bounded spill.

    The home node is a hash of the workload id; if the home node is heavily
    loaded the request spills to the next node in hash order (bounded
    linear probing), trading some affinity for load spreading.
    """

    def __init__(self, spill_threshold: int = 8) -> None:
        if spill_threshold <= 0:
            raise ValueError("spill_threshold must be positive")
        self._spill = spill_threshold

    @property
    def bulk_busy_threshold(self) -> int:
        """Validation contract for speculative batched picks.

        :meth:`pick_many` returns home nodes unconditionally; the batch
        is only byte-equal to sequential :meth:`pick` calls if no home
        node was at or above the spill threshold when its request
        arrived.  The array engine checks that from its event calendar
        and falls back to scalar submission on any violation.
        """
        return self._spill

    def pick(self, nodes: Sequence[Node], workload_id: str) -> int:
        n = len(nodes)
        home = hash(workload_id) % n
        for probe in range(n):
            k = (home + probe) % n
            if nodes[k].busy_count < self._spill:
                return k
        return home

    def pick_many(
        self, nodes: Sequence[Node], workload_ids: Sequence[str]
    ) -> npt.NDArray[np.int64]:
        """Speculative batched :meth:`pick`: every request to its home.

        Valid only while no home node is at the spill threshold at any
        arrival -- the caller must verify via ``bulk_busy_threshold``.
        """
        n = len(nodes)
        return np.fromiter(
            (hash(w) % n for w in workload_ids),
            dtype=np.int64,
            count=len(workload_ids),
        )

    def snapshot(self) -> Any:
        """No RNG state to rewind (deterministic picks)."""
        return None

    def restore(self, state: Any) -> None:
        """No RNG state to rewind (deterministic picks)."""
