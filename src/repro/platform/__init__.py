"""FaaS backend substrate: discrete-event cluster simulator + live executor.

Helpers here turn a FaaSRail experiment spec into the simulator's workload
profiles, so replaying generated load against a configurable cluster is a
three-line affair (see ``examples/coldstart_study.py``).
"""

from repro.platform.autoscaler import ReactiveAutoscaler
from repro.platform.cpu import (
    CpuModel,
    CpuPolicy,
    FairShareCpu,
    FifoCpu,
    ShortestFirstCpu,
)
from repro.platform.faults import (
    CrashHook,
    FaultError,
    FaultProfile,
    FaultyBackend,
    InvocationFault,
    MemoryExhaustedFault,
    NodeOutageFault,
    OutageWindow,
    SandboxCrashFault,
)
from repro.platform.keepalive import (
    FixedKeepAlive,
    HistogramKeepAlive,
    HybridHistogramKeepAlive,
    NoKeepAlive,
)
from repro.platform.http_backend import (
    HTTPBackend,
    HTTPConnectionError,
    HTTPStatusError,
    HTTPTimeoutError,
    StubServer,
)
from repro.platform.live import LiveBackend
from repro.platform.metrics import (
    InvocationRecord,
    breaker_uptime,
    cpu_utilization,
    dispatch_lag_summary,
    memory_utilization,
    outcome_summary,
    per_workload_cold_rates,
    record_outcome_metrics,
    retry_histogram,
    summarize,
    summarize_columns,
)
from repro.platform.schedulers import (
    HashAffinityScheduler,
    LeastLoadedScheduler,
    LocalityAwareScheduler,
    PowerOfTwoScheduler,
    RandomScheduler,
)
from repro.platform.shootout import (
    ShootoutCell,
    ShootoutConfig,
    ShootoutResult,
    run_shootout,
)
from repro.platform.tracing import (
    PlatformEvent,
    PlatformTracer,
    TelemetryTracer,
    lifecycle_summary,
)
from repro.platform.simulator import (
    FaaSCluster,
    Node,
    ObjectFaaSCluster,
    RecordColumns,
    WorkloadProfile,
    default_cold_start_s,
)
from repro.platform.simulator_vec import iter_trace_slabs

__all__ = [
    "CpuModel",
    "CpuPolicy",
    "CrashHook",
    "FaaSCluster",
    "FairShareCpu",
    "FaultError",
    "FaultProfile",
    "FaultyBackend",
    "FifoCpu",
    "FixedKeepAlive",
    "HTTPBackend",
    "HTTPConnectionError",
    "HTTPStatusError",
    "HTTPTimeoutError",
    "HashAffinityScheduler",
    "HistogramKeepAlive",
    "HybridHistogramKeepAlive",
    "InvocationFault",
    "InvocationRecord",
    "LeastLoadedScheduler",
    "LiveBackend",
    "LocalityAwareScheduler",
    "MemoryExhaustedFault",
    "NoKeepAlive",
    "Node",
    "NodeOutageFault",
    "ObjectFaaSCluster",
    "OutageWindow",
    "PlatformEvent",
    "PlatformTracer",
    "PowerOfTwoScheduler",
    "RandomScheduler",
    "ReactiveAutoscaler",
    "RecordColumns",
    "SandboxCrashFault",
    "ShootoutCell",
    "ShootoutConfig",
    "ShootoutResult",
    "ShortestFirstCpu",
    "StubServer",
    "TelemetryTracer",
    "WorkloadProfile",
    "breaker_uptime",
    "cpu_utilization",
    "default_cold_start_s",
    "dispatch_lag_summary",
    "iter_trace_slabs",
    "lifecycle_summary",
    "memory_utilization",
    "outcome_summary",
    "per_workload_cold_rates",
    "profiles_from_spec",
    "record_outcome_metrics",
    "retry_histogram",
    "run_shootout",
    "summarize",
    "summarize_columns",
]


def profiles_from_spec(spec) -> dict[str, WorkloadProfile]:
    """Workload profiles for every distinct workload a spec references."""
    profiles: dict[str, WorkloadProfile] = {}
    for entry in spec.entries:
        existing = profiles.get(entry.workload_id)
        if existing is None:
            profiles[entry.workload_id] = WorkloadProfile(
                workload_id=entry.workload_id,
                runtime_ms=entry.runtime_ms,
                memory_mb=entry.memory_mb,
            )
    return profiles
