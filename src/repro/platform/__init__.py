"""FaaS backend substrate: discrete-event cluster simulator + live executor.

Helpers here turn a FaaSRail experiment spec into the simulator's workload
profiles, so replaying generated load against a configurable cluster is a
three-line affair (see ``examples/coldstart_study.py``).
"""

from repro.platform.autoscaler import ReactiveAutoscaler
from repro.platform.keepalive import (
    FixedKeepAlive,
    HistogramKeepAlive,
    NoKeepAlive,
)
from repro.platform.live import LiveBackend
from repro.platform.metrics import (
    InvocationRecord,
    memory_utilization,
    per_workload_cold_rates,
    summarize,
)
from repro.platform.schedulers import (
    HashAffinityScheduler,
    LeastLoadedScheduler,
    LocalityAwareScheduler,
    PowerOfTwoScheduler,
    RandomScheduler,
)
from repro.platform.tracing import (
    PlatformEvent,
    PlatformTracer,
    lifecycle_summary,
)
from repro.platform.simulator import (
    FaaSCluster,
    Node,
    WorkloadProfile,
    default_cold_start_s,
)

__all__ = [
    "FaaSCluster",
    "FixedKeepAlive",
    "HashAffinityScheduler",
    "HistogramKeepAlive",
    "InvocationRecord",
    "LeastLoadedScheduler",
    "LiveBackend",
    "LocalityAwareScheduler",
    "NoKeepAlive",
    "Node",
    "PlatformEvent",
    "PlatformTracer",
    "PowerOfTwoScheduler",
    "lifecycle_summary",
    "memory_utilization",
    "per_workload_cold_rates",
    "RandomScheduler",
    "ReactiveAutoscaler",
    "WorkloadProfile",
    "default_cold_start_s",
    "profiles_from_spec",
    "summarize",
]


def profiles_from_spec(spec) -> dict[str, WorkloadProfile]:
    """Workload profiles for every distinct workload a spec references."""
    profiles: dict[str, WorkloadProfile] = {}
    for entry in spec.entries:
        existing = profiles.get(entry.workload_id)
        if existing is None:
            profiles[entry.workload_id] = WorkloadProfile(
                workload_id=entry.workload_id,
                runtime_ms=entry.runtime_ms,
                memory_mb=entry.memory_mb,
            )
    return profiles
