"""Structured platform event log.

Cold-start and keep-alive research needs to see *why* an invocation was
cold -- was the sandbox never created, expired, or evicted under memory
pressure?  With ``PlatformTracer`` attached, the simulator emits one
record per sandbox lifecycle transition; the analysis helpers aggregate
them into the diagnostic counters those studies report.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

__all__ = ["PlatformEvent", "PlatformTracer", "lifecycle_summary"]

#: Event kinds, in lifecycle order.  The ``fault_injected`` /
#: ``sandbox_crashed`` kinds come from the fault-injection layer
#: (:mod:`repro.platform.faults`); the ``breaker_*`` kinds from the
#: replay engine's circuit breaker (node -1: not tied to a node).
EVENT_KINDS = (
    "sandbox_created",
    "sandbox_reused",
    "sandbox_expired",
    "sandbox_evicted",
    "sandbox_crashed",
    "request_queued",
    "request_dropped",
    "fault_injected",
    "breaker_open",
    "breaker_half_open",
    "breaker_closed",
)


@dataclass(frozen=True)
class PlatformEvent:
    """One lifecycle transition observed by the tracer."""

    time_s: float
    kind: str
    node: int
    workload_id: str

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {self.kind!r}; expected one of "
                f"{EVENT_KINDS}"
            )


class PlatformTracer:
    """Collects :class:`PlatformEvent` records from a cluster run."""

    def __init__(self):
        self.events: list[PlatformEvent] = []

    def emit(self, time_s: float, kind: str, node: int,
             workload_id: str) -> None:
        self.events.append(PlatformEvent(time_s, kind, node, workload_id))

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: str) -> list[PlatformEvent]:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        return [e for e in self.events if e.kind == kind]


def lifecycle_summary(tracer: PlatformTracer) -> dict:
    """Aggregate counters a keep-alive study reports.

    ``eviction_rate`` is evictions per created sandbox (memory-pressure
    indicator); ``reuse_ratio`` is warm reuses per creation (how well the
    keep-alive policy converts held memory into warm starts).
    """
    kinds = Counter(e.kind for e in tracer.events)
    created = kinds.get("sandbox_created", 0)
    out = {kind: kinds.get(kind, 0) for kind in EVENT_KINDS}
    out["reuse_ratio"] = (
        kinds.get("sandbox_reused", 0) / created if created else 0.0
    )
    out["eviction_rate"] = (
        kinds.get("sandbox_evicted", 0) / created if created else 0.0
    )
    per_workload_evictions = Counter(
        e.workload_id for e in tracer.events if e.kind == "sandbox_evicted"
    )
    out["most_evicted"] = (
        per_workload_evictions.most_common(1)[0]
        if per_workload_evictions else None
    )
    return out
