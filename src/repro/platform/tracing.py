"""Structured platform event log.

Cold-start and keep-alive research needs to see *why* an invocation was
cold -- was the sandbox never created, expired, or evicted under memory
pressure?  With ``PlatformTracer`` attached, the simulator emits one
record per sandbox lifecycle transition; the analysis helpers aggregate
them into the diagnostic counters those studies report.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.telemetry import registry as _telemetry

__all__ = [
    "PlatformEvent",
    "PlatformTracer",
    "TelemetryTracer",
    "lifecycle_summary",
]

#: Event kinds, in lifecycle order.  The ``fault_injected`` /
#: ``sandbox_crashed`` kinds come from the fault-injection layer
#: (:mod:`repro.platform.faults`); the ``breaker_*`` kinds from the
#: replay engine's circuit breaker (node -1: not tied to a node);
#: ``invocation_contended`` fires when a CPU-contention model
#: (:mod:`repro.platform.cpu`) dilated an invocation's service time.
EVENT_KINDS = (
    "sandbox_created",
    "sandbox_reused",
    "sandbox_expired",
    "sandbox_evicted",
    "sandbox_crashed",
    "invocation_contended",
    "request_queued",
    "request_dropped",
    "fault_injected",
    "breaker_open",
    "breaker_half_open",
    "breaker_closed",
)


@dataclass(frozen=True)
class PlatformEvent:
    """One lifecycle transition observed by the tracer."""

    time_s: float
    kind: str
    node: int
    workload_id: str

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {self.kind!r}; expected one of "
                f"{EVENT_KINDS}"
            )


class PlatformTracer:
    """Collects :class:`PlatformEvent` records from a cluster run."""

    def __init__(self) -> None:
        self.events: list[PlatformEvent] = []

    def emit(self, time_s: float, kind: str, node: int,
             workload_id: str) -> None:
        self.events.append(PlatformEvent(time_s, kind, node, workload_id))

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: str) -> list[PlatformEvent]:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        return [e for e in self.events if e.kind == kind]


#: Lifecycle deltas for the live-sandbox gauge a TelemetryTracer keeps.
_SANDBOX_DELTA = {
    "sandbox_created": 1,
    "sandbox_expired": -1,
    "sandbox_evicted": -1,
    "sandbox_crashed": -1,
}


class TelemetryTracer:
    """Tracer that folds events into metrics instead of storing them.

    Satisfies the same ``emit()`` protocol as :class:`PlatformTracer`
    but keeps O(1) state: one ``platform_events_total{kind=...}``
    counter per event kind plus a live-sandbox gauge, so day-long
    simulations can stay observable without an unbounded event list.
    Counters land in ``registry`` (default: the active global registry
    at construction time; falls back to a throwaway local one so the
    tracer is always safe to attach).
    """

    def __init__(self, registry=None):
        # explicit None checks: an empty MetricsRegistry is falsy (len 0)
        if registry is None:
            registry = _telemetry.active()
        if registry is None:
            registry = _telemetry.MetricsRegistry()
        self.registry = registry
        self._counters = {
            kind: self.registry.counter(
                "platform_events_total",
                "platform lifecycle events by kind",
                labels={"kind": kind},
            )
            for kind in EVENT_KINDS
        }
        self._live = self.registry.gauge(
            "platform_live_sandboxes",
            "sandboxes currently alive across the cluster",
        )

    def emit(self, time_s: float, kind: str, node: int,
             workload_id: str) -> None:
        counter = self._counters.get(kind)
        if counter is None:
            raise ValueError(
                f"unknown event kind {kind!r}; expected one of {EVENT_KINDS}"
            )
        counter.inc()
        delta = _SANDBOX_DELTA.get(kind)
        if delta is not None:
            self._live.inc(delta)

    def __len__(self) -> int:
        return int(sum(getattr(c, "value", 0.0)
                       for c in self._counters.values()))


def lifecycle_summary(tracer: PlatformTracer) -> dict:
    """Aggregate counters a keep-alive study reports.

    ``eviction_rate`` is evictions per created sandbox (memory-pressure
    indicator); ``reuse_ratio`` is warm reuses per creation (how well the
    keep-alive policy converts held memory into warm starts).
    """
    kinds = Counter(e.kind for e in tracer.events)
    created = kinds.get("sandbox_created", 0)
    out = {kind: kinds.get(kind, 0) for kind in EVENT_KINDS}
    out["reuse_ratio"] = (
        kinds.get("sandbox_reused", 0) / created if created else 0.0
    )
    out["eviction_rate"] = (
        kinds.get("sandbox_evicted", 0) / created if created else 0.0
    )
    per_workload_evictions = Counter(
        e.workload_id for e in tracer.events if e.kind == "sandbox_evicted"
    )
    out["most_evicted"] = (
        per_workload_evictions.most_common(1)[0]
        if per_workload_evictions else None
    )
    return out
