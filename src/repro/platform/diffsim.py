"""Differential fuzzing of the two simulator engines.

The equivalence suite pins a hand-picked configuration matrix; this
module closes the gap between that matrix and the full configuration
space.  It draws random ``(seed, arrival pattern, policy, fault
profile)`` tuples, runs each through both the reference object engine
and the array engine, and compares every observable byte for byte.  On
a mismatch it *shrinks* the offending tuple -- greedily simplifying the
configuration while the mismatch persists -- and prints a one-line
reproducer that can be pasted into a regression test (see
``tests/test_simulator_fuzz.py``, which pins exactly such tuples).

Run standalone::

    python -m repro.platform.diffsim --tuples 100 --seed 7
"""

from __future__ import annotations

import argparse
import dataclasses
from dataclasses import dataclass
from collections.abc import Callable
from typing import Any

import numpy as np

from repro.platform.autoscaler import ReactiveAutoscaler
from repro.platform.cpu import (
    CpuModel,
    FairShareCpu,
    FifoCpu,
    ShortestFirstCpu,
)
from repro.platform.faults import CrashHook
from repro.platform.keepalive import (
    FixedKeepAlive,
    HistogramKeepAlive,
    HybridHistogramKeepAlive,
    NoKeepAlive,
)
from repro.platform.schedulers import (
    HashAffinityScheduler,
    LeastLoadedScheduler,
    LocalityAwareScheduler,
    PowerOfTwoScheduler,
    RandomScheduler,
)
from repro.platform.simulator import ObjectFaaSCluster
from repro.platform.simulator_vec import (
    FaaSCluster,
    WorkloadProfile,
    iter_trace_slabs,
)
from repro.platform.tracing import PlatformTracer

__all__ = [
    "FuzzConfig",
    "compare",
    "fuzz",
    "random_config",
    "shrink",
]

KEEPALIVES = ("none", "fixed", "histogram", "hybrid")
SCHEDULERS = (
    "least-loaded", "random", "power-of-two", "locality", "hash",
)
BATCH_MODES = ("scalar", "bulk", "mixed", "chunked")
CPU_POLICIES = ("fifo", "fair", "stf")

#: Workload memory sizes the generator draws from (MiB).
_MEMORY_CHOICES = (128.0, 256.0, 384.0, 512.0)


@dataclass(frozen=True)
class FuzzConfig:
    """One differential-fuzz tuple: everything a run needs, and nothing
    else -- both engines are built and fed purely from these fields, so
    a printed config *is* the reproducer."""

    seed: int
    n_requests: int
    n_workloads: int
    horizon_s: float
    n_nodes: int
    node_memory_mb: float
    keepalive: str
    scheduler: str
    crash_rate: float
    service_time_cv: float
    queue_timeout_s: float | None
    autoscale: bool
    track_memory: bool
    quantize: bool
    batch: str
    #: TTL for ``keepalive="fixed"`` (other policies ignore it).
    keepalive_ttl: float = 1.0
    #: Slab size for ``batch="chunked"``; 0 defers to a small default.
    chunk_rows: int = 0
    #: CPU cores per node for the contention model; 0 disables it.
    cores: int = 0
    #: Scheduling timeslice for the CPU model (``cores > 0`` only).
    quantum: float = 0.02
    #: CPU scheduling policy name (``cores > 0`` only).
    cpu_policy: str = "fifo"

    def __post_init__(self) -> None:
        if self.keepalive not in KEEPALIVES:
            raise ValueError(f"unknown keepalive {self.keepalive!r}")
        if self.scheduler not in SCHEDULERS:
            raise ValueError(f"unknown scheduler {self.scheduler!r}")
        if self.batch not in BATCH_MODES:
            raise ValueError(f"unknown batch mode {self.batch!r}")
        if self.keepalive_ttl < 0:
            raise ValueError("keepalive_ttl must be non-negative")
        if self.chunk_rows < 0:
            raise ValueError("chunk_rows must be non-negative")
        if self.cores < 0:
            raise ValueError("cores must be non-negative")
        if self.quantum <= 0:
            raise ValueError("quantum must be positive")
        if self.cpu_policy not in CPU_POLICIES:
            raise ValueError(f"unknown cpu policy {self.cpu_policy!r}")


def random_config(rng: np.random.Generator) -> FuzzConfig:
    """Draw one configuration tuple, biased toward stress: tight memory,
    duplicate timestamps, and every policy axis in play."""
    return FuzzConfig(
        seed=int(rng.integers(0, 2**31)),
        n_requests=int(rng.integers(1, 400)),
        n_workloads=int(rng.integers(1, 8)),
        horizon_s=float(rng.choice([0.5, 5.0, 30.0])),
        n_nodes=int(rng.integers(1, 5)),
        # never below the largest generatable workload, so construction
        # succeeds and infeasibility shows up as queueing instead
        node_memory_mb=float(rng.choice([512.0, 1024.0, 4096.0])),
        keepalive=str(rng.choice(KEEPALIVES)),
        scheduler=str(rng.choice(SCHEDULERS)),
        crash_rate=float(rng.choice([0.0, 0.1, 0.5])),
        service_time_cv=float(rng.choice([0.0, 0.0, 0.8])),
        queue_timeout_s=(
            None if rng.random() < 0.5 else float(rng.choice([0.5, 5.0]))
        ),
        autoscale=bool(rng.random() < 0.3),
        track_memory=bool(rng.random() < 0.3),
        quantize=bool(rng.random() < 0.4),
        batch=str(rng.choice(BATCH_MODES)),
        # zero TTL is a distinct code path (immediate teardown despite a
        # "fixed" policy), so it gets explicit weight
        keepalive_ttl=float(rng.choice([0.0, 0.2, 1.0, 5.0])),
        chunk_rows=int(rng.choice([1, 7, 64])),
        # 0 keeps the contention model off for half the tuples so the
        # uncontended paths stay covered too
        cores=int(rng.choice([0, 0, 1, 2, 4])),
        quantum=float(rng.choice([0.005, 0.02, 0.1])),
        cpu_policy=str(rng.choice(CPU_POLICIES)),
    )


def make_load(cfg: FuzzConfig) -> tuple[np.ndarray, list[str]]:
    """The deterministic arrival pattern a config describes.

    ``quantize`` snaps arrivals to a coarse grid, deliberately creating
    equal-timestamp collisions -- the tie-breaking cases where an order
    bug in either engine would hide under random real-valued arrivals.
    """
    rng = np.random.default_rng(cfg.seed)
    ts = np.sort(rng.uniform(0.0, cfg.horizon_s, cfg.n_requests))
    if cfg.quantize:
        step = cfg.horizon_s / 16.0
        ts = np.sort(np.round(ts / step) * step)
    wids = [
        f"w{int(i)}" for i in rng.integers(0, cfg.n_workloads,
                                           cfg.n_requests)
    ]
    return ts, wids


def make_profiles(cfg: FuzzConfig) -> dict[str, WorkloadProfile]:
    rng = np.random.default_rng(cfg.seed + 1)
    return {
        f"w{i}": WorkloadProfile(
            f"w{i}",
            runtime_ms=float(rng.uniform(20.0, 500.0)),
            memory_mb=float(rng.choice(_MEMORY_CHOICES)),
        )
        for i in range(cfg.n_workloads)
    }


def _build_kwargs(cfg: FuzzConfig, tracer: PlatformTracer | None
                  ) -> dict[str, Any]:
    keepalive = {
        "none": NoKeepAlive,
        "fixed": lambda: FixedKeepAlive(cfg.keepalive_ttl),
        "histogram": lambda: HistogramKeepAlive(
            default_ttl_s=1.0, min_ttl_s=0.1, window=32, min_observations=4
        ),
        "hybrid": lambda: HybridHistogramKeepAlive(
            bin_width_s=0.25, n_bins=16, default_ttl_s=1.0,
            min_observations=4,
        ),
    }[cfg.keepalive]()
    scheduler = {
        "least-loaded": LeastLoadedScheduler,
        "random": lambda: RandomScheduler(seed=cfg.seed),
        "power-of-two": lambda: PowerOfTwoScheduler(seed=cfg.seed),
        "locality": LocalityAwareScheduler,
        "hash": HashAffinityScheduler,
    }[cfg.scheduler]()
    kwargs: dict[str, Any] = dict(
        n_nodes=cfg.n_nodes,
        node_memory_mb=cfg.node_memory_mb,
        keepalive=keepalive,
        scheduler=scheduler,
        service_time_cv=cfg.service_time_cv,
        queue_timeout_s=cfg.queue_timeout_s,
        track_memory=cfg.track_memory,
        seed=cfg.seed,
        tracer=tracer,
    )
    if cfg.cores > 0:
        policy = {
            "fifo": FifoCpu,
            # deterministic unequal weights so the weighted-fair fold is
            # actually exercised, not just the equal-weight degenerate
            "fair": lambda: FairShareCpu(weights={
                f"w{i}": float(1 + i % 3) for i in range(cfg.n_workloads)
            }),
            "stf": ShortestFirstCpu,
        }[cfg.cpu_policy]()
        kwargs["cpu"] = CpuModel(
            cores=cfg.cores, quantum_s=cfg.quantum, policy=policy
        )
    if cfg.crash_rate > 0.0:
        kwargs["fault_hook"] = CrashHook(cfg.crash_rate, seed=cfg.seed)
    if cfg.autoscale:
        kwargs["autoscaler"] = ReactiveAutoscaler(
            min_nodes=1,
            max_nodes=6,
            target_busy_per_node=2.0,
            evaluate_every_s=max(cfg.horizon_s / 16.0, 0.05),
            scale_down_grace_s=cfg.horizon_s / 8.0,
        )
    return kwargs


def run_once(cls: type, cfg: FuzzConfig) -> dict[str, Any]:
    """One engine run; every observable folded into a comparable dict.

    Exceptions are observables too: both engines must raise the same
    error at the same request, so a raising run records the exception
    and whatever state the engine left behind.
    """
    ts, wids = make_load(cfg)
    # tracers participate only on the scalar path: attaching one
    # disables the bulk fast path by design, which the bulk/mixed modes
    # exist to exercise
    tracer = PlatformTracer() if cfg.batch == "scalar" else None
    cluster = cls(make_profiles(cfg), **_build_kwargs(cfg, tracer))
    error: tuple[str, str] | None = None
    try:
        if cls is FaaSCluster and cfg.batch == "bulk":
            cluster.invoke_many(ts, wids)
        elif cls is FaaSCluster and cfg.batch == "chunked":
            cluster.invoke_chunked(
                iter_trace_slabs(
                    ts, wids, chunk_rows=cfg.chunk_rows or 16
                )
            )
        elif cls is FaaSCluster and cfg.batch == "mixed":
            half = len(wids) // 2
            cluster.invoke_many(ts[:half], wids[:half])
            for t, w in zip(ts[half:].tolist(), wids[half:]):
                cluster.invoke(t, w)
        else:
            for t, w in zip(ts.tolist(), wids):
                cluster.invoke(t, w)
        cluster.drain()
    except Exception as exc:  # noqa: BLE001 - the exception IS the data
        error = (type(exc).__name__, str(exc))
    return {
        "error": error,
        "records": tuple(cluster.records),
        "clock": cluster.clock_s,
        "dropped": tuple(cluster.dropped),
        "memory_samples": tuple(cluster.memory_samples),
        "n_nodes": len(cluster.nodes),
        "node_state": tuple(
            (n.node_id, n.used_memory_mb, n.busy_count, n.idle_count,
             n.cpu_weight)
            for n in cluster.nodes
        ),
        "trace": tuple(tracer.events) if tracer is not None else (),
    }


def compare(cfg: FuzzConfig) -> str | None:
    """Run both engines on one tuple; a string names the first diverging
    observable, None means byte-identical."""
    ref = run_once(ObjectFaaSCluster, cfg)
    vec = run_once(FaaSCluster, cfg)
    for key in ref:
        if ref[key] != vec[key]:
            return (
                f"{key} diverges: object engine {_excerpt(ref[key])} "
                f"vs array engine {_excerpt(vec[key])}"
            )
    return None


def _excerpt(value: Any, limit: int = 200) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."


# ---------------------------------------------------------------------------
# shrinking
# ---------------------------------------------------------------------------
def _candidates(cfg: FuzzConfig) -> list[FuzzConfig]:
    """Simplification steps, most aggressive first."""
    out = []

    def alt(**changes: Any) -> None:
        cand = dataclasses.replace(cfg, **changes)
        if cand != cfg:
            out.append(cand)

    if cfg.n_requests > 1:
        alt(n_requests=cfg.n_requests // 2)
        alt(n_requests=cfg.n_requests - 1)
    if cfg.n_workloads > 1:
        alt(n_workloads=max(1, cfg.n_workloads // 2))
    alt(crash_rate=0.0)
    alt(service_time_cv=0.0)
    alt(autoscale=False)
    alt(track_memory=False)
    alt(quantize=False)
    alt(queue_timeout_s=None)
    alt(scheduler="least-loaded")
    alt(keepalive="none")
    if cfg.n_nodes > 1:
        alt(n_nodes=1)
    if cfg.keepalive == "fixed":
        alt(keepalive_ttl=1.0)  # alt() drops the no-op candidate
    if cfg.cores > 0:
        alt(cores=0)
    # offered even at cores=0: a non-default policy name on a disabled
    # model is pure noise in the printed reproducer
    alt(cpu_policy="fifo")
    if cfg.batch == "chunked":
        # a chunk-boundary bug often survives with bigger chunks, and a
        # non-chunked mode is simpler still
        if 0 < cfg.chunk_rows < 64:
            alt(chunk_rows=cfg.chunk_rows * 2)
        alt(batch="bulk")
    alt(batch="scalar")
    return out


def shrink(
    cfg: FuzzConfig,
    still_fails: Callable[[FuzzConfig], bool] | None = None,
    max_rounds: int = 64,
) -> FuzzConfig:
    """Greedily simplify a mismatching tuple while it keeps mismatching.

    ``still_fails`` defaults to "``compare`` still reports a mismatch";
    it is injectable so the shrinker itself is testable against
    synthetic failure predicates.
    """
    if still_fails is None:
        still_fails = lambda c: compare(c) is not None  # noqa: E731
    for _ in range(max_rounds):
        for cand in _candidates(cfg):
            try:
                failed = still_fails(cand)
            except Exception:  # noqa: BLE001 - a broken candidate is
                failed = False  # not a simpler reproducer
            if failed:
                cfg = cand
                break
        else:
            return cfg  # no candidate preserved the failure: minimal
    return cfg


def format_reproducer(cfg: FuzzConfig, mismatch: str) -> str:
    fields = ", ".join(
        f"{f.name}={getattr(cfg, f.name)!r}"
        for f in dataclasses.fields(cfg)
    )
    return (
        f"simulator engines diverge: {mismatch}\n"
        f"shrunk reproducer (pin it in tests/test_simulator_fuzz.py):\n"
        f"    FuzzConfig({fields})"
    )


def fuzz(n_tuples: int = 50, seed: int = 0,
         verbose: bool = False) -> list[tuple[FuzzConfig, str]]:
    """Run the differential fuzzer; returns (shrunk config, mismatch)
    pairs, empty when the engines agreed on every tuple."""
    rng = np.random.default_rng(seed)
    failures = []
    for i in range(n_tuples):
        cfg = random_config(rng)
        mismatch = compare(cfg)
        if verbose:
            print(f"[{i + 1:4d}/{n_tuples}] "
                  f"{'MISMATCH' if mismatch else 'ok'} {cfg}")
        if mismatch is not None:
            small = shrink(cfg)
            failures.append((small, compare(small) or mismatch))
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="differential fuzz of the two simulator engines"
    )
    parser.add_argument("--tuples", type=int, default=50,
                        help="number of random configurations to try")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for the configuration generator")
    parser.add_argument("--verbose", action="store_true",
                        help="print one line per tuple")
    args = parser.parse_args(argv)
    failures = fuzz(args.tuples, args.seed, verbose=args.verbose)
    if not failures:
        print(f"OK: engines byte-identical on {args.tuples} random "
              f"configurations (seed {args.seed})")
        return 0
    for cfg, mismatch in failures:
        print(format_reproducer(cfg, mismatch))
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
