"""Policy shootout: every (scheduler x keep-alive x cpu-policy) cell
as a fingerprinted, cache-backed experiment.

The resource-contention scenario lab.  A :class:`ShootoutConfig` pins
one synthetic load (seeded arrivals over a workload population) and one
cluster shape; the grid is the cross product of scheduler, keep-alive,
and CPU-scheduling-policy names.  Each cell runs the array engine once
and reduces the records to a flat metrics row (cold-start fraction,
latency percentiles, CPU utilisation, preemptions, drops).

Cells are pure functions of ``(config, cell)``: the cell key is a
:func:`~repro.cache.tool_fingerprint` over both, so a
:class:`~repro.cache.ContentCache` turns a rerun of the same grid into
pure lookups -- the CI smoke job asserts a warm rerun recomputes zero
cells.  Fan-out reuses :func:`~repro.parallel.plan_shards` /
:func:`~repro.parallel.map_shards`, so results come back in grid order
regardless of worker scheduling and ``--jobs N`` output is identical to
sequential.

CLI: ``repro simulate --shootout`` (see ``repro simulate --help``);
tables land in ``benchmarks/results/`` by default.
"""

from __future__ import annotations

import csv
import itertools
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Any

import numpy as np

from repro.cache import ContentCache, tool_fingerprint
from repro.parallel import map_shards, plan_shards
from repro.platform.cpu import (
    CpuModel,
    CpuPolicy,
    FairShareCpu,
    FifoCpu,
    ShortestFirstCpu,
)
from repro.platform.keepalive import (
    FixedKeepAlive,
    HistogramKeepAlive,
    HybridHistogramKeepAlive,
    NoKeepAlive,
)
from repro.platform.metrics import cpu_utilization, summarize_columns
from repro.platform.schedulers import (
    HashAffinityScheduler,
    LeastLoadedScheduler,
    LocalityAwareScheduler,
    PowerOfTwoScheduler,
    RandomScheduler,
)
from repro.platform.simulator_vec import FaaSCluster, WorkloadProfile
from repro.telemetry import registry as _telemetry

__all__ = [
    "KEEPALIVE_NAMES",
    "CPU_POLICY_NAMES",
    "SCHEDULER_NAMES",
    "ShootoutCell",
    "ShootoutConfig",
    "ShootoutResult",
    "cell_key",
    "grid_cells",
    "run_cell",
    "run_shootout",
    "write_tables",
]

SCHEDULER_NAMES = (
    "least-loaded", "random", "power-of-two", "locality", "hash",
)
KEEPALIVE_NAMES = ("none", "fixed", "histogram", "hybrid")
CPU_POLICY_NAMES = ("fifo", "fair", "stf")

#: Table columns, in output order (the stable CSV schema).
TABLE_FIELDS = (
    "scheduler", "keepalive", "cpu_policy",
    "n_invocations", "dropped", "cold_fraction",
    "latency_p50_ms", "latency_p99_ms", "latency_mean_ms",
    "queueing_ms_mean", "cpu_utilization",
    "preemptions_per_invocation", "busy_core_s", "makespan_s",
)


@dataclass(frozen=True)
class ShootoutConfig:
    """One shootout: load + cluster shape + the policy grid to sweep.

    Everything a cell needs is derived from these fields, so the config
    (plus the cell's three policy names) fingerprints the cell exactly;
    see :func:`cell_key`.
    """

    seed: int = 0
    n_requests: int = 2000
    n_workloads: int = 12
    horizon_s: float = 60.0
    n_nodes: int = 4
    node_memory_mb: float = 4096.0
    cores: int = 4
    quantum_s: float = 0.020
    keepalive_ttl_s: float = 5.0
    queue_timeout_s: float | None = None
    schedulers: tuple[str, ...] = SCHEDULER_NAMES
    keepalives: tuple[str, ...] = KEEPALIVE_NAMES
    cpu_policies: tuple[str, ...] = CPU_POLICY_NAMES

    def __post_init__(self) -> None:
        if self.n_requests <= 0 or self.n_workloads <= 0:
            raise ValueError("n_requests and n_workloads must be positive")
        if self.horizon_s <= 0 or self.n_nodes <= 0:
            raise ValueError("horizon_s and n_nodes must be positive")
        if self.node_memory_mb <= 0:
            raise ValueError("node_memory_mb must be positive")
        if self.cores <= 0 or self.quantum_s <= 0:
            raise ValueError("cores and quantum_s must be positive")
        if self.keepalive_ttl_s < 0:
            raise ValueError("keepalive_ttl_s must be non-negative")
        for name in self.schedulers:
            if name not in SCHEDULER_NAMES:
                raise ValueError(f"unknown scheduler {name!r}")
        for name in self.keepalives:
            if name not in KEEPALIVE_NAMES:
                raise ValueError(f"unknown keepalive {name!r}")
        for name in self.cpu_policies:
            if name not in CPU_POLICY_NAMES:
                raise ValueError(f"unknown cpu policy {name!r}")


@dataclass(frozen=True)
class ShootoutCell:
    """One grid point: which scheduler, keep-alive, and CPU policy."""

    scheduler: str
    keepalive: str
    cpu_policy: str


@dataclass
class ShootoutResult:
    """One completed grid: per-cell metric rows plus cache accounting."""

    config: ShootoutConfig
    rows: list[dict[str, Any]] = field(default_factory=list)
    computed: int = 0
    cached: int = 0


def grid_cells(config: ShootoutConfig) -> list[ShootoutCell]:
    """The grid in deterministic (scheduler, keepalive, cpu) order."""
    return [
        ShootoutCell(s, k, c)
        for s, k, c in itertools.product(
            config.schedulers, config.keepalives, config.cpu_policies
        )
    ]


def cell_key(config: ShootoutConfig, cell: ShootoutCell) -> str:
    """Content address of one cell's result (code-version namespaced)."""
    return tool_fingerprint("shootout", config, cell)


def make_load(config: ShootoutConfig) -> tuple[np.ndarray, list[str]]:
    """The deterministic arrival stream every cell replays."""
    rng = np.random.default_rng(config.seed)
    ts = np.sort(rng.uniform(0.0, config.horizon_s, config.n_requests))
    wids = [
        f"w{int(i)}"
        for i in rng.integers(0, config.n_workloads, config.n_requests)
    ]
    return ts, wids


def make_profiles(config: ShootoutConfig) -> dict[str, WorkloadProfile]:
    rng = np.random.default_rng(config.seed + 1)
    return {
        f"w{i}": WorkloadProfile(
            f"w{i}",
            runtime_ms=float(rng.uniform(20.0, 400.0)),
            memory_mb=float(rng.choice([128.0, 256.0, 512.0])),
        )
        for i in range(config.n_workloads)
    }


def _make_scheduler(name: str, seed: int) -> Any:
    return {
        "least-loaded": LeastLoadedScheduler,
        "random": lambda: RandomScheduler(seed=seed),
        "power-of-two": lambda: PowerOfTwoScheduler(seed=seed),
        "locality": LocalityAwareScheduler,
        "hash": HashAffinityScheduler,
    }[name]()


def _make_keepalive(name: str, ttl_s: float) -> Any:
    return {
        "none": NoKeepAlive,
        "fixed": lambda: FixedKeepAlive(ttl_s),
        "histogram": lambda: HistogramKeepAlive(
            default_ttl_s=ttl_s or 1.0, min_ttl_s=0.1,
            window=64, min_observations=4,
        ),
        "hybrid": lambda: HybridHistogramKeepAlive(
            bin_width_s=1.0, n_bins=120,
            default_ttl_s=ttl_s or 1.0, min_observations=4,
        ),
    }[name]()


def _make_cpu_policy(name: str, n_workloads: int) -> CpuPolicy:
    if name == "fifo":
        return FifoCpu()
    if name == "fair":
        # deterministic unequal weights: the weighted fold is the point
        return FairShareCpu(weights={
            f"w{i}": float(1 + i % 3) for i in range(n_workloads)
        })
    return ShortestFirstCpu()


def run_cell(config: ShootoutConfig, cell: ShootoutCell) -> dict[str, Any]:
    """Run one grid cell and reduce it to a flat metrics row.

    Pure in ``(config, cell)``: the load, profiles, and every policy are
    rebuilt from scratch, so equal inputs give byte-equal rows -- the
    property the content cache relies on.
    """
    ts, wids = make_load(config)
    cluster = FaaSCluster(
        make_profiles(config),
        n_nodes=config.n_nodes,
        node_memory_mb=config.node_memory_mb,
        keepalive=_make_keepalive(cell.keepalive, config.keepalive_ttl_s),
        scheduler=_make_scheduler(cell.scheduler, config.seed),
        queue_timeout_s=config.queue_timeout_s,
        cpu=CpuModel(
            cores=config.cores,
            quantum_s=config.quantum_s,
            policy=_make_cpu_policy(cell.cpu_policy, config.n_workloads),
        ),
        seed=config.seed,
    )
    cluster.invoke_many(ts, wids)
    columns = cluster.drain_columns()
    summary = summarize_columns(columns)
    cpu = cpu_utilization(columns, cores=config.cores,
                          n_nodes=config.n_nodes)
    return {
        "scheduler": cell.scheduler,
        "keepalive": cell.keepalive,
        "cpu_policy": cell.cpu_policy,
        "n_invocations": summary["n_invocations"],
        "dropped": len(cluster.dropped),
        "cold_fraction": summary["cold_fraction"],
        "latency_p50_ms": summary["latency_ms"]["p50"],
        "latency_p99_ms": summary["latency_ms"]["p99"],
        "latency_mean_ms": summary["latency_ms"]["mean"],
        "queueing_ms_mean": summary["queueing_ms_mean"],
        "cpu_utilization": cpu["utilization"],
        "preemptions_per_invocation": cpu["preemptions_per_invocation"],
        "busy_core_s": cpu["busy_core_s"],
        "makespan_s": cpu["makespan_s"],
    }


def _run_shard(
    shard: tuple[ShootoutConfig, list[ShootoutCell], str | None],
) -> list[tuple[dict[str, Any], bool]]:
    """One shard of cells; module-level so process pools can pickle it.

    Returns ``(row, was_cached)`` per cell.  Workers open their own
    cache handle on the shared directory -- concurrent same-key writes
    are safe (atomic rename), and the existence probe, not
    ``memoize``'s hit counter, is what decides ``was_cached`` so the
    accounting stays exact across processes.
    """
    config, cells, cache_dir = shard
    cache = ContentCache(cache_dir) if cache_dir is not None else None
    out: list[tuple[dict[str, Any], bool]] = []
    for cell in cells:
        if cache is None:
            out.append((run_cell(config, cell), False))
            continue
        key = cell_key(config, cell)
        was_cached = key in cache
        row = cache.memoize(key, partial(run_cell, config, cell))
        out.append((row, was_cached))
    return out


def run_shootout(
    config: ShootoutConfig,
    *,
    cache: ContentCache | None = None,
    jobs: int | None = None,
    out_dir: Path | str | None = None,
) -> ShootoutResult:
    """Run (or re-load) the full grid; optionally write result tables.

    With a cache, previously computed cells are pure lookups --
    ``result.computed`` counts only the cells that actually ran.  Rows
    come back in grid order whatever ``jobs`` is.
    """
    cells = grid_cells(config)
    cache_dir = str(cache.root) if cache is not None else None
    shards = [
        (config, cells[lo:hi], cache_dir)
        for lo, hi in plan_shards(len(cells), max_shards=8)
    ]
    result = ShootoutResult(config=config)
    for shard_rows in map_shards(_run_shard, shards, jobs=jobs):
        for row, was_cached in shard_rows:
            result.rows.append(row)
            if was_cached:
                result.cached += 1
            else:
                result.computed += 1
    reg = _telemetry.active()
    if reg is not None:
        reg.gauge("shootout_cells_total",
                  "grid cells in the last shootout").set(len(cells))
        reg.gauge("shootout_cells_computed",
                  "cells actually simulated (cache misses)"
                  ).set(result.computed)
        reg.gauge("shootout_cells_cached",
                  "cells served from the content cache"
                  ).set(result.cached)
    if out_dir is not None:
        write_tables(result, out_dir)
    return result


def write_tables(result: ShootoutResult, out_dir: Path | str) -> Path:
    """Write the per-cell table as ``shootout.csv`` under ``out_dir``.

    Columns follow ``TABLE_FIELDS``; rows keep grid order, so two runs
    of the same config produce byte-identical files.
    """
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "shootout.csv"
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(TABLE_FIELDS))
        writer.writeheader()
        for row in result.rows:
            writer.writerow({k: row[k] for k in TABLE_FIELDS})
    return path
