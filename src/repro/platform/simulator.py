"""Discrete-event FaaS cluster simulator (public façade + reference engine).

The backend the replayer drives when no physical cluster is available (see
DESIGN.md's substitution table).  It models the parts of a FaaS platform
that FaaSRail-generated load exercises:

- per-node memory capacity and sandbox lifecycle (cold start, busy, idle,
  keep-alive expiry, LRU eviction under memory pressure);
- one in-flight invocation per sandbox, horizontal scale-out per workload;
- pluggable cluster scheduler and keep-alive policy;
- FIFO queueing when a node can neither reuse nor admit a sandbox.

Requests must arrive in non-decreasing timestamp order (the replayer
guarantees this); the simulator advances its virtual clock through an event
heap of completions and expiries.

Two engines implement these semantics:

- :class:`FaaSCluster` (re-exported here from
  :mod:`repro.platform.simulator_vec`) is the production, array-native
  engine -- struct-of-arrays record columns, batched admission, and
  vectorised drain reductions;
- :class:`ObjectFaaSCluster` (below) is the reference engine: one Python
  object per sandbox, one heap event per transition.  It is the
  readable, obviously-correct statement of the simulator's semantics
  and the oracle the differential equivalence suite
  (``tests/test_simulator_equivalence.py``) pins the array engine
  against, byte for byte.  Changes to simulator behaviour must land in
  both engines (or the suite fails).
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from repro.platform.keepalive import FixedKeepAlive
from repro.platform.metrics import InvocationRecord
from repro.platform.schedulers import LeastLoadedScheduler
from repro.platform.simcore import _Sandbox as _Sandbox
from repro.platform.simcore import (
    Node,
    WorkloadProfile,
    default_cold_start_s,
)
from repro.platform.simulator_vec import FaaSCluster, RecordColumns
from repro.telemetry import registry as _telemetry

__all__ = [
    "FaaSCluster",
    "Node",
    "ObjectFaaSCluster",
    "RecordColumns",
    "WorkloadProfile",
    "default_cold_start_s",
]


class ObjectFaaSCluster:
    """Reference simulated cluster satisfying the replayer's Backend
    protocol: the object-per-event statement of the simulator semantics
    that :class:`~repro.platform.simulator_vec.FaaSCluster` must match
    bit-for-bit."""

    def __init__(
        self,
        profiles: dict[str, WorkloadProfile],
        *,
        n_nodes: int = 4,
        node_memory_mb: float = 8192.0,
        scheduler=None,
        keepalive=None,
        cold_start_model=default_cold_start_s,
        service_time_cv: float = 0.0,
        cores_per_node: int | None = None,
        cpu=None,
        track_memory: bool = False,
        queue_timeout_s: float | None = None,
        autoscaler=None,
        tracer=None,
        fault_hook=None,
        seed: int = 0,
    ):
        """See class docstring; the optional realism knobs:

        service_time_cv:
            Coefficient of variation of per-invocation service time
            (mean-preserving lognormal noise on the profile runtime);
            0 keeps service deterministic.
        cores_per_node:
            When set, an invocation starting while more than this many
            sandboxes are busy on its node runs slowed by the
            oversubscription factor -- a first-order CPU-contention model
            (the slowdown is fixed at start; no re-scheduling mid-flight).
        cpu:
            Optional :class:`~repro.platform.cpu.CpuModel`: per-node
            core counts, a timeslice quantum, and a pluggable scheduling
            policy.  Under oversubscription the policy dilates service
            time and counts preemptions (recorded per invocation);
            dilation is fixed at admission, like ``cores_per_node``,
            with which it is mutually exclusive.
        track_memory:
            Record ``(time, node, used_memory_mb)`` samples at every
            sandbox admission/reclaim, exposed as ``memory_samples``.
        queue_timeout_s:
            When set, requests that wait in a node backlog longer than
            this are dropped instead of served (recorded in ``dropped``);
            when unset, backlogs are unbounded and a drain that cannot
            place everything raises.
        autoscaler:
            Optional :class:`~repro.platform.autoscaler.ReactiveAutoscaler`
            (or anything with its ``decide(now_s, nodes) -> int``
            signature) consulted on request arrivals; ``n_nodes`` becomes
            the initial topology.
        tracer:
            Optional :class:`~repro.platform.tracing.PlatformTracer`
            receiving one event per sandbox lifecycle transition.
        fault_hook:
            Optional sandbox-crash model (anything with
            ``crash_fraction(now_s, node_id, workload_id) -> float |
            None``, e.g. :class:`~repro.platform.faults.CrashHook`).
            A non-None fraction ends the invocation after that share of
            its service time with ``ok=False``; the sandbox is destroyed
            (memory freed, no keep-alive reuse).
        """
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        if node_memory_mb <= 0:
            raise ValueError("node_memory_mb must be positive")
        if not profiles:
            raise ValueError("cluster needs at least one workload profile")
        if service_time_cv < 0:
            raise ValueError("service_time_cv must be non-negative")
        if cores_per_node is not None and cores_per_node <= 0:
            raise ValueError("cores_per_node must be positive")
        if cpu is not None and cores_per_node is not None:
            raise ValueError(
                "cpu and cores_per_node are mutually exclusive; the "
                "CpuModel replaces the first-order slowdown"
            )
        if queue_timeout_s is not None and queue_timeout_s <= 0:
            raise ValueError("queue_timeout_s must be positive")
        biggest = max(p.memory_mb for p in profiles.values())
        if biggest > node_memory_mb:
            raise ValueError(
                f"largest workload ({biggest} MiB) exceeds node memory "
                f"({node_memory_mb} MiB); no placement can ever succeed"
            )
        self.profiles = dict(profiles)
        self.nodes = [Node(i, node_memory_mb) for i in range(n_nodes)]
        self.scheduler = scheduler or LeastLoadedScheduler()
        self.keepalive = keepalive or FixedKeepAlive(600.0)
        self.cold_start_model = cold_start_model
        self.queue_timeout_s = queue_timeout_s
        self.autoscaler = autoscaler
        self.tracer = tracer
        self.fault_hook = fault_hook
        #: (arrival_s, workload_id) of requests dropped on queue timeout.
        self.dropped: list[tuple[float, str]] = []
        self._node_memory_mb = node_memory_mb
        self._next_node_id = n_nodes
        self.service_time_cv = service_time_cv
        self.cores_per_node = cores_per_node
        self.cpu = cpu
        self.track_memory = track_memory
        self.memory_samples: list[tuple[float, int, float]] = []
        self._rng = np.random.default_rng(seed)
        if service_time_cv > 0:
            sigma = float(np.sqrt(np.log1p(service_time_cv**2)))
            self._lognorm = (sigma, -0.5 * sigma * sigma)
        else:
            self._lognorm = None
        self.records: list[InvocationRecord] = []
        self._clock = 0.0
        self._heap: list = []
        self._seq = itertools.count()
        self._sandbox_ids = itertools.count()

    # ------------------------------------------------------------------
    # Backend protocol
    # ------------------------------------------------------------------
    def invoke(self, timestamp_s: float, workload_id: str) -> None:
        if workload_id not in self.profiles:
            raise KeyError(f"no profile for workload {workload_id!r}")
        if timestamp_s < self._clock:
            raise ValueError(
                f"request at t={timestamp_s} is in the simulator's past "
                f"(clock={self._clock}); submit in timestamp order"
            )
        self._advance(timestamp_s)
        if self.autoscaler is not None:
            self._apply_autoscaling(timestamp_s)
        node = self.nodes[self.scheduler.pick(self.nodes, workload_id)]
        if not self._try_start(node, timestamp_s, workload_id):
            self._trace("request_queued", node.node_id, workload_id)
            node.pending.append((timestamp_s, workload_id))

    def drain(self) -> list[InvocationRecord]:
        while self._heap:
            self._advance(self._heap[0][0])
        stuck = sum(len(n.pending) for n in self.nodes)
        if stuck:
            if self.queue_timeout_s is not None:
                # every still-queued request has outlived its deadline by
                # now (all service events have fired)
                for node in self.nodes:
                    for arrival_s, wid in node.pending:
                        self.dropped.append((arrival_s, wid))
                        self._trace("request_dropped", node.node_id, wid)
                    node.pending.clear()
            else:
                raise RuntimeError(
                    f"{stuck} requests remain queued after drain; the "
                    "cluster deadlocked on memory (raise node_memory_mb "
                    "or n_nodes, or set queue_timeout_s)"
                )
        reg = _telemetry.active()
        if reg is not None:
            # gauges are idempotent, so repeated drains stay correct
            reg.gauge("platform_nodes",
                      "cluster size at drain time").set(len(self.nodes))
            reg.gauge("platform_completed_invocations",
                      "invocation records held by the cluster"
                      ).set(len(self.records))
            reg.gauge("platform_dropped_requests",
                      "requests dropped on queue timeout so far"
                      ).set(len(self.dropped))
        return self.records

    # ------------------------------------------------------------------
    # elasticity
    # ------------------------------------------------------------------
    def _apply_autoscaling(self, now_s: float) -> None:
        desired = self.autoscaler.decide(now_s, self.nodes)
        while desired > len(self.nodes):
            self.nodes.append(
                Node(self._next_node_id, self._node_memory_mb)
            )
            self._next_node_id += 1
        while desired < len(self.nodes) and len(self.nodes) > 1:
            victim = min(self.nodes, key=lambda n: n.busy_count)
            if victim.busy_count > 0:
                break  # nothing retirable right now; try next evaluation
            # reclaim idle sandboxes and hand any backlog to a survivor
            for stack in list(victim.idle.values()):
                for sandbox in list(stack):
                    sandbox.expire_generation += 1
                    victim.remove_idle(sandbox)
                    self._trace("sandbox_evicted", victim.node_id,
                                sandbox.workload_id)
            self.nodes.remove(victim)
            if victim.pending:
                self.nodes[0].pending.extend(victim.pending)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @property
    def clock_s(self) -> float:
        return self._clock

    def _trace(self, kind: str, node_id: int, workload_id: str) -> None:
        if self.tracer is not None:
            self.tracer.emit(self._clock, kind, node_id, workload_id)

    def _push(self, when: float, kind: str, payload) -> None:
        heapq.heappush(self._heap, (when, next(self._seq), kind, payload))

    def _advance(self, until: float) -> None:
        while self._heap and self._heap[0][0] <= until:
            when, _, kind, payload = heapq.heappop(self._heap)
            self._clock = when
            if kind == "end":
                self._on_completion(when, *payload)
            elif kind == "crash":
                self._on_crash(when, *payload)
            else:  # "expire"
                self._on_expiry(when, *payload)
        self._clock = max(self._clock, until)

    def _try_start(self, node: Node, arrival_s: float,
                   workload_id: str) -> bool:
        """Start an invocation now if a sandbox can be had; else False."""
        now = self._clock
        profile = self.profiles[workload_id]
        sandbox = node.pop_idle(workload_id)
        if sandbox is not None:
            self.keepalive.observe_idle_gap(
                workload_id, now - sandbox.idle_since
            )
            sandbox.expire_generation += 1  # cancels the queued expiry
            self._trace("sandbox_reused", node.node_id, workload_id)
            start = now
            cold = False
        else:
            # Make room, evicting the least recently used idle sandboxes.
            while (
                node.used_memory_mb + profile.memory_mb
                > node.memory_capacity_mb
            ):
                victim = node.lru_idle()
                if victim is None:
                    return False
                victim.expire_generation += 1
                node.remove_idle(victim)
                self._trace("sandbox_evicted", node.node_id,
                            victim.workload_id)
            node.used_memory_mb += profile.memory_mb
            if self.track_memory:
                self.memory_samples.append(
                    (now, node.node_id, node.used_memory_mb)
                )
            sandbox = _Sandbox(
                sandbox_id=next(self._sandbox_ids),
                workload_id=workload_id,
                memory_mb=profile.memory_mb,
            )
            self._trace("sandbox_created", node.node_id, workload_id)
            start = now + self.cold_start_model(profile)
            cold = True

        service_s = profile.runtime_ms / 1e3
        if self._lognorm is not None:
            sigma, mu = self._lognorm
            service_s *= float(self._rng.lognormal(mu, sigma))
        preemptions = 0
        if self.cpu is not None:
            # run-queue-aware dilation, fixed at admission time
            w = self.cpu.policy.weight(workload_id)
            dilated, preemptions = self.cpu.policy.contend(
                service_s,
                cores=self.cpu.cores,
                quantum_s=self.cpu.quantum_s,
                concurrent=node.busy_count + 1,
                weight=w,
                total_weight=node.cpu_weight + w,
            )
            if dilated > service_s:
                self._trace("invocation_contended", node.node_id,
                            workload_id)
            service_s = dilated
            node.cpu_weight += w
        elif self.cores_per_node is not None:
            # oversubscription slowdown, fixed at admission time
            concurrent = node.busy_count + 1
            if concurrent > self.cores_per_node:
                service_s *= concurrent / self.cores_per_node
        end = start + service_s
        ok = True
        if self.fault_hook is not None:
            frac = self.fault_hook.crash_fraction(
                now, node.node_id, workload_id
            )
            if frac is not None:
                end = start + service_s * min(max(frac, 0.0), 1.0)
                ok = False
        node.busy_count += 1
        self.records.append(
            InvocationRecord(
                workload_id=workload_id,
                node=node.node_id,
                arrival_s=arrival_s,
                start_s=start,
                end_s=end,
                cold=cold,
                ok=ok,
                preemptions=preemptions,
            )
        )
        # Events carry the Node object itself: under autoscaling the
        # nodes list mutates, so positional ids are not stable handles.
        self._push(end, "end" if ok else "crash", (node, sandbox))
        return True

    def _on_completion(self, now: float, node: Node,
                       sandbox: _Sandbox) -> None:
        node.busy_count -= 1
        if self.cpu is not None:
            node.cpu_weight -= self.cpu.policy.weight(sandbox.workload_id)
        sandbox.idle_since = now
        sandbox.expire_generation += 1
        node.push_idle(sandbox)
        ttl = self.keepalive.ttl_s(sandbox.workload_id)
        if ttl <= 0:
            node.remove_idle(sandbox)
        else:
            self._push(now + ttl, "expire",
                       (node, sandbox, sandbox.expire_generation))
        self._serve_pending(node)

    def _on_crash(self, now: float, node: Node,
                  sandbox: _Sandbox) -> None:
        """The sandbox died mid-invocation: destroy it outright."""
        del now
        node.busy_count -= 1
        if self.cpu is not None:
            node.cpu_weight -= self.cpu.policy.weight(sandbox.workload_id)
        sandbox.expire_generation += 1
        node.used_memory_mb -= sandbox.memory_mb
        self._trace("sandbox_crashed", node.node_id, sandbox.workload_id)
        if self.track_memory:
            self.memory_samples.append(
                (self._clock, node.node_id, node.used_memory_mb)
            )
        self._serve_pending(node)

    def _on_expiry(self, now: float, node: Node, sandbox: _Sandbox,
                   generation: int) -> None:
        del now
        if sandbox.expire_generation != generation:
            return  # sandbox was reused or evicted in the meantime
        node.remove_idle(sandbox)
        self._trace("sandbox_expired", node.node_id, sandbox.workload_id)
        if self.track_memory:
            self.memory_samples.append(
                (self._clock, node.node_id, node.used_memory_mb)
            )
        self._serve_pending(node)

    def _serve_pending(self, node: Node) -> None:
        while node.pending:
            arrival_s, workload_id = node.pending[0]
            if (
                self.queue_timeout_s is not None
                and self._clock - arrival_s > self.queue_timeout_s
            ):
                self.dropped.append(node.pending.pop(0))
                self._trace("request_dropped", node.node_id, workload_id)
                continue
            if not self._try_start(node, arrival_s, workload_id):
                return
            node.pending.pop(0)
