"""Shared primitives of the cluster simulators.

Both simulator engines -- the array-native
:class:`~repro.platform.simulator_vec.FaaSCluster` production engine and
the reference :class:`~repro.platform.simulator.ObjectFaaSCluster` it is
differentially tested against -- share the same workload description,
node bookkeeping, and cold-start cost model.  They live here so the two
engines cannot drift apart on the data model and so neither module has
to import the other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Node", "WorkloadProfile", "default_cold_start_s"]


@dataclass(frozen=True)
class WorkloadProfile:
    """What the platform needs to know to run one workload."""

    workload_id: str
    runtime_ms: float
    memory_mb: float

    def __post_init__(self) -> None:
        if self.runtime_ms <= 0 or self.memory_mb <= 0:
            raise ValueError(
                f"{self.workload_id}: runtime and memory must be positive"
            )


def default_cold_start_s(profile: WorkloadProfile) -> float:
    """Cold-start cost model: fixed sandbox boot + memory-proportional
    image/runtime initialisation (~150 ms + 0.8 ms/MiB)."""
    return 0.150 + 0.0008 * profile.memory_mb


@dataclass
class _Sandbox:
    """Reference-engine sandbox: one warm (or busy) execution environment.

    ``expire_generation`` is the guard against stale lifecycle events: it
    is bumped on every reuse, eviction, crash, and idle transition, and a
    queued keep-alive expiry only fires when the generation it captured
    still matches -- so an expiry scheduled before a crash (or reuse) of
    the same sandbox can never double-reclaim its memory.  The array
    engine keeps the same counter in its ``generation`` column.
    """

    sandbox_id: int
    workload_id: str
    memory_mb: float
    idle_since: float = 0.0
    expire_generation: int = 0


@dataclass
class Node:
    """One worker node: memory-bounded sandbox pool plus a FIFO backlog.

    ``idle`` maps workload id to a stack of idle sandboxes, most recently
    idled last.  The reference engine stores :class:`_Sandbox` objects in
    the stacks; the array engine stores integer rows into its sandbox
    arrays.  External policies only rely on the mapping's keys and the
    per-node counters, which are identical either way.

    ``cpu_weight`` is the running total of the scheduling weights of the
    node's busy sandboxes under a CPU-contention model
    (:class:`~repro.platform.cpu.CpuModel`): incremented at admission,
    decremented at completion/crash, folded in the engines' shared event
    order so the IEEE accumulation is bit-identical across engines.  It
    stays 0.0 when no CPU model is configured.
    """

    node_id: int
    memory_capacity_mb: float
    used_memory_mb: float = 0.0
    busy_count: int = 0
    cpu_weight: float = 0.0
    idle: dict[str, list[Any]] = field(default_factory=dict)
    pending: list[tuple[float, str]] = field(default_factory=list)

    def push_idle(self, sandbox: _Sandbox) -> None:
        """Append to the workload's idle stack (most recently idled last).

        Creates the stack on first use -- dict-key *insertion order* is
        semantically load-bearing: :meth:`lru_idle` breaks idle-time
        ties by it, and the array engine's bulk carry reproduces it when
        rematerialising idle state (see ``_BulkTail``).
        """
        self.idle.setdefault(sandbox.workload_id, []).append(sandbox)

    def pop_idle(self, workload_id: str) -> _Sandbox | None:
        stack = self.idle.get(workload_id)
        if not stack:
            return None
        sandbox: _Sandbox = stack.pop()
        if not stack:
            del self.idle[workload_id]
        return sandbox

    def lru_idle(self) -> _Sandbox | None:
        best: _Sandbox | None = None
        for stack in self.idle.values():
            for sb in stack:
                if best is None or sb.idle_since < best.idle_since:
                    best = sb
        return best

    def remove_idle(self, sandbox: _Sandbox) -> None:
        stack = self.idle[sandbox.workload_id]
        stack.remove(sandbox)
        if not stack:
            del self.idle[sandbox.workload_id]
        self.used_memory_mb -= sandbox.memory_mb

    @property
    def idle_count(self) -> int:
        return sum(len(s) for s in self.idle.values())
