"""Array-native discrete-event FaaS cluster simulator.

This is the production engine behind :class:`FaaSCluster` (the name
``repro.platform.simulator`` re-exports).  It keeps the reference object
engine's *semantics* -- byte-identical records, traces, metrics, and
policy interactions, pinned by ``tests/test_simulator_equivalence.py``
-- while moving every cost that scales with invocation count onto
struct-of-arrays storage:

- **Records** live in growable NumPy columns (workload code, node,
  arrival/start/end, cold, ok).  ``InvocationRecord`` objects are
  materialised lazily and only on demand; :meth:`record_columns` /
  :meth:`drain_columns` expose the columns directly so metrics can be
  NumPy reductions (:func:`repro.platform.metrics.summarize_columns`)
  with no per-record Python at all.
- **Batched admission**: :meth:`invoke_many` takes a whole
  timestamp-ordered slab of requests.  When the configuration provably
  cannot diverge from the scalar path (see :meth:`_bulk_eligible`), the
  cold-start, completion, and memory transitions of the entire slab are
  applied with one lexsort + cumsum per node instead of one event-heap
  cycle per request; outstanding completions become a :class:`_BulkTail`
  that is finalised vectorised at drain (or materialised into ordinary
  heap events if scalar traffic follows).
- **Everything else** -- keep-alive LRU stacks, stateful schedulers,
  autoscaling, fault hooks, tracing -- runs the exact control flow of
  the reference engine, on the same :class:`~repro.platform.simcore.Node`
  objects, so the cluster-size-bounded control plane stays a faithful
  oracle target and external policies observe identical state.

Determinism contract: for any input and configuration, this engine and
:class:`repro.platform.simulator.ObjectFaaSCluster` produce bit-equal
record fields, clocks, drops, memory samples, and trace event streams.
The bulk path preserves this down to IEEE float accumulation order
(``used_memory_mb`` is folded with ``cumsum`` in the reference engine's
exact event order) and RNG stream position (batched scheduler draws are
stream-equal to sequential ones; a speculative batch that must fall back
rewinds the scheduler RNG via its ``snapshot``/``restore`` protocol).
See docs/SIMULATOR.md for how to add a policy without breaking this.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from collections.abc import Callable, Sequence
from typing import Any, Protocol, cast

import numpy as np
import numpy.typing as npt

from repro.platform.keepalive import FixedKeepAlive, NoKeepAlive
from repro.platform.metrics import InvocationRecord
from repro.platform.schedulers import (
    HashAffinityScheduler,
    LeastLoadedScheduler,
    LocalityAwareScheduler,
    PowerOfTwoScheduler,
)
from repro.platform.simcore import (
    Node,
    WorkloadProfile,
    _Sandbox,
    default_cold_start_s,
)
from repro.telemetry import registry as _telemetry

__all__ = [
    "FaaSCluster",
    "Node",
    "RecordColumns",
    "WorkloadProfile",
    "default_cold_start_s",
]


# ----------------------------------------------------------------------
# policy protocols (what the engine requires of its pluggable parts)
# ----------------------------------------------------------------------
class Scheduler(Protocol):
    """Cluster scheduler: node index for one arriving request."""

    def pick(self, nodes: Sequence[Node], workload_id: str) -> int: ...


class BatchScheduler(Scheduler, Protocol):
    """Scheduler supporting speculative batched picks (bulk path).

    ``pick_many`` must consume exactly the randomness ``count``
    sequential ``pick`` calls would; ``snapshot``/``restore`` let the
    engine rewind a speculative batch that has to fall back to the
    scalar path.
    """

    def pick_many(
        self, nodes: Sequence[Node], count: int
    ) -> npt.NDArray[np.int64]: ...

    def snapshot(self) -> Any: ...

    def restore(self, state: Any) -> None: ...


class KeepAlivePolicy(Protocol):
    def ttl_s(self, workload_id: str) -> float: ...

    def observe_idle_gap(self, workload_id: str, gap_s: float) -> None: ...


class Autoscaler(Protocol):
    def decide(self, now_s: float, nodes: Sequence[Node]) -> int: ...


class Tracer(Protocol):
    def emit(
        self, time_s: float, kind: str, node: int, workload_id: str
    ) -> None: ...


class FaultHook(Protocol):
    def crash_fraction(
        self, now_s: float, node_id: int, workload_id: str
    ) -> float | None: ...


#: Schedulers whose single-node pick is a pure ``return 0`` -- no RNG
#: consumed, no mutable state -- so the bulk path may bypass them.
_PURE_SINGLE_NODE_SCHEDULERS = (
    LeastLoadedScheduler,
    PowerOfTwoScheduler,
    LocalityAwareScheduler,
    HashAffinityScheduler,
)


# ----------------------------------------------------------------------
# columnar record storage
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RecordColumns:
    """Struct-of-arrays view of a run's invocation records.

    The columnar equivalent of ``list[InvocationRecord]``: row ``i`` of
    every array is record ``i``, in the same order the reference engine
    appends records.  ``workload_codes`` indexes into ``vocabulary``
    (first-appearance order).  Arrays are defensive copies -- safe to
    keep after the cluster keeps running.
    """

    workload_codes: npt.NDArray[np.int32]
    vocabulary: tuple[str, ...]
    node: npt.NDArray[np.int32]
    arrival_s: npt.NDArray[np.float64]
    start_s: npt.NDArray[np.float64]
    end_s: npt.NDArray[np.float64]
    cold: npt.NDArray[np.bool_]
    ok: npt.NDArray[np.bool_]

    def __len__(self) -> int:
        return int(self.arrival_s.size)

    @property
    def latency_ms(self) -> npt.NDArray[np.float64]:
        return (self.end_s - self.arrival_s) * 1e3

    @property
    def queueing_ms(self) -> npt.NDArray[np.float64]:
        return (self.start_s - self.arrival_s) * 1e3

    @property
    def service_ms(self) -> npt.NDArray[np.float64]:
        return (self.end_s - self.start_s) * 1e3

    def workload_ids(self) -> list[str]:
        words = self.vocabulary
        return [words[c] for c in self.workload_codes.tolist()]

    def to_records(self) -> list[InvocationRecord]:
        """Materialise fresh ``InvocationRecord`` objects (one per row)."""
        words = self.vocabulary
        return [
            InvocationRecord(
                workload_id=words[c],
                node=nd,
                arrival_s=a,
                start_s=s,
                end_s=e,
                cold=co,
                ok=o,
            )
            for c, nd, a, s, e, co, o in zip(
                self.workload_codes.tolist(),
                self.node.tolist(),
                self.arrival_s.tolist(),
                self.start_s.tolist(),
                self.end_s.tolist(),
                self.cold.tolist(),
                self.ok.tolist(),
            )
        ]


class _RecordStore:
    """Growable struct-of-arrays record buffer with a string vocabulary."""

    __slots__ = (
        "n", "code", "node", "arrival", "start", "end", "cold", "ok",
        "vocab", "words",
    )

    def __init__(self) -> None:
        cap = 1024
        self.n = 0
        self.code = np.empty(cap, np.int32)
        self.node = np.empty(cap, np.int32)
        self.arrival = np.empty(cap, np.float64)
        self.start = np.empty(cap, np.float64)
        self.end = np.empty(cap, np.float64)
        self.cold = np.empty(cap, np.bool_)
        self.ok = np.empty(cap, np.bool_)
        self.vocab: dict[str, int] = {}
        self.words: list[str] = []

    def code_for(self, workload_id: str) -> int:
        code = self.vocab.get(workload_id)
        if code is None:
            code = len(self.words)
            self.vocab[workload_id] = code
            self.words.append(workload_id)
        return code

    def _reserve(self, need: int) -> None:
        cap = self.code.size
        if need <= cap:
            return
        while cap < need:
            cap *= 2
        for name in ("code", "node", "arrival", "start", "end", "cold", "ok"):
            old = getattr(self, name)
            grown = np.empty(cap, old.dtype)
            grown[: self.n] = old[: self.n]
            setattr(self, name, grown)

    def append(
        self,
        code: int,
        node_id: int,
        arrival_s: float,
        start_s: float,
        end_s: float,
        cold: bool,
        ok: bool,
    ) -> None:
        i = self.n
        if i == self.code.size:
            self._reserve(i + 1)
        self.code[i] = code
        self.node[i] = node_id
        self.arrival[i] = arrival_s
        self.start[i] = start_s
        self.end[i] = end_s
        self.cold[i] = cold
        self.ok[i] = ok
        self.n = i + 1

    def extend(
        self,
        codes: npt.NDArray[np.int32],
        node_ids: npt.NDArray[np.int64],
        arrival_s: npt.NDArray[np.float64],
        start_s: npt.NDArray[np.float64],
        end_s: npt.NDArray[np.float64],
        *,
        cold: bool,
        ok: bool,
    ) -> None:
        n0 = self.n
        n1 = n0 + int(codes.size)
        self._reserve(n1)
        self.code[n0:n1] = codes
        self.node[n0:n1] = node_ids
        self.arrival[n0:n1] = arrival_s
        self.start[n0:n1] = start_s
        self.end[n0:n1] = end_s
        self.cold[n0:n1] = cold
        self.ok[n0:n1] = ok
        self.n = n1

    def columns(self) -> RecordColumns:
        n = self.n
        return RecordColumns(
            workload_codes=self.code[:n].copy(),
            vocabulary=tuple(self.words),
            node=self.node[:n].copy(),
            arrival_s=self.arrival[:n].copy(),
            start_s=self.start[:n].copy(),
            end_s=self.end[:n].copy(),
            cold=self.cold[:n].copy(),
            ok=self.ok[:n].copy(),
        )


@dataclass
class _BulkTail:
    """Completions a bulk slab left outstanding past its last arrival.

    Row ``j`` is the ``j``-th still-running invocation in submission
    order.  ``seqs``/``sids`` are the event-heap sequence numbers and
    sandbox ids the reference engine would have assigned, so
    materialising the tail into real heap events reproduces its exact
    tie-breaking.  ``final_used`` is the per-node ``used_memory_mb``
    after *all* tail completions fire, folded in the reference engine's
    IEEE accumulation order -- drain applies it directly.
    """

    ends: npt.NDArray[np.float64]
    seqs: npt.NDArray[np.int64]
    sids: npt.NDArray[np.int64]
    node_idx: npt.NDArray[np.int64]
    mem_mb: npt.NDArray[np.float64]
    codes: npt.NDArray[np.int64]
    words: list[str]
    final_used: npt.NDArray[np.float64]


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
class FaaSCluster:
    """Array-native simulated cluster satisfying the replayer's Backend
    protocol, plus the batched extensions (:meth:`invoke_many`,
    :meth:`drain_columns`, :meth:`record_columns`).

    Semantics, parameters, and error behaviour are those of the
    reference :class:`repro.platform.simulator.ObjectFaaSCluster`; see
    its docstring for the realism knobs.  The differential equivalence
    suite pins byte-identity between the two.
    """

    def __init__(
        self,
        profiles: dict[str, WorkloadProfile],
        *,
        n_nodes: int = 4,
        node_memory_mb: float = 8192.0,
        scheduler: Scheduler | None = None,
        keepalive: KeepAlivePolicy | None = None,
        cold_start_model: Callable[
            [WorkloadProfile], float
        ] = default_cold_start_s,
        service_time_cv: float = 0.0,
        cores_per_node: int | None = None,
        track_memory: bool = False,
        queue_timeout_s: float | None = None,
        autoscaler: Autoscaler | None = None,
        tracer: Tracer | None = None,
        fault_hook: FaultHook | None = None,
        seed: int = 0,
    ) -> None:
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        if node_memory_mb <= 0:
            raise ValueError("node_memory_mb must be positive")
        if not profiles:
            raise ValueError("cluster needs at least one workload profile")
        if service_time_cv < 0:
            raise ValueError("service_time_cv must be non-negative")
        if cores_per_node is not None and cores_per_node <= 0:
            raise ValueError("cores_per_node must be positive")
        if queue_timeout_s is not None and queue_timeout_s <= 0:
            raise ValueError("queue_timeout_s must be positive")
        biggest = max(p.memory_mb for p in profiles.values())
        if biggest > node_memory_mb:
            raise ValueError(
                f"largest workload ({biggest} MiB) exceeds node memory "
                f"({node_memory_mb} MiB); no placement can ever succeed"
            )
        self.profiles = dict(profiles)
        self.nodes: list[Node] = [
            Node(i, node_memory_mb) for i in range(n_nodes)
        ]
        self.scheduler: Scheduler = scheduler or LeastLoadedScheduler()
        self.keepalive: KeepAlivePolicy = keepalive or FixedKeepAlive(600.0)
        self.cold_start_model = cold_start_model
        self.queue_timeout_s = queue_timeout_s
        self.autoscaler = autoscaler
        self.tracer = tracer
        self.fault_hook = fault_hook
        #: (arrival_s, workload_id) of requests dropped on queue timeout.
        self.dropped: list[tuple[float, str]] = []
        self._node_memory_mb = node_memory_mb
        self._next_node_id = n_nodes
        self.service_time_cv = service_time_cv
        self.cores_per_node = cores_per_node
        self.track_memory = track_memory
        self.memory_samples: list[tuple[float, int, float]] = []
        self._rng = np.random.default_rng(seed)
        self._lognorm: tuple[float, float] | None
        if service_time_cv > 0:
            sigma = float(np.sqrt(np.log1p(service_time_cv**2)))
            self._lognorm = (sigma, -0.5 * sigma * sigma)
        else:
            self._lognorm = None
        self._store = _RecordStore()
        self._records_list: list[InvocationRecord] = []
        self._clock = 0.0
        self._heap: list[tuple[float, int, str, tuple[Any, ...]]] = []
        self._seq_n = 0
        self._sandbox_n = 0
        self._tail: _BulkTail | None = None

    # ------------------------------------------------------------------
    # Backend protocol
    # ------------------------------------------------------------------
    def invoke(self, timestamp_s: float, workload_id: str) -> None:
        if workload_id not in self.profiles:
            raise KeyError(f"no profile for workload {workload_id!r}")
        if timestamp_s < self._clock:
            raise ValueError(
                f"request at t={timestamp_s} is in the simulator's past "
                f"(clock={self._clock}); submit in timestamp order"
            )
        if self._tail is not None:
            self._materialize_tail()
        self._advance(timestamp_s)
        if self.autoscaler is not None:
            self._apply_autoscaling(timestamp_s)
        node = self.nodes[self.scheduler.pick(self.nodes, workload_id)]
        if not self._try_start(node, timestamp_s, workload_id):
            self._trace("request_queued", node.node_id, workload_id)
            node.pending.append((timestamp_s, workload_id))

    def invoke_many(
        self,
        timestamps_s: npt.ArrayLike,
        workload_ids: Sequence[str],
    ) -> None:
        """Submit a timestamp-ordered batch of requests.

        Semantically identical to calling :meth:`invoke` per element;
        when the configuration is provably safe the whole slab is
        applied vectorised, otherwise this falls back to the scalar
        loop (including for invalid input, so errors surface exactly
        where the per-element loop would raise them, with the same
        partial state).
        """
        ts = np.asarray(timestamps_s, dtype=np.float64)
        if ts.ndim != 1:
            raise ValueError("timestamps_s must be one-dimensional")
        n = int(ts.size)
        if n != len(workload_ids):
            raise ValueError(
                f"got {n} timestamps but {len(workload_ids)} workload ids"
            )
        if n == 0:
            return
        if self._bulk_eligible() and self._bulk_invoke(ts, workload_ids):
            return
        self._invoke_loop(ts, workload_ids)

    def drain(self) -> list[InvocationRecord]:
        self._drain_events()
        self._drain_telemetry()
        return self.records

    def drain_columns(self) -> RecordColumns:
        """Array-native :meth:`drain`: finish all outstanding work and
        return the records as columns, materialising no record objects."""
        self._drain_events()
        self._drain_telemetry()
        return self._store.columns()

    # ------------------------------------------------------------------
    # record access
    # ------------------------------------------------------------------
    @property
    def records(self) -> list[InvocationRecord]:
        """The run's records so far, as one stable list object.

        Rows are materialised from the columns lazily; repeated access
        returns the *same* list (decorators rely on the identity), with
        any new rows appended.
        """
        store = self._store
        out = self._records_list
        n = store.n
        if len(out) < n:
            words = store.words
            code, node = store.code, store.node
            arrival, start, end = store.arrival, store.start, store.end
            cold, ok = store.cold, store.ok
            for i in range(len(out), n):
                out.append(
                    InvocationRecord(
                        workload_id=words[code[i]],
                        node=int(node[i]),
                        arrival_s=float(arrival[i]),
                        start_s=float(start[i]),
                        end_s=float(end[i]),
                        cold=bool(cold[i]),
                        ok=bool(ok[i]),
                    )
                )
        return out

    def record_columns(self) -> RecordColumns:
        """Columnar snapshot of the records appended so far."""
        return self._store.columns()

    @property
    def clock_s(self) -> float:
        return self._clock

    # ------------------------------------------------------------------
    # bulk fast path
    # ------------------------------------------------------------------
    def _bulk_eligible(self) -> bool:
        """Whether a batch can be applied vectorised without any chance
        of diverging from the scalar path.

        The gate is intentionally strict: immediate sandbox teardown
        (``NoKeepAlive``) kills the warm-reuse/LRU feedback loop, no
        policy callbacks observe intermediate state, service times and
        cold starts are pure per-profile values, and the engine holds no
        outstanding events whose interleaving would matter.  Everything
        else takes the exact scalar path.
        """
        if type(self.keepalive) is not NoKeepAlive:
            return False
        if (
            self.autoscaler is not None
            or self.tracer is not None
            or self.fault_hook is not None
        ):
            return False
        if self.service_time_cv > 0 or self.cores_per_node is not None:
            return False
        if self.track_memory:
            return False
        if self.cold_start_model is not default_cold_start_s:
            return False
        if self._heap or self._tail is not None:
            return False
        for node in self.nodes:
            if node.pending or node.idle or node.busy_count:
                return False
        sched_t = type(self.scheduler)
        if (
            getattr(sched_t, "pick_many", None) is not None
            and getattr(sched_t, "snapshot", None) is not None
            and getattr(sched_t, "restore", None) is not None
        ):
            return True
        return (
            len(self.nodes) == 1
            and sched_t in _PURE_SINGLE_NODE_SCHEDULERS
        )

    def _bulk_invoke(
        self,
        ts: npt.NDArray[np.float64],
        workload_ids: Sequence[str],
    ) -> bool:
        """Apply one eligible slab vectorised; False = caller must fall
        back to the scalar loop (no state was mutated)."""
        n = int(ts.size)
        words = list(self.profiles)
        index = {w: i for i, w in enumerate(words)}
        try:
            codes = np.fromiter(
                map(index.__getitem__, workload_ids), np.int64, count=n
            )
        except KeyError:  # unknown workload: let the loop raise
            return False
        if float(ts[0]) < self._clock:
            return False
        if n > 1 and bool(np.any(np.diff(ts) < 0)):
            return False

        profs = [self.profiles[w] for w in words]
        mem = np.array([p.memory_mb for p in profs], np.float64)
        svc = np.array([p.runtime_ms for p in profs], np.float64) / 1e3
        coldcost = np.array(
            [self.cold_start_model(p) for p in profs], np.float64
        )

        sched = self.scheduler
        speculative = getattr(type(sched), "pick_many", None) is not None
        saved: Any = None
        if speculative:
            bsched = cast(BatchScheduler, sched)
            saved = bsched.snapshot()
            node_idx = np.asarray(
                bsched.pick_many(self.nodes, n), dtype=np.int64
            )
        else:
            node_idx = np.zeros(n, dtype=np.int64)

        req_mem = mem[codes]
        start = ts + coldcost[codes]
        end = start + svc[codes]
        last_t = float(ts[-1])
        n_nodes = len(self.nodes)

        # The whole slab as one event calendar per node: allocation at
        # arrival (+mem), release at completion (-mem).  Sorting by
        # (node, time, release-before-allocation, submission index)
        # reproduces the reference engine's heap order exactly: events
        # with ``when <= t`` pop before the arrival at ``t``, ties
        # break on push sequence == submission order.  Priority and
        # submission index pack into one int64 tie key (prio dominates;
        # fine while n < 2**33), keeping the lexsort at three keys.
        sub = np.arange(n, dtype=np.int64)
        ev_time = np.concatenate((ts, end))
        ev_tie = np.concatenate((sub | (1 << 33), sub))
        ev_node = np.concatenate((node_idx, node_idx))
        ev_delta = np.concatenate((req_mem, -req_mem))
        order = np.lexsort((ev_tie, ev_time, ev_node))
        s_time = ev_time[order]
        s_alloc = ev_tie[order] >= (1 << 33)
        s_delta = ev_delta[order]

        counts = 2 * np.bincount(node_idx, minlength=n_nodes)
        bounds = np.zeros(n_nodes + 1, np.int64)
        np.cumsum(counts, out=bounds[1:])
        new_used = np.empty(n_nodes, np.float64)
        final_used = np.empty(n_nodes, np.float64)
        busy_after = np.zeros(n_nodes, np.int64)
        for b, node in enumerate(self.nodes):
            lo, hi = int(bounds[b]), int(bounds[b + 1])
            # cumsum folds the deltas sequentially, so the running
            # usage is bitwise the reference engine's +=/-= chain
            block = np.empty(hi - lo + 1, np.float64)
            block[0] = node.used_memory_mb
            block[1:] = s_delta[lo:hi]
            usage = np.cumsum(block)
            admitted = usage[1:][s_alloc[lo:hi]]
            if bool(np.any(admitted > node.memory_capacity_mb)):
                # at least one admission would queue: scalar path owns
                # the backlog semantics
                if speculative:
                    cast(BatchScheduler, sched).restore(saved)
                return False
            cut = int(np.searchsorted(s_time[lo:hi], last_t, side="right"))
            new_used[b] = usage[cut]
            final_used[b] = usage[-1]
            busy_after[b] = (hi - lo) - cut

        # -- commit ----------------------------------------------------
        seq0 = self._seq_n
        sid0 = self._sandbox_n
        self._seq_n += n
        self._sandbox_n += n
        self._clock = last_t
        store = self._store
        store_code = np.fromiter(
            (store.code_for(w) for w in words), np.int32, count=len(words)
        )
        node_ids = np.fromiter(
            (nd.node_id for nd in self.nodes), np.int64, count=n_nodes
        )
        store.extend(
            store_code[codes], node_ids[node_idx], ts, start, end,
            cold=True, ok=True,
        )
        for b, node in enumerate(self.nodes):
            node.busy_count = int(busy_after[b])
            node.used_memory_mb = float(new_used[b])
        out = np.nonzero(end > last_t)[0]
        if out.size:
            self._tail = _BulkTail(
                ends=end[out],
                seqs=seq0 + out,
                sids=sid0 + out,
                node_idx=node_idx[out],
                mem_mb=req_mem[out],
                codes=codes[out],
                words=words,
                final_used=final_used,
            )
        return True

    def _invoke_loop(
        self,
        ts: npt.NDArray[np.float64],
        workload_ids: Sequence[str],
    ) -> None:
        invoke = self.invoke
        for t, w in zip(ts.tolist(), workload_ids):
            invoke(t, w)

    def _materialize_tail(self) -> None:
        """Turn a bulk slab's outstanding completions into ordinary heap
        events so scalar traffic can interleave with them exactly."""
        tail = self._tail
        if tail is None:
            return
        self._tail = None
        heap = self._heap
        words = tail.words
        for j in range(int(tail.ends.size)):
            sandbox = _Sandbox(
                sandbox_id=int(tail.sids[j]),
                workload_id=words[int(tail.codes[j])],
                memory_mb=float(tail.mem_mb[j]),
            )
            node = self.nodes[int(tail.node_idx[j])]
            heapq.heappush(
                heap,
                (
                    float(tail.ends[j]),
                    int(tail.seqs[j]),
                    "end",
                    (node, sandbox),
                ),
            )

    def _finalize_tail(self) -> None:
        """Drain-time shortcut: apply every outstanding bulk completion
        in one pass (busy to zero, the precomputed exactly-ordered
        memory residue, clock to the last completion)."""
        tail = self._tail
        if tail is None:
            return
        self._tail = None
        self._clock = max(self._clock, float(tail.ends.max()))
        for b, node in enumerate(self.nodes):
            node.busy_count = 0
            node.used_memory_mb = float(tail.final_used[b])

    # ------------------------------------------------------------------
    # drain internals
    # ------------------------------------------------------------------
    def _drain_events(self) -> None:
        if self._tail is not None:
            self._finalize_tail()
        while self._heap:
            self._advance(self._heap[0][0])
        stuck = sum(len(n.pending) for n in self.nodes)
        if stuck:
            if self.queue_timeout_s is not None:
                # every still-queued request has outlived its deadline by
                # now (all service events have fired)
                for node in self.nodes:
                    for arrival_s, wid in node.pending:
                        self.dropped.append((arrival_s, wid))
                        self._trace("request_dropped", node.node_id, wid)
                    node.pending.clear()
            else:
                raise RuntimeError(
                    f"{stuck} requests remain queued after drain; the "
                    "cluster deadlocked on memory (raise node_memory_mb "
                    "or n_nodes, or set queue_timeout_s)"
                )

    def _drain_telemetry(self) -> None:
        reg = _telemetry.active()
        if reg is not None:
            # gauges are idempotent, so repeated drains stay correct
            reg.gauge("platform_nodes",
                      "cluster size at drain time").set(len(self.nodes))
            reg.gauge("platform_completed_invocations",
                      "invocation records held by the cluster"
                      ).set(self._store.n)
            reg.gauge("platform_dropped_requests",
                      "requests dropped on queue timeout so far"
                      ).set(len(self.dropped))

    # ------------------------------------------------------------------
    # elasticity
    # ------------------------------------------------------------------
    def _apply_autoscaling(self, now_s: float) -> None:
        scaler = self.autoscaler
        if scaler is None:
            return
        desired = scaler.decide(now_s, self.nodes)
        while desired > len(self.nodes):
            self.nodes.append(
                Node(self._next_node_id, self._node_memory_mb)
            )
            self._next_node_id += 1
        while desired < len(self.nodes) and len(self.nodes) > 1:
            victim = min(self.nodes, key=lambda n: n.busy_count)
            if victim.busy_count > 0:
                break  # nothing retirable right now; try next evaluation
            # reclaim idle sandboxes and hand any backlog to a survivor
            for stack in list(victim.idle.values()):
                for sandbox in list(stack):
                    sandbox.expire_generation += 1
                    victim.remove_idle(sandbox)
                    self._trace("sandbox_evicted", victim.node_id,
                                sandbox.workload_id)
            self.nodes.remove(victim)
            if victim.pending:
                self.nodes[0].pending.extend(victim.pending)

    # ------------------------------------------------------------------
    # scalar event machinery (exact reference-engine control flow)
    # ------------------------------------------------------------------
    def _trace(self, kind: str, node_id: int, workload_id: str) -> None:
        if self.tracer is not None:
            self.tracer.emit(self._clock, kind, node_id, workload_id)

    def _push(self, when: float, kind: str, payload: tuple[Any, ...]) -> None:
        heapq.heappush(self._heap, (when, self._seq_n, kind, payload))
        self._seq_n += 1

    def _advance(self, until: float) -> None:
        while self._heap and self._heap[0][0] <= until:
            when, _, kind, payload = heapq.heappop(self._heap)
            self._clock = when
            if kind == "end":
                self._on_completion(when, *payload)
            elif kind == "crash":
                self._on_crash(when, *payload)
            else:  # "expire"
                self._on_expiry(when, *payload)
        self._clock = max(self._clock, until)

    def _try_start(self, node: Node, arrival_s: float,
                   workload_id: str) -> bool:
        """Start an invocation now if a sandbox can be had; else False."""
        now = self._clock
        profile = self.profiles[workload_id]
        sandbox = node.pop_idle(workload_id)
        if sandbox is not None:
            self.keepalive.observe_idle_gap(
                workload_id, now - sandbox.idle_since
            )
            sandbox.expire_generation += 1  # cancels the queued expiry
            self._trace("sandbox_reused", node.node_id, workload_id)
            start = now
            cold = False
        else:
            # Make room, evicting the least recently used idle sandboxes.
            while (
                node.used_memory_mb + profile.memory_mb
                > node.memory_capacity_mb
            ):
                victim = node.lru_idle()
                if victim is None:
                    return False
                victim.expire_generation += 1
                node.remove_idle(victim)
                self._trace("sandbox_evicted", node.node_id,
                            victim.workload_id)
            node.used_memory_mb += profile.memory_mb
            if self.track_memory:
                self.memory_samples.append(
                    (now, node.node_id, node.used_memory_mb)
                )
            sandbox = _Sandbox(
                sandbox_id=self._sandbox_n,
                workload_id=workload_id,
                memory_mb=profile.memory_mb,
            )
            self._sandbox_n += 1
            self._trace("sandbox_created", node.node_id, workload_id)
            start = now + self.cold_start_model(profile)
            cold = True

        service_s = profile.runtime_ms / 1e3
        if self._lognorm is not None:
            sigma, mu = self._lognorm
            service_s *= float(self._rng.lognormal(mu, sigma))
        if self.cores_per_node is not None:
            # oversubscription slowdown, fixed at admission time
            concurrent = node.busy_count + 1
            if concurrent > self.cores_per_node:
                service_s *= concurrent / self.cores_per_node
        end = start + service_s
        ok = True
        if self.fault_hook is not None:
            frac = self.fault_hook.crash_fraction(
                now, node.node_id, workload_id
            )
            if frac is not None:
                end = start + service_s * min(max(frac, 0.0), 1.0)
                ok = False
        node.busy_count += 1
        self._store.append(
            self._store.code_for(workload_id),
            node.node_id, arrival_s, start, end, cold, ok,
        )
        # Events carry the Node object itself: under autoscaling the
        # nodes list mutates, so positional ids are not stable handles.
        self._push(end, "end" if ok else "crash", (node, sandbox))
        return True

    def _on_completion(self, now: float, node: Node,
                       sandbox: _Sandbox) -> None:
        node.busy_count -= 1
        sandbox.idle_since = now
        sandbox.expire_generation += 1
        node.idle.setdefault(sandbox.workload_id, []).append(sandbox)
        ttl = self.keepalive.ttl_s(sandbox.workload_id)
        if ttl <= 0:
            node.remove_idle(sandbox)
        else:
            self._push(now + ttl, "expire",
                       (node, sandbox, sandbox.expire_generation))
        self._serve_pending(node)

    def _on_crash(self, now: float, node: Node,
                  sandbox: _Sandbox) -> None:
        """The sandbox died mid-invocation: destroy it outright."""
        del now
        node.busy_count -= 1
        sandbox.expire_generation += 1
        node.used_memory_mb -= sandbox.memory_mb
        self._trace("sandbox_crashed", node.node_id, sandbox.workload_id)
        if self.track_memory:
            self.memory_samples.append(
                (self._clock, node.node_id, node.used_memory_mb)
            )
        self._serve_pending(node)

    def _on_expiry(self, now: float, node: Node, sandbox: _Sandbox,
                   generation: int) -> None:
        del now
        if sandbox.expire_generation != generation:
            return  # sandbox was reused or evicted in the meantime
        node.remove_idle(sandbox)
        self._trace("sandbox_expired", node.node_id, sandbox.workload_id)
        if self.track_memory:
            self.memory_samples.append(
                (self._clock, node.node_id, node.used_memory_mb)
            )
        self._serve_pending(node)

    def _serve_pending(self, node: Node) -> None:
        while node.pending:
            arrival_s, workload_id = node.pending[0]
            if (
                self.queue_timeout_s is not None
                and self._clock - arrival_s > self.queue_timeout_s
            ):
                self.dropped.append(node.pending.pop(0))
                self._trace("request_dropped", node.node_id, workload_id)
                continue
            if not self._try_start(node, arrival_s, workload_id):
                return
            node.pending.pop(0)
