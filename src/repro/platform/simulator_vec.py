"""Array-native discrete-event FaaS cluster simulator.

This is the production engine behind :class:`FaaSCluster` (the name
``repro.platform.simulator`` re-exports).  It keeps the reference object
engine's *semantics* -- byte-identical records, traces, metrics, and
policy interactions, pinned by ``tests/test_simulator_equivalence.py``
-- while moving every cost that scales with invocation count onto
struct-of-arrays storage:

- **Records** live in growable NumPy columns (workload code, node,
  arrival/start/end, cold, ok).  ``InvocationRecord`` objects are
  materialised lazily and only on demand; :meth:`record_columns` /
  :meth:`drain_columns` expose the columns directly so metrics can be
  NumPy reductions (:func:`repro.platform.metrics.summarize_columns`)
  with no per-record Python at all.
- **Batched admission**: :meth:`invoke_many` takes a whole
  timestamp-ordered slab of requests.  When the configuration provably
  cannot diverge from the scalar path (see :meth:`_bulk_eligible`), the
  cold-start, warm-reuse, expiry, completion, and memory transitions of
  the entire slab are applied with per-pool replay plus one lexsort +
  cumsum per node instead of one event-heap cycle per request.  The
  envelope covers constant keep-alive TTLs (``NoKeepAlive`` and
  ``FixedKeepAlive``), lognormal service-time jitter (one pre-drawn
  array per slab, stream-equal to the scalar draws, rewound on
  fallback), and batch-capable schedulers; whatever the slab leaves
  outstanding -- running invocations *and* warm idle sandboxes --
  becomes a :class:`_BulkTail` carry that survives chunk boundaries
  (:meth:`invoke_chunked`), is finalised vectorised at drain, or is
  materialised into ordinary heap events if scalar traffic follows.
- **Everything else** -- keep-alive LRU stacks, stateful schedulers,
  autoscaling, fault hooks, tracing -- runs the exact control flow of
  the reference engine, on the same :class:`~repro.platform.simcore.Node`
  objects, so the cluster-size-bounded control plane stays a faithful
  oracle target and external policies observe identical state.

Determinism contract: for any input and configuration, this engine and
:class:`repro.platform.simulator.ObjectFaaSCluster` produce bit-equal
record fields, clocks, drops, memory samples, and trace event streams.
The bulk path preserves this down to IEEE float accumulation order
(``used_memory_mb`` is folded with ``cumsum`` in the reference engine's
exact event order) and RNG stream position (batched scheduler draws are
stream-equal to sequential ones; a speculative batch that must fall back
rewinds the scheduler RNG via its ``snapshot``/``restore`` protocol).
See docs/SIMULATOR.md for how to add a policy without breaking this.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Iterator, Sequence
from typing import Any, Protocol, cast

import numpy as np
import numpy.typing as npt

from repro.platform.cpu import (
    CpuModel,
    FairShareCpu,
    FifoCpu,
    ShortestFirstCpu,
)
from repro.platform.keepalive import FixedKeepAlive, NoKeepAlive
from repro.platform.metrics import InvocationRecord
from repro.platform.schedulers import (
    HashAffinityScheduler,
    LeastLoadedScheduler,
    LocalityAwareScheduler,
    PowerOfTwoScheduler,
)
from repro.platform.simcore import (
    Node,
    WorkloadProfile,
    _Sandbox,
    default_cold_start_s,
)
from repro.telemetry import registry as _telemetry

__all__ = [
    "FaaSCluster",
    "Node",
    "RecordColumns",
    "WorkloadProfile",
    "default_cold_start_s",
    "iter_trace_slabs",
]


# ----------------------------------------------------------------------
# policy protocols (what the engine requires of its pluggable parts)
# ----------------------------------------------------------------------
class Scheduler(Protocol):
    """Cluster scheduler: node index for one arriving request."""

    def pick(self, nodes: Sequence[Node], workload_id: str) -> int: ...


class BatchScheduler(Scheduler, Protocol):
    """Scheduler supporting speculative batched picks (bulk path).

    ``pick_many`` must return one node index per workload id and
    consume exactly the randomness the same number of sequential
    ``pick`` calls would; ``snapshot``/``restore`` let the engine
    rewind a speculative batch that has to fall back to the scalar
    path.  A scheduler whose batched picks are only valid while node
    load stays below a bound (hash affinity's spill threshold) exposes
    the bound as a ``bulk_busy_threshold`` attribute; the engine then
    verifies the picked node's busy count at every arrival against it
    and falls back on any violation.
    """

    def pick_many(
        self, nodes: Sequence[Node], workload_ids: Sequence[str]
    ) -> npt.NDArray[np.int64]: ...

    def snapshot(self) -> Any: ...

    def restore(self, state: Any) -> None: ...


class KeepAlivePolicy(Protocol):
    def ttl_s(self, workload_id: str) -> float: ...

    def observe_idle_gap(self, workload_id: str, gap_s: float) -> None: ...


class Autoscaler(Protocol):
    def decide(self, now_s: float, nodes: Sequence[Node]) -> int: ...


class Tracer(Protocol):
    def emit(
        self, time_s: float, kind: str, node: int, workload_id: str
    ) -> None: ...


class FaultHook(Protocol):
    def crash_fraction(
        self, now_s: float, node_id: int, workload_id: str
    ) -> float | None: ...


#: Schedulers whose single-node pick is a pure ``return 0`` -- no RNG
#: consumed, no mutable state -- so the bulk path may bypass them.
_PURE_SINGLE_NODE_SCHEDULERS = (
    LeastLoadedScheduler,
    PowerOfTwoScheduler,
    LocalityAwareScheduler,
    HashAffinityScheduler,
)

#: Empty-heap sentinel for the CPU replay's cached heap minimum.
_INF = float("inf")


# ----------------------------------------------------------------------
# columnar record storage
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RecordColumns:
    """Struct-of-arrays view of a run's invocation records.

    The columnar equivalent of ``list[InvocationRecord]``: row ``i`` of
    every array is record ``i``, in the same order the reference engine
    appends records.  ``workload_codes`` indexes into ``vocabulary``
    (first-appearance order).  Arrays are defensive copies -- safe to
    keep after the cluster keeps running.
    """

    workload_codes: npt.NDArray[np.int32]
    vocabulary: tuple[str, ...]
    node: npt.NDArray[np.int32]
    arrival_s: npt.NDArray[np.float64]
    start_s: npt.NDArray[np.float64]
    end_s: npt.NDArray[np.float64]
    cold: npt.NDArray[np.bool_]
    ok: npt.NDArray[np.bool_]
    preemptions: npt.NDArray[np.int32]

    def __len__(self) -> int:
        return int(self.arrival_s.size)

    @property
    def latency_ms(self) -> npt.NDArray[np.float64]:
        return (self.end_s - self.arrival_s) * 1e3

    @property
    def queueing_ms(self) -> npt.NDArray[np.float64]:
        return (self.start_s - self.arrival_s) * 1e3

    @property
    def service_ms(self) -> npt.NDArray[np.float64]:
        return (self.end_s - self.start_s) * 1e3

    def workload_ids(self) -> list[str]:
        words = self.vocabulary
        return [words[c] for c in self.workload_codes.tolist()]

    def to_records(self) -> list[InvocationRecord]:
        """Materialise fresh ``InvocationRecord`` objects (one per row)."""
        words = self.vocabulary
        return [
            InvocationRecord(
                workload_id=words[c],
                node=nd,
                arrival_s=a,
                start_s=s,
                end_s=e,
                cold=co,
                ok=o,
                preemptions=p,
            )
            for c, nd, a, s, e, co, o, p in zip(
                self.workload_codes.tolist(),
                self.node.tolist(),
                self.arrival_s.tolist(),
                self.start_s.tolist(),
                self.end_s.tolist(),
                self.cold.tolist(),
                self.ok.tolist(),
                self.preemptions.tolist(),
            )
        ]


class _RecordStore:
    """Growable struct-of-arrays record buffer with a string vocabulary."""

    __slots__ = (
        "n", "code", "node", "arrival", "start", "end", "cold", "ok",
        "preempt", "vocab", "words",
    )

    def __init__(self) -> None:
        cap = 1024
        self.n = 0
        self.code = np.empty(cap, np.int32)
        self.node = np.empty(cap, np.int32)
        self.arrival = np.empty(cap, np.float64)
        self.start = np.empty(cap, np.float64)
        self.end = np.empty(cap, np.float64)
        self.cold = np.empty(cap, np.bool_)
        self.ok = np.empty(cap, np.bool_)
        self.preempt = np.empty(cap, np.int32)
        self.vocab: dict[str, int] = {}
        self.words: list[str] = []

    def code_for(self, workload_id: str) -> int:
        code = self.vocab.get(workload_id)
        if code is None:
            code = len(self.words)
            self.vocab[workload_id] = code
            self.words.append(workload_id)
        return code

    def _reserve(self, need: int) -> None:
        cap = self.code.size
        if need <= cap:
            return
        while cap < need:
            cap *= 2
        for name in ("code", "node", "arrival", "start", "end", "cold",
                     "ok", "preempt"):
            old = getattr(self, name)
            grown = np.empty(cap, old.dtype)
            grown[: self.n] = old[: self.n]
            setattr(self, name, grown)

    def append(
        self,
        code: int,
        node_id: int,
        arrival_s: float,
        start_s: float,
        end_s: float,
        cold: bool,
        ok: bool,
        preempt: int = 0,
    ) -> None:
        i = self.n
        if i == self.code.size:
            self._reserve(i + 1)
        self.code[i] = code
        self.node[i] = node_id
        self.arrival[i] = arrival_s
        self.start[i] = start_s
        self.end[i] = end_s
        self.cold[i] = cold
        self.ok[i] = ok
        self.preempt[i] = preempt
        self.n = i + 1

    def extend(
        self,
        codes: npt.NDArray[np.int32],
        node_ids: npt.NDArray[np.int64],
        arrival_s: npt.NDArray[np.float64],
        start_s: npt.NDArray[np.float64],
        end_s: npt.NDArray[np.float64],
        *,
        cold: bool | npt.NDArray[np.bool_],
        ok: bool,
        preempt: npt.NDArray[np.int32] | None = None,
    ) -> None:
        n0 = self.n
        n1 = n0 + int(codes.size)
        self._reserve(n1)
        self.code[n0:n1] = codes
        self.node[n0:n1] = node_ids
        self.arrival[n0:n1] = arrival_s
        self.start[n0:n1] = start_s
        self.end[n0:n1] = end_s
        self.cold[n0:n1] = cold
        self.ok[n0:n1] = ok
        self.preempt[n0:n1] = 0 if preempt is None else preempt
        self.n = n1

    def columns(self) -> RecordColumns:
        n = self.n
        return RecordColumns(
            workload_codes=self.code[:n].copy(),
            vocabulary=tuple(self.words),
            node=self.node[:n].copy(),
            arrival_s=self.arrival[:n].copy(),
            start_s=self.start[:n].copy(),
            end_s=self.end[:n].copy(),
            cold=self.cold[:n].copy(),
            ok=self.ok[:n].copy(),
            preemptions=self.preempt[:n].copy(),
        )


#: Shared empty columns for carries with no idle component (zero TTL).
_F0 = np.empty(0, np.float64)
_I0 = np.empty(0, np.int64)


def _event_order(
    t: npt.NDArray[np.float64],
    phase: npt.NDArray[np.uint8],
    tie: npt.NDArray[np.int64],
) -> npt.NDArray[np.int64]:
    """Exact argsort by ``(t, phase, tie)``.

    Equivalent to ``np.lexsort((tie, phase, t))`` but built to exploit
    the bulk path's event streams: each stream is emitted almost sorted
    by time, so one adaptive stable sort on ``t`` does nearly all the
    work and the remaining ``(phase, tie)`` discipline only matters
    inside runs of exactly equal timestamps, which are resolved with a
    lexsort confined to those rows.
    """
    so = np.argsort(t, kind="stable")
    ts_ = t[so]
    eq = ts_[1:] == ts_[:-1]
    if bool(eq.any()):
        in_run = np.zeros(t.size, np.bool_)
        in_run[:-1] = eq
        in_run[1:] |= eq
        rows = np.nonzero(in_run)[0]
        sub = so[rows]
        # lexsort keeps distinct-time runs in place (t is the major
        # key) and orders each run by (phase, tie)
        so[rows] = sub[np.lexsort((tie[sub], phase[sub], t[sub]))]
    return so


def _group_stable(
    labels: npt.NDArray[np.int64],
) -> npt.NDArray[np.int64]:
    """Stable argsort of small non-negative integer labels.

    Groups events by pool/node while preserving their existing order,
    via one value sort of ``label << shift | position`` -- far cheaper
    than a comparison argsort when the payload order is already
    meaningful.  Falls back to a stable argsort if the packed key
    cannot hold both fields exactly.
    """
    n = int(labels.size)
    if n == 0:
        return np.empty(0, np.int64)
    shift = max(n - 1, 1).bit_length()
    lmax = int(labels[labels.argmax()]) if n else 0
    if lmax.bit_length() + shift > 62:
        return np.argsort(labels, kind="stable")
    if lmax.bit_length() + shift <= 31:
        packed32 = np.sort(
            (labels.astype(np.int32) << shift)
            | np.arange(n, dtype=np.int32)
        )
        return (packed32 & ((1 << shift) - 1)).astype(np.int64)
    packed = np.sort((labels << shift) | np.arange(n, dtype=np.int64))
    return packed & ((1 << shift) - 1)


@dataclass
class _BulkTail:
    """Vectorised carry a bulk slab leaves behind past its last arrival.

    The carry survives chunk boundaries (:meth:`FaaSCluster.invoke_chunked`
    folds it into the next slab's event calendar) and supports both
    exits: drain applies the precomputed ``final_used``/``drain_clock``
    directly, while scalar traffic materialises it into ordinary heap
    events and node state so interleaving stays byte-identical to the
    reference engine.

    Still-running invocations: row ``j`` holds the completion time, the
    end-event heap sequence number the reference engine would have
    assigned (exact tie-breaking on materialisation), node, memory, and
    workload code.  Warm idle sandboxes (``ttl > 0`` only; empty
    columns otherwise): rows sorted by (pool, idled-at, append
    sequence) -- pool meaning a ``(node, workload)`` idle stack -- with
    each row's queued expiry time/sequence and its pool's stack
    *creation key*, i.e. when the reference engine's ``node.idle`` dict
    key was (re)inserted, which ``lru_idle`` tie-breaks on.
    ``final_used`` is the per-node ``used_memory_mb`` after every
    outstanding completion and expiry fires, folded in the reference
    engine's exact IEEE accumulation order.
    """

    ttl: float
    words: list[str]
    final_used: npt.NDArray[np.float64]
    drain_clock: float
    ends: npt.NDArray[np.float64]
    seqs: npt.NDArray[np.int64]
    node_idx: npt.NDArray[np.int64]
    mem_mb: npt.NDArray[np.float64]
    codes: npt.NDArray[np.int64]
    idle_from: npt.NDArray[np.float64] = field(default_factory=lambda: _F0)
    idle_xa: npt.NDArray[np.float64] = field(default_factory=lambda: _F0)
    idle_seq: npt.NDArray[np.int64] = field(default_factory=lambda: _I0)
    idle_order: npt.NDArray[np.int64] = field(default_factory=lambda: _I0)
    idle_node: npt.NDArray[np.int64] = field(default_factory=lambda: _I0)
    idle_mem: npt.NDArray[np.float64] = field(default_factory=lambda: _F0)
    idle_codes: npt.NDArray[np.int64] = field(default_factory=lambda: _I0)
    idle_key_time: npt.NDArray[np.float64] = field(
        default_factory=lambda: _F0
    )
    idle_key_tie: npt.NDArray[np.int64] = field(default_factory=lambda: _I0)
    #: Per-node ``cpu_weight`` after all outstanding completions fire
    #: (CPU-model runs only; empty otherwise).  Like ``final_used``, it
    #: is folded in the reference engine's exact IEEE order.
    final_weight: npt.NDArray[np.float64] = field(
        default_factory=lambda: _F0
    )


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
class FaaSCluster:
    """Array-native simulated cluster satisfying the replayer's Backend
    protocol, plus the batched extensions (:meth:`invoke_many`,
    :meth:`drain_columns`, :meth:`record_columns`).

    Semantics, parameters, and error behaviour are those of the
    reference :class:`repro.platform.simulator.ObjectFaaSCluster`; see
    its docstring for the realism knobs.  The differential equivalence
    suite pins byte-identity between the two.
    """

    def __init__(
        self,
        profiles: dict[str, WorkloadProfile],
        *,
        n_nodes: int = 4,
        node_memory_mb: float = 8192.0,
        scheduler: Scheduler | None = None,
        keepalive: KeepAlivePolicy | None = None,
        cold_start_model: Callable[
            [WorkloadProfile], float
        ] = default_cold_start_s,
        service_time_cv: float = 0.0,
        cores_per_node: int | None = None,
        cpu: CpuModel | None = None,
        track_memory: bool = False,
        queue_timeout_s: float | None = None,
        autoscaler: Autoscaler | None = None,
        tracer: Tracer | None = None,
        fault_hook: FaultHook | None = None,
        seed: int = 0,
    ) -> None:
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        if node_memory_mb <= 0:
            raise ValueError("node_memory_mb must be positive")
        if not profiles:
            raise ValueError("cluster needs at least one workload profile")
        if service_time_cv < 0:
            raise ValueError("service_time_cv must be non-negative")
        if cores_per_node is not None and cores_per_node <= 0:
            raise ValueError("cores_per_node must be positive")
        if cpu is not None and cores_per_node is not None:
            raise ValueError(
                "cpu and cores_per_node are mutually exclusive; the "
                "CpuModel replaces the first-order slowdown"
            )
        if queue_timeout_s is not None and queue_timeout_s <= 0:
            raise ValueError("queue_timeout_s must be positive")
        biggest = max(p.memory_mb for p in profiles.values())
        if biggest > node_memory_mb:
            raise ValueError(
                f"largest workload ({biggest} MiB) exceeds node memory "
                f"({node_memory_mb} MiB); no placement can ever succeed"
            )
        self.profiles = dict(profiles)
        self.nodes: list[Node] = [
            Node(i, node_memory_mb) for i in range(n_nodes)
        ]
        self.scheduler: Scheduler = scheduler or LeastLoadedScheduler()
        self.keepalive: KeepAlivePolicy = keepalive or FixedKeepAlive(600.0)
        self.cold_start_model = cold_start_model
        self.queue_timeout_s = queue_timeout_s
        self.autoscaler = autoscaler
        self.tracer = tracer
        self.fault_hook = fault_hook
        #: (arrival_s, workload_id) of requests dropped on queue timeout.
        self.dropped: list[tuple[float, str]] = []
        self._node_memory_mb = node_memory_mb
        self._next_node_id = n_nodes
        self.service_time_cv = service_time_cv
        self.cores_per_node = cores_per_node
        self.cpu = cpu
        self.track_memory = track_memory
        self.memory_samples: list[tuple[float, int, float]] = []
        self._rng = np.random.default_rng(seed)
        self._lognorm: tuple[float, float] | None
        if service_time_cv > 0:
            sigma = float(np.sqrt(np.log1p(service_time_cv**2)))
            self._lognorm = (sigma, -0.5 * sigma * sigma)
        else:
            self._lognorm = None
        self._store = _RecordStore()
        self._records_list: list[InvocationRecord] = []
        self._clock = 0.0
        self._heap: list[tuple[float, int, str, tuple[Any, ...]]] = []
        self._seq_n = 0
        self._sandbox_n = 0
        self._tail: _BulkTail | None = None

    # ------------------------------------------------------------------
    # Backend protocol
    # ------------------------------------------------------------------
    def invoke(self, timestamp_s: float, workload_id: str) -> None:
        if workload_id not in self.profiles:
            raise KeyError(f"no profile for workload {workload_id!r}")
        if timestamp_s < self._clock:
            raise ValueError(
                f"request at t={timestamp_s} is in the simulator's past "
                f"(clock={self._clock}); submit in timestamp order"
            )
        if self._tail is not None:
            self._materialize_tail()
        self._advance(timestamp_s)
        if self.autoscaler is not None:
            self._apply_autoscaling(timestamp_s)
        node = self.nodes[self.scheduler.pick(self.nodes, workload_id)]
        if not self._try_start(node, timestamp_s, workload_id):
            self._trace("request_queued", node.node_id, workload_id)
            node.pending.append((timestamp_s, workload_id))

    def invoke_many(
        self,
        timestamps_s: npt.ArrayLike,
        workload_ids: Sequence[str],
    ) -> None:
        """Submit a timestamp-ordered batch of requests.

        Semantically identical to calling :meth:`invoke` per element;
        when the configuration is provably safe the whole slab is
        applied vectorised, otherwise this falls back to the scalar
        loop (including for invalid input, so errors surface exactly
        where the per-element loop would raise them, with the same
        partial state).
        """
        ts = np.asarray(timestamps_s, dtype=np.float64)
        if ts.ndim != 1:
            raise ValueError("timestamps_s must be one-dimensional")
        n = int(ts.size)
        if n != len(workload_ids):
            raise ValueError(
                f"got {n} timestamps but {len(workload_ids)} workload ids"
            )
        if n == 0:
            return
        if self._bulk_eligible() and self._bulk_invoke(ts, workload_ids):
            return
        self._invoke_loop(ts, workload_ids)

    def invoke_chunked(
        self,
        slabs: Iterable[tuple[npt.ArrayLike, Sequence[str]]],
    ) -> None:
        """Submit a stream of timestamp-ordered ``(timestamps,
        workload_ids)`` slabs.

        Equivalent to one :meth:`invoke_many` over the concatenation --
        the bulk carry (:class:`_BulkTail`) survives chunk boundaries,
        so results are invariant to how the stream is sliced -- while
        holding only one slab in memory at a time.  Feed it from
        :func:`iter_trace_slabs` (or any generator over a trace file)
        to stream arbitrarily long traces through the engine
        memory-bounded.
        """
        for ts, wids in slabs:
            self.invoke_many(ts, wids)

    def drain(self) -> list[InvocationRecord]:
        self._drain_events()
        self._drain_telemetry()
        return self.records

    def drain_columns(self) -> RecordColumns:
        """Array-native :meth:`drain`: finish all outstanding work and
        return the records as columns, materialising no record objects."""
        self._drain_events()
        self._drain_telemetry()
        return self._store.columns()

    # ------------------------------------------------------------------
    # record access
    # ------------------------------------------------------------------
    @property
    def records(self) -> list[InvocationRecord]:
        """The run's records so far, as one stable list object.

        Rows are materialised from the columns lazily; repeated access
        returns the *same* list (decorators rely on the identity), with
        any new rows appended.
        """
        store = self._store
        out = self._records_list
        n = store.n
        if len(out) < n:
            words = store.words
            code, node = store.code, store.node
            arrival, start, end = store.arrival, store.start, store.end
            cold, ok, preempt = store.cold, store.ok, store.preempt
            for i in range(len(out), n):
                out.append(
                    InvocationRecord(
                        workload_id=words[code[i]],
                        node=int(node[i]),
                        arrival_s=float(arrival[i]),
                        start_s=float(start[i]),
                        end_s=float(end[i]),
                        cold=bool(cold[i]),
                        ok=bool(ok[i]),
                        preemptions=int(preempt[i]),
                    )
                )
        return out

    def record_columns(self) -> RecordColumns:
        """Columnar snapshot of the records appended so far."""
        return self._store.columns()

    @property
    def clock_s(self) -> float:
        return self._clock

    # ------------------------------------------------------------------
    # bulk fast path
    # ------------------------------------------------------------------
    def _bulk_ttl(self) -> float | None:
        """The keep-alive TTL if it is provably workload-independent,
        else None.  Exact types only: a subclass may override behaviour
        the bulk path cannot see."""
        ka = self.keepalive
        if type(ka) is NoKeepAlive:
            return 0.0
        if type(ka) is FixedKeepAlive:
            return float(ka.constant_ttl_s)
        return None

    def _bulk_eligible(self) -> bool:
        """Whether a batch can be applied vectorised without any chance
        of diverging from the scalar path.

        Per-feature capability checks (docs/SIMULATOR.md tabulates the
        full envelope): the keep-alive TTL must be a constant
        (``NoKeepAlive`` / ``FixedKeepAlive``; a histogram policy learns
        from reuse order mid-slab), no policy callback may observe
        intermediate state (autoscaler / tracer / fault hook), cold
        starts are pure per-profile values, no oversubscription slowdown
        or memory sampling, and no *scalar* events are in flight -- an
        outstanding bulk carry with the same TTL is fine, it is part of
        the vectorised state.  Service-time jitter is allowed: the slab
        pre-draws one lognormal array stream-equal to the scalar
        per-request draws and rewinds the RNG on fallback.  A
        :class:`~repro.platform.cpu.CpuModel` is allowed with zero TTL
        only: the teardown commit replays each node's run queue
        sequentially (the dilation feedback loop has no closed form),
        but warm reuse under contention couples pools through busy
        counts, which the keep-alive commit's independent pool replay
        cannot see.
        """
        ttl = self._bulk_ttl()
        if ttl is None:
            return False
        if (
            self.autoscaler is not None
            or self.tracer is not None
            or self.fault_hook is not None
        ):
            return False
        if self.cores_per_node is not None or self.track_memory:
            return False
        if self.cpu is not None and ttl > 0:
            return False
        if self.cold_start_model is not default_cold_start_s:
            return False
        if self._heap:
            return False
        tail = self._tail
        if tail is not None and tail.ttl != ttl:
            return False
        for node in self.nodes:
            if node.pending or node.idle:
                return False
            if tail is None and node.busy_count:
                return False
        sched_t = type(self.scheduler)
        if (
            len(self.nodes) == 1
            and sched_t in _PURE_SINGLE_NODE_SCHEDULERS
        ):
            return True
        return (
            getattr(sched_t, "pick_many", None) is not None
            and getattr(sched_t, "snapshot", None) is not None
            and getattr(sched_t, "restore", None) is not None
        )

    def _bulk_invoke(
        self,
        ts: npt.NDArray[np.float64],
        workload_ids: Sequence[str],
    ) -> bool:
        """Apply one eligible slab vectorised; False = caller must fall
        back to the scalar loop (no state was mutated and every
        speculatively consumed RNG stream was rewound)."""
        n = int(ts.size)
        ttl = self._bulk_ttl()
        if ttl is None:  # pragma: no cover - guarded by _bulk_eligible
            return False
        old = self._tail
        words = list(self.profiles)
        if old is not None and old.words != words:
            return False
        index = {w: i for i, w in enumerate(words)}
        try:
            codes = np.fromiter(
                map(index.__getitem__, workload_ids), np.int64, count=n
            )
        except KeyError:  # unknown workload: let the loop raise
            return False
        if float(ts[0]) < self._clock:
            return False
        if n > 1 and bool(np.any(np.diff(ts) < 0)):
            return False

        profs = [self.profiles[w] for w in words]
        mem = np.array([p.memory_mb for p in profs], np.float64)
        svc = np.array([p.runtime_ms for p in profs], np.float64) / 1e3
        coldcost = np.array(
            [self.cold_start_model(p) for p in profs], np.float64
        )

        sched = self.scheduler
        speculative = not (
            len(self.nodes) == 1
            and type(sched) in _PURE_SINGLE_NODE_SCHEDULERS
        )
        saved: Any = None
        busy_cap: int | None = None
        if speculative:
            bsched = cast(BatchScheduler, sched)
            saved = bsched.snapshot()
            node_idx = np.asarray(
                bsched.pick_many(self.nodes, workload_ids), dtype=np.int64
            )
            cap = getattr(sched, "bulk_busy_threshold", None)
            busy_cap = int(cap) if cap is not None else None
        else:
            node_idx = np.zeros(n, dtype=np.int64)

        # One sized draw consumes the jitter stream exactly like n
        # scalar draws (pinned by the property suite); saving the
        # bit-generator state first makes fallback a perfect rewind.
        svc_req = svc[codes]
        rng_state: Any = None
        if self._lognorm is not None:
            sigma, mu = self._lognorm
            rng_state = self._rng.bit_generator.state
            svc_req = svc_req * self._rng.lognormal(mu, sigma, n)

        if ttl > 0:
            ok = self._bulk_commit_keepalive(
                ts, codes, node_idx, mem, coldcost, svc_req, ttl,
                busy_cap, words, old,
            )
        else:
            ok = self._bulk_commit_teardown(
                ts, codes, node_idx, mem, coldcost, svc_req,
                busy_cap, words, old,
            )
        if not ok:
            if speculative:
                cast(BatchScheduler, sched).restore(saved)
            if rng_state is not None:
                self._rng.bit_generator.state = rng_state
        return ok

    def _store_codes(self) -> npt.NDArray[np.int32]:
        store = self._store
        return np.fromiter(
            (store.code_for(w) for w in self.profiles),
            np.int32, count=len(self.profiles),
        )

    def _node_ids(self) -> npt.NDArray[np.int64]:
        return np.fromiter(
            (nd.node_id for nd in self.nodes), np.int64,
            count=len(self.nodes),
        )

    def _bulk_commit_teardown(
        self,
        ts: npt.NDArray[np.float64],
        codes: npt.NDArray[np.int64],
        node_idx: npt.NDArray[np.int64],
        mem: npt.NDArray[np.float64],
        coldcost: npt.NDArray[np.float64],
        svc_req: npt.NDArray[np.float64],
        busy_cap: int | None,
        words: list[str],
        old: _BulkTail | None,
    ) -> bool:
        """Zero-TTL slab: every start is cold, memory frees at
        completion, no expiry events exist -- so the whole slab is one
        event calendar per node (+mem at arrival, -mem at completion,
        completions carried from earlier chunks included), cumsum-folded
        in the reference engine's exact order.  Under a CPU model the
        completion times first come out of a sequential per-node
        run-queue replay (dilation feeds back into later dilations);
        everything downstream of the ends stays vectorised."""
        n = int(ts.size)
        n_nodes = len(self.nodes)
        last_t = float(ts[-1])
        seq0 = self._seq_n
        req_mem = mem[codes]
        start = ts + coldcost[codes]
        if old is not None:
            c_end, c_seq = old.ends, old.seqs
            c_node, c_mem, c_codes = old.node_idx, old.mem_mb, old.codes
        else:
            c_end, c_mem = _F0, _F0
            c_seq, c_node, c_codes = _I0, _I0, _I0
        preempt: npt.NDArray[np.int32] | None = None
        new_weight: npt.NDArray[np.float64] | None = None
        final_weight: npt.NDArray[np.float64] | None = None
        if self.cpu is not None:
            end, preempt, new_weight, final_weight = (
                self._cpu_teardown_replay(
                    ts, codes, node_idx, svc_req, start, last_t, seq0,
                    c_end, c_seq, c_node, c_codes, words,
                )
            )
        else:
            end = start + svc_req

        # Sorting by (node, time, completion-before-arrival, heap seq)
        # reproduces the reference engine's event order exactly: events
        # with ``when <= t`` pop before the arrival at ``t``, ties break
        # on push sequence.  Carried completions keep their absolute
        # sequence numbers (all below seq0), new events use seq0+i as an
        # order-preserving proxy.
        sub = np.arange(n, dtype=np.int64)
        new_seq = seq0 + sub
        ev_time = np.concatenate((ts, end, c_end))
        ev_phase = np.concatenate(
            (np.ones(n, np.uint8), np.zeros(n + c_end.size, np.uint8))
        )
        ev_tie = np.concatenate((new_seq, new_seq, c_seq))
        ev_node = np.concatenate((node_idx, node_idx, c_node))
        ev_delta = np.concatenate((req_mem, -req_mem, -c_mem))
        order = np.lexsort((ev_tie, ev_phase, ev_time, ev_node))
        s_time = ev_time[order]
        s_alloc = ev_phase[order] == 1
        s_delta = ev_delta[order]
        counts = np.bincount(ev_node, minlength=n_nodes)
        bounds = np.zeros(n_nodes + 1, np.int64)
        np.cumsum(counts, out=bounds[1:])
        new_used = np.empty(n_nodes, np.float64)
        final_used = np.empty(n_nodes, np.float64)
        busy_after = np.zeros(n_nodes, np.int64)
        for b, node in enumerate(self.nodes):
            lo, hi = int(bounds[b]), int(bounds[b + 1])
            # cumsum folds the deltas sequentially, so the running
            # usage is bitwise the reference engine's +=/-= chain
            block = np.empty(hi - lo + 1, np.float64)
            block[0] = node.used_memory_mb
            block[1:] = s_delta[lo:hi]
            usage = np.cumsum(block)
            alloc_here = s_alloc[lo:hi]
            admitted = usage[1:][alloc_here]
            if bool(np.any(admitted > node.memory_capacity_mb)):
                # at least one admission would queue: scalar path owns
                # the backlog semantics
                return False
            if busy_cap is not None:
                busy = np.empty(hi - lo + 1, np.int64)
                busy[0] = node.busy_count
                busy[1:] = np.where(alloc_here, 1, -1)
                trail = np.cumsum(busy)
                if bool(
                    np.any(trail[1:][alloc_here] - 1 >= busy_cap)
                ):
                    # a pick saw a full node: the scalar scheduler would
                    # have spilled, so the speculative batch is invalid
                    return False
            cut = int(np.searchsorted(s_time[lo:hi], last_t, side="right"))
            new_used[b] = usage[cut]
            final_used[b] = usage[-1]
            busy_after[b] = (hi - lo) - cut

        # -- commit ----------------------------------------------------
        self._seq_n += n
        self._sandbox_n += n
        self._clock = last_t
        self._store.extend(
            self._store_codes()[codes], self._node_ids()[node_idx],
            ts, start, end, cold=True, ok=True, preempt=preempt,
        )
        for b, node in enumerate(self.nodes):
            node.busy_count = int(busy_after[b])
            node.used_memory_mb = float(new_used[b])
            if new_weight is not None:
                node.cpu_weight = float(new_weight[b])
        out_new = end > last_t
        out_old = c_end > last_t
        t_ends = np.concatenate((end[out_new], c_end[out_old]))
        if t_ends.size:
            self._tail = _BulkTail(
                ttl=0.0,
                words=words,
                final_used=final_used,
                drain_clock=float(t_ends.max()),
                ends=t_ends,
                seqs=np.concatenate((new_seq[out_new], c_seq[out_old])),
                node_idx=np.concatenate(
                    (node_idx[out_new], c_node[out_old])
                ),
                mem_mb=np.concatenate(
                    (req_mem[out_new], c_mem[out_old])
                ),
                codes=np.concatenate((codes[out_new], c_codes[out_old])),
                final_weight=(
                    final_weight if final_weight is not None else _F0
                ),
            )
        else:
            # no carry survives: every completion fired in-slab, so the
            # committed new_weight already equals the final fold
            self._tail = None
        return True

    def _cpu_teardown_replay(
        self,
        ts: npt.NDArray[np.float64],
        codes: npt.NDArray[np.int64],
        node_idx: npt.NDArray[np.int64],
        svc_req: npt.NDArray[np.float64],
        start: npt.NDArray[np.float64],
        last_t: float,
        seq0: int,
        c_end: npt.NDArray[np.float64],
        c_seq: npt.NDArray[np.int64],
        c_node: npt.NDArray[np.int64],
        c_codes: npt.NDArray[np.int64],
        words: list[str],
    ) -> tuple[
        npt.NDArray[np.float64],
        npt.NDArray[np.int32],
        npt.NDArray[np.float64],
        npt.NDArray[np.float64],
    ]:
        """Sequential per-node run-queue replay for a zero-TTL slab
        under a CPU model.

        Completion times feed back into later dilations (each end
        changes the busy count the next arrival sees), so no closed
        form exists; instead each node replays its own arrivals against
        a ``(end, seq, weight)`` heap -- the exact per-node subsequence
        of the reference engine's global event order, so busy counts,
        weight folds, and tie-breaking are bit-identical.  Nodes only
        couple through memory, which the caller still checks
        vectorised.  Returns ``(end, preemptions, post-slab weight,
        final weight)``; the weight folds replicate the scalar
        ``+=``/``-=`` chains in IEEE order.

        The built-in policies are inlined (dispatched on exact type, so
        a subclass overriding ``contend`` still takes the generic call)
        -- each inlined expression keeps the operand order of its
        :mod:`repro.platform.cpu` counterpart, which is what makes the
        floats bit-identical; unknown policies pay one ``contend`` call
        per arrival.
        """
        cpu = self.cpu
        assert cpu is not None
        policy = cpu.policy
        contend = policy.contend
        cores = cpu.cores
        quantum = cpu.quantum_s
        n = int(ts.size)
        n_nodes = len(self.nodes)
        new_weight = np.empty(n_nodes, np.float64)
        final_weight = np.empty(n_nodes, np.float64)
        order = _group_stable(node_idx)
        counts = np.bincount(node_idx, minlength=n_nodes)
        bounds = np.zeros(n_nodes + 1, np.int64)
        np.cumsum(counts, out=bounds[1:])
        bounds_l = bounds.tolist()
        # gather once so each node's inner loop walks flat lists in
        # lockstep instead of double-indirecting through the permutation
        ts_g = ts[order].tolist()
        svc_g = svc_req[order].tolist()
        start_g = start[order].tolist()
        end_g = [0.0] * n
        pre_g = [0] * n
        heappush, heappop = heapq.heappush, heapq.heappop
        ceil = math.ceil
        kind = type(policy)
        q_over_c = quantum / cores
        if kind is FifoCpu or kind is ShortestFirstCpu:
            # both weigh every workload at exactly 1.0, so the scalar
            # ``+=``/``-=`` chains only ever step an integer-valued
            # float by 1.0 -- exact IEEE ops whose result is the net
            # count, reproducible without touching a float per event.
            # Batch pops only decrement that count, so the pop order
            # among tied ends is unobservable and the heap shrinks to
            # bare end floats -- no ``(end, seq)`` tie-break needed.
            carried2: list[list[float]] = [[] for _ in range(n_nodes)]
            for ce, cb in zip(c_end.tolist(), c_node.tolist()):
                carried2[cb].append(ce)
            is_fifo = kind is FifoCpu
            # ceil(service / quantum) vectorised up front: np.ceil on
            # the same float64 quotient returns the same integer value
            # math.ceil would, so the per-event formula keeps its bits
            sl_g = np.ceil(
                svc_req[order] / quantum
            ).astype(np.int64).tolist()
            for b, node in enumerate(self.nodes):
                heap2 = carried2[b]
                nc0 = len(heap2)
                heapq.heapify(heap2)
                lo, hi = bounds_l[b], bounds_l[b + 1]
                rows2 = zip(ts_g[lo:hi], svc_g[lo:hi], start_g[lo:hi],
                            sl_g[lo:hi], range(lo, hi))
                depth = nc0
                # cache the heap minimum in a local float so the hot
                # exit test is one compare, not a subscript
                nxt = heap2[0] if heap2 else _INF
                if is_fifo:
                    for t, s, st, sl, i in rows2:
                        while nxt <= t:
                            heappop(heap2)
                            depth -= 1
                            nxt = heap2[0] if heap2 else _INF
                        excess = depth + 1 - cores
                        if excess <= 0:
                            e = st + s
                        else:
                            e = st + (s + (sl * excess) * q_over_c)
                            pre_g[i] = sl - 1
                        end_g[i] = e
                        depth += 1
                        heappush(heap2, e)
                        nxt = heap2[0]
                else:
                    for t, s, st, sl, i in rows2:
                        while nxt <= t:
                            heappop(heap2)
                            depth -= 1
                            nxt = heap2[0] if heap2 else _INF
                        concurrent = depth + 1
                        if concurrent <= cores or s <= quantum:
                            e = st + s
                        else:
                            e = st + s * (concurrent / cores)
                            pre_g[i] = sl - 1
                        end_g[i] = e
                        depth += 1
                        heappush(heap2, e)
                        nxt = heap2[0]
                while heap2 and heap2[0] <= last_t:
                    heappop(heap2)
                w0 = node.cpu_weight
                new_weight[b] = w0 + (len(heap2) - nc0)
                final_weight[b] = w0 - nc0
        else:
            wt = [policy.weight(w) for w in words]
            w_g = np.asarray(wt, np.float64)[codes[order]].tolist()
            seq_g = (seq0 + order).tolist()
            carried: list[list[tuple[float, int, float]]] = [
                [] for _ in range(n_nodes)
            ]
            for ce, cq, cb, cc in zip(
                c_end.tolist(), c_seq.tolist(), c_node.tolist(),
                c_codes.tolist(),
            ):
                carried[cb].append((ce, cq, wt[cc]))
            for b, node in enumerate(self.nodes):
                heap = carried[b]
                heapq.heapify(heap)
                wtot = node.cpu_weight
                lo, hi = bounds_l[b], bounds_l[b + 1]
                rows = zip(ts_g[lo:hi], w_g[lo:hi], svc_g[lo:hi],
                           start_g[lo:hi], seq_g[lo:hi], range(lo, hi))
                if kind is FairShareCpu:
                    for t, w, s, st, q, i in rows:
                        while heap and heap[0][0] <= t:
                            wtot -= heappop(heap)[2]
                        if len(heap) + 1 <= cores:
                            e = st + s
                        else:
                            share = cores * w / (wtot + w)
                            if share >= 1.0:
                                e = st + s
                            else:
                                d = s / share
                                e = st + d
                                pre_g[i] = ceil(d / quantum) - 1
                        end_g[i] = e
                        wtot += w
                        heappush(heap, (e, q, w))
                else:
                    for t, w, s, st, q, i in rows:
                        while heap and heap[0][0] <= t:
                            wtot -= heappop(heap)[2]
                        dilated, pre = contend(
                            s,
                            cores=cores,
                            quantum_s=quantum,
                            concurrent=len(heap) + 1,
                            weight=w,
                            total_weight=wtot + w,
                        )
                        e = st + dilated
                        end_g[i] = e
                        pre_g[i] = pre
                        wtot += w
                        heappush(heap, (e, q, w))
                while heap and heap[0][0] <= last_t:
                    wtot -= heappop(heap)[2]
                new_weight[b] = wtot
                while heap:
                    wtot -= heappop(heap)[2]
                final_weight[b] = wtot
        end = np.empty(n, np.float64)
        preempt = np.empty(n, np.int32)
        end[order] = end_g
        preempt[order] = pre_g
        return end, preempt, new_weight, final_weight

    def _bulk_commit_keepalive(
        self,
        ts: npt.NDArray[np.float64],
        codes: npt.NDArray[np.int64],
        node_idx: npt.NDArray[np.int64],
        mem: npt.NDArray[np.float64],
        coldcost: npt.NDArray[np.float64],
        svc_req: npt.NDArray[np.float64],
        ttl: float,
        busy_cap: int | None,
        words: list[str],
        old: _BulkTail | None,
    ) -> bool:
        """Fixed positive-TTL slab.

        Warm-versus-cold is decided by replaying each ``(node,
        workload)`` idle pool in isolation -- placement is fixed up
        front, so pools only couple through memory pressure, which is
        checked vectorised afterwards and falls back to scalar on any
        overflow (exactly when the scalar engine would evict or queue).
        Sequence numbers, the memory trajectory, and the carry are then
        reconstructed in the reference engine's exact event order:
        every arrival pushes an end event and every in-slab completion
        pushes an expiry event, so heap sequence numbers interleave and
        are assigned by a merged sort rather than arithmetic.
        """
        n = int(ts.size)
        n_nodes = len(self.nodes)
        n_words = len(words)
        last_t = float(ts[-1])
        seq0 = self._seq_n
        req_mem = mem[codes]
        gid = node_idx * n_words + codes
        cstart = ts + coldcost[codes]

        if old is not None:
            ob_end, ob_seq = old.ends, old.seqs
            ob_node, ob_mem, ob_code = old.node_idx, old.mem_mb, old.codes
            oi_from, oi_xa = old.idle_from, old.idle_xa
            oi_seq, oi_order = old.idle_seq, old.idle_order
            oi_node, oi_mem = old.idle_node, old.idle_mem
            oi_code = old.idle_codes
            oi_key_t, oi_key_q = old.idle_key_time, old.idle_key_tie
        else:
            ob_end, ob_mem = _F0, _F0
            ob_seq, ob_node, ob_code = _I0, _I0, _I0
            oi_from, oi_xa, oi_mem, oi_key_t = _F0, _F0, _F0, _F0
            oi_seq, oi_order, oi_node, oi_code, oi_key_q = (
                _I0, _I0, _I0, _I0, _I0
            )
        nb = int(ob_end.size)
        nc = int(oi_from.size)

        # ---- pool decision replay (pure: no engine state touched) ----
        # Sources are numbered: new invocation k -> k, carried busy row
        # r -> n + r, carried idle row r -> n + nb + r.
        #
        # Pools couple only through memory (checked afterwards), so each
        # pool replays independently.  The common case -- a pool that
        # never holds more than two live sandboxes at once -- fits a
        # two-slot recursion (a slot is warm-reusable iff ``e <= t <
        # e + ttl``, LIFO picks the later-idled slot, cold starts land
        # in a non-busy slot), which runs here as a lockstep scan
        # vectorised *across* pools, one rank at a time.  A pool that
        # sees an arrival while both slots are busy (or starts with
        # more than two carried rows) is flagged complex and resumes in
        # the exact heap-and-deque loop from its frozen state.
        cold_arr = np.zeros(n, np.bool_)
        end_new = np.empty(n, np.float64)
        reuse_src_arr = np.full(n, -1, np.int64)
        reused_arr = np.zeros(n + nb + nc, np.bool_)

        order = _group_stable(gid)
        g_sorted = gid[order]
        head = np.empty(n, np.bool_)
        head[0] = True
        np.not_equal(g_sorted[1:], g_sorted[:-1], out=head[1:])
        pool_start = np.nonzero(head)[0]
        pool_gids = g_sorted[pool_start]
        pool_len = np.diff(np.append(pool_start, n))
        n_pools = int(pool_gids.size)

        # slot state: completion/idle-from time, heap tie, source row
        e1 = np.full(n_pools, -np.inf, np.float64)
        q1 = np.zeros(n_pools, np.int64)
        s1 = np.full(n_pools, -1, np.int64)
        e2 = np.full(n_pools, -np.inf, np.float64)
        q2 = np.zeros(n_pools, np.int64)
        s2 = np.full(n_pools, -1, np.int64)
        carried_ct = np.zeros(n_pools, np.int64)
        cr_pos_parts: list[npt.NDArray[np.int64]] = []
        cr_e_parts: list[npt.NDArray[np.float64]] = []
        cr_q_parts: list[npt.NDArray[np.int64]] = []
        cr_s_parts: list[npt.NDArray[np.int64]] = []
        if nb:
            bg = ob_node * n_words + ob_code
            bpos = np.minimum(
                np.searchsorted(pool_gids, bg), n_pools - 1
            )
            b_in = pool_gids[bpos] == bg
            np.add.at(carried_ct, bpos[b_in], 1)
            cr_pos_parts.append(bpos[b_in])
            cr_e_parts.append(ob_end[b_in])
            cr_q_parts.append(ob_seq[b_in])
            cr_s_parts.append(n + np.nonzero(b_in)[0])
        if nc:
            ig = oi_node * n_words + oi_code
            ipos = np.minimum(
                np.searchsorted(pool_gids, ig), n_pools - 1
            )
            i_in = pool_gids[ipos] == ig
            np.add.at(carried_ct, ipos[i_in], 1)
            # the stored expiry is bitwise ``from + ttl`` (ttl-compat is
            # an eligibility condition), so carrying ``from`` suffices
            cr_pos_parts.append(ipos[i_in])
            cr_e_parts.append(oi_from[i_in])
            cr_q_parts.append(oi_order[i_in])
            cr_s_parts.append(n + nb + np.nonzero(i_in)[0])
        if cr_pos_parts:
            cr_pos = np.concatenate(cr_pos_parts)
            cr_e = np.concatenate(cr_e_parts)
            cr_q = np.concatenate(cr_q_parts)
            cr_s = np.concatenate(cr_s_parts)
            co = np.argsort(cr_pos, kind="stable")
            ps = cr_pos[co]
            first = np.empty(ps.size, np.bool_)
            if ps.size:
                first[0] = True
                np.not_equal(ps[1:], ps[:-1], out=first[1:])
            occ = np.arange(ps.size, dtype=np.int64)
            occ -= np.maximum.accumulate(np.where(first, occ, 0))
            fill1 = co[occ == 0]
            e1[cr_pos[fill1]] = cr_e[fill1]
            q1[cr_pos[fill1]] = cr_q[fill1]
            s1[cr_pos[fill1]] = cr_s[fill1]
            fill2 = co[occ == 1]
            e2[cr_pos[fill2]] = cr_e[fill2]
            q2[cr_pos[fill2]] = cr_q[fill2]
            s2[cr_pos[fill2]] = cr_s[fill2]

        # longest pools first, so the active set at rank r is a prefix
        po = np.argsort(-pool_len, kind="stable")
        d_start = pool_start[po]
        d_len = pool_len[po]
        e1, q1, s1 = e1[po], q1[po], s1[po]
        e2, q2, s2 = e2[po], q2[po], s2[po]
        complex_d = (carried_ct > 2)[po]
        # rank at which a pool froze: its earlier decisions stand and
        # the exact loop resumes there from the frozen slot state;
        # -1 + complex means replay from rank 0 off the carried rows
        flag_rank_d = np.full(n_pools, -1, np.int64)
        max_len = int(d_len[0]) if n_pools else 0
        ranks = np.arange(max_len, dtype=np.int64)
        active_at = np.searchsorted(-d_len, -(ranks + 1), side="right")
        warm_k_parts: list[npt.NDArray[np.int64]] = []
        warm_src_parts: list[npt.NDArray[np.int64]] = []
        for r in range(max_len):
            m = int(active_at[r])
            if m < 32:
                # too few pools left to amortise a vector step: hand
                # their remaining ranks to the exact loop wholesale
                fresh = ~complex_d[:m]
                flag_rank_d[:m][fresh] = r
                complex_d[:m] = True
                break
            k_idx = order[d_start[:m] + r]
            t = ts[k_idx]
            a1, a2 = e1[:m], e2[:m]
            b1 = t < a1
            b2 = t < a2
            l1 = ~b1 & (t < a1 + ttl)
            l2 = ~b2 & (t < a2 + ttl)
            warm = l1 | l2
            # LIFO: reuse the later-idled live slot (tie on heap seq)
            gt2 = (a2 > a1) | ((a2 == a1) & (q2[:m] > q1[:m]))
            pick2 = l2 & (~l1 | gt2)
            pick1 = warm & ~pick2
            # cold starts land in a non-busy (empty or expired) slot
            place1 = ~warm & ~b1
            place2 = ~warm & b1 & ~b2
            overflow = ~(warm | place1 | place2)
            if bool(overflow.any()):
                newly = overflow & ~complex_d[:m]
                flag_rank_d[:m][newly] = r
                complex_d[:m] |= overflow
            svc = svc_req[k_idx]
            endv = np.where(warm, t + svc, cstart[k_idx] + svc)
            end_new[k_idx] = endv
            cold_arr[k_idx] = ~warm
            frozen = complex_d[:m]
            masked = bool(frozen.any())
            if masked:
                warm &= ~frozen
            w = np.nonzero(warm)[0]
            if w.size:
                warm_k_parts.append(k_idx[w])
                warm_src_parts.append(  # pre-update sources
                    np.where(pick2[w], s2[w], s1[w])
                )
            upd1 = pick1 | place1
            upd2 = pick2 | place2
            if masked:
                upd1 &= ~frozen
                upd2 &= ~frozen
            qv = seq0 + k_idx
            np.copyto(a1, endv, where=upd1)
            np.copyto(q1[:m], qv, where=upd1)
            np.copyto(s1[:m], k_idx, where=upd1)
            np.copyto(a2, endv, where=upd2)
            np.copyto(q2[:m], qv, where=upd2)
            np.copyto(s2[:m], k_idx, where=upd2)

        if warm_k_parts:
            # pre-freeze decisions are exact, so every recorded reuse
            # stands (freezing suppresses marks from the frozen rank on)
            wk = np.concatenate(warm_k_parts)
            ws = np.concatenate(warm_src_parts)
            reuse_src_arr[wk] = ws
            reused_arr[ws] = True
        if bool(complex_d.any()):
            self._replay_complex_pools(
                order, d_start, d_len, complex_d, flag_rank_d,
                (e1, q1, s1), (e2, q2, s2), g_sorted, ts, gid, svc_req,
                cstart, ttl, seq0, n, nb, n_words, ob_end, ob_seq,
                ob_node, ob_code, oi_from, oi_xa, oi_order, oi_node,
                oi_code, cold_arr, end_new, reuse_src_arr, reused_arr,
            )
        sub = np.arange(n, dtype=np.int64)

        # completions this slab can observe: new + carried busy
        if nb:
            comp_end = np.concatenate((end_new, ob_end))
            comp_tie = np.concatenate((seq0 + sub, ob_seq))
            comp_node = np.concatenate((node_idx, ob_node))
            comp_gid = np.concatenate((gid, ob_node * n_words + ob_code))
            comp_mem = np.concatenate((req_mem, ob_mem))
            comp_code = np.concatenate((codes, ob_code))
            comp_src = np.concatenate(
                (sub, n + np.arange(nb, dtype=np.int64))
            )
        else:
            comp_end, comp_tie = end_new, seq0 + sub
            comp_node, comp_gid = node_idx, gid
            comp_mem, comp_code, comp_src = req_mem, codes, sub
        processed = comp_end <= last_t
        proc_idx = np.nonzero(processed)[0]
        np_proc = int(proc_idx.size)

        # Heap sequence numbers: every arrival pushes its end event and
        # every in-slab-processed completion pushes an expiry event, in
        # merged (time, completion-before-arrival, push order) order.
        proc_end = comp_end[proc_idx]
        m_time = np.concatenate((ts, proc_end))
        m_phase = np.concatenate(
            (np.ones(n, np.uint8), np.zeros(np_proc, np.uint8))
        )
        m_tie = np.concatenate((seq0 + sub, comp_tie[proc_idx]))
        mo = _event_order(m_time, m_phase, m_tie)
        seq_assign = np.empty(n + np_proc, np.int64)
        seq_assign[mo] = seq0 + np.arange(n + np_proc, dtype=np.int64)
        end_seq_new = seq_assign[:n]
        exp_seq_proc = seq_assign[n:]
        comp_end_seq = (
            np.concatenate((end_seq_new, ob_seq)) if nb else end_seq_new
        )

        # idle-pool lifecycle entries: processed completions + carry
        if nc:
            p_from = np.concatenate((proc_end, oi_from))
            p_xa = np.concatenate((proc_end + ttl, oi_xa))
            p_exp = np.concatenate((exp_seq_proc, oi_seq))
            p_node = np.concatenate((comp_node[proc_idx], oi_node))
            p_gid = np.concatenate(
                (comp_gid[proc_idx], oi_node * n_words + oi_code)
            )
            p_mem = np.concatenate((comp_mem[proc_idx], oi_mem))
            p_code = np.concatenate((comp_code[proc_idx], oi_code))
            p_order = np.concatenate((comp_end_seq[proc_idx], oi_order))
            p_src = np.concatenate(
                (
                    comp_src[proc_idx],
                    n + nb + np.arange(nc, dtype=np.int64),
                )
            )
            p_key_t = np.concatenate(
                (np.zeros(np_proc, np.float64), oi_key_t)
            )
            p_key_q = np.concatenate(
                (np.full(np_proc, -1, np.int64), oi_key_q)
            )
        else:
            p_from, p_xa = proc_end, proc_end + ttl
            p_exp = exp_seq_proc
            p_node = comp_node[proc_idx]
            p_gid = comp_gid[proc_idx]
            p_mem = comp_mem[proc_idx]
            p_code = comp_code[proc_idx]
            p_order = comp_end_seq[proc_idx]
            p_src = comp_src[proc_idx]
            p_key_t = np.zeros(np_proc, np.float64)
            p_key_q = np.full(np_proc, -1, np.int64)
        p_reused = reused_arr[p_src]
        p_fired = ~p_reused & (p_xa <= last_t)
        p_keep = ~p_reused & (p_xa > last_t)

        # memory calendar: +mem at each cold arrival, -mem at each
        # in-slab expiry, in the reference heap order per node
        a_idx = np.nonzero(cold_arr)[0]
        f_idx = np.nonzero(p_fired)[0]
        ev_time = np.concatenate((ts[a_idx], p_xa[f_idx]))
        ev_phase = np.concatenate((
            np.ones(a_idx.size, np.uint8),
            np.zeros(f_idx.size, np.uint8),
        ))
        ev_tie = np.concatenate((seq0 + a_idx, p_exp[f_idx]))
        ev_node = np.concatenate((node_idx[a_idx], p_node[f_idx]))
        ev_delta = np.concatenate((req_mem[a_idx], -p_mem[f_idx]))
        eo = _event_order(ev_time, ev_phase, ev_tie)
        order = eo[_group_stable(ev_node[eo])]
        s_alloc = ev_phase[order] == 1
        s_delta = ev_delta[order]
        counts = np.bincount(ev_node, minlength=n_nodes)
        bounds = np.zeros(n_nodes + 1, np.int64)
        np.cumsum(counts, out=bounds[1:])
        new_used = np.empty(n_nodes, np.float64)
        for b, node in enumerate(self.nodes):
            lo, hi = int(bounds[b]), int(bounds[b + 1])
            block = np.empty(hi - lo + 1, np.float64)
            block[0] = node.used_memory_mb
            block[1:] = s_delta[lo:hi]
            usage = np.cumsum(block)
            admitted = usage[1:][s_alloc[lo:hi]]
            if bool(np.any(admitted > node.memory_capacity_mb)):
                # the scalar engine would evict or queue here, and pool
                # replays assumed neither: fall back entirely
                return False
            new_used[b] = usage[-1]

        if busy_cap is not None and not self._bulk_busy_ok(
            ts, node_idx, comp_end[proc_idx], comp_tie[proc_idx],
            comp_node[proc_idx], seq0, busy_cap,
        ):
            return False

        still = np.nonzero(~processed)[0]
        busy_after = np.bincount(comp_node[still], minlength=n_nodes)

        # drain residue: remaining idle expiries fire first (all at most
        # last_t + ttl), then each outstanding completion's eventual
        # expiry, ordered exactly as the reference drain would fire them
        kA = np.nonzero(p_keep)[0]
        kA = kA[np.lexsort((p_exp[kA], p_xa[kA]))]
        kB = still[np.lexsort((comp_end_seq[still], comp_end[still]))]
        d_node = np.concatenate((p_node[kA], comp_node[kB]))
        d_mem = np.concatenate((p_mem[kA], comp_mem[kB]))
        final_used = new_used.copy()
        drain_clock = last_t
        if d_node.size:
            pos = np.arange(d_node.size, dtype=np.int64)
            do = np.lexsort((pos, d_node))
            s_node2 = d_node[do]
            s_mem2 = d_mem[do]
            counts2 = np.bincount(s_node2, minlength=n_nodes)
            bounds2 = np.zeros(n_nodes + 1, np.int64)
            np.cumsum(counts2, out=bounds2[1:])
            for b in range(n_nodes):
                lo, hi = int(bounds2[b]), int(bounds2[b + 1])
                block = np.empty(hi - lo + 1, np.float64)
                block[0] = new_used[b]
                block[1:] = -s_mem2[lo:hi]
                final_used[b] = float(np.cumsum(block)[-1])
            drain_clock = float(
                comp_end[kB[-1]] + ttl if kB.size else p_xa[kA[-1]]
            )

        key_time, key_tie = self._pool_creation_keys(
            ts, gid, p_from, p_xa, p_exp, p_order, p_gid, p_src, p_key_t,
            p_key_q, p_fired, p_reused, p_keep, reuse_src_arr, seq0,
            n, nb, n_pools, len(self.nodes) * n_words,
        )

        # -- commit ----------------------------------------------------
        self._seq_n += n + np_proc
        self._sandbox_n += int(cold_arr.sum())
        self._clock = last_t
        start_vec = np.where(cold_arr, cstart, ts)
        self._store.extend(
            self._store_codes()[codes], self._node_ids()[node_idx],
            ts, start_vec, end_new, cold=cold_arr, ok=True,
        )
        for b, node in enumerate(self.nodes):
            node.busy_count = int(busy_after[b])
            node.used_memory_mb = float(new_used[b])
        if still.size or kA.size:
            keep_idx = np.nonzero(p_keep)[0]
            keep_idx = keep_idx[np.lexsort(
                (p_order[keep_idx], p_from[keep_idx], p_gid[keep_idx])
            )]
            self._tail = _BulkTail(
                ttl=ttl,
                words=words,
                final_used=final_used,
                drain_clock=drain_clock,
                ends=comp_end[still],
                seqs=comp_end_seq[still],
                node_idx=comp_node[still],
                mem_mb=comp_mem[still],
                codes=comp_code[still],
                idle_from=p_from[keep_idx],
                idle_xa=p_xa[keep_idx],
                idle_seq=p_exp[keep_idx],
                idle_order=p_order[keep_idx],
                idle_node=p_node[keep_idx],
                idle_mem=p_mem[keep_idx],
                idle_codes=p_code[keep_idx],
                idle_key_time=key_time[keep_idx],
                idle_key_tie=key_tie[keep_idx],
            )
        else:
            self._tail = None
        return True

    def _bulk_busy_ok(
        self,
        ts: npt.NDArray[np.float64],
        node_idx: npt.NDArray[np.int64],
        proc_end: npt.NDArray[np.float64],
        proc_tie: npt.NDArray[np.int64],
        proc_node: npt.NDArray[np.int64],
        seq0: int,
        busy_cap: int,
    ) -> bool:
        """Validate speculative load-bounded picks: the picked node's
        busy count, at the moment each request was placed, must stay
        below ``busy_cap`` (else the scalar scheduler would have made a
        different choice)."""
        n = int(ts.size)
        n_nodes = len(self.nodes)
        sub = np.arange(n, dtype=np.int64)
        b_time = np.concatenate((ts, proc_end))
        b_phase = np.concatenate(
            (np.ones(n, np.uint8), np.zeros(proc_end.size, np.uint8))
        )
        b_tie = np.concatenate((seq0 + sub, proc_tie))
        b_node = np.concatenate((node_idx, proc_node))
        order = np.lexsort((b_tie, b_phase, b_time, b_node))
        s_start = b_phase[order] == 1
        counts = np.bincount(b_node, minlength=n_nodes)
        bounds = np.zeros(n_nodes + 1, np.int64)
        np.cumsum(counts, out=bounds[1:])
        for b, node in enumerate(self.nodes):
            lo, hi = int(bounds[b]), int(bounds[b + 1])
            starts = s_start[lo:hi]
            busy = np.empty(hi - lo + 1, np.int64)
            busy[0] = node.busy_count
            busy[1:] = np.where(starts, 1, -1)
            trail = np.cumsum(busy)
            if bool(np.any(trail[1:][starts] - 1 >= busy_cap)):
                return False
        return True

    def _pool_creation_keys(
        self,
        ts: npt.NDArray[np.float64],
        gid: npt.NDArray[np.int64],
        p_from: npt.NDArray[np.float64],
        p_xa: npt.NDArray[np.float64],
        p_exp: npt.NDArray[np.int64],
        p_order: npt.NDArray[np.int64],
        p_gid: npt.NDArray[np.int64],
        p_src: npt.NDArray[np.int64],
        p_key_t: npt.NDArray[np.float64],
        p_key_q: npt.NDArray[np.int64],
        p_fired: npt.NDArray[np.bool_],
        p_reused: npt.NDArray[np.bool_],
        p_keep: npt.NDArray[np.bool_],
        reuse_src_arr: npt.NDArray[np.int64],
        seq0: int,
        n: int,
        nb: int,
        n_pools: int,
        n_gids: int,
    ) -> tuple[npt.NDArray[np.float64], npt.NDArray[np.int64]]:
        """Stack-creation keys for pools that carry idle sandboxes out.

        The reference engine's ``node.idle`` dict orders keys by
        insertion, and ``lru_idle`` tie-breaks on that order, so the
        carry must remember when each surviving stack last went
        empty-to-non-empty.  Each pool's appends (completions idling),
        reuses (pops), and expiries replay as one global event list --
        lexsorted by pool, then segmented-cumsum'd to find each pool's
        latest 0->1 occupancy transition; if a surviving stack never
        emptied this slab, the key carried from the previous chunk
        persists.
        """
        key_time = np.zeros(p_from.size, np.float64)
        key_tie = np.zeros(p_from.size, np.int64)
        if not bool(p_keep.any()):
            return key_time, key_tie
        keep_gids = np.unique(p_gid[p_keep])
        np_rows = int(p_gid.size)
        # pop events come straight from the consumer arrivals: a warm
        # reuse always pops from its own pool, so the consumer's gid is
        # the popped slot's gid and the consumer index is the tie
        if int(keep_gids.size) == n_pools:
            # every slab pool survives: no membership filter needed
            rows = np.arange(np_rows, dtype=np.int64)
            a_g, a_t, a_tie = p_gid, p_from, p_order
            k_cons = np.nonzero(reuse_src_arr >= 0)[0]
            rf = np.nonzero(p_fired)[0]
        else:
            keep_mask = np.zeros(n_gids, np.bool_)
            keep_mask[keep_gids] = True
            pm = keep_mask[p_gid]
            rows = np.nonzero(pm)[0]
            a_g, a_t = p_gid[rows], p_from[rows]
            a_tie = p_order[rows]
            k_cons = np.nonzero(
                (reuse_src_arr >= 0) & keep_mask[gid]
            )[0]
            rf = np.nonzero(pm & p_fired)[0]
        na, nr, nf = rows.size, k_cons.size, rf.size
        ne = na + nr + nf
        ev_g = np.concatenate((a_g, gid[k_cons], p_gid[rf]))
        ev_t = np.concatenate((a_t, ts[k_cons], p_xa[rf]))
        ev_ph = np.zeros(ne, np.uint8)
        ev_ph[na:na + nr] = 1  # reuse pops sort after same-time appends
        ev_tie = np.concatenate((a_tie, seq0 + k_cons, p_exp[rf]))
        eo = _event_order(ev_t, ev_ph, ev_tie)
        so = eo[_group_stable(ev_g[eo])]
        g_s = ev_g[so]
        head = np.empty(ne, np.bool_)
        head[0] = True
        np.not_equal(g_s[1:], g_s[:-1], out=head[1:])
        seg = np.nonzero(head)[0]
        seg_len = np.diff(np.append(seg, ne))
        seg_id = np.repeat(
            np.arange(seg.size, dtype=np.int64), seg_len
        )
        d_s = np.where(so < na, np.int64(1), np.int64(-1))
        run = np.cumsum(d_s)
        base = np.zeros(seg.size, np.int64)
        base[1:] = run[seg[1:] - 1]
        # latest append that found its stack empty, per pool: every
        # segment opens with a create, so the last create at or before
        # the segment's final event is the one that named the stack
        ci = np.nonzero((d_s == 1) & (run - base[seg_id] == 1))[0]
        ends = np.empty(seg.size, np.int64)
        ends[:-1] = seg[1:]
        ends[-1] = ne
        latest = ci[np.searchsorted(ci, ends) - 1]
        so_latest = so[latest]
        r0 = rows[so_latest]
        carried = p_src[r0] >= n + nb
        # carried == stack never emptied since the previous chunk: the
        # dict key predates this slab
        kt = np.where(carried, p_key_t[r0], ev_t[so_latest])
        kq = np.where(carried, p_key_q[r0], ev_tie[so_latest])
        # only surviving rows' keys are ever read, and the grouped
        # event list is ascending in gid, so a binary search maps each
        # kept row straight to its pool's segment
        krows = np.nonzero(p_keep)[0]
        kseg = np.searchsorted(g_s[seg], p_gid[krows])
        key_time[krows] = kt[kseg]
        key_tie[krows] = kq[kseg]
        return key_time, key_tie

    def _replay_complex_pools(
        self,
        order: npt.NDArray[np.int64],
        d_start: npt.NDArray[np.int64],
        d_len: npt.NDArray[np.int64],
        complex_d: npt.NDArray[np.bool_],
        flag_rank_d: npt.NDArray[np.int64],
        slot1: tuple[
            npt.NDArray[np.float64],
            npt.NDArray[np.int64],
            npt.NDArray[np.int64],
        ],
        slot2: tuple[
            npt.NDArray[np.float64],
            npt.NDArray[np.int64],
            npt.NDArray[np.int64],
        ],
        g_sorted: npt.NDArray[np.int64],
        ts: npt.NDArray[np.float64],
        gid: npt.NDArray[np.int64],
        svc_req: npt.NDArray[np.float64],
        cstart: npt.NDArray[np.float64],
        ttl: float,
        seq0: int,
        n: int,
        nb: int,
        n_words: int,
        ob_end: npt.NDArray[np.float64],
        ob_seq: npt.NDArray[np.int64],
        ob_node: npt.NDArray[np.int64],
        ob_code: npt.NDArray[np.int64],
        oi_from: npt.NDArray[np.float64],
        oi_xa: npt.NDArray[np.float64],
        oi_order: npt.NDArray[np.int64],
        oi_node: npt.NDArray[np.int64],
        oi_code: npt.NDArray[np.int64],
        cold_arr: npt.NDArray[np.bool_],
        end_new: npt.NDArray[np.float64],
        reuse_src_arr: npt.NDArray[np.int64],
        reused_arr: npt.NDArray[np.bool_],
    ) -> None:
        """Exact heap-and-deque replay of the *complex* pools -- the
        ones the lockstep scan could not carry because three sandboxes
        were live at once.  Pools are independent, so each replays only
        its own requests in arrival order.  A pool flagged mid-scan
        (``flag_rank >= 0``) resumes from its frozen two-slot state --
        the scan's earlier decisions stand; a pool complex from the
        start (more than two carried rows) replays from rank 0 off the
        carried arrays."""
        busy_g: dict[int, list[tuple[float, int, int]]] = {}
        idle_g: dict[int, deque[tuple[float, int, int, float]]] = {}
        parts: list[npt.NDArray[np.int64]] = []
        cat_a = np.nonzero(complex_d & (flag_rank_d < 0))[0]
        cat_b = np.nonzero(flag_rank_d >= 0)[0]
        if cat_a.size:
            gids_a = set(g_sorted[d_start[cat_a]].tolist())
            for p in cat_a.tolist():
                parts.append(order[d_start[p]:d_start[p] + d_len[p]])
            if nb:
                for r, (e, q, g) in enumerate(zip(
                    ob_end.tolist(), ob_seq.tolist(),
                    (ob_node * n_words + ob_code).tolist(),
                )):
                    if g in gids_a:
                        busy_g.setdefault(g, []).append((e, q, n + r))
                for h in busy_g.values():
                    heapq.heapify(h)
            if oi_from.size:
                # idle rows are stored sorted by (pool, idled-at,
                # append sequence) == stack append order: plain appends
                # rebuild each deque exactly
                for r, (f0, o_ord, g, xa) in enumerate(zip(
                    oi_from.tolist(), oi_order.tolist(),
                    (oi_node * n_words + oi_code).tolist(),
                    oi_xa.tolist(),
                )):
                    if g not in gids_a:
                        continue
                    dq0 = idle_g.get(g)
                    if dq0 is None:
                        dq0 = idle_g[g] = deque()
                    dq0.append((f0, o_ord, n + nb + r, xa))
        if cat_b.size:
            # frozen pools hold at most two sandboxes; seeding them
            # busy is exact even if idle or expired -- the loop's lazy
            # transfer and pruning replay the same (time, tie, expiry)
            e1, q1, s1 = slot1
            e2, q2, s2 = slot2
            gbs = g_sorted[d_start[cat_b]].tolist()
            for p, g, ea, qa, sa, eb, qb, sb, fr in zip(
                cat_b.tolist(), gbs,
                e1[cat_b].tolist(), q1[cat_b].tolist(),
                s1[cat_b].tolist(),
                e2[cat_b].tolist(), q2[cat_b].tolist(),
                s2[cat_b].tolist(), flag_rank_d[cat_b].tolist(),
            ):
                seed = [(e, q, s) for e, q, s in
                        ((ea, qa, sa), (eb, qb, sb)) if s >= 0]
                if seed:
                    seed.sort()
                    busy_g[g] = seed
                parts.append(
                    order[d_start[p] + fr:d_start[p] + d_len[p]]
                )
        k_sub = np.sort(np.concatenate(parts))
        cold_arr[k_sub] = False
        heappush, heappop = heapq.heappush, heapq.heappop
        for k, t, g, sv, cs in zip(
            k_sub.tolist(), ts[k_sub].tolist(), gid[k_sub].tolist(),
            svc_req[k_sub].tolist(), cstart[k_sub].tolist(),
        ):
            bh = busy_g.get(g)
            if bh and bh[0][0] <= t:
                dq = idle_g.get(g)
                if dq is None:
                    dq = idle_g[g] = deque()
                # completions transfer to the idle stack in heap order
                while bh and bh[0][0] <= t:
                    e, q, src = heappop(bh)
                    dq.append((e, q, src, e + ttl))
            dq = idle_g.get(g)
            warm = False
            if dq:
                # expiries strictly precede this arrival's processing
                while dq and dq[0][3] <= t:
                    dq.popleft()
                if dq:
                    src = dq.pop()[2]  # LIFO: most recently idled
                    reused_arr[src] = True
                    reuse_src_arr[k] = src
                    warm = True
            if warm:
                e = t + sv
            else:
                cold_arr[k] = True
                e = cs + sv
            end_new[k] = e
            if bh is None:
                bh = busy_g[g] = []
            heappush(bh, (e, seq0 + k, k))

    def _invoke_loop(
        self,
        ts: npt.NDArray[np.float64],
        workload_ids: Sequence[str],
    ) -> None:
        invoke = self.invoke
        for t, w in zip(ts.tolist(), workload_ids):
            invoke(t, w)

    def _materialize_tail(self) -> None:
        """Turn a bulk carry into ordinary heap events and node state so
        scalar traffic can interleave with it exactly."""
        tail = self._tail
        if tail is None:
            return
        self._tail = None
        heap = self._heap
        words = tail.words
        for j in range(int(tail.ends.size)):
            sandbox = _Sandbox(
                sandbox_id=j,
                workload_id=words[int(tail.codes[j])],
                memory_mb=float(tail.mem_mb[j]),
            )
            node = self.nodes[int(tail.node_idx[j])]
            heapq.heappush(
                heap,
                (
                    float(tail.ends[j]),
                    int(tail.seqs[j]),
                    "end",
                    (node, sandbox),
                ),
            )
        if not tail.idle_from.size:
            return
        # Warm idle sandboxes: rebuild each node's per-workload stacks
        # in the reference engine's dict-key creation order (lru_idle
        # tie-breaks on it), each stack in append order, and requeue the
        # pending expiries under their original sequence numbers.  The
        # generation handshake (sandbox at 1, event carrying 1) makes
        # any later reuse or eviction stale the queued expiry, exactly
        # like the scalar bookkeeping.
        mo = np.lexsort((
            tail.idle_order, tail.idle_from,
            tail.idle_key_tie, tail.idle_key_time, tail.idle_node,
        ))
        for j in mo.tolist():
            node = self.nodes[int(tail.idle_node[j])]
            wid = words[int(tail.idle_codes[j])]
            sandbox = _Sandbox(
                sandbox_id=-1 - j,
                workload_id=wid,
                memory_mb=float(tail.idle_mem[j]),
                idle_since=float(tail.idle_from[j]),
                expire_generation=1,
            )
            node.push_idle(sandbox)
            heapq.heappush(
                heap,
                (
                    float(tail.idle_xa[j]),
                    int(tail.idle_seq[j]),
                    "expire",
                    (node, sandbox, 1),
                ),
            )

    def _finalize_tail(self) -> None:
        """Drain-time shortcut: apply everything the carry still owes in
        one pass (busy to zero, the precomputed exactly-ordered memory
        residue, clock to the last completion or expiry)."""
        tail = self._tail
        if tail is None:
            return
        self._tail = None
        self._clock = max(self._clock, tail.drain_clock)
        for b, node in enumerate(self.nodes):
            node.busy_count = 0
            node.used_memory_mb = float(tail.final_used[b])
            if tail.final_weight.size:
                node.cpu_weight = float(tail.final_weight[b])

    # ------------------------------------------------------------------
    # drain internals
    # ------------------------------------------------------------------
    def _drain_events(self) -> None:
        if self._tail is not None:
            self._finalize_tail()
        while self._heap:
            self._advance(self._heap[0][0])
        stuck = sum(len(n.pending) for n in self.nodes)
        if stuck:
            if self.queue_timeout_s is not None:
                # every still-queued request has outlived its deadline by
                # now (all service events have fired)
                for node in self.nodes:
                    for arrival_s, wid in node.pending:
                        self.dropped.append((arrival_s, wid))
                        self._trace("request_dropped", node.node_id, wid)
                    node.pending.clear()
            else:
                raise RuntimeError(
                    f"{stuck} requests remain queued after drain; the "
                    "cluster deadlocked on memory (raise node_memory_mb "
                    "or n_nodes, or set queue_timeout_s)"
                )

    def _drain_telemetry(self) -> None:
        reg = _telemetry.active()
        if reg is not None:
            # gauges are idempotent, so repeated drains stay correct
            reg.gauge("platform_nodes",
                      "cluster size at drain time").set(len(self.nodes))
            reg.gauge("platform_completed_invocations",
                      "invocation records held by the cluster"
                      ).set(self._store.n)
            reg.gauge("platform_dropped_requests",
                      "requests dropped on queue timeout so far"
                      ).set(len(self.dropped))

    # ------------------------------------------------------------------
    # elasticity
    # ------------------------------------------------------------------
    def _apply_autoscaling(self, now_s: float) -> None:
        scaler = self.autoscaler
        if scaler is None:
            return
        desired = scaler.decide(now_s, self.nodes)
        while desired > len(self.nodes):
            self.nodes.append(
                Node(self._next_node_id, self._node_memory_mb)
            )
            self._next_node_id += 1
        while desired < len(self.nodes) and len(self.nodes) > 1:
            victim = min(self.nodes, key=lambda n: n.busy_count)
            if victim.busy_count > 0:
                break  # nothing retirable right now; try next evaluation
            # reclaim idle sandboxes and hand any backlog to a survivor
            for stack in list(victim.idle.values()):
                for sandbox in list(stack):
                    sandbox.expire_generation += 1
                    victim.remove_idle(sandbox)
                    self._trace("sandbox_evicted", victim.node_id,
                                sandbox.workload_id)
            self.nodes.remove(victim)
            if victim.pending:
                self.nodes[0].pending.extend(victim.pending)

    # ------------------------------------------------------------------
    # scalar event machinery (exact reference-engine control flow)
    # ------------------------------------------------------------------
    def _trace(self, kind: str, node_id: int, workload_id: str) -> None:
        if self.tracer is not None:
            self.tracer.emit(self._clock, kind, node_id, workload_id)

    def _push(self, when: float, kind: str, payload: tuple[Any, ...]) -> None:
        heapq.heappush(self._heap, (when, self._seq_n, kind, payload))
        self._seq_n += 1

    def _advance(self, until: float) -> None:
        while self._heap and self._heap[0][0] <= until:
            when, _, kind, payload = heapq.heappop(self._heap)
            self._clock = when
            if kind == "end":
                self._on_completion(when, *payload)
            elif kind == "crash":
                self._on_crash(when, *payload)
            else:  # "expire"
                self._on_expiry(when, *payload)
        self._clock = max(self._clock, until)

    def _try_start(self, node: Node, arrival_s: float,
                   workload_id: str) -> bool:
        """Start an invocation now if a sandbox can be had; else False."""
        now = self._clock
        profile = self.profiles[workload_id]
        sandbox = node.pop_idle(workload_id)
        if sandbox is not None:
            self.keepalive.observe_idle_gap(
                workload_id, now - sandbox.idle_since
            )
            sandbox.expire_generation += 1  # cancels the queued expiry
            self._trace("sandbox_reused", node.node_id, workload_id)
            start = now
            cold = False
        else:
            # Make room, evicting the least recently used idle sandboxes.
            while (
                node.used_memory_mb + profile.memory_mb
                > node.memory_capacity_mb
            ):
                victim = node.lru_idle()
                if victim is None:
                    return False
                victim.expire_generation += 1
                node.remove_idle(victim)
                self._trace("sandbox_evicted", node.node_id,
                            victim.workload_id)
            node.used_memory_mb += profile.memory_mb
            if self.track_memory:
                self.memory_samples.append(
                    (now, node.node_id, node.used_memory_mb)
                )
            sandbox = _Sandbox(
                sandbox_id=self._sandbox_n,
                workload_id=workload_id,
                memory_mb=profile.memory_mb,
            )
            self._sandbox_n += 1
            self._trace("sandbox_created", node.node_id, workload_id)
            start = now + self.cold_start_model(profile)
            cold = True

        service_s = profile.runtime_ms / 1e3
        if self._lognorm is not None:
            sigma, mu = self._lognorm
            service_s *= float(self._rng.lognormal(mu, sigma))
        preemptions = 0
        if self.cpu is not None:
            # run-queue-aware dilation, fixed at admission time
            w = self.cpu.policy.weight(workload_id)
            dilated, preemptions = self.cpu.policy.contend(
                service_s,
                cores=self.cpu.cores,
                quantum_s=self.cpu.quantum_s,
                concurrent=node.busy_count + 1,
                weight=w,
                total_weight=node.cpu_weight + w,
            )
            if dilated > service_s:
                self._trace("invocation_contended", node.node_id,
                            workload_id)
            service_s = dilated
            node.cpu_weight += w
        elif self.cores_per_node is not None:
            # oversubscription slowdown, fixed at admission time
            concurrent = node.busy_count + 1
            if concurrent > self.cores_per_node:
                service_s *= concurrent / self.cores_per_node
        end = start + service_s
        ok = True
        if self.fault_hook is not None:
            frac = self.fault_hook.crash_fraction(
                now, node.node_id, workload_id
            )
            if frac is not None:
                end = start + service_s * min(max(frac, 0.0), 1.0)
                ok = False
        node.busy_count += 1
        self._store.append(
            self._store.code_for(workload_id),
            node.node_id, arrival_s, start, end, cold, ok,
            preempt=preemptions,
        )
        # Events carry the Node object itself: under autoscaling the
        # nodes list mutates, so positional ids are not stable handles.
        self._push(end, "end" if ok else "crash", (node, sandbox))
        return True

    def _on_completion(self, now: float, node: Node,
                       sandbox: _Sandbox) -> None:
        node.busy_count -= 1
        if self.cpu is not None:
            node.cpu_weight -= self.cpu.policy.weight(sandbox.workload_id)
        sandbox.idle_since = now
        sandbox.expire_generation += 1
        node.push_idle(sandbox)
        ttl = self.keepalive.ttl_s(sandbox.workload_id)
        if ttl <= 0:
            node.remove_idle(sandbox)
        else:
            self._push(now + ttl, "expire",
                       (node, sandbox, sandbox.expire_generation))
        self._serve_pending(node)

    def _on_crash(self, now: float, node: Node,
                  sandbox: _Sandbox) -> None:
        """The sandbox died mid-invocation: destroy it outright."""
        del now
        node.busy_count -= 1
        if self.cpu is not None:
            node.cpu_weight -= self.cpu.policy.weight(sandbox.workload_id)
        sandbox.expire_generation += 1
        node.used_memory_mb -= sandbox.memory_mb
        self._trace("sandbox_crashed", node.node_id, sandbox.workload_id)
        if self.track_memory:
            self.memory_samples.append(
                (self._clock, node.node_id, node.used_memory_mb)
            )
        self._serve_pending(node)

    def _on_expiry(self, now: float, node: Node, sandbox: _Sandbox,
                   generation: int) -> None:
        del now
        if sandbox.expire_generation != generation:
            return  # sandbox was reused or evicted in the meantime
        node.remove_idle(sandbox)
        self._trace("sandbox_expired", node.node_id, sandbox.workload_id)
        if self.track_memory:
            self.memory_samples.append(
                (self._clock, node.node_id, node.used_memory_mb)
            )
        self._serve_pending(node)

    def _serve_pending(self, node: Node) -> None:
        while node.pending:
            arrival_s, workload_id = node.pending[0]
            if (
                self.queue_timeout_s is not None
                and self._clock - arrival_s > self.queue_timeout_s
            ):
                self.dropped.append(node.pending.pop(0))
                self._trace("request_dropped", node.node_id, workload_id)
                continue
            if not self._try_start(node, arrival_s, workload_id):
                return
            node.pending.pop(0)


# ----------------------------------------------------------------------
# streaming helpers
# ----------------------------------------------------------------------
def iter_trace_slabs(
    timestamps_s: npt.ArrayLike,
    workload_ids: Sequence[str],
    *,
    chunk_rows: int = 65_536,
) -> Iterator[tuple[npt.NDArray[np.float64], Sequence[str]]]:
    """Slice one materialised trace into bounded slabs for
    :meth:`FaaSCluster.invoke_chunked`.

    Timestamp slabs are zero-copy views; workload-id slabs are list
    slices.  Mostly useful for tests and for replaying traces that are
    already in memory -- a generator reading a trace file directly (one
    slab per read) plugs into ``invoke_chunked`` the same way without
    ever materialising the whole trace.
    """
    if chunk_rows <= 0:
        raise ValueError("chunk_rows must be positive")
    ts = np.asarray(timestamps_s, dtype=np.float64)
    if ts.ndim != 1:
        raise ValueError("timestamps_s must be one-dimensional")
    n = int(ts.size)
    if n != len(workload_ids):
        raise ValueError(
            f"got {n} timestamps but {len(workload_ids)} workload ids"
        )
    wids = (
        workload_ids
        if isinstance(workload_ids, list)
        else list(workload_ids)
    )
    for lo in range(0, n, chunk_rows):
        hi = min(lo + chunk_rows, n)
        yield ts[lo:hi], wids[lo:hi]
