"""Sandbox keep-alive policies.

After an invocation completes, the platform keeps the sandbox warm for some
time before reclaiming its memory -- the classic cold-start / memory-waste
trade-off the paper's motivation discusses.  Three policies:

- :class:`NoKeepAlive` -- reclaim immediately (every invocation but
  back-to-back ones is cold);
- :class:`FixedKeepAlive` -- a constant TTL (Azure's classic 10/20-minute
  policy);
- :class:`HistogramKeepAlive` -- a per-workload policy in the spirit of the
  Azure trace paper's hybrid histogram: the TTL is a percentile of the
  workload's observed idle times, clamped to a range.
"""

from __future__ import annotations

from collections import defaultdict, deque

__all__ = ["NoKeepAlive", "FixedKeepAlive", "HistogramKeepAlive"]


class NoKeepAlive:
    """Tear sandboxes down as soon as they go idle."""

    #: Constant TTL every workload sees (the bulk fast path's eligibility
    #: probe reads this instead of calling ``ttl_s`` per workload; a
    #: policy without the attribute -- or a subclass overriding behaviour
    #: -- is treated as non-constant and takes the scalar path).
    constant_ttl_s: float = 0.0

    def ttl_s(self, workload_id: str) -> float:
        del workload_id
        return 0.0

    def observe_idle_gap(self, workload_id: str, gap_s: float) -> None:
        """No state to learn."""


class FixedKeepAlive:
    """Constant keep-alive TTL for every workload."""

    def __init__(self, ttl_s: float = 600.0) -> None:
        if ttl_s < 0:
            raise ValueError("ttl must be non-negative")
        self._ttl = float(ttl_s)

    @property
    def constant_ttl_s(self) -> float:
        """The workload-independent TTL (bulk-path eligibility probe)."""
        return self._ttl

    def ttl_s(self, workload_id: str) -> float:
        del workload_id
        return self._ttl

    def observe_idle_gap(self, workload_id: str, gap_s: float) -> None:
        """Fixed policy learns nothing."""


class HistogramKeepAlive:
    """Adaptive per-workload TTL from observed inter-invocation gaps.

    Keeps a bounded window of each workload's recent idle gaps and sets the
    TTL to the requested percentile of that window -- enough to cover the
    typical gap without holding memory through the long tail.  Falls back
    to ``default_ttl_s`` until enough observations accumulate.
    """

    def __init__(
        self,
        percentile: float = 90.0,
        *,
        default_ttl_s: float = 600.0,
        min_ttl_s: float = 10.0,
        max_ttl_s: float = 3600.0,
        window: int = 64,
        min_observations: int = 4,
    ) -> None:
        if not 0 < percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")
        if min_ttl_s < 0 or max_ttl_s < min_ttl_s:
            raise ValueError("need 0 <= min_ttl <= max_ttl")
        if window <= 0 or min_observations <= 0:
            raise ValueError("window and min_observations must be positive")
        self._pct = percentile
        self._default = default_ttl_s
        self._min = min_ttl_s
        self._max = max_ttl_s
        self._min_obs = min_observations
        self._gaps: dict[str, deque[float]] = defaultdict(
            lambda: deque(maxlen=window)
        )

    def observe_idle_gap(self, workload_id: str, gap_s: float) -> None:
        if gap_s >= 0:
            self._gaps[workload_id].append(gap_s)

    def ttl_s(self, workload_id: str) -> float:
        gaps = self._gaps.get(workload_id)
        if not gaps or len(gaps) < self._min_obs:
            return self._default
        ordered = sorted(gaps)
        k = min(
            int(len(ordered) * self._pct / 100.0), len(ordered) - 1
        )
        return float(min(max(ordered[k], self._min), self._max))
