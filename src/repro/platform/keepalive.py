"""Sandbox keep-alive policies.

After an invocation completes, the platform keeps the sandbox warm for some
time before reclaiming its memory -- the classic cold-start / memory-waste
trade-off the paper's motivation discusses.  Three policies:

- :class:`NoKeepAlive` -- reclaim immediately (every invocation but
  back-to-back ones is cold);
- :class:`FixedKeepAlive` -- a constant TTL (Azure's classic 10/20-minute
  policy);
- :class:`HistogramKeepAlive` -- a per-workload policy in the spirit of the
  Azure trace paper's hybrid histogram: the TTL is a percentile of the
  workload's observed idle times, clamped to a range;
- :class:`HybridHistogramKeepAlive` -- the actual hybrid-histogram policy
  of "Serverless in the Wild" (Shahrad et al., ATC'20): a fixed-size
  binned histogram of idle times per workload with an out-of-bounds
  counter, falling back to a conservative default whenever the histogram
  is not representative.
"""

from __future__ import annotations

from collections import defaultdict, deque

__all__ = [
    "NoKeepAlive",
    "FixedKeepAlive",
    "HistogramKeepAlive",
    "HybridHistogramKeepAlive",
]


class NoKeepAlive:
    """Tear sandboxes down as soon as they go idle."""

    #: Constant TTL every workload sees (the bulk fast path's eligibility
    #: probe reads this instead of calling ``ttl_s`` per workload; a
    #: policy without the attribute -- or a subclass overriding behaviour
    #: -- is treated as non-constant and takes the scalar path).
    constant_ttl_s: float = 0.0

    def ttl_s(self, workload_id: str) -> float:
        del workload_id
        return 0.0

    def observe_idle_gap(self, workload_id: str, gap_s: float) -> None:
        """No state to learn."""


class FixedKeepAlive:
    """Constant keep-alive TTL for every workload."""

    def __init__(self, ttl_s: float = 600.0) -> None:
        if ttl_s < 0:
            raise ValueError("ttl must be non-negative")
        self._ttl = float(ttl_s)

    @property
    def constant_ttl_s(self) -> float:
        """The workload-independent TTL (bulk-path eligibility probe)."""
        return self._ttl

    def ttl_s(self, workload_id: str) -> float:
        del workload_id
        return self._ttl

    def observe_idle_gap(self, workload_id: str, gap_s: float) -> None:
        """Fixed policy learns nothing."""


class HistogramKeepAlive:
    """Adaptive per-workload TTL from observed inter-invocation gaps.

    Keeps a bounded window of each workload's recent idle gaps and sets the
    TTL to the requested percentile of that window -- enough to cover the
    typical gap without holding memory through the long tail.  Falls back
    to ``default_ttl_s`` until enough observations accumulate.
    """

    def __init__(
        self,
        percentile: float = 90.0,
        *,
        default_ttl_s: float = 600.0,
        min_ttl_s: float = 10.0,
        max_ttl_s: float = 3600.0,
        window: int = 64,
        min_observations: int = 4,
    ) -> None:
        if not 0 < percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")
        if min_ttl_s < 0 or max_ttl_s < min_ttl_s:
            raise ValueError("need 0 <= min_ttl <= max_ttl")
        if window <= 0 or min_observations <= 0:
            raise ValueError("window and min_observations must be positive")
        self._pct = percentile
        self._default = default_ttl_s
        self._min = min_ttl_s
        self._max = max_ttl_s
        self._min_obs = min_observations
        self._gaps: dict[str, deque[float]] = defaultdict(
            lambda: deque(maxlen=window)
        )

    def observe_idle_gap(self, workload_id: str, gap_s: float) -> None:
        if gap_s >= 0:
            self._gaps[workload_id].append(gap_s)

    def ttl_s(self, workload_id: str) -> float:
        gaps = self._gaps.get(workload_id)
        if not gaps or len(gaps) < self._min_obs:
            return self._default
        ordered = sorted(gaps)
        k = min(
            int(len(ordered) * self._pct / 100.0), len(ordered) - 1
        )
        return float(min(max(ordered[k], self._min), self._max))


class HybridHistogramKeepAlive:
    """The hybrid-histogram policy of "Serverless in the Wild".

    Per workload, idle gaps are counted into a *fixed-size* binned
    histogram (``n_bins`` bins of ``bin_width_s`` each; the paper uses
    one-minute bins over a four-hour range) plus a single out-of-bounds
    counter -- state is strictly bounded at ``n_bins + 2`` integers per
    workload no matter how many gaps are observed, unlike the sliding
    window of :class:`HistogramKeepAlive`.  The keep-alive TTL is the
    upper edge of the bin holding the requested ``percentile`` of the
    in-bounds gaps (the paper's "keep-alive window"), so a
    representative histogram always yields ``ttl <= n_bins *
    bin_width_s``.

    The *hybrid* part is the fallback: until ``min_observations`` gaps
    accumulate, or whenever more than ``oob_threshold`` of the observed
    gaps fell outside the histogram's range (the paper hands such
    workloads to a time-series model; a fixed conservative TTL is the
    simulator-honest stand-in), the policy answers ``default_ttl_s``.
    """

    def __init__(
        self,
        percentile: float = 99.0,
        *,
        bin_width_s: float = 60.0,
        n_bins: int = 240,
        default_ttl_s: float = 600.0,
        min_observations: int = 4,
        oob_threshold: float = 0.5,
    ) -> None:
        if not 0 < percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")
        if bin_width_s <= 0:
            raise ValueError("bin_width_s must be positive")
        if n_bins <= 0:
            raise ValueError("n_bins must be positive")
        if default_ttl_s < 0:
            raise ValueError("default_ttl_s must be non-negative")
        if min_observations <= 0:
            raise ValueError("min_observations must be positive")
        if not 0 <= oob_threshold <= 1:
            raise ValueError("oob_threshold must be in [0, 1]")
        self._pct = percentile
        self._bin_w = bin_width_s
        self._n_bins = n_bins
        self._default = default_ttl_s
        self._min_obs = min_observations
        self._oob_thresh = oob_threshold
        #: workload -> (per-bin counts, out-of-bounds count, total count)
        self._hist: dict[str, tuple[list[int], int, int]] = {}

    def observe_idle_gap(self, workload_id: str, gap_s: float) -> None:
        if gap_s < 0:
            return
        entry = self._hist.get(workload_id)
        if entry is None:
            entry = ([0] * self._n_bins, 0, 0)
        bins, oob, total = entry
        idx = int(gap_s // self._bin_w)
        if idx >= self._n_bins:
            oob += 1
        else:
            bins[idx] += 1
        self._hist[workload_id] = (bins, oob, total + 1)

    def ttl_s(self, workload_id: str) -> float:
        entry = self._hist.get(workload_id)
        if entry is None:
            return self._default
        bins, oob, total = entry
        if total < self._min_obs:
            return self._default
        if oob > self._oob_thresh * total:
            # histogram not representative: conservative fallback
            return self._default
        in_bounds = total - oob
        if in_bounds == 0:
            return self._default
        target = self._pct / 100.0 * in_bounds
        cum = 0
        for idx, count in enumerate(bins):
            cum += count
            if cum >= target:
                return (idx + 1) * self._bin_w
        return self._n_bins * self._bin_w  # pragma: no cover - cum==inb
