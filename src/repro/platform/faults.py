"""Deterministic, seed-driven fault injection for any replay backend.

Serverless resilience research (retry policies, circuit breaking, load
shedding) needs a platform that *fails* in controlled, reproducible ways.
This module provides that without touching the backends themselves:

- :class:`FaultProfile` declares *what* goes wrong and how often --
  invocation errors, latency spikes, sandbox crashes, transient node
  outages, and memory-exhaustion rejections, each with a global or
  per-workload rate;
- :class:`FaultyBackend` decorates any object satisfying the replayer's
  ``Backend`` protocol (the discrete-event simulator, the live executor,
  or a client for a real deployment) and injects those faults at the
  ``invoke`` boundary;
- :class:`CrashHook` plugs *into* :class:`~repro.platform.simulator.
  FaaSCluster` (its ``fault_hook`` parameter) to model sandbox crashes
  mid-execution, where the decorator cannot reach.

All randomness flows through one ``numpy.random.Generator`` seeded from
the profile, so two runs with the same seed produce byte-identical fault
sequences -- the property the resilience acceptance tests rely on.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = [
    "CrashHook",
    "FaultError",
    "FaultProfile",
    "FaultyBackend",
    "InvocationFault",
    "MemoryExhaustedFault",
    "NodeOutageFault",
    "OutageWindow",
    "SandboxCrashFault",
]


class FaultError(RuntimeError):
    """Base class of every injected fault.

    ``retryable`` tells the replay engine whether re-submitting the
    request may succeed; transient faults default to True.
    """

    retryable: bool = True


class InvocationFault(FaultError):
    """The invocation itself failed (function error / 5xx)."""


class SandboxCrashFault(FaultError):
    """The sandbox died partway through executing the request."""


class NodeOutageFault(FaultError):
    """The request landed on a node inside a transient outage window."""


class MemoryExhaustedFault(FaultError):
    """The platform rejected the request for lack of memory."""


@dataclass(frozen=True)
class OutageWindow:
    """A transient outage: requests in ``[start_s, end_s)`` fail.

    ``failure_prob`` models partial outages (e.g. one node of four down
    behind a random scheduler): each affected request fails with this
    probability instead of deterministically.
    """

    start_s: float
    end_s: float
    failure_prob: float = 1.0

    def __post_init__(self) -> None:
        if not 0 <= self.start_s < self.end_s:
            raise ValueError("need 0 <= start_s < end_s")
        if not 0 < self.failure_prob <= 1:
            raise ValueError("failure_prob must be in (0, 1]")


#: FaultProfile rate fields, in draw order (fixed so seeds are portable).
_RATE_FIELDS = ("memory_rejection_rate", "error_rate", "crash_rate",
                "latency_spike_rate")

Rate = float | dict[str, float]


@dataclass
class FaultProfile:
    """What goes wrong, how often, and to whom.

    Every ``*_rate`` is either one probability applied to all workloads
    or a ``{workload_id: probability}`` dict; missing workloads fall back
    to the dict's ``"*"`` entry (default 0 -- unlisted workloads are
    healthy).

    Attributes
    ----------
    error_rate:
        Probability an invocation fails outright (:class:`InvocationFault`).
    crash_rate:
        Probability the sandbox dies mid-request
        (:class:`SandboxCrashFault` at the decorator boundary; partial
        execution inside the simulator via :meth:`simulator_hook`).
    memory_rejection_rate:
        Probability the platform rejects the request for lack of memory.
    latency_spike_rate / latency_spike_ms:
        Probability an otherwise-successful invocation is slowed, and the
        extra latency added to its record.
    outages:
        Transient windows during which requests fail
        (:class:`OutageWindow`).
    seed:
        Root seed for every random draw this profile makes.
    """

    error_rate: Rate = 0.0
    crash_rate: Rate = 0.0
    memory_rejection_rate: Rate = 0.0
    latency_spike_rate: Rate = 0.0
    latency_spike_ms: float = 250.0
    outages: list[OutageWindow] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            spec = getattr(self, name)
            vals = spec.values() if isinstance(spec, dict) else (spec,)
            for v in vals:
                if not 0 <= v <= 1:
                    raise ValueError(
                        f"{name} must be a probability in [0, 1], got {v}"
                    )
        if self.latency_spike_ms < 0:
            raise ValueError("latency_spike_ms must be non-negative")
        self.outages = [
            ow if isinstance(ow, OutageWindow) else OutageWindow(**ow)
            for ow in self.outages
        ]

    def rate(self, name: str, workload_id: str) -> float:
        """The effective probability of fault ``name`` for one workload."""
        spec = getattr(self, name)
        if isinstance(spec, dict):
            return spec.get(workload_id, spec.get("*", 0.0))
        return spec

    def simulator_hook(self) -> CrashHook:
        """A :class:`CrashHook` for ``FaaSCluster(fault_hook=...)``.

        Uses a seed stream distinct from :class:`FaultyBackend`'s so the
        two layers can coexist without correlated draws.
        """
        return CrashHook(self.crash_rate, seed=self.seed,
                         _profile=self)

    # ------------------------------------------------------------------
    # persistence (the CLI's --fault-profile format)
    # ------------------------------------------------------------------
    def to_json(self, path: Path | str) -> None:
        """Write the profile as JSON (outages become plain dicts)."""
        data = dataclasses.asdict(self)
        Path(path).write_text(json.dumps(data, indent=2) + "\n")

    @classmethod
    def from_json(cls, path: Path | str) -> FaultProfile:
        """Read a profile written by :meth:`to_json` (or by hand)."""
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ValueError(f"{path}: expected a JSON object")
        unknown = set(data) - {f.name for f in dataclasses.fields(cls)}
        if unknown:
            raise ValueError(
                f"{path}: unknown fault profile fields {sorted(unknown)}"
            )
        try:
            return cls(**data)
        except (TypeError, ValueError) as exc:
            raise ValueError(f"{path}: {exc}") from exc


class FaultyBackend:
    """Backend decorator injecting a :class:`FaultProfile`'s faults.

    Wraps any replayer backend: fault draws happen at the ``invoke``
    boundary, so the inner backend needs no modification.  Latency
    spikes are applied at ``drain`` time by rewriting the matching
    records' ``end_s`` (skipped for backends whose records do not carry
    the :class:`~repro.platform.metrics.InvocationRecord` fields).

    With ``tracer`` set, every injected fault emits a ``fault_injected``
    :class:`~repro.platform.tracing.PlatformEvent` (node -1: faults are
    injected before placement).
    """

    def __init__(self, inner, profile: FaultProfile, *, tracer=None):
        self.inner = inner
        self.profile = profile
        self.tracer = tracer
        self._rng = np.random.default_rng(profile.seed)
        #: (arrival_s, workload_id) -> extra latency to add at drain.
        self._spikes: dict[tuple[float, str], float] = {}
        #: how many of each fault kind were injected, for reporting.
        self.injected: dict[str, int] = {
            "outage": 0, "memory": 0, "error": 0, "crash": 0, "spike": 0,
        }

    # ------------------------------------------------------------------
    # Backend protocol
    # ------------------------------------------------------------------
    def invoke(self, timestamp_s: float, workload_id: str) -> None:
        prof = self.profile
        rng = self._rng
        for window in prof.outages:
            if window.start_s <= timestamp_s < window.end_s:
                if (window.failure_prob >= 1.0
                        or rng.random() < window.failure_prob):
                    self._record("outage", workload_id)
                    raise NodeOutageFault(
                        f"node outage window "
                        f"[{window.start_s}, {window.end_s}) at "
                        f"t={timestamp_s:.3f}"
                    )
        # one draw per rate field, in fixed order, so the stream layout
        # does not depend on which faults are enabled
        draws = rng.random(len(_RATE_FIELDS))
        if draws[0] < prof.rate("memory_rejection_rate", workload_id):
            self._record("memory", workload_id)
            raise MemoryExhaustedFault(
                f"memory-exhaustion rejection for {workload_id!r}"
            )
        if draws[1] < prof.rate("error_rate", workload_id):
            self._record("error", workload_id)
            raise InvocationFault(f"injected error for {workload_id!r}")
        if draws[2] < prof.rate("crash_rate", workload_id):
            self._record("crash", workload_id)
            raise SandboxCrashFault(
                f"injected sandbox crash for {workload_id!r}"
            )
        if draws[3] < prof.rate("latency_spike_rate", workload_id):
            self._record("spike", workload_id)
            self._spikes[(timestamp_s, workload_id)] = (
                prof.latency_spike_ms / 1e3
            )
        self.inner.invoke(timestamp_s, workload_id)

    def invoke_many(self, timestamps_s, workload_ids) -> None:
        """Batched submission: still one fault gauntlet per request.

        Defined explicitly -- not left to ``__getattr__`` forwarding --
        so the replay engine's batched dispatch cannot silently hand the
        slab straight to the inner backend and skip fault injection.
        The per-request draw order matches :meth:`invoke` exactly, so
        batched and scalar submission produce identical fault sequences.
        """
        invoke = self.invoke
        for ts, wid in zip(
            np.asarray(timestamps_s, dtype=np.float64).tolist(),
            workload_ids,
        ):
            invoke(ts, wid)

    def invoke_chunked(self, slabs) -> None:
        """Streamed submission: one fault gauntlet per request, slab by
        slab.

        Like :meth:`invoke_many`, defined explicitly so a chunked replay
        cannot bypass injection via ``__getattr__`` forwarding; the draw
        stream is identical under scalar, bulk, and chunked submission
        because each slab routes through the same per-request gauntlet.
        """
        for ts, wids in slabs:
            self.invoke_many(ts, wids)

    def drain(self) -> list:
        records = self.inner.drain()
        if not self._spikes:
            return records
        out = []
        for rec in records:
            key = (getattr(rec, "arrival_s", None),
                   getattr(rec, "workload_id", None))
            extra = self._spikes.get(key)
            if extra is not None and hasattr(rec, "end_s"):
                rec = dataclasses.replace(rec, end_s=rec.end_s + extra)
                del self._spikes[key]
            out.append(rec)
        return out

    # ------------------------------------------------------------------
    @property
    def n_injected(self) -> int:
        return sum(self.injected.values())

    def _record(self, kind: str, workload_id: str) -> None:
        self.injected[kind] += 1
        if self.tracer is not None:
            self.tracer.emit(0.0, "fault_injected", -1, workload_id)

    def __getattr__(self, name):
        # expose the inner backend's extras (records, dropped, clock_s...)
        return getattr(self.inner, name)


class CrashHook:
    """Sandbox-crash model for the simulator's ``fault_hook`` parameter.

    Consulted once per invocation start; returns the fraction of the
    service time after which the sandbox dies, or None for a healthy
    run.  The simulator then ends the invocation early with ``ok=False``
    and destroys the sandbox (memory freed, no keep-alive).
    """

    def __init__(self, crash_rate: Rate = 0.0, *, seed: int = 0,
                 _profile: FaultProfile | None = None):
        self._profile = _profile or FaultProfile(crash_rate=crash_rate)
        # distinct stream from FaultyBackend's (seed, 1) spawn key
        self._rng = np.random.default_rng([seed, 1])

    def crash_fraction(self, now_s: float, node_id: int,
                       workload_id: str) -> float | None:
        del now_s, node_id
        draw, frac = self._rng.random(2)
        if draw < self._profile.rate("crash_rate", workload_id):
            return float(frac)
        return None
