"""Deterministic CPU-contention model for the cluster simulators.

The simulators' original resource model is memory-only (plus the crude
``cores_per_node`` oversubscription knob); this module adds a proper
CPU model -- per-node core counts, a timeslice quantum, preemption
counts, and run-queue-aware service-time dilation -- shared by both
engines so contention-sensitive studies (tail latency under CPU
pressure, scheduling-policy shootouts) are possible without giving up
the byte-identity contract.

Semantics (identical in both engines, applied at admission time like
every other service-time modifier):

- each node owns ``cores`` cores; an invocation admitted while the
  node's run queue (its busy sandboxes, including the new one) fits on
  the cores runs undilated;
- under oversubscription the active :class:`CpuPolicy` decides how much
  wall-clock the invocation's CPU demand stretches to and how many
  times it is preempted (timeslice expiries), as a pure function of the
  admission-time run-queue state -- the dilation is fixed at admission,
  mirroring the engines' long-standing "no re-scheduling mid-flight"
  contract for ``cores_per_node``;
- every policy is **work conserving** (``concurrent <= cores`` never
  dilates) and never shrinks service time; the property suite
  (``tests/test_properties_cpu.py``) pins both invariants.

Policies are frozen dataclasses so shootout cells embedding them can be
content-fingerprinted (:func:`repro.cache.fingerprint` hashes public
dataclass fields).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

__all__ = [
    "CpuModel",
    "CpuPolicy",
    "FairShareCpu",
    "FifoCpu",
    "ShortestFirstCpu",
]


@runtime_checkable
class CpuPolicy(Protocol):
    """What the engines require of a CPU scheduling policy.

    Both hooks must be *pure*: the engines call them from the scalar
    event loop and from the bulk fast path's per-node replay, and
    byte-identity across engines holds only if the same arguments
    always produce the same floats.
    """

    def weight(self, workload_id: str) -> float:
        """Scheduling weight of one workload (fair-share accounting)."""
        ...

    def contend(
        self,
        service_s: float,
        *,
        cores: int,
        quantum_s: float,
        concurrent: int,
        weight: float,
        total_weight: float,
    ) -> tuple[float, int]:
        """Dilate one invocation's service time under contention.

        ``concurrent`` counts the node's busy sandboxes including this
        invocation; ``weight`` is this workload's scheduling weight and
        ``total_weight`` the node's running weight total including it.
        Returns ``(dilated_service_s, preemptions)`` with
        ``dilated_service_s >= service_s`` and ``preemptions >= 0``.
        """
        ...


@dataclass(frozen=True)
class FifoCpu:
    """FIFO run queue with round-robin timeslicing.

    Every runnable sandbox gets one ``quantum`` per round.  With
    ``excess = concurrent - cores`` sandboxes beyond the cores, each of
    the invocation's timeslices waits one round of the excess queue
    (``excess * quantum`` of foreign work spread over ``cores`` cores)
    before it runs again, so an invocation needing ``slices`` quanta of
    CPU stretches by ``slices * excess * quantum / cores`` and is
    preempted at every slice boundary but the last.
    """

    def weight(self, workload_id: str) -> float:
        del workload_id
        return 1.0

    def contend(
        self,
        service_s: float,
        *,
        cores: int,
        quantum_s: float,
        concurrent: int,
        weight: float,
        total_weight: float,
    ) -> tuple[float, int]:
        del weight, total_weight
        excess = concurrent - cores
        if excess <= 0:
            return service_s, 0
        slices = math.ceil(service_s / quantum_s)
        dilated = service_s + (slices * excess) * (quantum_s / cores)
        return dilated, slices - 1


@dataclass(frozen=True)
class FairShareCpu:
    """CFS-like weighted fair sharing.

    Under oversubscription each runnable sandbox receives CPU in
    proportion to its weight: this invocation's share of one core is
    ``cores * weight / total_weight`` (clamped to a full core), so its
    service time stretches by the inverse share.  Higher weight can
    never dilate more (the monotonicity invariant the property suite
    pins).  Preemptions count the timeslice boundaries the stretched
    execution crosses.
    """

    default_weight: float = 1.0
    weights: dict[str, float] | None = None

    def __post_init__(self) -> None:
        if self.default_weight <= 0:
            raise ValueError("default_weight must be positive")
        if self.weights is not None:
            for wid, w in self.weights.items():
                if w <= 0:
                    raise ValueError(
                        f"weight for {wid!r} must be positive"
                    )

    def weight(self, workload_id: str) -> float:
        if self.weights is None:
            return self.default_weight
        return self.weights.get(workload_id, self.default_weight)

    def contend(
        self,
        service_s: float,
        *,
        cores: int,
        quantum_s: float,
        concurrent: int,
        weight: float,
        total_weight: float,
    ) -> tuple[float, int]:
        if concurrent <= cores:  # work conservation: a free core exists
            return service_s, 0
        share = cores * weight / total_weight
        if share >= 1.0:
            return service_s, 0
        dilated = service_s / share
        return dilated, math.ceil(dilated / quantum_s) - 1


@dataclass(frozen=True)
class ShortestFirstCpu:
    """Shortest-task-first, in the spirit of ``scx_serverless``.

    Tasks that fit in a single quantum run to completion in their first
    slice even under load (the short-circuit serverless schedulers
    exploit: most FaaS invocations are sub-quantum).  Longer tasks are
    demoted behind the short ones and see the full round-robin
    oversubscription factor ``concurrent / cores``, preempted at every
    quantum boundary of their own CPU demand.
    """

    def weight(self, workload_id: str) -> float:
        del workload_id
        return 1.0

    def contend(
        self,
        service_s: float,
        *,
        cores: int,
        quantum_s: float,
        concurrent: int,
        weight: float,
        total_weight: float,
    ) -> tuple[float, int]:
        del weight, total_weight
        if concurrent <= cores or service_s <= quantum_s:
            return service_s, 0
        dilated = service_s * (concurrent / cores)
        return dilated, math.ceil(service_s / quantum_s) - 1


@dataclass(frozen=True)
class CpuModel:
    """Per-node CPU topology + scheduling policy.

    Passed to either engine as the ``cpu=`` knob (mutually exclusive
    with the legacy ``cores_per_node`` slowdown).  ``quantum_s`` is the
    scheduler timeslice used for preemption accounting; 20 ms mirrors
    a typical CFS target latency share.
    """

    cores: int
    quantum_s: float = 0.020
    policy: CpuPolicy = field(default_factory=FifoCpu)

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if self.quantum_s <= 0:
            raise ValueError("quantum_s must be positive")
