"""HTTP backend: drive generated load against real FaaS endpoints.

:class:`HTTPBackend` satisfies the replay :class:`~repro.loadgen.replay.
Backend` protocol over stdlib ``urllib`` -- no third-party HTTP stack --
and additionally implements the service dispatcher's extended
``invoke_at`` form, which carries the *scheduled* send time (so records
stay coordinated-omission-safe) and the remaining per-request deadline
budget (propagated to the endpoint as a header and enforced as the
socket timeout).

Failures map onto the :class:`~repro.platform.faults.FaultError`
taxonomy the resilient replay loop already understands:

- connection errors and timeouts are **retryable** (the request may
  never have reached the endpoint);
- ``5xx`` and ``429`` responses are **retryable** (server-side, often
  transient);
- any other ``4xx`` is **non-retryable** (the request itself is bad;
  outcome ``dropped``).

:class:`StubServer` is the in-repo test endpoint: a threaded stdlib HTTP
server with configurable per-request delay and deterministic periodic
failures, so the full service path is exercisable hermetically in CI.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.platform.faults import FaultError
from repro.platform.metrics import InvocationRecord

__all__ = [
    "HTTPBackend",
    "HTTPConnectionError",
    "HTTPStatusError",
    "HTTPTimeoutError",
    "StubServer",
]


class HTTPConnectionError(FaultError):
    """The endpoint could not be reached (DNS, refused, reset)."""

    retryable = True


class HTTPTimeoutError(FaultError):
    """The request exceeded its socket timeout / deadline budget."""

    retryable = True


class HTTPStatusError(FaultError):
    """The endpoint answered with a non-2xx status.

    ``retryable`` is decided per status: server-side (5xx) and
    throttling (429) responses may clear on retry; any other 4xx means
    the request itself is malformed and retrying cannot help.
    """

    def __init__(self, status: int, message: str = ""):
        super().__init__(f"HTTP {status}" + (f": {message}" if message
                                             else ""))
        self.status = status
        self.retryable = status >= 500 or status == 429


class HTTPBackend:
    """Replay backend that POSTs each request to a real HTTP endpoint.

    Records are :class:`~repro.platform.metrics.InvocationRecord` in
    wall-clock seconds relative to the backend's construction epoch.
    With a scheduled send time supplied (service dispatcher), the
    record's ``arrival_s`` is the *scheduled* time and ``start_s`` the
    actual send -- so ``latency_ms`` includes dispatch lag (CO-safe) and
    ``queueing_ms`` isolates the dispatcher stall from backend service
    time.  The plain ``invoke`` form (classic replay loop) uses the
    actual send time for both.

    ``timeout_s`` caps every request; a tighter per-request deadline
    (remaining retry budget) further lowers the socket timeout and is
    forwarded as the ``X-Repro-Deadline-S`` header so cooperating
    endpoints can shed doomed work early.
    """

    def __init__(self, base_url: str, *, timeout_s: float = 10.0,
                 collect_records: bool = True):
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.collect_records = collect_records
        self.records: list[InvocationRecord] = []
        self.n_sent = 0
        # repro: allow-wall-clock (records are wall-relative by design)
        self._epoch = time.time()

    # ------------------------------------------------------------------
    def invoke(self, timestamp_s: float, workload_id: str) -> None:
        self.invoke_at(timestamp_s, workload_id)

    def invoke_at(self, timestamp_s: float, workload_id: str, *,
                  scheduled_wall_s: float | None = None,
                  deadline_s: float | None = None) -> None:
        """Send one request; raise a mapped :class:`FaultError` on failure.

        ``scheduled_wall_s`` is the open-loop dispatcher's intended send
        time (absolute wall clock); ``deadline_s`` the remaining retry
        deadline budget, if any.
        """
        timeout = self.timeout_s
        if deadline_s is not None:
            if deadline_s <= 0:
                raise HTTPTimeoutError(
                    f"deadline exhausted before send of {workload_id}"
                )
            timeout = min(timeout, deadline_s)
        body = json.dumps(
            {"workload_id": workload_id, "timestamp_s": timestamp_s}
        ).encode()
        headers = {
            "Content-Type": "application/json",
            "X-Repro-Workload": workload_id,
            "X-Repro-Timestamp-S": f"{timestamp_s:.6f}",
        }
        if deadline_s is not None:
            headers["X-Repro-Deadline-S"] = f"{deadline_s:.3f}"
        req = urllib.request.Request(
            self.base_url + "/invoke", data=body, headers=headers,
            method="POST",
        )
        # repro: allow-wall-clock (real send/completion instants)
        sent = time.time()
        self.n_sent += 1
        try:
            with urllib.request.urlopen(req, timeout=timeout) as resp:
                resp.read()
                status = resp.status
        except urllib.error.HTTPError as exc:
            exc.read()
            raise HTTPStatusError(exc.code, exc.reason) from exc
        except (socket.timeout, TimeoutError) as exc:
            raise HTTPTimeoutError(
                f"request for {workload_id} timed out after {timeout:g}s"
            ) from exc
        except urllib.error.URLError as exc:
            if isinstance(exc.reason, (socket.timeout, TimeoutError)):
                raise HTTPTimeoutError(
                    f"request for {workload_id} timed out after "
                    f"{timeout:g}s"
                ) from exc
            raise HTTPConnectionError(
                f"cannot reach {self.base_url}: {exc.reason}"
            ) from exc
        except (ConnectionError, OSError) as exc:
            raise HTTPConnectionError(
                f"cannot reach {self.base_url}: {exc}"
            ) from exc
        if status >= 300:  # pragma: no cover - urllib raises first
            raise HTTPStatusError(status)
        if self.collect_records:
            # repro: allow-wall-clock (completion instant)
            done = time.time()
            # CO-safety: anchor arrival at the *scheduled* send when the
            # dispatcher supplies one, so dispatcher stall is measured
            # latency, never a silently stretched schedule.
            arrival = (scheduled_wall_s
                       if scheduled_wall_s is not None else sent)
            arrival = min(arrival, sent)  # early sends cannot go negative
            self.records.append(InvocationRecord(
                workload_id=workload_id,
                node=0,
                arrival_s=arrival - self._epoch,
                start_s=sent - self._epoch,
                end_s=max(done, sent) - self._epoch,
                cold=False,
                ok=True,
            ))

    def drain(self) -> list[InvocationRecord]:
        records, self.records = self.records, []
        return records


# ----------------------------------------------------------------------
# in-repo stub endpoint
# ----------------------------------------------------------------------


class _StubHandler(BaseHTTPRequestHandler):
    server: "StubServer"  # set by ThreadingHTTPServer machinery

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        stub = self.server  # type: ignore[assignment]
        n = stub.count_request()
        length = int(self.headers.get("Content-Length", 0))
        if length:
            self.rfile.read(length)
        if stub.delay_s > 0:
            time.sleep(stub.delay_s)
        if stub.fail_every and n % stub.fail_every == 0:
            self.send_response(503)
            self.send_header("Content-Length", "0")
            self.end_headers()
            return
        body = b'{"ok": true}'
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:  # noqa: D102 - silence stdout
        pass


class StubServer(ThreadingHTTPServer):
    """Hermetic HTTP endpoint for exercising :class:`HTTPBackend`.

    Binds ``127.0.0.1`` on an ephemeral port.  ``delay_s`` adds a fixed
    per-request service delay (artificially slow backend for CO-safety
    tests); ``fail_every=k`` makes every ``k``-th request (1-based,
    counted across all connections) answer 503 -- deterministic in
    *request order*, which single-shard or retry-free runs guarantee.

    Use as a context manager::

        with StubServer(delay_s=0.05) as stub:
            backend = HTTPBackend(stub.url)
            ...
    """

    daemon_threads = True

    def __init__(self, *, delay_s: float = 0.0, fail_every: int = 0):
        if delay_s < 0:
            raise ValueError("delay_s must be non-negative")
        if fail_every < 0:
            raise ValueError("fail_every must be non-negative")
        super().__init__(("127.0.0.1", 0), _StubHandler)
        self.delay_s = delay_s
        self.fail_every = fail_every
        self._n_requests = 0
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def n_requests(self) -> int:
        with self._lock:
            return self._n_requests

    def count_request(self) -> int:
        with self._lock:
            self._n_requests += 1
            return self._n_requests

    def start(self) -> "StubServer":
        self._thread = threading.Thread(
            target=self.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True, name="repro-stub-http",
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        self.server_close()

    def __enter__(self) -> "StubServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
