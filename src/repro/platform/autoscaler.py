"""Reactive cluster autoscaling.

FaaS providers "transparently auto-scale the compute and memory resources
to meet request load" (paper section 1); under FaaSRail's diurnal load the
interesting behaviour is precisely the scale-up on the morning ramp and
the scale-down through the trough.  :class:`ReactiveAutoscaler` implements
the standard target-utilisation controller:

- every ``evaluate_every_s`` of virtual time, compare mean busy sandboxes
  per node against a target band;
- above the band: add nodes (one per evaluation, classic conservative
  step);
- below the band for ``scale_down_grace_s``: retire an empty node.

The :class:`~repro.platform.simulator.FaaSCluster` consults the policy on
every request arrival; scaling events are recorded for analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.platform.simcore import Node

__all__ = ["ReactiveAutoscaler"]


@dataclass
class ReactiveAutoscaler:
    """Target-utilisation node autoscaler.

    Parameters
    ----------
    min_nodes / max_nodes:
        Topology bounds.
    target_busy_per_node:
        Desired mean in-flight invocations per node.
    high_watermark / low_watermark:
        Scale up above ``target * high``; consider scaling down below
        ``target * low``.
    evaluate_every_s:
        Virtual-time spacing of controller decisions.
    scale_down_grace_s:
        How long utilisation must stay below the low watermark before a
        node is retired (guards against flapping on bursty load).
    """

    min_nodes: int = 1
    max_nodes: int = 64
    target_busy_per_node: float = 4.0
    high_watermark: float = 1.25
    low_watermark: float = 0.5
    evaluate_every_s: float = 30.0
    scale_down_grace_s: float = 120.0
    _last_eval_s: float = field(default=float("-inf"), init=False)
    _below_since_s: float | None = field(default=None, init=False)
    #: (virtual time, new node count) decisions, newest last.
    events: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0 < self.min_nodes <= self.max_nodes:
            raise ValueError("need 0 < min_nodes <= max_nodes")
        if self.target_busy_per_node <= 0:
            raise ValueError("target_busy_per_node must be positive")
        if not 0 < self.low_watermark < self.high_watermark:
            raise ValueError("need 0 < low_watermark < high_watermark")
        if self.evaluate_every_s <= 0 or self.scale_down_grace_s < 0:
            raise ValueError("invalid controller timing")

    def decide(self, now_s: float, nodes: Sequence[Node]) -> int:
        """Return the desired node count given the current topology.

        Called by the cluster on request arrivals; rate-limited internally
        to one decision per ``evaluate_every_s``.
        """
        n = len(nodes)
        if now_s - self._last_eval_s < self.evaluate_every_s:
            return n
        self._last_eval_s = now_s

        busy = sum(node.busy_count for node in nodes)
        per_node = busy / n
        target = self.target_busy_per_node

        if per_node > target * self.high_watermark and n < self.max_nodes:
            self._below_since_s = None
            self.events.append((now_s, n + 1))
            return n + 1

        if per_node < target * self.low_watermark and n > self.min_nodes:
            if self._below_since_s is None:
                self._below_since_s = now_s
            elif now_s - self._below_since_s >= self.scale_down_grace_s:
                self._below_since_s = now_s
                self.events.append((now_s, n - 1))
                return n - 1
        else:
            self._below_since_s = None
        return n
