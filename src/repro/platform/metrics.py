"""Per-invocation records and aggregate metrics for the FaaS simulator."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "InvocationRecord",
    "memory_utilization",
    "per_workload_cold_rates",
    "summarize",
]


@dataclass(frozen=True)
class InvocationRecord:
    """One completed invocation, as observed by the backend."""

    workload_id: str
    node: int
    arrival_s: float
    start_s: float
    end_s: float
    cold: bool

    def __post_init__(self) -> None:
        if not self.arrival_s <= self.start_s <= self.end_s:
            raise ValueError(
                f"invalid invocation timeline: arrival={self.arrival_s}, "
                f"start={self.start_s}, end={self.end_s}"
            )

    @property
    def latency_ms(self) -> float:
        """End-to-end latency: queueing + cold start + execution."""
        return (self.end_s - self.arrival_s) * 1e3

    @property
    def queueing_ms(self) -> float:
        return (self.start_s - self.arrival_s) * 1e3

    @property
    def service_ms(self) -> float:
        return (self.end_s - self.start_s) * 1e3


def summarize(records: list[InvocationRecord]) -> dict:
    """Aggregate a run's records into the usual serving metrics."""
    if not records:
        raise ValueError("no records to summarise")
    lat = np.array([r.latency_ms for r in records])
    queue = np.array([r.queueing_ms for r in records])
    cold = np.array([r.cold for r in records])
    nodes = np.array([r.node for r in records])
    node_ids, node_counts = np.unique(nodes, return_counts=True)
    return {
        "n_invocations": len(records),
        "cold_fraction": float(cold.mean()),
        "latency_ms": {
            "p50": float(np.percentile(lat, 50)),
            "p90": float(np.percentile(lat, 90)),
            "p99": float(np.percentile(lat, 99)),
            "mean": float(lat.mean()),
        },
        "queueing_ms_mean": float(queue.mean()),
        "per_node_invocations": dict(
            zip(node_ids.tolist(), node_counts.tolist())
        ),
        "node_imbalance": float(node_counts.max() / node_counts.mean()),
    }


def per_workload_cold_rates(
    records: list[InvocationRecord],
    min_invocations: int = 1,
) -> dict[str, float]:
    """Cold-start fraction per workload (the cold-start-research view)."""
    if not records:
        raise ValueError("no records")
    totals: dict[str, int] = {}
    colds: dict[str, int] = {}
    for r in records:
        totals[r.workload_id] = totals.get(r.workload_id, 0) + 1
        if r.cold:
            colds[r.workload_id] = colds.get(r.workload_id, 0) + 1
    return {
        wid: colds.get(wid, 0) / n
        for wid, n in totals.items()
        if n >= min_invocations
    }


def memory_utilization(
    memory_samples: list[tuple[float, int, float]],
    node_capacity_mb: float,
) -> dict:
    """Time-weighted memory utilisation from a cluster's memory samples.

    ``memory_samples`` is the ``(time, node, used_mb)`` stream a
    :class:`~repro.platform.simulator.FaaSCluster` records under
    ``track_memory=True``.  Utilisation is averaged over time per node
    (piecewise-constant between samples) and across nodes.
    """
    if node_capacity_mb <= 0:
        raise ValueError("node capacity must be positive")
    if not memory_samples:
        raise ValueError("no memory samples (enable track_memory)")
    by_node: dict[int, list[tuple[float, float]]] = {}
    for t, node, used in memory_samples:
        by_node.setdefault(node, []).append((t, used))
    per_node = {}
    for node, series in by_node.items():
        times = np.array([t for t, _ in series])
        used = np.array([u for _, u in series])
        if times.size == 1 or times[-1] == times[0]:
            avg = float(used.mean())
        else:
            widths = np.diff(times)
            avg = float((used[:-1] @ widths) / widths.sum())
        per_node[node] = avg / node_capacity_mb
    return {
        "per_node": per_node,
        "mean": float(np.mean(list(per_node.values()))),
        "peak_mb": float(max(u for _, _, u in memory_samples)),
    }
