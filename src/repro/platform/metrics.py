"""Per-invocation records and aggregate metrics for the FaaS simulator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro.platform.simulator_vec import RecordColumns

__all__ = [
    "InvocationRecord",
    "breaker_uptime",
    "cpu_utilization",
    "dispatch_lag_summary",
    "memory_utilization",
    "outcome_summary",
    "per_workload_cold_rates",
    "record_outcome_metrics",
    "retry_histogram",
    "summarize",
    "summarize_columns",
]


@dataclass(frozen=True)
class InvocationRecord:
    """One completed invocation, as observed by the backend.

    ``ok`` is False when the invocation ran but failed -- a workload
    exception in the live executor, or an injected sandbox crash in the
    simulator; its latency then covers the time until the failure.
    ``preemptions`` counts the timeslice expiries the invocation
    suffered under the CPU-contention model
    (:class:`~repro.platform.cpu.CpuModel`); 0 whenever no CPU model is
    configured or the node had core headroom.
    """

    workload_id: str
    node: int
    arrival_s: float
    start_s: float
    end_s: float
    cold: bool
    ok: bool = True
    preemptions: int = 0

    def __post_init__(self) -> None:
        if not self.arrival_s <= self.start_s <= self.end_s:
            raise ValueError(
                f"invalid invocation timeline: arrival={self.arrival_s}, "
                f"start={self.start_s}, end={self.end_s}"
            )

    @property
    def latency_ms(self) -> float:
        """End-to-end latency: queueing + cold start + execution."""
        return (self.end_s - self.arrival_s) * 1e3

    @property
    def queueing_ms(self) -> float:
        return (self.start_s - self.arrival_s) * 1e3

    @property
    def service_ms(self) -> float:
        return (self.end_s - self.start_s) * 1e3


def summarize(records: list[InvocationRecord]) -> dict:
    """Aggregate a run's records into the usual serving metrics."""
    if not records:
        raise ValueError("no records to summarise")
    lat = np.array([r.latency_ms for r in records])
    queue = np.array([r.queueing_ms for r in records])
    cold = np.array([r.cold for r in records])
    nodes = np.array([r.node for r in records])
    ok = np.array([getattr(r, "ok", True) for r in records])
    node_ids, node_counts = np.unique(nodes, return_counts=True)
    return {
        "n_invocations": len(records),
        "ok_fraction": float(ok.mean()),
        "cold_fraction": float(cold.mean()),
        "latency_ms": {
            "p50": float(np.percentile(lat, 50)),
            "p90": float(np.percentile(lat, 90)),
            "p99": float(np.percentile(lat, 99)),
            "mean": float(lat.mean()),
        },
        "queueing_ms_mean": float(queue.mean()),
        "per_node_invocations": dict(
            zip(node_ids.tolist(), node_counts.tolist())
        ),
        "node_imbalance": float(node_counts.max() / node_counts.mean()),
    }


def summarize_columns(columns: RecordColumns) -> dict:
    """Columnar :func:`summarize`: identical output, no record objects.

    Takes the :class:`~repro.platform.simulator_vec.RecordColumns` a
    cluster's ``drain_columns()`` / ``record_columns()`` returns and
    computes the same summary dict as :func:`summarize` does from the
    materialised record list, byte for byte -- every intermediate is the
    same float64 array the record-by-record path would build, so the
    percentile and mean reductions see identical inputs.
    """
    n = len(columns)
    if not n:
        raise ValueError("no records to summarise")
    lat = columns.latency_ms
    queue = columns.queueing_ms
    cold = columns.cold
    ok = columns.ok
    node_ids, node_counts = np.unique(columns.node, return_counts=True)
    return {
        "n_invocations": n,
        "ok_fraction": float(ok.mean()),
        "cold_fraction": float(cold.mean()),
        "latency_ms": {
            "p50": float(np.percentile(lat, 50)),
            "p90": float(np.percentile(lat, 90)),
            "p99": float(np.percentile(lat, 99)),
            "mean": float(lat.mean()),
        },
        "queueing_ms_mean": float(queue.mean()),
        "per_node_invocations": dict(
            zip(node_ids.tolist(), node_counts.tolist())
        ),
        "node_imbalance": float(node_counts.max() / node_counts.mean()),
    }


def per_workload_cold_rates(
    records: list[InvocationRecord],
    min_invocations: int = 1,
) -> dict[str, float]:
    """Cold-start fraction per workload (the cold-start-research view)."""
    if not records:
        raise ValueError("no records")
    totals: dict[str, int] = {}
    colds: dict[str, int] = {}
    for r in records:
        totals[r.workload_id] = totals.get(r.workload_id, 0) + 1
        if r.cold:
            colds[r.workload_id] = colds.get(r.workload_id, 0) + 1
    return {
        wid: colds.get(wid, 0) / n
        for wid, n in totals.items()
        if n >= min_invocations
    }


def outcome_summary(result) -> dict:
    """Resilient-replay outcome counters a fault-tolerance study reports.

    Takes a :class:`~repro.loadgen.replay.ReplayResult` produced by the
    resilient path.  ``delivered_fraction`` counts requests that reached
    the backend and succeeded (``ok`` + ``retried``); ``failed`` groups
    everything else.
    """
    counts = result.outcome_counts()
    n = sum(counts.values())
    delivered = counts["ok"] + counts["retried"]
    return {
        "counts": counts,
        "n_requests": n,
        "delivered_fraction": delivered / n if n else 0.0,
        "shed_fraction": counts["shed"] / n if n else 0.0,
        "mean_attempts": (
            float(result.attempts[result.attempts > 0].mean())
            if result.attempts is not None and np.any(result.attempts > 0)
            else 0.0
        ),
    }


def dispatch_lag_summary(lag_ms: np.ndarray,
                         *, late_threshold_ms: float = 1.0) -> dict:
    """Intended-vs-actual dispatch lag, the open-loop health signal.

    ``lag_ms`` is the per-request lag array a service run records (0 for
    on-time sends).  High lag with low backend ``service_ms`` means the
    *dispatcher* stalled (under-provisioned load driver); high latency
    with near-zero lag means the *backend* is slow -- the distinction
    coordinated-omission-safe measurement exists to preserve.
    """
    lag_ms = np.asarray(lag_ms, dtype=np.float64)
    if lag_ms.size == 0:
        raise ValueError("no dispatch lag samples")
    late = lag_ms > late_threshold_ms
    return {
        "n_requests": int(lag_ms.size),
        "mean_ms": float(lag_ms.mean()),
        "p99_ms": float(np.percentile(lag_ms, 99)),
        "max_ms": float(lag_ms.max()),
        "late_fraction": float(late.mean()),
    }


def retry_histogram(attempts: np.ndarray) -> dict[int, int]:
    """How many requests needed k attempts (k=0: shed, never submitted)."""
    attempts = np.asarray(attempts)
    if attempts.size == 0:
        raise ValueError("no attempt counts")
    ks, counts = np.unique(attempts, return_counts=True)
    return {int(k): int(c) for k, c in zip(ks, counts)}


def breaker_uptime(breaker, horizon_s: float) -> dict:
    """Fraction of trace time a circuit breaker spent in each state.

    ``breaker`` is a :class:`~repro.loadgen.resilience.CircuitBreaker`
    after a replay; ``horizon_s`` the trace duration.  States are
    piecewise-constant between recorded transitions (initial state:
    closed at t=0).
    """
    if horizon_s <= 0:
        raise ValueError("horizon_s must be positive")
    spans = {"closed": 0.0, "open": 0.0, "half-open": 0.0}
    prev_t, prev_state = 0.0, "closed"
    for t, state in breaker.transitions:
        t = min(max(t, 0.0), horizon_s)
        spans[prev_state] += t - prev_t
        prev_t, prev_state = t, state
    spans[prev_state] += horizon_s - prev_t
    return {
        state: span / horizon_s for state, span in spans.items()
    } | {"n_transitions": len(breaker.transitions)}


def record_outcome_metrics(registry, result, *, breaker=None,
                           horizon_s: float | None = None) -> None:
    """Fold a resilient replay's diagnostics into a metrics registry.

    Bridges this module's summary helpers to :mod:`repro.telemetry`:
    the attempts-per-request histogram lands in ``replay_attempts`` and,
    when ``breaker`` and ``horizon_s`` are given, per-state uptime
    fractions land in ``breaker_state_fraction{state=...}`` gauges.
    No-op fields are skipped, so the helper is safe on fast-path results.
    """
    if result.attempts is not None and result.attempts.size:
        registry.histogram(
            "replay_attempts",
            "attempts made per request (0 = shed before submission)",
            edges=np.arange(0.0, 11.0),
        ).observe_many(result.attempts)
    if result.outcomes is not None:
        summary = outcome_summary(result)
        registry.gauge(
            "replay_delivered_fraction",
            "fraction of requests that reached the backend and succeeded",
        ).set(summary["delivered_fraction"])
    if breaker is not None and horizon_s is not None:
        uptime = breaker_uptime(breaker, horizon_s)
        for state in ("closed", "open", "half-open"):
            # repro: allow-telemetry-hot-loop (bounded: exactly
            # three labelled gauges, one per breaker state)
            registry.gauge(
                "breaker_state_fraction",
                "fraction of trace time the circuit breaker spent in "
                "each state",
                labels={"state": state},
            ).set(uptime[state])


def cpu_utilization(
    records,
    *,
    cores: int,
    n_nodes: int,
) -> dict:
    """Time-averaged CPU utilisation from a run's invocation records.

    ``records`` is either a :class:`RecordColumns` or a
    ``list[InvocationRecord]`` -- both yield the same float64 arrays,
    so the result is identical across engines.  Busy core-time is the
    total *wall-clock* occupancy (start to end, dilation included);
    capacity is ``cores * n_nodes`` over the run's makespan (first
    arrival to last completion).  Under oversubscription the ratio
    exceeds 1.0 -- invocations hold run-queue slots beyond the physical
    cores -- so read it as demand pressure, not physical core busy
    time.  ``preemptions_per_invocation`` summarises how often the CPU
    model preempted work (0 when no model was configured).
    """
    if cores <= 0 or n_nodes <= 0:
        raise ValueError("cores and n_nodes must be positive")
    if isinstance(records, list):
        if not records:
            raise ValueError("no records")
        start = np.array([r.start_s for r in records], np.float64)
        end = np.array([r.end_s for r in records], np.float64)
        arrival = np.array([r.arrival_s for r in records], np.float64)
        preempt = np.array(
            [getattr(r, "preemptions", 0) for r in records], np.int64
        )
    else:
        if not len(records):
            raise ValueError("no records")
        start = np.asarray(records.start_s, np.float64)
        end = np.asarray(records.end_s, np.float64)
        arrival = np.asarray(records.arrival_s, np.float64)
        preempt = np.asarray(records.preemptions, np.int64)
    busy_core_s = float(np.sum(end - start))
    makespan_s = float(end.max() - arrival.min())
    capacity_s = cores * n_nodes * makespan_s
    return {
        "busy_core_s": busy_core_s,
        "makespan_s": makespan_s,
        "utilization": busy_core_s / capacity_s if capacity_s > 0 else 0.0,
        "preemptions_total": int(preempt.sum()),
        "preemptions_per_invocation": float(preempt.mean()),
    }


def memory_utilization(
    memory_samples: list[tuple[float, int, float]],
    node_capacity_mb: float,
) -> dict:
    """Time-weighted memory utilisation from a cluster's memory samples.

    ``memory_samples`` is the ``(time, node, used_mb)`` stream a
    :class:`~repro.platform.simulator.FaaSCluster` records under
    ``track_memory=True``.  Utilisation is averaged over time per node
    (piecewise-constant between samples) and across nodes.
    """
    if node_capacity_mb <= 0:
        raise ValueError("node capacity must be positive")
    if not memory_samples:
        raise ValueError("no memory samples (enable track_memory)")
    by_node: dict[int, list[tuple[float, float]]] = {}
    for t, node, used in memory_samples:
        by_node.setdefault(node, []).append((t, used))
    per_node = {}
    for node, series in by_node.items():
        times = np.array([t for t, _ in series])
        used = np.array([u for _, u in series])
        if times.size == 1 or times[-1] == times[0]:
            avg = float(used.mean())
        else:
            widths = np.diff(times)
            avg = float((used[:-1] @ widths) / widths.sum())
        per_node[node] = avg / node_capacity_mb
    return {
        "per_node": per_node,
        "mean": float(np.mean(list(per_node.values()))),
        "peak_mb": float(max(u for _, _, u in memory_samples)),
    }
