"""In-process live executor: actually runs the workload bodies.

A single-node "platform" that satisfies the replayer's Backend protocol by
executing the mapped workloads' real Python/NumPy code.  The first
invocation of a workload pays payload preparation (the live analogue of a
cold start); later invocations reuse the cached payload (warm).  Useful for
small demonstrations and for validating that the pool's cost models track
reality end to end -- not meant to sustain trace-scale request rates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.platform.metrics import InvocationRecord
from repro.workloads.base import FamilyRegistry
from repro.workloads.functionbench import default_registry
from repro.workloads.pool import WorkloadPool

__all__ = ["LiveBackend"]


@dataclass
class _CacheEntry:
    payload: object
    family_name: str


class LiveBackend:
    """Synchronously executes real workload bodies on this process."""

    def __init__(
        self,
        pool: WorkloadPool,
        registry: FamilyRegistry | None = None,
        *,
        seed: int = 0,
    ):
        self.pool = pool
        self.registry = registry if registry is not None else default_registry()
        self._rng = np.random.default_rng(seed)
        self._cache: dict[str, _CacheEntry] = {}
        self.records: list[InvocationRecord] = []

    def invoke(self, timestamp_s: float, workload_id: str) -> None:
        workload = self.pool[workload_id]
        family = self.registry.get(workload.family)
        entry = self._cache.get(workload_id)
        cold = entry is None
        t0 = time.perf_counter()  # repro: allow-wall-clock
        ok = True
        try:
            if cold:
                payload = family.prepare(self._rng, **workload.params)
                entry = _CacheEntry(payload=payload,
                                    family_name=workload.family)
                self._cache[workload_id] = entry
            family.execute(entry.payload)
        except Exception:
            # A workload body blowing up must not abort a multi-hour
            # replay: record the failed invocation and keep going.
            ok = False
        elapsed = time.perf_counter() - t0  # repro: allow-wall-clock
        # Live runs are sequential: service begins at submission.
        self.records.append(
            InvocationRecord(
                workload_id=workload_id,
                node=0,
                arrival_s=timestamp_s,
                start_s=timestamp_s,
                end_s=timestamp_s + elapsed,
                cold=cold,
                ok=ok,
            )
        )

    def drain(self) -> list[InvocationRecord]:
        return self.records
