"""In-process live executor: actually runs the workload bodies.

A single-node "platform" that satisfies the replayer's Backend protocol by
executing the mapped workloads' real Python/NumPy code.  The first
invocation of a workload pays payload preparation (the live analogue of a
cold start); later invocations reuse the cached payload (warm).  Useful for
small demonstrations and for validating that the pool's cost models track
reality end to end -- not meant to sustain trace-scale request rates.

For trace-scale runs the two unbounded stores are cappable: a
``record_sink`` streams each :class:`InvocationRecord` out instead of
accumulating the full list in memory, and ``max_cached_payloads`` bounds
the payload cache with LRU eviction (an evicted workload simply goes
cold again -- mirroring a platform reclaiming idle sandboxes).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.platform.metrics import InvocationRecord
from repro.workloads.base import FamilyRegistry
from repro.workloads.functionbench import default_registry
from repro.workloads.pool import WorkloadPool

__all__ = ["LiveBackend"]


@dataclass
class _CacheEntry:
    payload: object
    family_name: str


class LiveBackend:
    """Synchronously executes real workload bodies on this process.

    ``record_sink`` -- when given, every record is handed to the sink as
    it is produced and :attr:`records` stays empty (``drain`` returns
    ``[]``); memory use is then O(cache), not O(trace length).

    ``max_cached_payloads`` -- when given, at most that many prepared
    payloads stay cached; the least recently used entry is evicted to
    make room, and its workload pays a fresh cold start on its next
    invocation.
    """

    def __init__(
        self,
        pool: WorkloadPool,
        registry: FamilyRegistry | None = None,
        *,
        seed: int = 0,
        record_sink: Callable[[InvocationRecord], None] | None = None,
        max_cached_payloads: int | None = None,
    ):
        if max_cached_payloads is not None and max_cached_payloads < 1:
            raise ValueError("max_cached_payloads must be at least 1")
        self.pool = pool
        self.registry = registry if registry is not None else default_registry()
        self._rng = np.random.default_rng(seed)
        self._cache: OrderedDict[str, _CacheEntry] = OrderedDict()
        self._max_cached = max_cached_payloads
        self._sink = record_sink
        self.records: list[InvocationRecord] = []
        self.evictions = 0

    def invoke(self, timestamp_s: float, workload_id: str) -> None:
        workload = self.pool[workload_id]
        family = self.registry.get(workload.family)
        entry = self._cache.get(workload_id)
        cold = entry is None
        t0 = time.perf_counter()  # repro: allow-wall-clock
        ok = True
        try:
            if cold:
                payload = family.prepare(self._rng, **workload.params)
                entry = _CacheEntry(payload=payload,
                                    family_name=workload.family)
                self._cache[workload_id] = entry
                if (self._max_cached is not None
                        and len(self._cache) > self._max_cached):
                    self._cache.popitem(last=False)
                    self.evictions += 1
            else:
                self._cache.move_to_end(workload_id)
            family.execute(entry.payload)
        except Exception:
            # A workload body blowing up must not abort a multi-hour
            # replay: record the failed invocation and keep going.
            ok = False
        elapsed = time.perf_counter() - t0  # repro: allow-wall-clock
        # Live runs are sequential: service begins at submission.
        record = InvocationRecord(
            workload_id=workload_id,
            node=0,
            arrival_s=timestamp_s,
            start_s=timestamp_s,
            end_s=timestamp_s + elapsed,
            cold=cold,
            ok=ok,
        )
        if self._sink is not None:
            self._sink(record)
        else:
            self.records.append(record)

    def invoke_many(self, timestamps_s, workload_ids) -> None:
        """Batched submission: live execution is inherently sequential,
        so this is the per-request loop -- defined so batched replay
        dispatch treats live and simulated backends uniformly."""
        invoke = self.invoke
        for ts, wid in zip(
            np.asarray(timestamps_s, dtype=np.float64).tolist(),
            workload_ids,
        ):
            invoke(ts, wid)

    def invoke_chunked(self, slabs) -> None:
        """Streamed submission, slab by slab (see :meth:`invoke_many`)."""
        for ts, wids in slabs:
            self.invoke_many(ts, wids)

    def drain(self) -> list[InvocationRecord]:
        return self.records
