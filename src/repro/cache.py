"""Content-addressed on-disk caching for the offline pipeline.

Every expensive pipeline artifact (fitted synthetic traces, finished
experiment specs, realised request traces, EM mixture fits) is a pure
function of its inputs, so it can be memoised under a *fingerprint*: a
SHA-256 digest of a canonical encoding of the trace content, workload
pool, pipeline parameters, seed, and code version.  Warm re-runs of
``repro shrinkray`` / ``repro generate`` then skip straight to the stored
artifact, byte-identical to what a cold run would produce.

Design rules (see docs/EXTENDING.md, "Cache-safe pipeline stages"):

- keys are fingerprints of *content*, never of file paths or timestamps;
- entries are written to a temp file and published with ``os.replace``,
  so concurrent writers race benignly (last atomic rename wins, readers
  never observe a torn file);
- a corrupted or unreadable entry is treated as a miss -- deleted
  best-effort and recomputed, never a crash;
- :data:`CACHE_SCHEMA_VERSION` is part of every key via
  :func:`code_version`; bump it whenever a pipeline stage's semantics
  change so stale entries invalidate themselves.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
from collections.abc import Callable
from pathlib import Path
from typing import Any

import numpy as np

from repro._version import __version__
from repro.telemetry import registry as _telemetry

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "ContentCache",
    "code_version",
    "fingerprint",
    "resolve_cache",
    "tool_fingerprint",
]

#: Bump when a cached stage's output semantics change (new RNG layout,
#: new spec field, ...): every fingerprint embeds it, so old entries
#: simply stop matching instead of serving stale results.
CACHE_SCHEMA_VERSION = 1

#: Environment variable consulted by :func:`resolve_cache`.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def code_version() -> str:
    """Package version + cache schema -- a component of every key."""
    return f"{__version__}+schema{CACHE_SCHEMA_VERSION}"


def _update(h: hashlib._Hash, obj: object) -> None:
    """Feed one object into the digest with type tags and length prefixes
    (so ``("ab", "c")`` and ``("a", "bc")`` cannot collide)."""
    if obj is None:
        h.update(b"N;")
    elif isinstance(obj, (bool, np.bool_)):
        h.update(b"T;" if obj else b"F;")
    elif isinstance(obj, (int, np.integer)):
        h.update(f"i{int(obj)};".encode())
    elif isinstance(obj, (float, np.floating)):
        h.update(f"f{float(obj).hex()};".encode())
    elif isinstance(obj, str):
        raw = obj.encode()
        h.update(f"s{len(raw)}:".encode())
        h.update(raw)
    elif isinstance(obj, bytes):
        h.update(f"b{len(obj)}:".encode())
        h.update(obj)
    elif isinstance(obj, np.ndarray):
        if obj.dtype == object:
            h.update(f"A{obj.shape};".encode())
            for item in obj.ravel():
                _update(h, item)
        else:
            h.update(f"a{obj.dtype.str}{obj.shape};".encode())
            h.update(np.ascontiguousarray(obj).tobytes())
    elif isinstance(obj, (list, tuple)):
        h.update(f"l{len(obj)}:".encode())
        for item in obj:
            _update(h, item)
    elif isinstance(obj, (set, frozenset)):
        h.update(f"e{len(obj)}:".encode())
        for item in sorted(obj, key=repr):
            _update(h, item)
    elif isinstance(obj, dict):
        h.update(f"d{len(obj)}:".encode())
        for key in sorted(obj, key=lambda k: (type(k).__name__, repr(k))):
            _update(h, key)
            _update(h, obj[key])
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: getattr(obj, f.name)
            for f in dataclasses.fields(obj)
            if not f.name.startswith("_")
        }
        h.update(f"D{type(obj).__name__}:".encode())
        _update(h, fields)
    else:
        raise TypeError(
            f"cannot fingerprint {type(obj).__name__!r}; pass plain data "
            "(numbers, strings, arrays, dicts, dataclasses)"
        )


def fingerprint(*parts: object) -> str:
    """Stable SHA-256 hex digest of a canonical encoding of ``parts``.

    Deterministic across processes and sessions: dict ordering is
    normalised, numpy arrays hash dtype + shape + bytes, dataclasses hash
    their public fields.  Distinct types never collide (``1`` vs ``"1"``
    vs ``1.0`` all differ).
    """
    h = hashlib.sha256()
    _update(h, parts)
    return h.hexdigest()


def tool_fingerprint(tool: str, *parts: object) -> str:
    """Fingerprint for non-pipeline tooling artifacts (lint results,
    analysis caches, ...) sharing the pipeline's content store.

    Namespaced under ``tool`` and :func:`code_version` so tooling
    entries can never collide with pipeline artifacts, and a package
    release or schema bump invalidates them wholesale -- the same
    self-invalidation contract pipeline keys get.
    """
    return fingerprint("tool", tool, code_version(), *parts)


class ContentCache:
    """A directory of pickled artifacts addressed by fingerprint.

    Entries live under ``root/<key[:2]>/<key>.pkl`` (fan-out keeps
    directory listings short).  Payloads embed their own key so a
    corrupted or mis-addressed file can never satisfy a lookup.
    """

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ContentCache({str(self.root)!r}, hits={self.hits}, "
                f"misses={self.misses})")

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Any:
        """Return the stored value, or raise ``KeyError`` on a miss.

        Unreadable / corrupted / mis-keyed entries count as misses: the
        bad file is removed best-effort so the next :meth:`put` repairs
        the slot.
        """
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                stored_key, value = pickle.load(fh)
            if stored_key != key:
                raise ValueError("cache entry key mismatch")
        except FileNotFoundError:
            self._miss()
            raise KeyError(key) from None
        except Exception:
            # Torn write survivor, truncation, unpicklable garbage,
            # foreign file: recover by treating it as a miss.
            try:
                path.unlink()
            except OSError:
                pass
            self._miss()
            raise KeyError(key) from None
        self.hits += 1
        reg = _telemetry.active()
        if reg is not None:
            reg.counter("cache_hits_total",
                        "content-cache lookups served from disk").inc()
        return value

    def _miss(self) -> None:
        self.misses += 1
        reg = _telemetry.active()
        if reg is not None:
            reg.counter("cache_misses_total",
                        "content-cache lookups that fell through").inc()

    def put(self, key: str, value: object) -> None:
        """Store ``value`` under ``key`` via write-to-temp + atomic rename.

        Concurrent writers of the same key are safe: each writes its own
        temp file and the final ``os.replace`` is atomic, so readers see
        either the old complete entry or the new complete entry.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        reg = _telemetry.active()
        if reg is not None:
            reg.counter("cache_stores_total",
                        "content-cache entries written").inc()
        payload = pickle.dumps((key, value),
                               protocol=pickle.HIGHEST_PROTOCOL)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def memoize(self, key: str, compute: Callable[[], Any]) -> Any:
        """``get(key)``, falling back to ``put(key, compute())``."""
        try:
            return self.get(key)
        except KeyError:
            value = compute()
            self.put(key, value)
            return value

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        n = 0
        for entry in self.root.glob("??/*.pkl"):
            try:
                entry.unlink()
                n += 1
            except OSError:
                pass
        return n


def resolve_cache(
    cache_dir: Path | str | None = None,
    no_cache: bool = False,
) -> ContentCache | None:
    """CLI policy: an explicit directory wins, else ``$REPRO_CACHE_DIR``,
    else caching is off.  ``no_cache`` forces it off."""
    if no_cache:
        return None
    directory = cache_dir or os.environ.get(CACHE_DIR_ENV)
    if not directory:
        return None
    return ContentCache(directory)
