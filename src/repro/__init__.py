"""FaaSRail reproduction: representative load generation for serverless research.

This package reimplements the system described in *"FaaSRail: Employing Real
Workloads to Generate Representative Load for Serverless Research"*
(Katsakioris et al., HPDC '24): an offline "shrink ray" that fits open-source
FaaS workloads to production traces, and an online load generator that
replays the resulting experiment specifications.

Top-level layout
----------------
- :mod:`repro.stats` -- weighted ECDFs, Smirnov sampling, KS/Wasserstein, CV.
- :mod:`repro.traces` -- trace data model, Azure-schema IO, calibrated
  synthetic Azure / Huawei trace generators.
- :mod:`repro.workloads` -- runnable FunctionBench-style workloads, input
  augmentation into a ~2300-strong Workload pool, runtime calibration.
- :mod:`repro.core` -- the paper's contribution: aggregation, mapping, rate
  and time scaling, experiment specs, Smirnov Transform mode.
- :mod:`repro.loadgen` -- arrival processes, request-trace generation, replay.
- :mod:`repro.platform` -- discrete-event FaaS cluster simulator (backend).
- :mod:`repro.baselines` -- plain-Poisson / random-sampling / busy-loop
  strategies the paper compares against.
- :mod:`repro.analysis` -- one data-series builder per paper figure.

Quickstart
----------
>>> from repro import shrink, generate
>>> from repro.traces import synthetic_azure_trace
>>> from repro.workloads import build_default_pool
>>> trace = synthetic_azure_trace(n_functions=2000, seed=1)
>>> pool = build_default_pool(seed=1)
>>> spec = shrink(trace, pool, max_rps=20.0, duration_minutes=120, seed=1)
>>> requests = generate(spec, seed=1)
"""

from repro._version import __version__

__all__ = [
    "ContentCache",
    "ExperimentSpec",
    "ShrinkRay",
    "__version__",
    "fingerprint",
    "generate",
    "resolve_cache",
    "shrink",
]

_CORE_EXPORTS = {"ExperimentSpec", "ShrinkRay", "generate", "shrink"}
_CACHE_EXPORTS = {"ContentCache", "fingerprint", "resolve_cache"}


def __getattr__(name: str):
    # Lazy re-exports keep `import repro.stats` usable without pulling the
    # whole pipeline (and its heavier workload-pool construction) into memory.
    if name in _CORE_EXPORTS:
        from repro import core

        return getattr(core, name)
    if name in _CACHE_EXPORTS:
        from repro import cache

        return getattr(cache, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
