"""Inverse-transform (Smirnov) sampling.

Paper section 3.2.2: draw ``U ~ Uniform[0, 1]`` and push it through the
interpolated inverse of the empirical weighted CDF of invocation execution
durations; each sampled duration is then matched to a Workload from the pool.
"""

from __future__ import annotations

import numpy as np

from repro.stats.ecdf import EmpiricalCDF

__all__ = ["smirnov_sample", "stratified_uniform"]


def smirnov_sample(
    cdf: EmpiricalCDF,
    n: int,
    rng: np.random.Generator,
    *,
    antithetic: bool = False,
    method: str = "linear",
) -> np.ndarray:
    """Draw ``n`` samples whose distribution follows ``cdf``.

    Parameters
    ----------
    cdf:
        Target distribution (e.g. the trace's invocation-duration CDF).
    n:
        Number of samples; the number of invocation requests to generate.
    rng:
        Seeded NumPy generator -- the paper's PRNG.
    antithetic:
        When set, pair each uniform draw ``u`` with ``1 - u``; halves the
        variance of distributional summaries for the same ``n`` (useful in
        quick tests, not used by the default pipeline).
    method:
        Inverse-CDF flavour: ``"linear"`` (paper-faithful interpolated
        inverse) or ``"step"`` (exact generalised inverse).

    Returns
    -------
    numpy.ndarray
        ``n`` sampled values (float64), unsorted.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if antithetic:
        half = (n + 1) // 2
        u = rng.random(half)
        u = np.concatenate([u, 1.0 - u])[:n]
    else:
        u = rng.random(n)
    return np.asarray(cdf.quantile(u, method=method), dtype=np.float64)


def stratified_uniform(n: int, rng: np.random.Generator) -> np.ndarray:
    """Stratified uniform draws: one jittered point per 1/n stratum.

    Guarantees the empirical CDF of the output is within ``1/n`` of uniform
    everywhere, which propagates through the Smirnov transform to a KS bound
    against the target CDF.  Exposed for the deterministic replay profile.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    offsets = rng.random(n)
    u = (np.arange(n) + offsets) / n
    rng.shuffle(u)
    return u
