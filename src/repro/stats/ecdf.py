"""Weighted empirical cumulative distribution functions.

The empirical weighted CDF of invocation execution durations is the central
statistical object of FaaSRail: the Spec mode is evaluated against it
(Figures 9, 11) and the Smirnov Transform mode samples directly from its
interpolated inverse (paper section 3.2.2).

The implementation keeps the CDF as two parallel ascending arrays
(``support``, ``probs``) so that both evaluation and inversion are single
``searchsorted`` / ``interp`` calls -- no Python-level loops, per the
vectorisation guidance for numerical hot paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np
from numpy.typing import ArrayLike

__all__ = ["EmpiricalCDF"]


def _as_1d_float(a: ArrayLike, name: str) -> np.ndarray:
    arr = np.asarray(a, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    return arr


@dataclass(frozen=True)
class EmpiricalCDF:
    """A (possibly weighted) empirical CDF over scalar samples.

    Attributes
    ----------
    support:
        Strictly increasing sample values (duplicates merged, weights summed).
    probs:
        Cumulative probabilities aligned with ``support``; ``probs[-1] == 1``.

    Use :meth:`from_samples` to construct one; the raw constructor expects
    already-consolidated arrays.
    """

    support: np.ndarray
    probs: np.ndarray
    _inverse_knots: tuple[np.ndarray, np.ndarray] | None = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self) -> None:
        support = _as_1d_float(self.support, "support")
        probs = _as_1d_float(self.probs, "probs")
        if support.shape != probs.shape:
            raise ValueError(
                f"support and probs must align: {support.shape} vs {probs.shape}"
            )
        if support.size > 1 and not np.all(np.diff(support) > 0):
            raise ValueError("support must be strictly increasing")
        if np.any(np.diff(probs) < 0):
            raise ValueError("probs must be non-decreasing")
        if not np.isclose(probs[-1], 1.0, atol=1e-9):
            raise ValueError(f"probs must end at 1.0, got {probs[-1]!r}")
        # Re-store normalised copies (frozen dataclass => object.__setattr__).
        object.__setattr__(self, "support", support)
        object.__setattr__(self, "probs", np.minimum(probs, 1.0))
        object.__setattr__(self, "_inverse_knots", self._build_inverse_knots())

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_samples(
        cls, values: ArrayLike, weights: ArrayLike | None = None
    ) -> EmpiricalCDF:
        """Build a weighted ECDF from raw samples.

        Parameters
        ----------
        values:
            Sample values; any shape, flattened.
        weights:
            Optional non-negative weights, same length as ``values``. FaaSRail
            weights each function's average execution time by its invocation
            count to obtain the *invocations'* duration CDF.
        """
        vals = np.asarray(values, dtype=np.float64).ravel()
        if vals.size == 0:
            raise ValueError("values must be non-empty")
        if weights is None:
            w = np.ones_like(vals)
        else:
            w = np.asarray(weights, dtype=np.float64).ravel()
            if w.shape != vals.shape:
                raise ValueError(
                    f"weights must match values: {w.shape} vs {vals.shape}"
                )
            if np.any(w < 0):
                raise ValueError("weights must be non-negative")
        total = w.sum()
        if total <= 0:
            raise ValueError("total weight must be positive")

        order = np.argsort(vals, kind="stable")
        vals = vals[order]
        w = w[order]
        # Merge duplicate support points: segment-sum the weights.
        uniq, inverse = np.unique(vals, return_inverse=True)
        merged = np.zeros(uniq.size, dtype=np.float64)
        np.add.at(merged, inverse, w)
        probs = np.cumsum(merged) / total
        probs[-1] = 1.0
        return cls(support=uniq, probs=probs)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def __call__(self, x: ArrayLike) -> Any:
        """Evaluate ``F(x) = P[X <= x]`` (right-continuous step function).

        Returns an array for array input, a plain float for scalar input.
        """
        x = np.asarray(x, dtype=np.float64)
        idx = np.searchsorted(self.support, x, side="right")
        out = np.where(idx == 0, 0.0, self.probs[np.maximum(idx - 1, 0)])
        return out if out.ndim else float(out)

    def sf(self, x: ArrayLike) -> Any:
        """Survival function ``P[X > x]``."""
        return 1.0 - self.__call__(x)

    def _build_inverse_knots(self) -> tuple[np.ndarray, np.ndarray]:
        # Interpolated inverse a la statsmodels' ``monotone_fn_inverter``:
        # linear interpolation through the knots (F(x_i), x_i), anchored at
        # probability 0 on the smallest observation so quantile(0) is finite.
        probs = self.probs
        xs = self.support
        if probs[0] > 0.0:
            probs = np.concatenate(([0.0], probs))
            xs = np.concatenate(([xs[0]], xs))
        return probs, xs

    def quantile(self, q: ArrayLike, *, method: str = "linear") -> Any:
        """Inverse CDF, ``F^{-1}(q)`` for ``q`` in [0, 1].

        ``method="linear"`` interpolates between the empirical knots -- the
        approximation of the inverse CDF the paper adopts for the Smirnov
        Transform (it smooths point masses across the gap to the previous
        support point, visible on sparse-support traces like Huawei's).
        ``method="step"`` is the exact generalised inverse
        ``inf{x : F(x) >= q}``; sampling through it reproduces atoms
        exactly.
        """
        q = np.asarray(q, dtype=np.float64)
        if np.any((q < 0.0) | (q > 1.0)):
            raise ValueError("quantile probabilities must lie in [0, 1]")
        if method == "linear":
            knots = self._inverse_knots
            assert knots is not None  # always built in __post_init__
            knots_p, knots_x = knots
            out = np.interp(q, knots_p, knots_x)
        elif method == "step":
            idx = np.searchsorted(self.probs, q, side="left")
            out = self.support[np.minimum(idx, self.support.size - 1)]
        else:
            raise ValueError(
                f"unknown quantile method {method!r}; expected 'linear' "
                "or 'step'"
            )
        return out if out.ndim else float(out)

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        """Number of distinct support points."""
        return int(self.support.size)

    def mean(self) -> float:
        """Weighted mean of the underlying samples."""
        pmf = np.diff(self.probs, prepend=0.0)
        return float(self.support @ pmf)

    def median(self) -> float:
        """Interpolated median."""
        return float(self.quantile(0.5))

    def series(
        self, n: int = 256, log_space: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(x, F(x))`` arrays suitable for plotting/printing.

        Parameters
        ----------
        n:
            Number of evaluation points.
        log_space:
            Sample x log-uniformly (execution times span orders of magnitude,
            so the paper draws all CDFs on log axes).
        """
        lo = self.support[0]
        hi = self.support[-1]
        if log_space and lo > 0 and hi > lo:
            xs = np.geomspace(lo, hi, n)
        else:
            xs = np.linspace(lo, hi, n)
        return xs, self.__call__(xs)
