"""Distances between distributions.

Used throughout the evaluation harness to quantify "how closely does the
generated load's CDF track the trace's CDF" (Figures 9 and 11 are eyeball
comparisons in the paper; the reproduction reports KS / Wasserstein numbers
so the claim is checkable in CI).
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike

from repro.stats.ecdf import EmpiricalCDF

__all__ = [
    "dkw_band",
    "ks_distance",
    "ks_log_quantized",
    "ks_relative_band",
    "ks_statistic_samples",
    "wasserstein",
]


def dkw_band(n: int, alpha: float = 0.05) -> float:
    """Dvoretzky-Kiefer-Wolfowitz confidence half-width for an ECDF.

    With probability at least ``1 - alpha``, an ECDF built from ``n``
    i.i.d. samples lies within this sup-norm distance of the true CDF.
    Used to judge whether a generated load's KS distance from the trace is
    explainable by sampling noise alone.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0 < alpha < 1:
        raise ValueError("alpha must be in (0, 1)")
    return float(np.sqrt(np.log(2.0 / alpha) / (2.0 * n)))


def ks_distance(a: EmpiricalCDF, b: EmpiricalCDF) -> float:
    """Kolmogorov-Smirnov statistic ``sup_x |F_a(x) - F_b(x)|``.

    Exact for step ECDFs: the supremum is attained at a support point of
    either distribution, so evaluating both CDFs on the merged support
    suffices.
    """
    grid = np.union1d(a.support, b.support)
    return float(np.max(np.abs(a(grid) - b(grid))))


def ks_statistic_samples(
    x: ArrayLike,
    y: ArrayLike,
    *,
    x_weights: ArrayLike | None = None,
    y_weights: ArrayLike | None = None,
) -> float:
    """KS statistic straight from (optionally weighted) samples."""
    return ks_distance(
        EmpiricalCDF.from_samples(x, x_weights),
        EmpiricalCDF.from_samples(y, y_weights),
    )


def ks_relative_band(
    x: ArrayLike,
    y: ArrayLike,
    *,
    x_weights: ArrayLike | None = None,
    y_weights: ArrayLike | None = None,
    rel_tolerance: float = 0.1,
) -> float:
    """Band KS: sup-norm violation of a +-``rel_tolerance`` horizontal band.

    Plain KS between two weighted ECDFs over-penalises point masses: a
    function holding 30% of all invocations mapped to a workload 1% away
    in runtime produces a 0.30 KS spike in the sliver between the two
    atoms.  FaaSRail's mapping guarantees runtimes within an
    ``error_threshold_pct`` *relative* band, so the right fidelity notion
    is: the generated CDF ``F_x`` must lie inside the reference CDF
    ``F_y`` stretched horizontally by the tolerance,

        F_y(t / (1 + tol))  <=  F_x(t)  <=  F_y(t * (1 + tol))   for all t,

    and the statistic is the largest violation of either side.  If every
    sample of ``x`` is a ``y`` sample relocated by at most the tolerance,
    the statistic is exactly 0; mass genuinely created, destroyed, or
    moved further than the tolerance is charged in full.  (This is robust
    where bucketing or nearest-support snapping are not: a heavy atom
    near a bucket edge, or two reference atoms closer together than the
    mapping error, cannot flip the verdict.)
    """
    if rel_tolerance <= 0:
        raise ValueError("rel_tolerance must be positive")
    xv = np.asarray(x, dtype=np.float64).ravel()
    yv = np.asarray(y, dtype=np.float64).ravel()
    if np.any(xv <= 0) or np.any(yv <= 0):
        raise ValueError("relative tolerance needs positive values")

    fx = EmpiricalCDF.from_samples(xv, x_weights)
    fy = EmpiricalCDF.from_samples(yv, y_weights)
    stretch = 1.0 + rel_tolerance
    # Violations can only change at CDF jump points (of either CDF, in
    # either coordinate frame); evaluate on all of them.
    grid = np.unique(np.concatenate([
        fx.support, fy.support, fy.support * stretch, fy.support / stretch,
    ]))
    upper = fx(grid) - fy(grid * stretch)   # mass arriving too early
    lower = fy(grid / stretch) - fx(grid)   # mass arriving too late
    return float(max(upper.max(), lower.max(), 0.0))


def wasserstein(a: EmpiricalCDF, b: EmpiricalCDF) -> float:
    """First Wasserstein (earth mover's) distance between two ECDFs.

    Computed as the integral of ``|F_a - F_b|``: both CDFs are piecewise
    constant, so the integral is an exact sum over the merged support
    intervals.  More sensitive than KS to tail mismatches, which matters for
    the long-running-function tail the mapping stage deliberately relaxes.
    """
    grid = np.union1d(a.support, b.support)
    if grid.size < 2:
        return 0.0
    diffs = np.abs(a(grid[:-1]) - b(grid[:-1]))
    widths = np.diff(grid)
    return float(diffs @ widths)


#: Deprecated alias (the metric was bucket-based in early revisions).
ks_log_quantized = ks_relative_band
