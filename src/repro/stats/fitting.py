"""Lognormal-mixture fitting (EM) for trace calibration.

The synthetic trace generators ship with hand-calibrated duration
mixtures; when the *real* Azure/Huawei CSVs are available, this module
closes the loop: fit a lognormal mixture to the observed durations with
expectation-maximisation and feed the components straight back into
:mod:`repro.traces.synth`.  Used by
:func:`repro.traces.fit.fit_generator_from_trace` and the ``repro
trace-info`` CLI.

The EM runs in log space (a lognormal mixture over x is a Gaussian
mixture over log x), fully vectorised: the E-step is one
``(n, k)`` responsibility matrix, the M-step three weighted reductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np
from numpy.typing import ArrayLike

if TYPE_CHECKING:
    from repro.traces.synth import LognormalComponent

__all__ = ["MixtureFit", "fit_lognormal_mixture"]

_LOG_2PI = float(np.log(2.0 * np.pi))


@dataclass(frozen=True)
class MixtureFit:
    """A fitted lognormal mixture.

    ``weights[j]``, ``medians[j]`` (= exp of the log-space mean) and
    ``sigmas[j]`` (log-space std) describe component ``j``; components are
    sorted by median.  ``log_likelihood`` is the final per-sample average.
    """

    weights: np.ndarray
    medians: np.ndarray
    sigmas: np.ndarray
    log_likelihood: float
    n_iterations: int
    converged: bool

    @property
    def n_components(self) -> int:
        return int(self.weights.size)

    def to_components(self) -> tuple[LognormalComponent, ...]:
        """Convert into :class:`repro.traces.synth.LognormalComponent` s."""
        from repro.traces.synth import LognormalComponent

        return tuple(
            LognormalComponent(weight=float(w), median_ms=float(m),
                               sigma=float(s))
            for w, m, s in zip(self.weights, self.medians, self.sigmas)
        )

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` values from the fitted mixture."""
        if n <= 0:
            raise ValueError("n must be positive")
        which = rng.choice(self.n_components, size=n, p=self.weights)
        mu = np.log(self.medians)[which]
        return rng.lognormal(mean=mu, sigma=self.sigmas[which])


def _log_gaussian(y: np.ndarray, mu: np.ndarray,
                  sigma: np.ndarray) -> np.ndarray:
    """Log density of each sample under each Gaussian: (n, k)."""
    z = (y[:, None] - mu[None, :]) / sigma[None, :]
    return -0.5 * (z * z + _LOG_2PI) - np.log(sigma)[None, :]


def fit_lognormal_mixture(
    samples: ArrayLike,
    n_components: int = 3,
    *,
    weights: ArrayLike | None = None,
    max_iter: int = 200,
    tol: float = 1e-6,
    seed: int | np.random.Generator = 0,
    min_sigma: float = 1e-3,
) -> MixtureFit:
    """Fit a ``n_components``-lognormal mixture by (weighted) EM.

    Parameters
    ----------
    samples:
        Positive observations (e.g. per-function average durations).
    weights:
        Optional per-sample weights (e.g. invocation counts, to fit the
        invocation-weighted distribution).
    max_iter / tol:
        EM stops when the average log-likelihood improves by less than
        ``tol`` or after ``max_iter`` iterations.
    min_sigma:
        Variance floor preventing component collapse onto point masses.
    """
    x = np.asarray(samples, dtype=np.float64).ravel()
    if x.size < n_components:
        raise ValueError(
            f"need at least {n_components} samples, got {x.size}"
        )
    if np.any(x <= 0):
        raise ValueError("samples must be positive (lognormal support)")
    if n_components <= 0:
        raise ValueError("n_components must be positive")
    if weights is None:
        w = np.ones_like(x)
    else:
        w = np.asarray(weights, dtype=np.float64).ravel()
        if w.shape != x.shape:
            raise ValueError("weights must match samples")
        if np.any(w < 0) or w.sum() <= 0:
            raise ValueError("weights must be non-negative, not all zero")
    rng = np.random.default_rng(seed)
    y = np.log(x)
    w = w / w.sum()

    # Init: means at spread quantiles, shared sigma, uniform weights.
    qs = (np.arange(n_components) + 0.5) / n_components
    mu = np.quantile(y, qs) + 1e-3 * rng.standard_normal(n_components)
    sigma = np.full(n_components, max(y.std(), min_sigma))
    pi = np.full(n_components, 1.0 / n_components)

    prev_ll = -np.inf
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        # E-step: responsibilities via the log-sum-exp trick.
        log_p = _log_gaussian(y, mu, sigma) + np.log(pi)[None, :]
        log_norm = np.logaddexp.reduce(log_p, axis=1)
        resp = np.exp(log_p - log_norm[:, None])
        ll = float(w @ log_norm)

        # M-step: weighted by sample weight * responsibility.
        r = resp * w[:, None]
        mass = r.sum(axis=0)
        mass = np.maximum(mass, 1e-300)
        pi = mass / mass.sum()
        mu = (r * y[:, None]).sum(axis=0) / mass
        var = (r * (y[:, None] - mu[None, :]) ** 2).sum(axis=0) / mass
        sigma = np.sqrt(np.maximum(var, min_sigma**2))

        if ll - prev_ll < tol and iteration > 1:
            converged = True
            break
        prev_ll = ll

    order = np.argsort(mu)
    return MixtureFit(
        weights=pi[order],
        medians=np.exp(mu[order]),
        sigmas=sigma[order],
        log_likelihood=ll,
        n_iterations=iteration,
        converged=converged,
    )
