"""Statistics toolkit underpinning the FaaSRail reproduction.

This subpackage provides the numerical primitives the paper's methodology is
built on:

- :class:`~repro.stats.ecdf.EmpiricalCDF` -- weighted empirical CDFs with an
  interpolated inverse, the backbone of the Smirnov Transform mode (paper
  section 3.2.2).
- :func:`~repro.stats.sampling.smirnov_sample` -- inverse-transform sampling.
- :func:`~repro.stats.cv.coefficient_of_variation` -- per-function day-to-day
  variability analysis (paper Figure 3).
- :mod:`~repro.stats.popularity` -- skewed-popularity curves (Figures 1c, 10).
- :mod:`~repro.stats.distance` -- KS and Wasserstein distances used to
  quantify how closely generated load tracks a trace.

All routines are vectorised over NumPy arrays and deterministic given a
seeded :class:`numpy.random.Generator`.
"""

from repro.stats.burstiness import (
    burstiness_parameter,
    index_of_dispersion,
    peak_to_mean,
    rate_autocorrelation,
)
from repro.stats.cv import coefficient_of_variation, cv_cdf_series
from repro.stats.distance import (
    dkw_band,
    ks_distance,
    ks_statistic_samples,
    wasserstein,
)
from repro.stats.ecdf import EmpiricalCDF
from repro.stats.fitting import MixtureFit, fit_lognormal_mixture
from repro.stats.histograms import cdf_series, log_bins
from repro.stats.popularity import (
    popularity_change_cdf,
    popularity_curve,
    popularity_shares,
)
from repro.stats.sampling import smirnov_sample
from repro.stats.sketches import (
    KLLSketch,
    RateMatrixAccumulator,
    SpaceSavingCounter,
)

__all__ = [
    "EmpiricalCDF",
    "KLLSketch",
    "MixtureFit",
    "RateMatrixAccumulator",
    "SpaceSavingCounter",
    "burstiness_parameter",
    "fit_lognormal_mixture",
    "cdf_series",
    "index_of_dispersion",
    "peak_to_mean",
    "rate_autocorrelation",
    "coefficient_of_variation",
    "cv_cdf_series",
    "dkw_band",
    "ks_distance",
    "ks_statistic_samples",
    "log_bins",
    "popularity_change_cdf",
    "popularity_curve",
    "popularity_shares",
    "smirnov_sample",
    "wasserstein",
]
