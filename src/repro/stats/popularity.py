"""Function-popularity curves.

The paper defines a function's popularity as its share of the day's total
invocations (section 3.1.2) and evaluates generated load against the trace
by plotting the cumulative fraction of invocations attributed to the most
popular functions (Figures 1c and 10, following the Azure trace paper).
"""

from __future__ import annotations

import numpy as np

__all__ = ["popularity_shares", "popularity_curve", "popularity_change_cdf"]


def popularity_shares(invocations: np.ndarray) -> np.ndarray:
    """Per-function share of total invocations.

    Parameters
    ----------
    invocations:
        Per-function invocation counts (any non-negative numbers).

    Returns
    -------
    numpy.ndarray
        Shares summing to 1, same order as the input.
    """
    inv = np.asarray(invocations, dtype=np.float64).ravel()
    if inv.size == 0:
        raise ValueError("invocations must be non-empty")
    if np.any(inv < 0):
        raise ValueError("invocation counts must be non-negative")
    total = inv.sum()
    if total <= 0:
        raise ValueError("total invocations must be positive")
    return inv / total


def popularity_curve(invocations: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Cumulative-fraction-of-invocations vs fraction-of-most-popular-functions.

    Returns
    -------
    (x, y):
        ``x[i]`` is the fraction of functions considered (most popular first,
        in (0, 1]); ``y[i]`` the cumulative fraction of all invocations they
        account for.  Plotting ``y`` against ``x`` on a log-x axis reproduces
        Figure 10's axes ("Percentage of Most Popular Functions").
    """
    shares = popularity_shares(invocations)
    order = np.argsort(shares)[::-1]
    y = np.cumsum(shares[order])
    y[-1] = 1.0
    x = np.arange(1, shares.size + 1, dtype=np.float64) / shares.size
    return x, y


def popularity_change_cdf(
    original_shares: np.ndarray,
    original_keys: np.ndarray,
    aggregated_shares: np.ndarray,
    aggregated_keys: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """CDF of popularity changes caused by aggregation (Figure 4).

    For each aggregated Function (grouped by average execution duration), the
    paper compares its popularity against the *maximum* popularity among the
    original trace functions sharing that duration key, and plots the CDF of
    the absolute differences.

    Parameters
    ----------
    original_shares / original_keys:
        Per original-function popularity share and its aggregation key
        (e.g. rounded mean duration).
    aggregated_shares / aggregated_keys:
        Per super-Function share and key.  Keys must be a subset relation:
        every aggregated key appears among the original keys.

    Returns
    -------
    (changes, probs):
        Sorted absolute popularity changes and cumulative probabilities.
    """
    orig_shares = np.asarray(original_shares, dtype=np.float64).ravel()
    orig_keys = np.asarray(original_keys).ravel()
    agg_shares = np.asarray(aggregated_shares, dtype=np.float64).ravel()
    agg_keys = np.asarray(aggregated_keys).ravel()
    if orig_shares.shape != orig_keys.shape:
        raise ValueError("original shares/keys must align")
    if agg_shares.shape != agg_keys.shape:
        raise ValueError("aggregated shares/keys must align")

    # Max original share per key, via sort + segment reduction.
    uniq_keys, inverse = np.unique(orig_keys, return_inverse=True)
    max_share = np.full(uniq_keys.size, -np.inf)
    np.maximum.at(max_share, inverse, orig_shares)

    pos = np.searchsorted(uniq_keys, agg_keys)
    if np.any(pos >= uniq_keys.size) or np.any(uniq_keys[pos] != agg_keys):
        raise ValueError("every aggregated key must exist among original keys")
    changes = np.abs(agg_shares - max_share[pos])
    changes.sort()
    probs = np.arange(1, changes.size + 1, dtype=np.float64) / changes.size
    return changes, probs
