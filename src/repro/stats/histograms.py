"""Small helpers for rendering distribution series.

The benchmark harness prints CDF rows (x, F(x)) the way the paper's figures
draw them: log-spaced x for execution times and memory (both span orders of
magnitude).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from numpy.typing import ArrayLike

from repro.stats.ecdf import EmpiricalCDF

__all__ = ["log_bins", "cdf_series", "format_cdf_table"]


def log_bins(lo: float, hi: float, n: int = 64) -> np.ndarray:
    """Log-spaced bin edges covering ``[lo, hi]``."""
    if lo <= 0 or hi <= lo:
        raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
    return np.geomspace(lo, hi, n + 1)


def cdf_series(
    values: ArrayLike,
    weights: ArrayLike | None = None,
    n: int = 128,
    log_space: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Convenience: samples -> plot-ready ``(x, F(x))`` series."""
    return EmpiricalCDF.from_samples(values, weights).series(n=n, log_space=log_space)


def format_cdf_table(
    series_by_label: dict[str, tuple[np.ndarray, np.ndarray]],
    quantiles: Sequence[float] = (0.10, 0.25, 0.50, 0.75, 0.90, 0.99),
    unit: str = "ms",
) -> str:
    """Render several CDFs as an aligned quantile table (one row per label).

    The figure benchmarks print this so a human can compare the reproduced
    curves against the paper's plots without a plotting stack.
    """
    header = f"{'series':<28}" + "".join(f"p{int(q * 100):<9}" for q in quantiles)
    lines = [header, "-" * len(header)]
    for label, (xs, fs) in series_by_label.items():
        # Invert the sampled series: first x where F(x) >= q.
        cells = []
        for q in quantiles:
            idx = np.searchsorted(fs, q, side="left")
            val = xs[min(idx, xs.size - 1)]
            cells.append(f"{val:<10.3g}")
        lines.append(f"{label:<28}" + "".join(cells) + f" [{unit}]")
    return "\n".join(lines)
