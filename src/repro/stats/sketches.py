"""Mergeable one-pass summaries for streaming trace ingestion.

The statistics FaaSRail's shrink ray consumes -- invocation-duration
CDFs, heavy-tailed function popularity, and the per-minute rate matrix
of super-Functions -- are all computable in a single bounded-memory pass
over the raw trace rows.  This module provides the three accumulators
that :mod:`repro.traces.streaming` folds chunk blocks into:

- :class:`KLLSketch` -- a deterministic KLL-style mergeable quantile
  sketch (uniform-capacity compactor hierarchy with alternating-parity
  selection, no RNG).  It tracks its own worst-case rank-error budget,
  so every estimate ships with an honest bound.
- :class:`SpaceSavingCounter` -- the Metwally et al. heavy-hitter
  summary with the Agarwal et al. mergeable-summaries merge rule and a
  deterministic eviction tie-break.
- :class:`RateMatrixAccumulator` -- exact online segment sums of
  per-minute invocation rows grouped by quantised duration key; its
  integer outputs are byte-identical to the in-memory aggregation stage
  for any chunking.

Determinism contract (see docs/SCALING.md): none of these touch a random
generator.  Each structure's state is a deterministic function of the
*sequence* of observations/merges; the exact integer statistics are
additionally invariant to how that sequence was chunked.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro.stats.ecdf import EmpiricalCDF

__all__ = [
    "KLLSketch",
    "RateMatrixAccumulator",
    "SpaceSavingCounter",
]


class KLLSketch:
    """Deterministic mergeable quantile sketch over scalar samples.

    A uniform-capacity compactor hierarchy: level ``i`` holds items of
    weight ``2**i`` in an unsorted buffer of capacity ``k``.  When a
    buffer overflows it is sorted and every other item (alternating the
    starting parity between compactions, the classic derandomisation of
    KLL's coin flip) is promoted one level up.  Each compaction of level
    ``i`` can shift any query's rank by at most ``2**i``, so the sketch
    maintains an exact worst-case *rank-error budget*: the sum of
    ``2**level`` over all compactions it ever performed.
    :attr:`rank_error_bound` is that budget over the total inserted
    weight -- a sound bound on the KS distance between the sketched and
    the exact empirical CDF.

    With ``k`` items per level and ``n`` total weight the bound behaves
    like ``log2(n / k) / k``; the default ``k = 2048`` keeps it under
    0.01 out to ~10^9 samples.  Inputs smaller than ``k`` never compact,
    so the sketch is *exact* on them.

    Weighted insertion (:meth:`insert_weighted`) decomposes the weight in
    binary and places one copy of the value per set bit directly at the
    matching level, so a function invoked two million times costs ~21
    buffer appends, not two million.
    """

    __slots__ = ("k", "n", "_levels", "_parity", "_error_budget")

    def __init__(self, k: int = 2048) -> None:
        if k < 8:
            raise ValueError(f"sketch capacity k must be >= 8, got {k}")
        self.k = int(k)
        #: Total inserted weight (number of represented samples).
        self.n = 0
        self._levels: list[list[float]] = [[]]
        self._parity: list[int] = [0]
        self._error_budget = 0

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, value: float) -> None:
        """Insert one unit-weight sample."""
        self._levels[0].append(float(value))
        self.n += 1
        if len(self._levels[0]) > self.k:
            self._compress()

    def insert_weighted(self, value: float, weight: int) -> None:
        """Insert ``value`` with positive integer multiplicity ``weight``."""
        w = int(weight)
        if w < 0:
            raise ValueError(f"weight must be non-negative, got {weight}")
        if w == 0:
            return
        v = float(value)
        level = 0
        while w:
            if w & 1:
                self._ensure_level(level)
                self._levels[level].append(v)
            w >>= 1
            level += 1
        self.n += int(weight)
        self._compress()

    def insert_many(self, values: object, weights: object = None) -> None:
        """Bulk insert: ``values`` flat array-like, optional int weights."""
        vals = np.asarray(values, dtype=np.float64).ravel()
        if weights is None:
            for v in vals.tolist():
                self.insert(v)
            return
        wts = np.asarray(weights).ravel()
        if wts.shape != vals.shape:
            raise ValueError(
                f"weights must match values: {wts.shape} vs {vals.shape}"
            )
        if not np.issubdtype(wts.dtype, np.integer):
            raise ValueError("sketch weights must be integers")
        for v, w in zip(vals.tolist(), wts.tolist()):
            self.insert_weighted(v, int(w))

    def _ensure_level(self, level: int) -> None:
        while len(self._levels) <= level:
            self._levels.append([])
            self._parity.append(0)

    def _compress(self) -> None:
        level = 0
        while level < len(self._levels):
            if len(self._levels[level]) > self.k:
                self._compact_level(level)
            level += 1

    def _compact_level(self, level: int) -> None:
        buf = sorted(self._levels[level])
        if len(buf) % 2:
            # An odd straggler stays behind (no rank error from it); keep
            # the largest so the choice is deterministic.
            keep = [buf[-1]]
            buf = buf[:-1]
        else:
            keep = []
        parity = self._parity[level]
        self._parity[level] ^= 1
        promoted = buf[parity::2]
        self._levels[level] = keep
        self._ensure_level(level + 1)
        self._levels[level + 1].extend(promoted)
        self._error_budget += 1 << level

    # ------------------------------------------------------------------
    # merging
    # ------------------------------------------------------------------
    def merge(self, other: KLLSketch) -> None:
        """Fold ``other`` into this sketch (``other`` is left untouched).

        The result summarises the union multiset; error budgets add.
        Merging is deterministic in operand order -- the streaming layer
        therefore reduces chunk partials in chunk order, which is what
        makes ``jobs=N`` byte-identical to ``jobs=1``.
        """
        if other.k != self.k:
            raise ValueError(
                f"cannot merge sketches with different k: {self.k} vs "
                f"{other.k}"
            )
        for level in sorted(range(len(other._levels))):
            items = other._levels[level]
            if items:
                self._ensure_level(level)
                self._levels[level].extend(items)
        self.n += other.n
        self._error_budget += other._error_budget
        self._compress()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def rank_error_bound(self) -> float:
        """Worst-case normalised rank error (KS bound) of any estimate."""
        if self.n == 0:
            return 0.0
        return self._error_budget / self.n

    @property
    def size(self) -> int:
        """Number of retained items across all levels."""
        return sum(len(lvl) for lvl in self._levels)

    def _items_weights(self) -> tuple[np.ndarray, np.ndarray]:
        values: list[float] = []
        weights: list[int] = []
        for level in sorted(range(len(self._levels))):
            items = self._levels[level]
            values.extend(sorted(items))
            weights.extend([1 << level] * len(items))
        return (np.asarray(values, dtype=np.float64),
                np.asarray(weights, dtype=np.int64))

    def to_ecdf(self) -> EmpiricalCDF:
        """The sketched weighted empirical CDF (exact if never compacted)."""
        from repro.stats.ecdf import EmpiricalCDF

        if self.n == 0:
            raise ValueError("cannot build a CDF from an empty sketch")
        values, weights = self._items_weights()
        return EmpiricalCDF.from_samples(values, weights)

    def cdf(self, x: object) -> np.ndarray:
        """Estimate ``P[X <= x]`` at the query points ``x``."""
        if self.n == 0:
            raise ValueError("cannot query an empty sketch")
        values, weights = self._items_weights()
        order = np.argsort(values, kind="stable")
        values = values[order]
        cum = np.cumsum(weights[order], dtype=np.float64)
        q = np.asarray(x, dtype=np.float64)
        idx = np.searchsorted(values, q, side="right")
        out = np.where(idx == 0, 0.0, cum[np.maximum(idx - 1, 0)])
        result: np.ndarray = out / float(cum[-1])
        return result

    def quantile(self, q: object) -> np.ndarray:
        """Estimate the ``q``-quantile(s), ``q`` in [0, 1]."""
        return np.asarray(self.to_ecdf().quantile(q))

    def fingerprint_parts(self) -> tuple[object, ...]:
        """Plain-data state for :func:`repro.cache.fingerprint`."""
        values, weights = self._items_weights()
        return ("kll", self.k, self.n, self._error_budget, values, weights)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"KLLSketch(k={self.k}, n={self.n}, size={self.size}, "
                f"rank_error<={self.rank_error_bound:.4g})")


class SpaceSavingCounter:
    """Deterministic space-saving heavy-hitter counter over string keys.

    Tracks at most ``capacity`` keys.  Guarantees (Metwally et al.):

    - every key whose true count exceeds ``n / capacity`` is present
      (the *top-k superset* guarantee);
    - for a tracked key, ``true <= estimate <= true + error(key)``, and
      ``error(key) <= n / capacity``.

    Eviction picks the minimum-estimate key, ties broken by
    lexicographically smallest key, so the summary is a deterministic
    function of the observation sequence.  :meth:`merge` follows the
    mergeable-summaries rule (Agarwal et al. 2012): an absent key is
    credited the other summary's minimum estimate (its worst-case hidden
    count) before pruning back down to ``capacity``.
    """

    __slots__ = ("capacity", "n", "_counts", "_errors")

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        #: Total observed weight.
        self.n = 0
        self._counts: dict[str, int] = {}
        self._errors: dict[str, int] = {}

    def add(self, key: str, count: int = 1) -> None:
        """Observe ``key`` with multiplicity ``count``."""
        c = int(count)
        if c < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if c == 0:
            return
        self.n += c
        if key in self._counts:
            self._counts[key] += c
            return
        if len(self._counts) < self.capacity:
            self._counts[key] = c
            self._errors[key] = 0
            return
        victim = min(sorted(self._counts), key=lambda k: self._counts[k])
        floor = self._counts.pop(victim)
        self._errors.pop(victim)
        self._counts[key] = floor + c
        self._errors[key] = floor

    def add_many(self, keys: object, counts: object) -> None:
        """Bulk observe aligned ``keys`` / integer ``counts`` arrays."""
        ks = np.asarray(keys).ravel()
        cs = np.asarray(counts).ravel()
        if ks.shape != cs.shape:
            raise ValueError(
                f"counts must match keys: {cs.shape} vs {ks.shape}"
            )
        for k, c in zip(ks.tolist(), cs.tolist()):
            self.add(str(k), int(c))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def estimate(self, key: str) -> int:
        """Upper-bound count estimate for ``key`` (0 if untracked)."""
        return self._counts.get(key, 0)

    def error(self, key: str) -> int:
        """Overestimate bound for a tracked ``key`` (0 if untracked)."""
        return self._errors.get(key, 0)

    def guaranteed_count(self, key: str) -> int:
        """Certain lower bound: ``estimate - error``."""
        return self.estimate(key) - self.error(key)

    @property
    def min_estimate(self) -> int:
        """Smallest tracked estimate (0 while below capacity)."""
        if len(self._counts) < self.capacity:
            return 0
        return min(self._counts.values())

    @property
    def error_bound(self) -> float:
        """``n / capacity`` -- the universal overestimate bound."""
        return self.n / self.capacity

    def top(self, k: int | None = None) -> list[tuple[str, int]]:
        """``(key, estimate)`` pairs, highest estimate first.

        Ties break on the lexicographically smaller key so the ordering
        is deterministic.
        """
        ranked = sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked if k is None else ranked[:k]

    # ------------------------------------------------------------------
    # merging
    # ------------------------------------------------------------------
    def merge(self, other: SpaceSavingCounter) -> None:
        """Fold ``other`` in; the result keeps the superset guarantee."""
        if other.capacity != self.capacity:
            raise ValueError(
                "cannot merge counters with different capacities: "
                f"{self.capacity} vs {other.capacity}"
            )
        self_min = self.min_estimate
        other_min = other.min_estimate
        merged: dict[str, int] = {}
        errors: dict[str, int] = {}
        for key in sorted(set(self._counts) | set(other._counts)):
            in_self = key in self._counts
            in_other = key in other._counts
            est = (self._counts.get(key, self_min)
                   + other._counts.get(key, other_min))
            err = (self._errors[key] if in_self else self_min) + (
                other._errors[key] if in_other else other_min)
            merged[key] = est
            errors[key] = err
        kept = sorted(merged.items(), key=lambda kv: (-kv[1], kv[0]))
        kept = kept[:self.capacity]
        self._counts = dict(kept)
        self._errors = {k: errors[k] for k, _ in kept}
        self.n += other.n

    def fingerprint_parts(self) -> tuple[object, ...]:
        """Plain-data state for :func:`repro.cache.fingerprint`."""
        return ("spacesaving", self.capacity, self.n,
                dict(sorted(self._counts.items())),
                dict(sorted(self._errors.items())))

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SpaceSavingCounter(capacity={self.capacity}, n={self.n}, "
                f"tracked={len(self)})")


class RateMatrixAccumulator:
    """Exact online aggregation of per-minute rows by quantised duration.

    This is the streaming twin of the in-memory aggregation stage
    (:func:`repro.core.aggregation.aggregate_functions`): functions
    sharing a quantised mean duration merge into one super-Function
    whose per-minute invocation row is the sum of its members'.  All
    integer outputs (the rate matrix, per-group invocation counts and
    sizes) are *exact* -- byte-identical to the in-memory stage for any
    chunking, because integer addition is associative.  The
    invocation-weighted group durations are floating-point sums taken in
    observation order; they are deterministic for a fixed chunking and
    agree with the in-memory stage to accumulation-order rounding.

    State is bounded by the number of distinct duration keys (~12.7K for
    the Azure day at 1 ms quantisation), not by the number of functions.
    """

    __slots__ = ("n_minutes", "quantize_ms", "_rows", "_counts",
                 "_weighted_dur", "_sizes")

    def __init__(self, n_minutes: int, quantize_ms: float = 1.0) -> None:
        if n_minutes < 1:
            raise ValueError(f"n_minutes must be >= 1, got {n_minutes}")
        if quantize_ms <= 0:
            raise ValueError(
                f"quantize_ms must be positive, got {quantize_ms}"
            )
        self.n_minutes = int(n_minutes)
        self.quantize_ms = float(quantize_ms)
        self._rows: dict[int, np.ndarray] = {}
        self._counts: dict[int, int] = {}
        self._weighted_dur: dict[int, float] = {}
        self._sizes: dict[int, int] = {}

    @property
    def n_groups(self) -> int:
        return len(self._rows)

    @property
    def total_invocations(self) -> int:
        return sum(self._counts[k] for k in sorted(self._counts))

    def quantize(self, durations_ms: object) -> np.ndarray:
        """Quantised duration keys, matching the in-memory stage exactly."""
        d = np.asarray(durations_ms, dtype=np.float64)
        keys: np.ndarray = np.maximum(
            np.round(d / self.quantize_ms), 1.0
        ).astype(np.int64)
        return keys

    def observe_block(
        self,
        durations_ms: object,
        per_minute: object,
    ) -> None:
        """Fold one block of function rows in.

        ``durations_ms`` is ``(rows,)`` float; ``per_minute`` is
        ``(rows, n_minutes)`` integer counts.  Functions with zero total
        invocations are skipped (they are dropped by the in-memory
        pipeline's ``nonzero_functions`` step too).
        """
        durations = np.asarray(durations_ms, dtype=np.float64)
        matrix = np.asarray(per_minute)
        if matrix.ndim != 2 or matrix.shape[1] != self.n_minutes:
            raise ValueError(
                f"per_minute block must be (rows, {self.n_minutes}), got "
                f"{matrix.shape}"
            )
        if durations.shape != (matrix.shape[0],):
            raise ValueError(
                "durations must align with per_minute rows: "
                f"{durations.shape} vs {matrix.shape}"
            )
        if not np.issubdtype(matrix.dtype, np.integer):
            raise ValueError("per_minute block must be an integer array")
        matrix = matrix.astype(np.int64, copy=False)
        totals = matrix.sum(axis=1, dtype=np.int64)
        invoked = totals > 0
        if not bool(invoked.any()):
            return
        durations = durations[invoked]
        matrix = matrix[invoked]
        totals = totals[invoked]

        keys = self.quantize(durations)
        uniq, inverse = np.unique(keys, return_inverse=True)
        block_rows = np.zeros((uniq.size, self.n_minutes), dtype=np.int64)
        np.add.at(block_rows, inverse, matrix)
        block_counts = np.zeros(uniq.size, dtype=np.int64)
        np.add.at(block_counts, inverse, totals)
        block_weighted = np.zeros(uniq.size, dtype=np.float64)
        np.add.at(block_weighted, inverse,
                  durations * totals.astype(np.float64))
        block_sizes = np.bincount(inverse, minlength=uniq.size)

        for i, key in enumerate(uniq.tolist()):
            row = self._rows.get(key)
            if row is None:
                self._rows[key] = block_rows[i].copy()
                self._counts[key] = int(block_counts[i])
                self._weighted_dur[key] = float(block_weighted[i])
                self._sizes[key] = int(block_sizes[i])
            else:
                row += block_rows[i]
                self._counts[key] += int(block_counts[i])
                self._weighted_dur[key] += float(block_weighted[i])
                self._sizes[key] += int(block_sizes[i])

    def merge(self, other: RateMatrixAccumulator) -> None:
        """Fold ``other`` in (exact; order only affects float rounding)."""
        if (other.n_minutes != self.n_minutes
                or other.quantize_ms != self.quantize_ms):
            raise ValueError(
                "cannot merge rate accumulators with different shapes: "
                f"({self.n_minutes}, {self.quantize_ms}) vs "
                f"({other.n_minutes}, {other.quantize_ms})"
            )
        for key in sorted(other._rows):
            row = self._rows.get(key)
            if row is None:
                self._rows[key] = other._rows[key].copy()
                self._counts[key] = other._counts[key]
                self._weighted_dur[key] = other._weighted_dur[key]
                self._sizes[key] = other._sizes[key]
            else:
                row += other._rows[key]
                self._counts[key] += other._counts[key]
                self._weighted_dur[key] += other._weighted_dur[key]
                self._sizes[key] += other._sizes[key]

    def finalize(self) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                np.ndarray, np.ndarray]:
        """``(keys, matrix, counts, durations, sizes)`` sorted by key.

        ``matrix`` is the exact ``(n_groups, n_minutes)`` int64 rate
        matrix; ``durations`` the invocation-weighted mean duration per
        group.  Key order matches ``np.unique`` in the in-memory stage.
        """
        if not self._rows:
            raise ValueError("accumulator has observed no invoked functions")
        keys = sorted(self._rows)
        matrix = np.vstack([self._rows[k] for k in keys])
        counts = np.asarray([self._counts[k] for k in keys], dtype=np.int64)
        weighted = np.asarray([self._weighted_dur[k] for k in keys],
                              dtype=np.float64)
        sizes = np.asarray([self._sizes[k] for k in keys], dtype=np.int64)
        durations = weighted / counts.astype(np.float64)
        return (np.asarray(keys, dtype=np.int64), matrix, counts,
                durations, sizes)

    def fingerprint_parts(self) -> tuple[object, ...]:
        """Plain-data state for :func:`repro.cache.fingerprint`."""
        keys, matrix, counts, durations, sizes = self.finalize()
        return ("ratematrix", self.n_minutes, self.quantize_ms,
                keys, matrix, counts, durations, sizes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RateMatrixAccumulator(n_minutes={self.n_minutes}, "
                f"quantize_ms={self.quantize_ms}, groups={self.n_groups})")
