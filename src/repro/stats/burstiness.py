"""Burstiness metrics for arrival series.

The paper's sub-minute modelling discussion (sections 3.2.1.3 and 3.3)
leans on the observation -- made quantitative by the Huawei per-second
data -- that FaaS request arrivals are bursty *below* the minute scale.
These metrics let the test and benchmark suites state that claim in
numbers:

- the **index of dispersion** (Fano factor) of binned counts: 1 for a
  Poisson process, <1 for regular (equidistant) arrivals, >1 for
  clustered/bursty ones;
- the **burstiness parameter** B = (sigma - mu) / (sigma + mu) of
  inter-arrival times (Goh & Barabasi): -1 periodic, 0 Poisson, ->1 for
  extremely bursty;
- **peak-to-mean ratio** over windows, the capacity-planning view;
- lagged **autocorrelation** of a rate series, the diurnal-trend view.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "index_of_dispersion",
    "burstiness_parameter",
    "peak_to_mean",
    "rate_autocorrelation",
]


def index_of_dispersion(counts: np.ndarray) -> float:
    """Variance-to-mean ratio of a binned count series (Fano factor)."""
    counts = np.asarray(counts, dtype=np.float64).ravel()
    if counts.size < 2:
        raise ValueError("need at least two bins")
    mean = counts.mean()
    if mean == 0:
        raise ValueError("count series is identically zero")
    return float(counts.var() / mean)


def burstiness_parameter(inter_arrivals: np.ndarray) -> float:
    """Goh-Barabasi burstiness of inter-arrival gaps, in [-1, 1]."""
    gaps = np.asarray(inter_arrivals, dtype=np.float64).ravel()
    if gaps.size < 2:
        raise ValueError("need at least two gaps")
    if np.any(gaps < 0):
        raise ValueError("gaps must be non-negative")
    mu = gaps.mean()
    sigma = gaps.std()
    if sigma + mu == 0:
        return -1.0  # all-zero gaps: degenerate, maximally regular
    return float((sigma - mu) / (sigma + mu))


def peak_to_mean(counts: np.ndarray) -> float:
    """Peak window count over mean window count."""
    counts = np.asarray(counts, dtype=np.float64).ravel()
    if counts.size == 0:
        raise ValueError("empty count series")
    mean = counts.mean()
    if mean == 0:
        raise ValueError("count series is identically zero")
    return float(counts.max() / mean)


def rate_autocorrelation(series: np.ndarray, max_lag: int) -> np.ndarray:
    """Normalised autocorrelation of a rate series for lags 1..max_lag.

    A diurnal load series shows slowly-decaying positive autocorrelation;
    a flat Poisson series decorrelates immediately -- the Figure-8
    contrast, viewed through a statistic instead of the eye.
    """
    x = np.asarray(series, dtype=np.float64).ravel()
    if max_lag <= 0:
        raise ValueError("max_lag must be positive")
    if x.size <= max_lag:
        raise ValueError("series shorter than max_lag")
    x = x - x.mean()
    denom = float(x @ x)
    if denom == 0:
        raise ValueError("series is constant")
    out = np.empty(max_lag)
    for lag in range(1, max_lag + 1):
        out[lag - 1] = float(x[:-lag] @ x[lag:]) / denom
    return out
