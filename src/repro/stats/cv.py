"""Coefficient-of-variation analysis.

Paper section 3.1.2 ("Sampling") justifies working with a single trace day:
almost 90% of Azure functions have day-to-day CVs below 1 for both their
daily average execution time and their daily invocation count (Figure 3).
These helpers compute exactly that per-row CV and the CDF series shown in
the figure.
"""

from __future__ import annotations

import numpy as np

__all__ = ["coefficient_of_variation", "cv_cdf_series"]


def coefficient_of_variation(
    values: np.ndarray,
    axis: int = -1,
    *,
    ddof: int = 0,
) -> np.ndarray:
    """Per-slice CV (= std / mean) along ``axis``.

    Rows whose mean is zero (functions never invoked / zero runtime across
    all days) yield CV 0 when the std is also zero, else ``inf``; this mirrors
    how one would treat an all-idle function as perfectly stable.

    Parameters
    ----------
    values:
        Array of observations, e.g. shape ``(n_functions, n_days)``.
    axis:
        Axis holding the repeated observations (days).
    ddof:
        Delta degrees of freedom for the standard deviation.
    """
    values = np.asarray(values, dtype=np.float64)
    mean = values.mean(axis=axis)
    std = values.std(axis=axis, ddof=ddof)
    with np.errstate(divide="ignore", invalid="ignore"):
        cv = np.where(mean != 0.0, std / np.where(mean != 0.0, mean, 1.0), 0.0)
        cv = np.where((mean == 0.0) & (std > 0.0), np.inf, cv)
    return cv


def cv_cdf_series(
    cv: np.ndarray, max_cv: float = 3.0, n: int = 512
) -> tuple[np.ndarray, np.ndarray]:
    """``(x, F(x))`` series of a CV sample clipped at ``max_cv``.

    Figure 3 plots the CDF on [0, 3]; values above ``max_cv`` still count in
    the denominator, so the curve need not reach 1 inside the window.
    """
    cv = np.asarray(cv, dtype=np.float64).ravel()
    cv = cv[np.isfinite(cv)]
    if cv.size == 0:
        raise ValueError("need at least one finite CV value")
    xs = np.linspace(0.0, max_cv, n)
    sorted_cv = np.sort(cv)
    fs = np.searchsorted(sorted_cv, xs, side="right") / cv.size
    return xs, fs
