"""TEL001: no per-iteration telemetry lookups inside loops.

The telemetry layer's perf contract (``benchmarks/test_perf_telemetry``)
is <5% overhead enabled and a zero-allocation no-op disabled.  Both die
if hot loops re-resolve metrics per iteration: ``registry.counter(...)``
is a dict lookup plus tuple build, and ``telemetry.active()`` is a
module-global read that belongs *outside* the loop, guarding a prebound
metric handle or an ``observe_many`` bulk call.

Flagged inside any ``for``/``while`` body:

- calls resolving to ``repro.telemetry.registry.active`` (or its
  ``_telemetry.active()`` import alias);
- registry accessor calls -- an attribute call named ``counter`` /
  ``gauge`` / ``histogram`` / ``timer`` / ``event`` whose first argument
  is a string literal (the get-or-create pattern).

Operations on prebound handles (``ctr.inc()``, ``hist.observe(x)``) are
fine and never flagged.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.engine import Rule
from repro.lint.findings import Finding

__all__ = ["TelemetryHotLoop"]

_ACCESSORS = frozenset({"counter", "gauge", "histogram", "timer", "event"})

_ACTIVE_TARGETS = frozenset({
    "repro.telemetry.registry.active",
    "repro.telemetry.active",
    "registry.active",
})


def _is_registry_lookup(node: ast.Call) -> bool:
    return (
        isinstance(node.func, ast.Attribute)
        and node.func.attr in _ACCESSORS
        and bool(node.args)
        and isinstance(node.args[0], ast.Constant)
        and isinstance(node.args[0].value, str)
    )


class TelemetryHotLoop(Rule):
    """TEL001: hoist telemetry guards and metric lookups out of loops."""

    rule_id = "TEL001"
    slug = "telemetry-hot-loop"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
                continue
            for node in ast.walk(loop):
                if node is loop or not isinstance(node, ast.Call):
                    continue
                target = ctx.resolve(node.func)
                if target in _ACTIVE_TARGETS or (
                    target is not None and target.endswith("telemetry.active")
                ):
                    yield ctx.finding(
                        self.rule_id, self.slug, node,
                        "telemetry.active() inside a loop; read the "
                        "module-global guard once before the loop",
                    )
                elif _is_registry_lookup(node):
                    assert isinstance(node.func, ast.Attribute)
                    yield ctx.finding(
                        self.rule_id, self.slug, node,
                        f"registry .{node.func.attr}(...) lookup inside "
                        "a loop; bind the metric before the loop (or "
                        "batch with observe_many)",
                    )
