"""Rule registry and the lint driver.

A rule is a class with a ``rule_id`` (e.g. ``DET001``), a ``slug``
(e.g. ``wall-clock``), and a ``check(ctx)`` generator yielding
:class:`~repro.lint.findings.Finding` records.  The driver parses every
file first, assembles the whole-program
:class:`~repro.lint.callgraph.ProjectContext` (symbol table + call
graph) over the parsed set, then runs every selected rule over each
shared :class:`~repro.lint.context.FileContext` -- so per-file rules and
interprocedural rules (DET005, CONC001/2, PAR001) share one driver and
one pragma layer.  Findings covered by a ``# repro: allow-<rule>``
pragma are marked suppressed; with ``check_pragmas`` the driver also
reports pragma comments that suppressed nothing (rule ``PRAGMA001``).

Rules register themselves via ``Rule.__init_subclass__``, so importing a
rule module is all it takes to make its rules available.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.pragmas import pragma_records

__all__ = [
    "LintResult",
    "PRAGMA_RULE_ID",
    "Rule",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
]

#: Pseudo-rule ID under which dead pragmas are reported.  Not a
#: :class:`Rule` subclass: dead-pragma detection is a property of the
#: suppression layer, not of any single AST pattern, and it must observe
#: *every* rule's findings to know a pragma is dead.
PRAGMA_RULE_ID = "PRAGMA001"
PRAGMA_SLUG = "dead-pragma"


class Rule:
    """Base class; subclasses auto-register by ``rule_id``."""

    rule_id: str = ""
    slug: str = ""

    _registry: dict[str, type[Rule]] = {}

    def __init_subclass__(cls, **kwargs: object) -> None:
        super().__init_subclass__(**kwargs)
        if not cls.rule_id or not cls.slug:
            raise TypeError(
                f"{cls.__name__} must define class attributes "
                "`rule_id` and `slug`"
            )
        existing = Rule._registry.get(cls.rule_id)
        if existing is not None and existing is not cls:
            raise ValueError(
                f"duplicate rule id {cls.rule_id!r}: "
                f"{existing.__name__} vs {cls.__name__}"
            )
        Rule._registry[cls.rule_id] = cls

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    @property
    def description(self) -> str:
        doc = type(self).__doc__ or ""
        return doc.strip().splitlines()[0] if doc else ""


def _load_rule_modules() -> None:
    # Importing registers every Rule subclass; deferred so that
    # ``engine`` itself can be imported by the rule modules.
    from repro.lint import (  # noqa: F401
        rules_cache,
        rules_determinism,
        rules_generic,
        rules_interproc,
        rules_telemetry,
    )


def all_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate every registered rule, in rule-ID order.

    ``select`` filters by rule ID or slug (case-insensitive); an unknown
    selector raises ``ValueError`` so typos cannot silently disable a
    check.
    """
    _load_rule_modules()
    rules = [cls() for _, cls in sorted(Rule._registry.items())]
    if select is None:
        return rules
    wanted = {s.strip().lower() for s in select if s.strip()}
    known = {r.rule_id.lower() for r in rules} | {r.slug for r in rules}
    unknown = wanted - known
    if unknown:
        raise ValueError(
            f"unknown rule selector(s): {', '.join(sorted(unknown))}"
        )
    return [
        r for r in rules
        if r.rule_id.lower() in wanted or r.slug in wanted
    ]


@dataclass
class LintResult:
    """Outcome of one lint run over one or more files."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: list[Finding] = field(default_factory=list)

    @property
    def unsuppressed(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def ok(self) -> bool:
        return not self.unsuppressed and not self.parse_errors

    def summary(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for f in self.unsuppressed:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return dict(sorted(counts.items()))

    def extend(self, other: LintResult) -> None:
        self.findings.extend(other.findings)
        self.parse_errors.extend(other.parse_errors)
        self.files_checked += other.files_checked


def _apply_pragmas(
    findings: list[Finding], source: str, path: Path,
) -> tuple[list[Finding], list[Finding]]:
    """Suppress pragma-covered findings; also return a dead-pragma
    finding for every pragma comment that suppressed nothing."""
    records = pragma_records(source)
    if not records:
        return sorted(findings), []
    coverage: dict[int, list[int]] = {}
    for idx, pragma in enumerate(records):
        for line in pragma.covered:
            coverage.setdefault(line, []).append(idx)
    used = [False] * len(records)
    out = []
    for f in findings:
        hit = False
        for line in range(f.line, max(f.line, f.end_line) + 1):
            for idx in coverage.get(line, ()):
                pragma = records[idx]
                if f.rule.lower() in pragma.tokens or f.slug in pragma.tokens:
                    used[idx] = True
                    hit = True
        out.append(f.suppress() if hit else f)
    dead = [
        Finding(
            path=str(path), line=pragma.line, col=pragma.col,
            rule=PRAGMA_RULE_ID, slug=PRAGMA_SLUG,
            message=(f"pragma `{pragma.text}` suppresses no finding; "
                     "remove it"),
        )
        for idx, pragma in enumerate(records) if not used[idx]
    ]
    return sorted(out), dead


def _parse_context(
    path: Path, source: str, result: LintResult,
) -> FileContext | None:
    try:
        return FileContext.parse(path, source)
    except SyntaxError as exc:
        result.parse_errors.append(Finding(
            path=str(path), line=exc.lineno or 0, col=exc.offset or 0,
            rule="PARSE", slug="syntax-error",
            message=f"could not parse: {exc.msg}",
        ))
        return None


def _lint_context(
    ctx: FileContext,
    rules: Sequence[Rule],
    check_pragmas: bool = False,
) -> LintResult:
    """Run ``rules`` over one parsed context (``ctx.project`` must
    already be set by :func:`~repro.lint.callgraph.build_project`)."""
    result = LintResult(files_checked=1)
    findings: list[Finding] = []
    for rule in rules:
        findings.extend(rule.check(ctx))
    # Dedup by (path, line, col, rule): nested constructs can make a rule
    # visit the same call site twice.
    findings = list(dict.fromkeys(findings))
    applied, dead = _apply_pragmas(findings, ctx.source, ctx.path)
    result.findings = applied
    if check_pragmas:
        result.findings.extend(dead)
        result.findings.sort()
    return result


def lint_source(
    source: str,
    path: Path | str = "<string>",
    rules: Sequence[Rule] | None = None,
    check_pragmas: bool = False,
) -> LintResult:
    """Lint one in-memory source blob (the test suite's entry point).

    Builds a degenerate single-file project, so intra-module
    interprocedural findings (a taint laundered through a local helper)
    are visible even without the rest of the tree.  ``check_pragmas``
    is only meaningful when every rule runs: a pragma for an unselected
    rule would be falsely reported dead.
    """
    from repro.lint.callgraph import build_project

    path = Path(path)
    result = LintResult()
    ctx = _parse_context(path, source, result)
    if ctx is None:
        result.files_checked = 1
        return result
    build_project([ctx])
    if rules is None:
        rules = all_rules()
    result.extend(_lint_context(ctx, rules, check_pragmas=check_pragmas))
    return result


def lint_file(
    path: Path,
    rules: Sequence[Rule] | None = None,
    check_pragmas: bool = False,
) -> LintResult:
    return lint_source(path.read_text(), path, rules,
                       check_pragmas=check_pragmas)


def _python_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    for p in paths:
        p = Path(p)
        if p.is_dir():
            yield from sorted(
                f for f in p.rglob("*.py")
                if "__pycache__" not in f.parts
            )
        else:
            yield p


def lint_paths(
    paths: Iterable[Path | str],
    select: Iterable[str] | None = None,
    check_pragmas: bool = False,
) -> LintResult:
    """Lint every ``.py`` file under ``paths`` (files or directories).

    All files are parsed before any rule runs, so the interprocedural
    rules see the whole program: a taint source in one module flags its
    consumer in another, and ``Process(target=...)`` registrations in
    the service scope the fork-safety rules project-wide.
    """
    from repro.lint.callgraph import build_project

    rules = all_rules(select)
    total = LintResult()
    contexts: list[FileContext] = []
    for path in _python_files(paths):
        ctx = _parse_context(path, path.read_text(), total)
        if ctx is None:
            total.files_checked += 1
        else:
            contexts.append(ctx)
    build_project(contexts)
    for ctx in contexts:
        total.extend(_lint_context(ctx, rules, check_pragmas=check_pragmas))
    total.findings.sort()
    return total
