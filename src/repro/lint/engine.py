"""Rule registry and the lint driver.

A rule is a class with a ``rule_id`` (e.g. ``DET001``), a ``slug``
(e.g. ``wall-clock``), and a ``check(ctx)`` generator yielding
:class:`~repro.lint.findings.Finding` records.  The driver parses each
file once, runs every selected rule over the shared
:class:`~repro.lint.context.FileContext`, then marks findings that a
``# repro: allow-<rule>`` pragma covers as suppressed.

Rules register themselves via ``Rule.__init_subclass__``, so importing a
rule module is all it takes to make its rules available.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.pragmas import pragma_lines

__all__ = [
    "LintResult",
    "Rule",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
]


class Rule:
    """Base class; subclasses auto-register by ``rule_id``."""

    rule_id: str = ""
    slug: str = ""

    _registry: dict[str, type[Rule]] = {}

    def __init_subclass__(cls, **kwargs: object) -> None:
        super().__init_subclass__(**kwargs)
        if not cls.rule_id or not cls.slug:
            raise TypeError(
                f"{cls.__name__} must define class attributes "
                "`rule_id` and `slug`"
            )
        existing = Rule._registry.get(cls.rule_id)
        if existing is not None and existing is not cls:
            raise ValueError(
                f"duplicate rule id {cls.rule_id!r}: "
                f"{existing.__name__} vs {cls.__name__}"
            )
        Rule._registry[cls.rule_id] = cls

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    @property
    def description(self) -> str:
        doc = type(self).__doc__ or ""
        return doc.strip().splitlines()[0] if doc else ""


def _load_rule_modules() -> None:
    # Importing registers every Rule subclass; deferred so that
    # ``engine`` itself can be imported by the rule modules.
    from repro.lint import (  # noqa: F401
        rules_cache,
        rules_determinism,
        rules_generic,
        rules_telemetry,
    )


def all_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate every registered rule, in rule-ID order.

    ``select`` filters by rule ID or slug (case-insensitive); an unknown
    selector raises ``ValueError`` so typos cannot silently disable a
    check.
    """
    _load_rule_modules()
    rules = [cls() for _, cls in sorted(Rule._registry.items())]
    if select is None:
        return rules
    wanted = {s.strip().lower() for s in select if s.strip()}
    known = {r.rule_id.lower() for r in rules} | {r.slug for r in rules}
    unknown = wanted - known
    if unknown:
        raise ValueError(
            f"unknown rule selector(s): {', '.join(sorted(unknown))}"
        )
    return [
        r for r in rules
        if r.rule_id.lower() in wanted or r.slug in wanted
    ]


@dataclass
class LintResult:
    """Outcome of one lint run over one or more files."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: list[Finding] = field(default_factory=list)

    @property
    def unsuppressed(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def ok(self) -> bool:
        return not self.unsuppressed and not self.parse_errors

    def summary(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for f in self.unsuppressed:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return dict(sorted(counts.items()))

    def extend(self, other: LintResult) -> None:
        self.findings.extend(other.findings)
        self.parse_errors.extend(other.parse_errors)
        self.files_checked += other.files_checked


def _apply_pragmas(findings: list[Finding], source: str) -> list[Finding]:
    allowed = pragma_lines(source)
    if not allowed:
        return sorted(findings)
    out = []
    for f in findings:
        tokens: set[str] = set()
        for line in range(f.line, max(f.line, f.end_line) + 1):
            tokens |= allowed.get(line, set())
        if f.rule.lower() in tokens or f.slug in tokens:
            f = f.suppress()
        out.append(f)
    return sorted(out)


def lint_source(
    source: str,
    path: Path | str = "<string>",
    rules: Sequence[Rule] | None = None,
) -> LintResult:
    """Lint one in-memory source blob (the test suite's entry point)."""
    path = Path(path)
    result = LintResult(files_checked=1)
    try:
        ctx = FileContext.parse(path, source)
    except SyntaxError as exc:
        result.parse_errors.append(Finding(
            path=str(path), line=exc.lineno or 0, col=exc.offset or 0,
            rule="PARSE", slug="syntax-error",
            message=f"could not parse: {exc.msg}",
        ))
        return result
    if rules is None:
        rules = all_rules()
    findings: list[Finding] = []
    for rule in rules:
        findings.extend(rule.check(ctx))
    # Dedup by (path, line, col, rule): nested constructs can make a rule
    # visit the same call site twice.
    findings = list(dict.fromkeys(findings))
    result.findings = _apply_pragmas(findings, source)
    return result


def lint_file(path: Path, rules: Sequence[Rule] | None = None) -> LintResult:
    return lint_source(path.read_text(), path, rules)


def _python_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    for p in paths:
        p = Path(p)
        if p.is_dir():
            yield from sorted(
                f for f in p.rglob("*.py")
                if "__pycache__" not in f.parts
            )
        else:
            yield p


def lint_paths(
    paths: Iterable[Path | str],
    select: Iterable[str] | None = None,
) -> LintResult:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    rules = all_rules(select)
    total = LintResult()
    for path in _python_files(paths):
        total.extend(lint_file(path, rules))
    total.findings.sort()
    return total
