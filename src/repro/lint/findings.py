"""The finding record every rule emits."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Orderable so reports are deterministic: findings sort by path, then
    line/column, then rule ID.  ``suppressed`` findings matched an inline
    ``# repro: allow-<rule>`` pragma; they are reported (JSON mode) but
    never fail the run.
    """

    path: str
    line: int
    col: int
    rule: str
    slug: str = field(compare=False)
    message: str = field(compare=False)
    end_line: int = field(default=0, compare=False)
    suppressed: bool = field(default=False, compare=False)

    def suppress(self) -> Finding:
        return replace(self, suppressed=True)

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "slug": self.slug,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
        }

    def __str__(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} [{self.slug}] {self.message}{tag}")
