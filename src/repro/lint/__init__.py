"""repro-lint: whole-program determinism & cache-safety analyzer.

The pipeline's correctness contract -- ``jobs=N`` byte-identical to
sequential, cache hit identical to miss, telemetry on identical to off
-- rests on source-level conventions (RNG discipline, no wall-clock in
seeded stages, complete cache fingerprints, fork-safe workers).  This
package turns those conventions into machine-checked rules over the
stdlib ``ast``:

==========  ====================  ==========================================
Rule ID     Slug                  Invariant enforced
==========  ====================  ==========================================
DET001      wall-clock            no wall-clock / entropy sources
DET002      global-rng            no legacy or global RNG state
DET003      unordered-iter        no set/``dict.keys()`` iteration in
                                  seeded packages
DET005      interproc-entropy     no calls whose *transitive* return value
                                  derives from entropy, in seeded stages
CACHE001    fingerprint           cache fingerprints cover every
                                  output-affecting parameter
CONC001     fork-unsafe-global    no module-global mutation reachable from
                                  a ``Process(target=...)`` entry point
CONC002     unpicklable-ipc       no lambdas / nested functions / open
                                  handles into ``Process`` or pipe sends
PAR001      scalar-bulk-parity    scalar/bulk method pairs must be pinned
                                  by the differential parity harness
TEL001      telemetry-hot-loop    no per-iteration telemetry lookups in
                                  loops
GEN001      float-eq              no ``==`` / ``!=`` against float literals
GEN002      mutable-default       no mutable default argument values
GEN003      bare-except           no bare ``except:`` clauses
==========  ====================  ==========================================

``DET005``, ``CONC001``, ``CONC002`` and ``PAR001`` are interprocedural:
:func:`lint_paths` builds a project-wide symbol table and call graph
(:mod:`repro.lint.callgraph`) before rules run, so taint and
reachability follow calls across files.  Intentional violations carry an
inline pragma on the offending line (or the line directly above)::

    t0 = time.perf_counter()  # repro: allow-wall-clock

Pragmas accept the rule ID (``allow-det001``) or slug
(``allow-wall-clock``), comma-separated for multiple rules; pragmas that
no longer suppress anything are themselves flagged under
``--check-pragmas``.  See ``docs/DETERMINISM.md`` for the full
catalogue, the taint model, and the incremental-cache semantics.
"""

from __future__ import annotations

from repro.lint.engine import LintResult, Rule, all_rules, lint_paths, lint_source
from repro.lint.findings import Finding
from repro.lint.incremental import IncrementalStats, lint_paths_incremental
from repro.lint.pragmas import pragma_lines, pragma_records
from repro.lint.reporters import render_console, render_json, render_sarif

__all__ = [
    "Finding",
    "IncrementalStats",
    "LintResult",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_paths_incremental",
    "lint_source",
    "pragma_lines",
    "pragma_records",
    "render_console",
    "render_json",
    "render_sarif",
]
