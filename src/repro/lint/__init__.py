"""repro-lint: AST-based determinism & cache-safety analyzer.

The pipeline's correctness contract -- ``jobs=N`` byte-identical to
sequential, cache hit identical to miss, telemetry on identical to off
-- rests on source-level conventions (RNG discipline, no wall-clock in
seeded stages, complete cache fingerprints).  This package turns those
conventions into machine-checked rules over the stdlib ``ast``:

==========  ==================  ============================================
Rule ID     Slug                Invariant enforced
==========  ==================  ============================================
DET001      wall-clock          no wall-clock / entropy sources
DET002      global-rng          no legacy or global RNG state
DET003      unordered-iter      no set/``dict.keys()`` iteration in
                                seeded packages
CACHE001    fingerprint         cache fingerprints cover every
                                output-affecting parameter
TEL001      telemetry-hot-loop  no per-iteration telemetry lookups in loops
GEN001      float-eq            no ``==`` / ``!=`` against float literals
GEN002      mutable-default     no mutable default argument values
GEN003      bare-except         no bare ``except:`` clauses
==========  ==================  ============================================

Intentional violations carry an inline pragma on the offending line (or
the line directly above)::

    t0 = time.perf_counter()  # repro: allow-wall-clock

Pragmas accept the rule ID (``allow-det001``) or slug
(``allow-wall-clock``), comma-separated for multiple rules.  See
``docs/DETERMINISM.md`` for the full catalogue.
"""

from __future__ import annotations

from repro.lint.engine import LintResult, Rule, all_rules, lint_paths, lint_source
from repro.lint.findings import Finding
from repro.lint.pragmas import pragma_lines
from repro.lint.reporters import render_console, render_json

__all__ = [
    "Finding",
    "LintResult",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "pragma_lines",
    "render_console",
    "render_json",
]
