"""Project-wide symbol table and call graph for whole-program rules.

The per-file rules (DET001..) see one ``ast.Module`` at a time, which is
exactly the blind spot an unseeded RNG laundered through a helper, a
fork-unsafe global mutated three calls below a worker entry point, or an
unregistered bulk method exploits.  :class:`ProjectContext` closes it:
every file under the linted tree is parsed once, its functions and
classes land in a fully-qualified symbol table, and every call site is
resolved -- through import aliases, same-module names, ``self.``/
``cls.`` method dispatch, and project base classes -- into a call graph
the interprocedural rules (:mod:`repro.lint.rules_interproc`) traverse.

Resolution is deliberately *syntactic*: no type inference, no tracking
of values through containers or call results.  A call the resolver
cannot name becomes an external edge (kept, so taint sources like
``time.time`` stay visible) or is dropped (attribute chains rooted in
locals).  That makes the graph an under-approximation of real dispatch
-- fine for lint rules, which want high-signal findings, not soundness
proofs.

The taint layer computes, by monotone fixpoint over the graph (cycles
terminate because the tainted set only grows), which project functions
*return* values derived from wall-clock/entropy sources -- the
``returns_tainted`` set DET005 checks deterministic-stage call sites
against.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.context import FileContext, dotted_name

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ProjectContext",
    "build_project",
]

#: Call targets whose return value is wall-clock or OS entropy -- the
#: roots of the interprocedural taint analysis.  Mirrors (and extends)
#: the DET001 deny list with the *unseeded* Generator constructors:
#: ``np.random.default_rng()`` with no arguments seeds from OS entropy,
#: which is exactly the laundering DET005 exists to catch.
ENTROPY_SOURCES = frozenset({
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.clock_gettime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.token_urlsafe",
    "secrets.randbits",
    "secrets.randbelow",
})

#: Constructors that are entropy sources only when called *without*
#: arguments (seedless = OS-entropy-seeded).
UNSEEDED_CONSTRUCTORS = frozenset({
    "numpy.random.default_rng",
    "numpy.random.SeedSequence",
})


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge: ``target`` is a fully-qualified project
    symbol (``repro.loadgen.service._run_shard``) or an external dotted
    name (``time.time``); ``node`` is the ``ast.Call`` for findings."""

    target: str
    node: ast.Call = field(compare=False, hash=False)


@dataclass
class FunctionInfo:
    """One function or method in the project symbol table."""

    qualname: str
    module: str
    name: str
    cls: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    ctx: FileContext
    calls: list[CallSite] = field(default_factory=list)

    @property
    def path(self) -> Path:
        return self.ctx.path


@dataclass
class ClassInfo:
    """One class: its methods by name and its resolvable base classes."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    ctx: FileContext
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: Fully-qualified project base classes (external bases dropped);
    #: ``is_interface`` marks Protocol/ABC declarations.
    bases: list[str] = field(default_factory=list)
    is_interface: bool = False


def _is_interface_class(node: ast.ClassDef, ctx: FileContext) -> bool:
    """Protocol / ABC declarations describe a pair, they don't implement
    one -- PAR001 and the taint layer skip them."""
    for base in node.bases:
        resolved = ctx.resolve(base) or ".".join(dotted_name(base))
        tail = resolved.rsplit(".", 1)[-1] if resolved else ""
        if tail in ("Protocol", "ABC", "ABCMeta"):
            return True
    return False


class _SymbolCollector:
    """First pass: module-level functions, classes, and their methods."""

    def __init__(self, project: ProjectContext) -> None:
        self.project = project

    def collect(self, ctx: FileContext) -> None:
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(ctx, node, cls=None)
            elif isinstance(node, ast.ClassDef):
                self._add_class(ctx, node)

    def _add_function(
        self,
        ctx: FileContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: ClassInfo | None,
    ) -> FunctionInfo:
        scope = f"{cls.name}." if cls is not None else ""
        info = FunctionInfo(
            qualname=f"{ctx.module}.{scope}{node.name}",
            module=ctx.module,
            name=node.name,
            cls=cls.name if cls is not None else None,
            node=node,
            ctx=ctx,
        )
        self.project.functions[info.qualname] = info
        if cls is not None:
            cls.methods[node.name] = info
        return info

    def _add_class(self, ctx: FileContext, node: ast.ClassDef) -> None:
        info = ClassInfo(
            qualname=f"{ctx.module}.{node.name}",
            module=ctx.module,
            name=node.name,
            node=node,
            ctx=ctx,
            is_interface=_is_interface_class(node, ctx),
        )
        for base in node.bases:
            resolved = ctx.resolve(base)
            if resolved is None:
                parts = dotted_name(base)
                if len(parts) == 1:
                    resolved = f"{ctx.module}.{parts[0]}"
            if resolved is not None:
                info.bases.append(resolved)
        self.project.classes[info.qualname] = info
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(ctx, child, cls=info)


@dataclass
class ProjectContext:
    """Whole-program view over every linted file.

    Built once per lint run by :func:`build_project`; per-file rule
    contexts carry a reference (``FileContext.project``), so a rule can
    stay a per-file generator while consulting cross-module facts.
    """

    #: module name -> its parsed per-file context
    modules: dict[str, FileContext] = field(default_factory=dict)
    #: fully-qualified function name -> info (methods use Class.method)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: fully-qualified class name -> info
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: project root (the directory holding ``src``), when detectable
    root: Path | None = None
    _returns_tainted: dict[str, str] | None = None
    _worker_reachable: frozenset[str] | None = None
    _harness_names: frozenset[str] | None = None

    # ------------------------------------------------------------------
    # symbol lookup
    # ------------------------------------------------------------------
    def function(self, qualname: str) -> FunctionInfo | None:
        return self.functions.get(qualname)

    def resolve_method(self, cls_qualname: str, name: str) -> str | None:
        """Resolve ``name`` on a class, walking project base classes
        (linear, cycle-guarded -- an approximation of the MRO)."""
        seen: set[str] = set()
        stack = [cls_qualname]
        while stack:
            qn = stack.pop(0)
            if qn in seen:
                continue
            seen.add(qn)
            cls = self.classes.get(qn)
            if cls is None:
                continue
            if name in cls.methods:
                return cls.methods[name].qualname
            stack.extend(cls.bases)
        return None

    # ------------------------------------------------------------------
    # call resolution (second pass)
    # ------------------------------------------------------------------
    def _resolve_call(
        self, fn: FunctionInfo, node: ast.Call
    ) -> str | None:
        ctx = fn.ctx
        func = node.func
        parts = dotted_name(func)
        if not parts:
            return None
        # self.m(...) / cls.m(...) inside a method
        if fn.cls is not None and len(parts) == 2 and parts[0] in (
            "self", "cls",
        ):
            return self.resolve_method(f"{fn.module}.{fn.cls}", parts[1])
        resolved = ctx.resolve(func)
        if resolved is not None:
            target = self._project_target(resolved)
            return target if target is not None else resolved
        # bare name: same-module function or class
        if len(parts) == 1:
            candidate = f"{fn.module}.{parts[0]}"
            if candidate in self.functions:
                return candidate
            if candidate in self.classes:
                return candidate
        # ClassName.method(...) within the same module
        if len(parts) == 2:
            cls_candidate = f"{fn.module}.{parts[0]}"
            if cls_candidate in self.classes:
                return self.resolve_method(cls_candidate, parts[1])
        return None

    def _project_target(self, dotted: str) -> str | None:
        """Map an import-resolved dotted name onto a project symbol.

        ``repro.platform.schedulers.RandomScheduler.pick`` ->
        the ``RandomScheduler.pick`` method; plain functions and classes
        match directly; re-exports through ``__init__`` fall through to
        the defining module when the name is unambiguous.
        """
        if dotted in self.functions or dotted in self.classes:
            return dotted
        head, _, tail = dotted.rpartition(".")
        if head in self.classes:
            return self.resolve_method(head, tail)
        # ``from repro.platform import FaaSCluster``: the alias resolves
        # to repro.platform.FaaSCluster but the class lives one module
        # deeper.  Match by (package prefix, symbol name) when unique.
        if head in self.modules or any(
            m.startswith(head + ".") for m in self.modules
        ):
            hits = [
                qn for qn, c in self.classes.items()
                if c.name == tail and c.module.startswith(head)
            ] + [
                qn for qn, f in self.functions.items()
                if f.name == tail and f.cls is None
                and f.module.startswith(head)
            ]
            if len(hits) == 1:
                return hits[0]
        return None

    def _link_calls(self) -> None:
        for fn in self.functions.values():
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                target = self._resolve_call(fn, node)
                if target is None:
                    continue
                # calling a class = calling its constructor
                if target in self.classes:
                    init = self.resolve_method(target, "__init__")
                    target = init if init is not None else target
                fn.calls.append(CallSite(target=target, node=node))

    # ------------------------------------------------------------------
    # RNG / wall-clock taint fixpoint
    # ------------------------------------------------------------------
    @staticmethod
    def is_entropy_call(ctx: FileContext, node: ast.Call) -> bool:
        resolved = ctx.resolve(node.func)
        if resolved in ENTROPY_SOURCES:
            return True
        return (
            resolved in UNSEEDED_CONSTRUCTORS
            and not node.args
            and not node.keywords
        )

    @property
    def returns_tainted(self) -> dict[str, str]:
        """Project functions whose return value derives from wall-clock
        or unseeded entropy, mapped to a human-readable reason chain
        (``"time.time via _now"``).  Fixpoint over the call graph, so a
        value laundered through any number of pure-looking hops is still
        tracked back to its source.
        """
        if self._returns_tainted is None:
            self._returns_tainted = self._compute_taint()
        return self._returns_tainted

    def _compute_taint(self) -> dict[str, str]:
        tainted: dict[str, str] = {}
        changed = True
        while changed:
            changed = False
            for fn in self.functions.values():
                if fn.qualname in tainted:
                    continue
                reason = self._function_taints_return(fn, tainted)
                if reason is not None:
                    tainted[fn.qualname] = reason
                    changed = True
        return tainted

    def _function_taints_return(
        self, fn: FunctionInfo, tainted: dict[str, str]
    ) -> str | None:
        """Does ``fn`` return a tainted value, given the current tainted
        set?  One level of local dataflow: names assigned from tainted
        expressions are tainted when returned."""
        call_taint: dict[ast.Call, str] = {}
        for site in fn.calls:
            if site.target in tainted:
                call_taint[site.node] = f"{site.target} (tainted)"
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call) and self.is_entropy_call(
                fn.ctx, node
            ):
                resolved = fn.ctx.resolve(node.func)
                call_taint[node] = resolved or "entropy source"

        def expr_taint(expr: ast.AST | None) -> str | None:
            if expr is None:
                return None
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Call) and sub in call_taint:
                    return call_taint[sub]
                if isinstance(sub, ast.Name) and sub.id in local_taint:
                    return local_taint[sub.id]
            return None

        # two passes over assignments so a taint flowing through one
        # intermediate local (`t = now(); elapsed = t - t0`) is caught
        # without a full per-function fixpoint
        local_taint: dict[str, str] = {}
        for _ in range(2):
            for node in ast.walk(fn.node):
                if isinstance(node, (ast.Assign, ast.AnnAssign,
                                     ast.AugAssign, ast.NamedExpr)):
                    value = node.value
                    reason = expr_taint(value)
                    if reason is None:
                        continue
                    targets = (node.targets
                               if isinstance(node, ast.Assign)
                               else [node.target])
                    for target in targets:
                        for name in ast.walk(target):
                            if isinstance(name, ast.Name):
                                local_taint.setdefault(name.id, reason)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Return):
                reason = expr_taint(node.value)
                if reason is not None:
                    return reason
        return None

    # ------------------------------------------------------------------
    # worker-entry reachability (fork-safety scope)
    # ------------------------------------------------------------------
    @property
    def worker_entry_points(self) -> list[FunctionInfo]:
        """Functions handed to ``Process(target=...)`` anywhere in the
        project -- the code that runs inside forked/spawned workers."""
        entries: list[FunctionInfo] = []
        seen: set[str] = set()
        for fn in self.functions.values():
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                parts = dotted_name(node.func)
                if not parts or parts[-1] != "Process":
                    continue
                for kw in node.keywords:
                    if kw.arg != "target":
                        continue
                    target_parts = dotted_name(kw.value)
                    if len(target_parts) != 1:
                        continue
                    qn = f"{fn.module}.{target_parts[0]}"
                    resolved = (
                        qn if qn in self.functions
                        else fn.ctx.resolve(kw.value)
                    )
                    if resolved in self.functions and resolved not in seen:
                        seen.add(resolved)
                        entries.append(self.functions[resolved])
        return entries

    @property
    def worker_reachable(self) -> frozenset[str]:
        """Call-graph closure from every worker entry point: the set of
        project functions that (may) execute inside a worker process."""
        if self._worker_reachable is None:
            reached: set[str] = set()
            stack = [fn.qualname for fn in self.worker_entry_points]
            while stack:
                qn = stack.pop()
                if qn in reached:
                    continue
                reached.add(qn)
                fn = self.functions.get(qn)
                if fn is None:
                    continue
                stack.extend(
                    site.target for site in fn.calls
                    if site.target in self.functions
                )
                # a nested def inside a reachable function runs in the
                # worker too; nested functions are not in the symbol
                # table, so their calls are already part of fn.node
            self._worker_reachable = frozenset(reached)
        return self._worker_reachable

    # ------------------------------------------------------------------
    # parity-harness cross-reference (PAR001)
    # ------------------------------------------------------------------
    #: Files whose identifier sets define "registered in the parity
    #: suite", relative to the project root / source tree.
    HARNESS_RELPATHS = (
        Path("tests") / "test_simulator_equivalence.py",
    )
    HARNESS_MODULES = ("repro.platform.diffsim",)

    @property
    def harness_names(self) -> frozenset[str]:
        """Every identifier appearing in the scalar/bulk parity harness
        (the differential-equivalence test module and ``diffsim``)."""
        if self._harness_names is None:
            names: set[str] = set()
            sources: list[str] = []
            for mod in self.HARNESS_MODULES:
                ctx = self.modules.get(mod)
                if ctx is not None:
                    sources.append(ctx.source)
            if self.root is not None:
                for rel in self.HARNESS_RELPATHS:
                    candidate = self.root / rel
                    try:
                        sources.append(candidate.read_text())
                    except OSError:
                        continue
            for source in sources:
                try:
                    tree = ast.parse(source)
                except SyntaxError:
                    continue
                for node in ast.walk(tree):
                    if isinstance(node, ast.Name):
                        names.add(node.id)
                    elif isinstance(node, ast.Attribute):
                        names.add(node.attr)
                    elif isinstance(node, ast.alias):
                        names.add(node.name.rsplit(".", 1)[-1])
            self._harness_names = frozenset(names)
        return self._harness_names


def project_root_of(path: Path) -> Path | None:
    """The directory holding ``src`` (or containing ``repro``) above a
    source file -- where ``tests/`` lives."""
    resolved = path.resolve()
    for parent in resolved.parents:
        if parent.name == "src":
            return parent.parent
    for parent in resolved.parents:
        if (parent / "tests").is_dir() and (
            (parent / "src").is_dir() or (parent / "repro").is_dir()
        ):
            return parent
    return None


def build_project(contexts: list[FileContext]) -> ProjectContext:
    """Assemble the whole-program view from parsed per-file contexts."""
    project = ProjectContext()
    for ctx in contexts:
        project.modules[ctx.module] = ctx
        if project.root is None:
            project.root = project_root_of(ctx.path)
    collector = _SymbolCollector(project)
    for ctx in contexts:
        collector.collect(ctx)
    project._link_calls()
    for ctx in contexts:
        ctx.project = project
    return project
