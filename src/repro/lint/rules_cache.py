"""CACHE001: cache fingerprints must cover every output-affecting
parameter of the function that computes the cached artifact.

The stale-cache failure mode this guards against: someone adds an
``arrival_mode`` parameter to a cached stage, forgets to thread it into
the ``fingerprint(...)`` call, and warm runs silently return artifacts
computed under the *old* mode -- every downstream KS statistic then
compares against the wrong distribution, with no error anywhere.

The check is a signature cross-reference with one level of local
data-flow: at each call to :func:`repro.cache.fingerprint` inside a
function, every parameter of that function must be *reachable* from the
fingerprint's argument expressions -- either named directly
(``int(seed)`` covers ``seed``) or through a local assignment chain
(``n_shards = shards if shards is not None else ...`` lets ``n_shards``
cover ``shards``).

Exempt parameters (they cannot or must not affect the cached bytes):

- ``self`` / ``cls`` (instance config is fingerprinted explicitly);
- execution knobs: ``cache``, ``jobs``, ``progress``, ``telemetry``,
  ``verbose``, ``reporter``;
- underscore-prefixed parameters;
- parameters annotated ``Callable`` (a function's identity is not
  fingerprintable -- its *inputs* must appear as explicit key parts).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.engine import Rule
from repro.lint.findings import Finding

__all__ = ["FingerprintCoverage"]

#: Parameter names that are pure execution knobs: they may change how
#: fast the artifact is produced, never its bytes.
EXEMPT_PARAMS = frozenset({
    "self", "cls", "cache", "cache_dir", "no_cache", "jobs", "progress",
    "telemetry", "verbose", "reporter",
})

_FINGERPRINT_TARGETS = frozenset({
    "repro.cache.fingerprint",
    "cache.fingerprint",
})


def _is_callable_annotation(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    return "Callable" in ast.dump(annotation)


def _param_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = fn.args
    params = [*args.posonlyargs, *args.args, *args.kwonlyargs]
    if args.vararg is not None:
        params.append(args.vararg)
    if args.kwarg is not None:
        params.append(args.kwarg)
    return [
        a.arg for a in params
        if a.arg not in EXEMPT_PARAMS
        and not a.arg.startswith("_")
        and not _is_callable_annotation(a.annotation)
    ]


def _names_in(node: ast.AST) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _assignment_graph(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> dict[str, set[str]]:
    """local name -> names appearing in any expression assigned to it."""
    graph: dict[str, set[str]] = {}
    for node in ast.walk(fn):
        targets: list[ast.expr] = []
        value: ast.AST | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets, value = [node.target], node.value
        elif isinstance(node, ast.NamedExpr):
            targets, value = [node.target], node.value
        if value is None:
            continue
        sources = _names_in(value)
        for target in targets:
            for name_node in ast.walk(target):
                if isinstance(name_node, ast.Name):
                    graph.setdefault(name_node.id, set()).update(sources)
    return graph


def _reachable(start: set[str], graph: dict[str, set[str]]) -> set[str]:
    """Expand ``start`` through the assignment graph to a fixed point."""
    seen = set(start)
    frontier = list(start)
    while frontier:
        name = frontier.pop()
        for src in graph.get(name, ()):
            if src not in seen:
                seen.add(src)
                frontier.append(src)
    return seen


class FingerprintCoverage(Rule):
    """CACHE001: every output-affecting parameter reaches the fingerprint."""

    rule_id = "CACHE001"
    slug = "fingerprint"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            calls = [
                node for node in ast.walk(fn)
                if isinstance(node, ast.Call)
                and ctx.resolve(node.func) in _FINGERPRINT_TARGETS
            ]
            if not calls:
                continue
            graph = _assignment_graph(fn)
            params = _param_names(fn)
            for call in calls:
                referenced: set[str] = set()
                for arg in [*call.args, *[kw.value for kw in call.keywords]]:
                    referenced |= _names_in(arg)
                covered = _reachable(referenced, graph)
                missing = [p for p in params if p not in covered]
                if missing:
                    yield ctx.finding(
                        self.rule_id, self.slug, call,
                        f"fingerprint in `{fn.name}` does not cover "
                        f"parameter(s) {', '.join(sorted(missing))}; a "
                        "parameter that affects the cached artifact but "
                        "not its key serves stale results on warm runs",
                    )
