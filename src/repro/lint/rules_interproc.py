"""Whole-program rules over the project call graph.

These rules consult :class:`~repro.lint.callgraph.ProjectContext`
(``ctx.project``) and therefore see hazards the per-file rules cannot:

- **DET005** -- a wall-clock / unseeded-entropy value *laundered through
  a helper function* into a deterministic stage.  The helper's own
  ``time.time()`` carries a legitimate ``allow-wall-clock`` pragma (it is
  a boundary by design), so DET001 stays quiet; the bug is the *caller*
  in a seeded/simulator/cache module consuming the returned value.
- **CONC001** -- mutation of module-level mutable state inside the
  call-graph closure of a worker entry point (a function handed to
  ``Process(target=...)``).  Under ``fork`` the child inherits a copy
  and the mutation silently diverges from the parent; under ``spawn``
  the module re-imports and the mutation is lost entirely.  Either way
  the "shared" state is a determinism trap.
- **CONC002** -- unpicklable values (lambdas, nested functions, open
  handles) handed to ``Process(...)`` or sent over a control pipe.
  These fail only at runtime, on the start-method the test matrix
  happens not to cover.
- **PAR001** -- a class exposing a paired scalar/bulk API
  (``invoke``/``invoke_many``/``invoke_chunked``, ``pick``/``pick_many``)
  that is not registered in the differential parity suite
  (``tests/test_simulator_equivalence.py`` / ``repro.platform.diffsim``).
  An unregistered bulk path is exactly how a vectorisation bug ships:
  nothing diffs it against the scalar loop.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import FileContext, dotted_name
from repro.lint.engine import Rule
from repro.lint.findings import Finding

__all__ = [
    "ForkUnsafeGlobalMutation",
    "InterproceduralEntropy",
    "ScalarBulkParity",
    "UnpicklableCrossProcess",
]

#: Method names that mutate their receiver in place.
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "sort", "reverse",
    "appendleft", "extendleft", "rotate",
})

#: Constructors producing mutable module-level bindings.
_MUTABLE_CONSTRUCTORS = frozenset({
    "list", "dict", "set", "bytearray", "deque", "defaultdict",
    "Counter", "OrderedDict",
})

#: The scalar/bulk API pairs PAR001 enforces: scalar method -> the bulk
#: spellings that pair with it.
_PARITY_PAIRS = {
    "invoke": ("invoke_many", "invoke_chunked"),
    "pick": ("pick_many",),
}


class InterproceduralEntropy(Rule):
    """DET005: no wall-clock/entropy value reaching a deterministic stage
    through a call hop.

    A function that *returns* a value derived from ``time.time()`` /
    ``os.urandom()`` / an unseeded ``np.random.default_rng()`` --
    directly or through further project calls -- taints every caller
    that consumes it.  Calling such a function from a module in the
    deterministic scope (seeded stages, simulator engines and policies,
    the cache, the shard workers) is flagged at the call site, with the
    taint source named.  Fix by passing the timestamp/Generator in as an
    explicit parameter, not by pragma: the whole point of the rule is
    that the pragma on the helper must not silence the caller.
    """

    rule_id = "DET005"
    slug = "interproc-entropy"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        project = ctx.project
        if project is None or not ctx.in_deterministic_scope:
            return
        tainted = project.returns_tainted
        for fn in project.functions.values():
            if fn.ctx is not ctx:
                continue
            for site in fn.calls:
                reason = tainted.get(site.target)
                if reason is None:
                    continue
                yield ctx.finding(
                    self.rule_id, self.slug, site.node,
                    f"`{fn.name}` is in a deterministic stage but calls "
                    f"`{site.target}`, whose return value derives from "
                    f"{reason}; thread the timestamp/Generator in as a "
                    "parameter instead of reading it behind a helper",
                )


def _local_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound locally in ``fn`` (params, assignments, with/for
    targets, nested defs) -- these shadow module globals."""
    names: set[str] = set()
    args = fn.args
    for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        names.add(a.arg)
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not fn:
                names.add(node.name)
        elif isinstance(node, ast.Global):
            names.difference_update(node.names)
    return names


def _module_mutable_globals(tree: ast.Module) -> set[str]:
    """Top-level names bound to mutable containers."""
    out: set[str] = set()
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        mutable = isinstance(value, (ast.List, ast.Dict, ast.Set,
                                     ast.ListComp, ast.DictComp,
                                     ast.SetComp))
        if (not mutable and isinstance(value, ast.Call)):
            parts = dotted_name(value.func)
            mutable = bool(parts) and parts[-1] in _MUTABLE_CONSTRUCTORS
        if not mutable:
            continue
        for target in targets:
            for name in ast.walk(target):
                if isinstance(name, ast.Name):
                    out.add(name.id)
    return out


class ForkUnsafeGlobalMutation(Rule):
    """CONC001: no module-global mutation reachable from a worker entry.

    Scope: the call-graph closure of every function handed to
    ``Process(target=...)``.  Flags, inside that closure: ``global``
    rebinding; in-place mutation calls (``.append``/``.update``/...) and
    subscript stores on module-level mutable bindings; and attribute
    stores on imported modules.  Worker state must flow through the
    picklable work payload and return value -- module globals are a
    different object (fork) or a fresh import (spawn) in the child.
    """

    rule_id = "CONC001"
    slug = "fork-unsafe-global"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        project = ctx.project
        if project is None:
            return
        reachable = project.worker_reachable
        if not reachable:
            return
        mutable_globals = _module_mutable_globals(ctx.tree)
        for fn in project.functions.values():
            if fn.ctx is not ctx or fn.qualname not in reachable:
                continue
            yield from self._check_function(ctx, fn.node, fn.qualname,
                                            mutable_globals)

    def _check_function(
        self,
        ctx: FileContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
        mutable_globals: set[str],
    ) -> Iterator[Finding]:
        locals_ = _local_names(fn)
        declared_global: set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)

        def is_module_global(name: str) -> bool:
            return (name not in locals_
                    and (name in mutable_globals
                         or name in declared_global
                         or name in ctx.name_aliases))

        for node in ast.walk(fn):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Store
            ) and node.id in declared_global:
                yield ctx.finding(
                    self.rule_id, self.slug, node,
                    f"worker-reachable `{qualname}` rebinds module "
                    f"global `{node.id}`; the child's copy diverges "
                    "from the parent -- pass state through the work "
                    "payload instead",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if (isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)
                            and is_module_global(target.value.id)):
                        yield ctx.finding(
                            self.rule_id, self.slug, node,
                            f"worker-reachable `{qualname}` writes into "
                            f"module-level container "
                            f"`{target.value.id}`; fork-unsafe shared "
                            "state -- return results instead",
                        )
                    elif (isinstance(target, ast.Attribute)
                          and isinstance(target.value, ast.Name)
                          and target.value.id in ctx.module_aliases):
                        yield ctx.finding(
                            self.rule_id, self.slug, node,
                            f"worker-reachable `{qualname}` assigns "
                            f"attribute on module "
                            f"`{target.value.id}`; fork-unsafe shared "
                            "state",
                        )
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Attribute)
                  and node.func.attr in _MUTATING_METHODS
                  and isinstance(node.func.value, ast.Name)
                  and is_module_global(node.func.value.id)):
                yield ctx.finding(
                    self.rule_id, self.slug, node,
                    f"worker-reachable `{qualname}` mutates "
                    f"module-level `{node.func.value.id}."
                    f"{node.func.attr}(...)`; fork-unsafe shared state "
                    "-- pass state through the work payload",
                )


def _nested_defs(tree: ast.Module) -> set[str]:
    """Names of functions defined inside other functions (unpicklable:
    their qualname has a ``<locals>`` segment)."""
    nested: set[str] = set()
    for outer in ast.walk(tree):
        if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(outer):
            if node is outer:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.add(node.name)
    return nested


class UnpicklableCrossProcess(Rule):
    """CONC002: no unpicklable values into ``Process`` or pipe sends.

    Lambdas and nested functions cannot be pickled (their qualified name
    contains ``<locals>``); open file handles cannot either.  Passing
    one as a ``Process`` target/argument or through ``Connection.send``
    works under ``fork`` by inheritance and then explodes under
    ``spawn`` -- the start method CI least often exercises.  Scoped to
    files that themselves create processes or pipes.
    """

    rule_id = "CONC002"
    slug = "unpicklable-ipc"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not self._uses_multiprocessing(ctx):
            return
        nested = _nested_defs(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            parts = dotted_name(node.func)
            if parts and parts[-1] == "Process":
                yield from self._check_process_call(ctx, node, nested)
            elif (isinstance(node.func, ast.Attribute)
                  and node.func.attr == "send"):
                for arg in node.args:
                    yield from self._check_payload(
                        ctx, arg, nested, via="Connection.send",
                    )

    @staticmethod
    def _uses_multiprocessing(ctx: FileContext) -> bool:
        for alias in (*ctx.module_aliases.values(),
                      *ctx.name_aliases.values()):
            if alias.startswith("multiprocessing"):
                return True
        return "multiprocessing" in ctx.source

    def _check_process_call(
        self, ctx: FileContext, node: ast.Call, nested: set[str]
    ) -> Iterator[Finding]:
        for kw in node.keywords:
            if kw.arg == "target":
                yield from self._check_payload(
                    ctx, kw.value, nested, via="Process target",
                )
            elif kw.arg == "args":
                elements = (kw.value.elts
                            if isinstance(kw.value, (ast.Tuple, ast.List))
                            else [kw.value])
                for el in elements:
                    yield from self._check_payload(
                        ctx, el, nested, via="Process args",
                    )

    def _check_payload(
        self, ctx: FileContext, expr: ast.expr, nested: set[str],
        via: str,
    ) -> Iterator[Finding]:
        if isinstance(expr, ast.Lambda):
            yield ctx.finding(
                self.rule_id, self.slug, expr,
                f"lambda passed as {via}: unpicklable under the spawn "
                "start method; use a module-level function",
            )
        elif isinstance(expr, ast.Name) and expr.id in nested:
            yield ctx.finding(
                self.rule_id, self.slug, expr,
                f"nested function `{expr.id}` passed as {via}: its "
                "qualified name contains `<locals>`, so it cannot be "
                "pickled; hoist it to module level",
            )
        elif isinstance(expr, ast.Call):
            parts = dotted_name(expr.func)
            if parts and parts[-1] == "open":
                yield ctx.finding(
                    self.rule_id, self.slug, expr,
                    f"open file handle passed as {via}: handles do not "
                    "pickle; pass the path and open inside the worker",
                )


def _method_is_declaration(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> bool:
    """Ellipsis/pass/docstring-only bodies declare an interface, they do
    not implement a bulk path."""
    body = list(node.body)
    if body and isinstance(body[0], ast.Expr) and isinstance(
        body[0].value, ast.Constant
    ) and isinstance(body[0].value.value, str):
        body = body[1:]
    if not body:
        return True
    return all(
        isinstance(stmt, ast.Pass)
        or (isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis)
        or (isinstance(stmt, ast.Raise)
            and stmt.exc is not None
            and "NotImplementedError" in ast.dump(stmt.exc))
        for stmt in body
    )


class ScalarBulkParity(Rule):
    """PAR001: paired scalar/bulk APIs must be in the parity suite.

    The array engine's whole trust model is "the bulk path is
    byte-identical to the scalar loop, and a differential suite proves
    it".  A class that grows ``invoke_many``/``invoke_chunked`` beside
    ``invoke`` (or ``pick_many`` beside ``pick``) without appearing in
    ``tests/test_simulator_equivalence.py`` or
    ``repro.platform.diffsim`` has an unverified fast path -- the exact
    gap differential testing exists to close.  Protocol/ABC
    declarations are exempt (they describe the pair; implementations
    register).
    """

    rule_id = "PAR001"
    slug = "scalar-bulk-parity"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        project = ctx.project
        if project is None or not ctx.module.startswith("repro."):
            return
        for cls in project.classes.values():
            if cls.ctx is not ctx or cls.is_interface:
                continue
            for scalar, bulks in _PARITY_PAIRS.items():
                scalar_fn = cls.methods.get(scalar)
                paired = [b for b in bulks if b in cls.methods]
                if scalar_fn is None or not paired:
                    continue
                if _method_is_declaration(scalar_fn.node) and all(
                    _method_is_declaration(cls.methods[b].node)
                    for b in paired
                ):
                    continue
                if cls.name in project.harness_names:
                    continue
                yield ctx.finding(
                    self.rule_id, self.slug, cls.node,
                    f"`{cls.name}` pairs `{scalar}` with "
                    f"{'/'.join(paired)} but is not registered in the "
                    "scalar/bulk parity suite "
                    "(tests/test_simulator_equivalence.py or "
                    "repro.platform.diffsim); add a differential test "
                    "pinning bulk == scalar byte for byte",
                )
