"""Console and JSON renderings of a lint result."""

from __future__ import annotations

import json

from repro.lint.engine import LintResult

__all__ = ["JSON_SCHEMA_VERSION", "render_console", "render_json"]

#: Bump on any backwards-incompatible change to the JSON layout.
JSON_SCHEMA_VERSION = 1


def render_console(result: LintResult, *, show_suppressed: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines: list[str] = []
    for f in result.parse_errors:
        lines.append(str(f))
    for f in result.findings:
        if f.suppressed and not show_suppressed:
            continue
        lines.append(str(f))
    n_bad = len(result.unsuppressed) + len(result.parse_errors)
    summary = result.summary()
    if n_bad:
        by_rule = ", ".join(f"{rule}: {n}" for rule, n in summary.items())
        tail = f" ({by_rule})" if by_rule else ""
        lines.append(
            f"{n_bad} finding(s) in {result.files_checked} file(s){tail}; "
            f"{len(result.suppressed)} suppressed"
        )
    else:
        lines.append(
            f"clean: {result.files_checked} file(s), "
            f"{len(result.suppressed)} suppressed finding(s)"
        )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (stable schema, sorted findings)."""
    payload = {
        "schema_version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "ok": result.ok,
        "findings": [f.to_dict() for f in result.findings],
        "parse_errors": [f.to_dict() for f in result.parse_errors],
        "suppressed_count": len(result.suppressed),
        "summary": result.summary(),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
