"""Console, JSON, and SARIF renderings of a lint result."""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.engine import LintResult
from repro.lint.findings import Finding

__all__ = [
    "JSON_SCHEMA_VERSION",
    "SARIF_VERSION",
    "render_console",
    "render_json",
    "render_sarif",
]

#: Bump on any backwards-incompatible change to the JSON layout.
JSON_SCHEMA_VERSION = 1

#: SARIF spec version emitted by :func:`render_sarif`.
SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_console(result: LintResult, *, show_suppressed: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines: list[str] = []
    for f in result.parse_errors:
        lines.append(str(f))
    for f in result.findings:
        if f.suppressed and not show_suppressed:
            continue
        lines.append(str(f))
    n_bad = len(result.unsuppressed) + len(result.parse_errors)
    summary = result.summary()
    if n_bad:
        by_rule = ", ".join(f"{rule}: {n}" for rule, n in summary.items())
        tail = f" ({by_rule})" if by_rule else ""
        lines.append(
            f"{n_bad} finding(s) in {result.files_checked} file(s){tail}; "
            f"{len(result.suppressed)} suppressed"
        )
    else:
        lines.append(
            f"clean: {result.files_checked} file(s), "
            f"{len(result.suppressed)} suppressed finding(s)"
        )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (stable schema, sorted findings)."""
    payload = {
        "schema_version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "ok": result.ok,
        "findings": [f.to_dict() for f in result.findings],
        "parse_errors": [f.to_dict() for f in result.parse_errors],
        "suppressed_count": len(result.suppressed),
        "summary": result.summary(),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_uri(path: str, root: Path | None) -> str:
    """Repo-relative forward-slash URI (what code scanning anchors on)."""
    p = Path(path)
    if root is not None:
        try:
            p = p.resolve().relative_to(root.resolve())
        except ValueError:
            pass
    return p.as_posix()


def _sarif_result(f: Finding, root: Path | None) -> dict[str, object]:
    out: dict[str, object] = {
        "ruleId": f.rule,
        "level": "error",
        "message": {"text": f"[{f.slug}] {f.message}"},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": _sarif_uri(f.path, root)},
                "region": {
                    "startLine": max(f.line, 1),
                    "startColumn": f.col + 1,
                    "endLine": max(f.end_line or f.line, 1),
                },
            },
        }],
    }
    if f.suppressed:
        out["suppressions"] = [{
            "kind": "inSource",
            "justification": "# repro: allow pragma",
        }]
    return out


def render_sarif(
    result: LintResult,
    *,
    root: Path | str | None = None,
    tool_version: str | None = None,
) -> str:
    """SARIF 2.1.0 log for GitHub code scanning.

    Suppressed findings are carried with an ``inSource`` suppression
    (code scanning shows them as dismissed rather than dropping them);
    parse errors surface as ordinary error results under ``PARSE``.
    ``root`` relativises paths so annotations land on checkout-relative
    files regardless of where the linter ran.
    """
    from repro.lint.engine import all_rules

    if tool_version is None:
        from repro._version import __version__ as tool_version
    root_path = Path(root) if root is not None else None
    rule_meta = [
        {
            "id": rule.rule_id,
            "name": rule.slug,
            "shortDescription": {"text": rule.description},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in all_rules()
    ]
    rule_meta.append({
        "id": "PRAGMA001",
        "name": "dead-pragma",
        "shortDescription": {
            "text": "pragma comment that suppresses no finding",
        },
        "defaultConfiguration": {"level": "error"},
    })
    rule_meta.append({
        "id": "PARSE",
        "name": "syntax-error",
        "shortDescription": {"text": "file could not be parsed"},
        "defaultConfiguration": {"level": "error"},
    })
    results = [
        _sarif_result(f, root_path)
        for f in (*result.parse_errors, *result.findings)
    ]
    log = {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "version": tool_version,
                    "rules": rule_meta,
                },
            },
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }
    return json.dumps(log, indent=2, sort_keys=True)
