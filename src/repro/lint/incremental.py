"""Incremental lint driver: warm runs re-analyze only what changed.

Per-file findings are memoised in the pipeline's content-addressed
store (:class:`repro.cache.ContentCache`) under a key that captures
everything the whole-program analysis of that file can observe:

- the lint package's own sources and the rule selection (any rule edit
  invalidates everything);
- the file's content hash;
- the ``(module, content-hash)`` pairs of its project-internal import
  closure (an edit to anything it imports, transitively, invalidates
  it);
- an *anchor digest* covering the inputs of the reverse-dependency
  rules: the scalar/bulk parity harness files (PAR001 reads them) and
  every linted file that spawns processes (CONC001's worker-entry set
  is defined by ``Process(target=...)`` call sites anywhere in the
  project).

The key is pure content -- no paths, no mtimes -- so it inherits the
content cache's guarantees: a warm run over an unchanged tree parses
*nothing* (file hashing plus cached import lists reconstruct the
closure), and editing one file invalidates exactly that file plus its
import-closure dependents.
"""

from __future__ import annotations

import ast
import hashlib
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.cache import ContentCache, tool_fingerprint
from repro.lint.context import FileContext
from repro.lint.engine import (
    LintResult,
    _lint_context,
    _parse_context,
    _python_files,
    all_rules,
)

__all__ = ["IncrementalStats", "lint_paths_incremental"]

#: Byte marker scoping the anchor digest: any linted file that may
#: register worker entry points feeds CONC001's project-wide scope.
_PROCESS_MARKER = b"Process("


@dataclass
class IncrementalStats:
    """What a warm run actually did, for reporting and perf assertions."""

    files_total: int = 0
    #: Files whose key missed the cache and were re-analyzed this run.
    reanalyzed: list[Path] = field(default_factory=list)
    #: Files served entirely from cache.
    reused: int = 0


def _file_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _rules_signature(
    select: Iterable[str] | None, check_pragmas: bool
) -> tuple[object, ...]:
    """The analyzer's own identity: lint-package sources + selection.

    Hashing the package sources (rather than a manually-bumped version)
    means any rule edit -- including to this module -- invalidates every
    cached result, the failure mode a stale-analysis cache must never
    have.
    """
    pkg = Path(__file__).parent
    sources = tuple(
        (f.name, _file_hash(f.read_bytes()))
        for f in sorted(pkg.glob("*.py"))
    )
    selection = (tuple(sorted(select)) if select is not None else None)
    return (sources, selection, check_pragmas)


def _imported_modules(source: str, path: Path) -> list[str]:
    """Dotted module names ``source`` imports (both ``import a.b`` and
    ``from a.b import c``, where ``c`` may itself be a module)."""
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError:
        return []
    out: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out.add(alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            out.add(node.module)
            for alias in node.names:
                if alias.name != "*":
                    out.add(f"{node.module}.{alias.name}")
    return sorted(out)


def _closure(
    module: str, edges: dict[str, list[str]]
) -> tuple[str, ...]:
    """Transitive project-internal import closure of ``module``
    (inclusive), as a sorted tuple."""
    seen = {module}
    stack = [module]
    while stack:
        for dep in edges.get(stack.pop(), ()):
            if dep not in seen:
                seen.add(dep)
                stack.append(dep)
    return tuple(sorted(seen))


def _project_root(paths: Sequence[Path]) -> Path | None:
    from repro.lint.callgraph import project_root_of

    for path in paths:
        root = project_root_of(path)
        if root is not None:
            return root
    return None


def lint_paths_incremental(
    paths: Iterable[Path | str],
    cache: ContentCache,
    select: Iterable[str] | None = None,
    check_pragmas: bool = False,
) -> tuple[LintResult, IncrementalStats]:
    """:func:`~repro.lint.engine.lint_paths` with content-keyed reuse.

    Returns the merged :class:`LintResult` (identical to what a cold
    :func:`lint_paths` over the same tree produces) plus the reuse
    stats.  When every file hits, no source is parsed at all; when any
    file misses, the whole tree is parsed once (the project context
    needs every symbol) but rules re-run only over the missed files.
    """
    select_list = list(select) if select is not None else None
    files = list(_python_files(paths))
    raw: dict[Path, bytes] = {p: p.read_bytes() for p in files}
    hashes: dict[Path, str] = {p: _file_hash(b) for p, b in raw.items()}

    # --- import lists, cached per content hash (warm runs skip parsing)
    modules_by_path: dict[Path, str] = {}
    imports_by_path: dict[Path, list[str]] = {}
    for path in files:
        imports_key = tool_fingerprint("lint-imports", hashes[path])
        try:
            module, imported = cache.get(imports_key)
        except KeyError:
            source = raw[path].decode("utf-8", errors="replace")
            module = _module_name_of(path)
            imported = _imported_modules(source, path)
            cache.put(imports_key, (module, imported))
        modules_by_path[path] = module
        imports_by_path[path] = imported

    hash_by_module = {modules_by_path[p]: hashes[p] for p in files}
    edges = {
        modules_by_path[p]: [
            m for m in imports_by_path[p] if m in hash_by_module
        ]
        for p in files
    }

    # --- anchor digest: reverse-dependency inputs shared by every key
    anchor_parts: list[object] = [
        hashes[p] for p in files if _PROCESS_MARKER in raw[p]
    ]
    root = _project_root(files)
    if root is not None:
        from repro.lint.callgraph import ProjectContext

        for rel in ProjectContext.HARNESS_RELPATHS:
            try:
                anchor_parts.append(_file_hash((root / rel).read_bytes()))
            except OSError:
                anchor_parts.append(f"missing:{rel}")
    anchor = tuple(anchor_parts)

    rules_sig = _rules_signature(select_list, check_pragmas)
    keys: dict[Path, str] = {}
    for path in files:
        module = modules_by_path[path]
        closure_pairs = tuple(
            (m, hash_by_module[m]) for m in _closure(module, edges)
        )
        keys[path] = tool_fingerprint(
            "lint-findings", rules_sig, hashes[path], closure_pairs, anchor,
        )

    # --- serve hits; re-analyze misses against a full project build
    stats = IncrementalStats(files_total=len(files))
    fragments: dict[Path, LintResult] = {}
    misses: list[Path] = []
    for path in files:
        try:
            fragments[path] = cache.get(keys[path])
            stats.reused += 1
        except KeyError:
            misses.append(path)
    stats.reanalyzed = misses

    if misses:
        from repro.lint.callgraph import build_project

        rules = all_rules(select_list)
        contexts: dict[Path, FileContext] = {}
        parse_failures: dict[Path, LintResult] = {}
        for path in files:
            holder = LintResult(files_checked=1)
            ctx = _parse_context(
                path, raw[path].decode("utf-8", errors="replace"), holder,
            )
            if ctx is None:
                parse_failures[path] = holder
            else:
                contexts[path] = ctx
        build_project(list(contexts.values()))
        for path in misses:
            if path in parse_failures:
                fragment = parse_failures[path]
            else:
                fragment = _lint_context(
                    contexts[path], rules, check_pragmas=check_pragmas,
                )
            cache.put(keys[path], fragment)
            fragments[path] = fragment

    total = LintResult()
    for path in files:
        total.extend(fragments[path])
    total.findings.sort()
    return total, stats


def _module_name_of(path: Path) -> str:
    from repro.lint.context import _module_name

    return _module_name(path)
