"""DET00x: wall-clock, global RNG, and unordered-iteration rules."""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import FileContext, dotted_name
from repro.lint.engine import Rule
from repro.lint.findings import Finding

__all__ = [
    "NoClosedLoopPacing",
    "NoGlobalRng",
    "NoUnorderedIteration",
    "NoWallClock",
]


class NoWallClock(Rule):
    """DET001: no wall-clock reads or OS entropy sources.

    Seeded pipeline stages must be pure functions of (inputs, seed); a
    single ``time.time()`` or ``os.urandom()`` makes reruns diverge and
    silently invalidates cached artifacts.  The replay pacer, live
    backend, calibration harness, and telemetry stage timers *are*
    wall-clock consumers by design -- those sites carry
    ``# repro: allow-wall-clock`` pragmas.
    """

    rule_id = "DET001"
    slug = "wall-clock"

    DENY = frozenset({
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbits",
        "secrets.randbelow",
    })

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.resolve(node.func)
            if target in self.DENY:
                yield ctx.finding(
                    self.rule_id, self.slug, node,
                    f"call to wall-clock/entropy source `{target}`; "
                    "deterministic stages must be pure functions of "
                    "(inputs, seed) -- pass timestamps in, or pragma an "
                    "intentional boundary site",
                )


#: ``np.random`` attributes that are part of the *explicit* Generator
#: API and therefore fine to call.
_NUMPY_RANDOM_OK = frozenset({
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
})


class NoGlobalRng(Rule):
    """DET002: no legacy / global RNG state.

    ``np.random.<dist>()`` and the stdlib ``random`` module draw from
    hidden process-global streams: any library call or import-order
    change silently reorders every downstream sample, which corrupts the
    KS/Smirnov comparisons this repo exists to make.  Randomness must
    flow through an explicit ``np.random.Generator`` parameter (see
    ``repro.parallel.spawn_rngs`` for the sharded derivation).
    """

    rule_id = "DET002"
    slug = "global-rng"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                target = ctx.resolve(node.func)
                if target is None:
                    continue
                if target.startswith("numpy.random."):
                    tail = target.removeprefix("numpy.random.")
                    if tail.split(".")[0] not in _NUMPY_RANDOM_OK:
                        yield ctx.finding(
                            self.rule_id, self.slug, node,
                            f"legacy global-state RNG call `{target}`; "
                            "draw from an explicit np.random.Generator "
                            "parameter instead",
                        )
                elif target.startswith("random."):
                    yield ctx.finding(
                        self.rule_id, self.slug, node,
                        f"stdlib global RNG call `{target}`; use a "
                        "seeded np.random.Generator parameter instead",
                    )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        yield ctx.finding(
                            self.rule_id, self.slug, node,
                            "import of stdlib `random` (process-global "
                            "RNG state); use numpy Generators",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield ctx.finding(
                        self.rule_id, self.slug, node,
                        "import from stdlib `random` (process-global "
                        "RNG state); use numpy Generators",
                    )


def _unordered_tag(node: ast.expr) -> str | None:
    """A human-readable tag when ``node`` evaluates to something whose
    iteration order is not reproducible, else ``None``."""
    if isinstance(node, ast.Set):
        return "set literal"
    if isinstance(node, ast.SetComp):
        return "set comprehension"
    if isinstance(node, ast.Call):
        parts = dotted_name(node.func)
        if parts in (["set"], ["frozenset"]):
            return f"{parts[0]}()"
        if isinstance(node.func, ast.Attribute):
            if (node.func.attr == "keys"
                    and not node.args and not node.keywords):
                return "dict .keys() view"
            if node.func.attr in ("intersection", "union", "difference",
                                  "symmetric_difference"):
                return f"set .{node.func.attr}()"
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        # ``d.keys() | {1}`` and friends produce sets when either
        # operand is set-like.
        for side in (node.left, node.right):
            tag = _unordered_tag(side)
            if tag is not None:
                return f"set expression ({tag} operand)"
    return None


class NoUnorderedIteration(Rule):
    """DET003: no set / ``dict.keys()`` iteration feeding ordered output.

    In seeded packages (``repro.core``, ``repro.traces``, ``repro.stats``,
    the generator/arrivals stages) loop order determines output array
    layout and RNG consumption order, so iterating a ``set`` -- whose
    order depends on hash seeding and insertion history -- silently
    reorders results between runs.  Iterate ``sorted(...)`` instead.
    Order-insensitive reductions (``len``/``sum``/``min``/``sorted``/
    membership tests) are not flagged.
    """

    rule_id = "DET003"
    slug = "unordered-iter"

    #: Call targets that consume their first argument into an ordered
    #: sequence -- feeding them an unordered iterable is the hazard.
    _ORDERING_CONSUMERS = frozenset({
        "list", "tuple", "enumerate", "array", "asarray", "fromiter",
    })

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_seeded_package:
            return
        for node in ast.walk(ctx.tree):
            for it, via in self._iteration_sites(node):
                tag = _unordered_tag(it)
                if tag is not None:
                    yield ctx.finding(
                        self.rule_id, self.slug, node,
                        f"{via} over unordered {tag} in a seeded "
                        "package; iterate sorted(...) so output order "
                        "is reproducible",
                    )

    def _iteration_sites(
        self, node: ast.AST
    ) -> Iterator[tuple[ast.expr, str]]:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter, "loop"
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                yield gen.iter, "comprehension"
        elif isinstance(node, ast.Call):
            parts = dotted_name(node.func)
            if parts and parts[-1] in self._ORDERING_CONSUMERS and node.args:
                yield node.args[0], f"{parts[-1]}(...)"


#: Identifier fragments that betray a sleep computed from *response*
#: timing rather than the trace schedule.
_COMPLETION_TOKENS = (
    "latency",
    "elapsed",
    "response",
    "reply",
    "rtt",
    "completion",
    "roundtrip",
    "service_time",
    "took",
)


def _name_tokens(node: ast.expr) -> set[str]:
    """Lower-cased identifier fragments appearing in an expression."""
    out: set[str] = set()
    for n in ast.walk(node):
        if isinstance(n, ast.Name):
            out.add(n.id.lower())
        elif isinstance(n, ast.Attribute):
            out.add(n.attr.lower())
    return out


def _completion_tokens(tokens: set[str]) -> set[str]:
    return {t for t in tokens
            if any(frag in t for frag in _COMPLETION_TOKENS)}


class NoClosedLoopPacing(Rule):
    """DET004: no response-completion-driven scheduling in loadgen.

    An open-loop load generator schedules every send from the *trace
    clock*; sleeping for a duration derived from the previous response's
    completion time (its latency, elapsed time, RTT, ...) turns the
    dispatcher closed-loop, which silently stretches the schedule under
    backend slowness and hides queueing delay from the measured
    latencies -- the coordinated-omission failure the wrk2
    constant-throughput model exists to avoid.  Scoped to
    ``repro.loadgen``: pacing sleeps keyed on schedule targets
    (``epoch + ts/speed``) or on retry backoff are fine; sleeps keyed on
    completion-timing identifiers are flagged.  Intentional sites carry
    ``# repro: allow-closed-loop-pacing`` pragmas.
    """

    rule_id = "DET004"
    slug = "closed-loop-pacing"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.module.startswith("repro.loadgen"):
            return
        for scope in self._scopes(ctx.tree):
            assigns: dict[str, set[str]] = {}
            sleeps: list[ast.Call] = []
            for node in self._scope_walk(scope):
                if (isinstance(node, ast.Assign)
                        and len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Name)):
                    assigns.setdefault(
                        node.targets[0].id, set()
                    ).update(_name_tokens(node.value))
                elif (isinstance(node, ast.AugAssign)
                      and isinstance(node.target, ast.Name)):
                    assigns.setdefault(
                        node.target.id, set()
                    ).update(_name_tokens(node.value))
                elif (isinstance(node, ast.Call) and node.args
                      and ctx.resolve(node.func) == "time.sleep"):
                    sleeps.append(node)
            for call in sleeps:
                arg = call.args[0]
                hits = _completion_tokens(_name_tokens(arg))
                if not hits and isinstance(arg, ast.Name):
                    # one level of local dataflow: `pause = latency * k;
                    # time.sleep(pause)` is still closed-loop pacing
                    hits = _completion_tokens(
                        assigns.get(arg.id, set())
                    )
                if hits:
                    named = ", ".join(sorted(hits))
                    yield ctx.finding(
                        self.rule_id, self.slug, call,
                        "sleep derived from response-completion timing "
                        f"(`{named}`) -- closed-loop pacing hides "
                        "queueing delay (coordinated omission); "
                        "schedule sends from the trace clock instead",
                    )

    def _scopes(self, tree: ast.Module) -> Iterator[ast.AST]:
        yield tree
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def _scope_walk(self, scope: ast.AST) -> Iterator[ast.AST]:
        """Walk a scope without descending into nested function bodies
        (each nested function is analysed as its own scope)."""
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.extend(ast.iter_child_nodes(node))
