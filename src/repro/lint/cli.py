"""The ``repro-lint`` console entry point.

Usage::

    repro-lint src/repro                  # lint a tree, console report
    repro-lint --format json src/repro    # machine-readable report
    repro-lint --select det001,cache001 src/repro
    repro-lint --list-rules

Exit status: 0 when every finding is pragma-suppressed, 1 when
unsuppressed findings (or unparsable files) remain, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.lint.engine import all_rules, lint_paths
from repro.lint.reporters import render_console, render_json

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based determinism & cache-safety analyzer for the "
            "FaaSRail reproduction pipeline"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("console", "json"), default="console",
        help="report format (default: console)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule IDs or slugs to run (default: all)",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="include pragma-suppressed findings in the console report",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every registered rule and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.slug:20s} {rule.description}")
        return 0

    select = args.select.split(",") if args.select else None
    try:
        result = lint_paths(args.paths, select=select)
    except ValueError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(render_json(result))
    else:
        print(render_console(result, show_suppressed=args.show_suppressed))
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
