"""The ``repro-lint`` console entry point.

Usage::

    repro-lint src/repro                  # lint a tree, console report
    repro-lint --format json src/repro    # machine-readable report
    repro-lint --format sarif --output lint.sarif src/repro
    repro-lint --incremental --cache-dir .lint-cache src/repro
    repro-lint --check-pragmas src/repro  # also flag dead pragmas
    repro-lint --select det001,cache001 src/repro
    repro-lint --list-rules

Exit status: 0 when every finding is pragma-suppressed, 1 when
unsuppressed findings (or unparsable files) remain, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.cache import CACHE_DIR_ENV, resolve_cache
from repro.lint.engine import all_rules, lint_paths
from repro.lint.reporters import render_console, render_json, render_sarif

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Whole-program determinism & cache-safety analyzer for the "
            "FaaSRail reproduction pipeline"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("console", "json", "sarif"), default="console",
        help="report format (default: console)",
    )
    parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule IDs or slugs to run (default: all)",
    )
    parser.add_argument(
        "--check-pragmas", action="store_true",
        help=("also report `# repro: allow-*` pragmas that suppress "
              "nothing (requires all rules; incompatible with --select)"),
    )
    parser.add_argument(
        "--incremental", action="store_true",
        help=("reuse cached per-file results keyed on content + import "
              "closure; needs --cache-dir or $" + CACHE_DIR_ENV),
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-cache directory for --incremental",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="include pragma-suppressed findings in the console report",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every registered rule and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.slug:20s} {rule.description}")
        return 0

    if args.check_pragmas and args.select:
        print(
            "repro-lint: error: --check-pragmas needs every rule's "
            "findings to know a pragma is dead; drop --select",
            file=sys.stderr,
        )
        return 2

    select = args.select.split(",") if args.select else None
    stats = None
    try:
        if args.incremental:
            cache = resolve_cache(args.cache_dir)
            if cache is None:
                print(
                    "repro-lint: error: --incremental needs --cache-dir "
                    f"or ${CACHE_DIR_ENV}",
                    file=sys.stderr,
                )
                return 2
            from repro.lint.incremental import lint_paths_incremental

            result, stats = lint_paths_incremental(
                args.paths, cache, select=select,
                check_pragmas=args.check_pragmas,
            )
        else:
            result = lint_paths(args.paths, select=select,
                                check_pragmas=args.check_pragmas)
    except ValueError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        report = render_json(result)
    elif args.format == "sarif":
        report = render_sarif(result, root=Path.cwd())
    else:
        report = render_console(result, show_suppressed=args.show_suppressed)
        if stats is not None:
            report += (
                f"\nincremental: {len(stats.reanalyzed)} re-analyzed, "
                f"{stats.reused} reused of {stats.files_total} file(s)"
            )

    if args.output:
        Path(args.output).write_text(report + "\n")
    else:
        print(report)
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
