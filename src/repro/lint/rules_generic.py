"""GEN00x: generic correctness hazards.

Not determinism-specific, but each has bitten statistical pipelines like
this one: float equality silently stops matching after a refactor
changes accumulation order; a mutable default aliases state across
calls; a bare ``except:`` swallows ``KeyboardInterrupt`` and masks the
real failure.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.engine import Rule
from repro.lint.findings import Finding

__all__ = ["BareExcept", "FloatEquality", "MutableDefault"]


class FloatEquality(Rule):
    """GEN001: no ``==`` / ``!=`` against non-zero float literals.

    Exact comparison against ``0.0`` is well-defined (sign tests,
    emptiness guards) and allowed; any other float literal in an
    equality is a latent tolerance bug -- use ``math.isclose`` /
    ``np.isclose`` or compare integers.
    """

    rule_id = "GEN001"
    slug = "float-eq"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, lhs, rhs in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (lhs, rhs):
                    if (isinstance(side, ast.Constant)
                            and isinstance(side.value, float)
                            and side.value != 0.0):
                        yield ctx.finding(
                            self.rule_id, self.slug, node,
                            f"equality against float literal "
                            f"{side.value!r}; use isclose() or an "
                            "integer comparison",
                        )
                        break


_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "deque",
                            "defaultdict", "Counter", "OrderedDict"})


class MutableDefault(Rule):
    """GEN002: no mutable default argument values.

    A ``def f(x, acc=[])`` default is evaluated once and shared by every
    call -- state leaks across invocations.  Default to ``None`` and
    allocate inside the function.
    """

    rule_id = "GEN002"
    slug = "mutable-default"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.Lambda)):
                continue
            defaults = [*fn.args.defaults, *fn.args.kw_defaults]
            for default in defaults:
                if default is None:
                    continue
                if isinstance(default, (ast.List, ast.Dict, ast.Set,
                                        ast.ListComp, ast.DictComp,
                                        ast.SetComp)):
                    kind = type(default).__name__.lower()
                elif (isinstance(default, ast.Call)
                      and isinstance(default.func, ast.Name)
                      and default.func.id in _MUTABLE_CALLS):
                    kind = f"{default.func.id}()"
                else:
                    continue
                name = getattr(fn, "name", "<lambda>")
                yield ctx.finding(
                    self.rule_id, self.slug, default,
                    f"mutable default ({kind}) in `{name}`; default to "
                    "None and allocate per call",
                )


class BareExcept(Rule):
    """GEN003: no bare ``except:`` clauses.

    Bare ``except:`` catches ``SystemExit`` and ``KeyboardInterrupt``;
    catch ``Exception`` (or something narrower), and re-raise if you
    must intercept ``BaseException``.
    """

    rule_id = "GEN003"
    slug = "bare-except"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield ctx.finding(
                    self.rule_id, self.slug, node,
                    "bare `except:`; catch Exception or narrower",
                )
