"""Per-file analysis context shared by every rule.

Builds the parsed tree, the import alias maps used to resolve dotted
call targets (``from time import perf_counter as pc`` -> ``pc()`` is
``time.perf_counter``), and the package classification that scopes the
seeded-path rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.lint.findings import Finding

if TYPE_CHECKING:
    from repro.lint.callgraph import ProjectContext

__all__ = [
    "DETERMINISTIC_MODULE_PREFIXES",
    "FileContext",
    "SEEDED_MODULE_PREFIXES",
    "dotted_name",
]

#: Module prefixes whose code runs inside seeded, order-sensitive
#: pipeline stages.  DET003 (unordered iteration) applies only here;
#: DET001/DET002 apply everywhere because wall-clock and global RNG are
#: never legitimate outside an explicitly pragma-annotated boundary.
SEEDED_MODULE_PREFIXES = (
    "repro.core",
    "repro.traces",
    "repro.stats",
    "repro.loadgen.generator",
    "repro.loadgen.arrivals",
)

#: Module prefixes whose outputs must be pure functions of
#: ``(inputs, seed)`` -- the *sinks* of the interprocedural taint rule
#: (DET005).  Superset of the seeded stages: the simulator engines and
#: their policies, the content cache, the shard planner, and the worker
#: shards of the load service all promise byte-identical reruns, so a
#: wall-clock value reaching them through a helper is a contract
#: violation even when the helper itself carries a legitimate pragma.
DETERMINISTIC_MODULE_PREFIXES = SEEDED_MODULE_PREFIXES + (
    "repro.platform.simulator",
    "repro.platform.simulator_vec",
    "repro.platform.simcore",
    "repro.platform.schedulers",
    "repro.platform.keepalive",
    "repro.platform.autoscaler",
    "repro.platform.faults",
    "repro.platform.diffsim",
    "repro.cache",
    "repro.parallel",
    "repro.loadgen.service",
)


def _module_name(path: Path) -> str:
    """Best-effort dotted module name from a file path (``src`` layout)."""
    parts = list(path.resolve().parts)
    for anchor in ("repro", "src"):
        if anchor in parts:
            idx = len(parts) - 1 - parts[::-1].index(anchor)
            if anchor == "src":
                idx += 1
            parts = parts[idx:]
            break
    else:
        parts = parts[-1:]
    if not parts:
        return path.stem
    parts[-1] = Path(parts[-1]).stem
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p)


@dataclass
class FileContext:
    """Everything a rule needs to analyse one source file."""

    path: Path
    source: str
    tree: ast.Module
    module: str = ""
    #: ``import numpy as np`` -> {"np": "numpy"}
    module_aliases: dict[str, str] = field(default_factory=dict)
    #: ``from time import perf_counter as pc`` -> {"pc": "time.perf_counter"}
    name_aliases: dict[str, str] = field(default_factory=dict)
    #: Whole-program view; set by the engine after all files are parsed
    #: (``None`` only while a context is being constructed).
    project: ProjectContext | None = field(default=None, repr=False)

    @classmethod
    def parse(cls, path: Path, source: str | None = None) -> FileContext:
        text = path.read_text() if source is None else source
        tree = ast.parse(text, filename=str(path))
        ctx = cls(path=path, source=text, tree=tree, module=_module_name(path))
        ctx._collect_imports()
        return ctx

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
                    if alias.asname:
                        self.module_aliases[alias.asname] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.name_aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    @property
    def in_seeded_package(self) -> bool:
        return self.module.startswith(SEEDED_MODULE_PREFIXES)

    @property
    def in_deterministic_scope(self) -> bool:
        return self.module.startswith(DETERMINISTIC_MODULE_PREFIXES)

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------
    def resolve(self, node: ast.expr) -> str | None:
        """Resolve an expression to its imported dotted name, if any.

        ``np.random.seed`` resolves to ``numpy.random.seed`` under
        ``import numpy as np``; a bare ``perf_counter`` resolves to
        ``time.perf_counter`` under ``from time import perf_counter``.
        Returns ``None`` for expressions that do not root in an import
        (locals, attribute chains off call results, ...).
        """
        parts = dotted_name(node)
        if not parts:
            return None
        head, rest = parts[0], parts[1:]
        if head in self.name_aliases:
            base = self.name_aliases[head]
        elif head in self.module_aliases:
            base = self.module_aliases[head]
        else:
            return None
        return ".".join([base, *rest])

    def finding(self, rule: str, slug: str, node: ast.AST,
                message: str) -> Finding:
        return Finding(
            path=str(self.path),
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            rule=rule,
            slug=slug,
            message=message,
            end_line=getattr(node, "end_lineno", None)
            or getattr(node, "lineno", 0),
        )


def dotted_name(node: ast.expr) -> list[str]:
    """``a.b.c`` -> ``["a", "b", "c"]``; ``[]`` for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return []
