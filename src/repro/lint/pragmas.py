"""Inline suppression pragmas: ``# repro: allow-<rule>``.

A pragma names the rule it silences by ID (``allow-det001``) or slug
(``allow-wall-clock``), case-insensitively; several rules may be listed
comma-separated::

    t0 = time.perf_counter()  # repro: allow-wall-clock
    # repro: allow-det002, allow-float-eq
    x = noisy_line()

A pragma covers findings on its own physical line and, when it stands
alone as a comment, everything down to (and including) the first code
line below it: intervening comment and blank lines are skipped, and
decorator lines -- including multi-line decorator calls -- are covered
and passed through, so a pragma block above ``@retry(...)`` +
``def f():`` reaches the ``def`` it annotates.  Pragmas are extracted
with :mod:`tokenize`, so a ``# repro:`` inside a string literal is never
mistaken for one.

:func:`pragma_records` keeps each pragma comment as a distinct record so
the engine can report pragmas that suppressed nothing (dead pragmas,
``repro-lint --check-pragmas``).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

__all__ = ["PRAGMA_RE", "Pragma", "pragma_lines", "pragma_records"]

#: Matches the pragma comment body; group 1 holds the allow-list.
PRAGMA_RE = re.compile(
    r"#\s*repro:\s*(allow-[a-z0-9_-]+(?:\s*,\s*allow-[a-z0-9_-]+)*)",
    re.IGNORECASE,
)

_ALLOW_RE = re.compile(r"allow-([a-z0-9_-]+)", re.IGNORECASE)


def _tokens(comment: str) -> set[str]:
    return {m.group(1).lower() for m in _ALLOW_RE.finditer(comment)}


@dataclass(frozen=True)
class Pragma:
    """One ``# repro: allow-*`` comment and the lines it covers."""

    #: 1-based line of the pragma comment itself.
    line: int
    #: 0-based column of the comment token.
    col: int
    #: Lower-cased rule IDs / slugs the pragma allows.
    tokens: frozenset[str]
    #: Every 1-based line the pragma's suppression reaches.
    covered: frozenset[int]
    #: The comment text, for reporting.
    text: str


def _bracket_delta(line: str) -> int:
    """Net open-bracket count of a physical line (naive: good enough for
    decorator argument lists, which rarely embed bracket literals in
    strings)."""
    return (
        line.count("(") + line.count("[") + line.count("{")
        - line.count(")") - line.count("]") - line.count("}")
    )


def _standalone_coverage(lines: list[str], start: int) -> set[int]:
    """Lines covered by a standalone pragma at 1-based line ``start``:
    down through comments, blanks, and whole decorators to the first
    real code line (inclusive)."""
    covered = {start}
    nxt = start + 1
    depth = 0
    while nxt <= len(lines):
        raw = lines[nxt - 1]
        stripped = raw.strip()
        covered.add(nxt)
        if depth > 0:
            # inside a multi-line decorator call
            depth = max(0, depth + _bracket_delta(raw))
            nxt += 1
            continue
        if not stripped or stripped.startswith("#"):
            nxt += 1
            continue
        if stripped.startswith("@"):
            depth = max(0, _bracket_delta(raw))
            nxt += 1
            continue
        break  # first code line: covered, stop
    return covered


def pragma_records(source: str) -> list[Pragma]:
    """Every pragma comment in ``source``, with its coverage resolved.

    Standalone pragma comments extend their coverage down through any
    directly following comment, blank, or decorator lines to the first
    code line; trailing pragmas cover only their own line.
    """
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, ValueError):
        return []
    lines = source.splitlines()
    records: list[Pragma] = []
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = PRAGMA_RE.search(tok.string)
        if match is None:
            continue
        line = tok.start[0]
        standalone = tok.line[: tok.start[1]].strip() == ""
        covered = (_standalone_coverage(lines, line) if standalone
                   else frozenset({line}))
        records.append(Pragma(
            line=line,
            col=tok.start[1],
            tokens=frozenset(_tokens(match.group(1))),
            covered=frozenset(covered),
            text=tok.string.strip(),
        ))
    return records


def pragma_lines(source: str) -> dict[int, set[str]]:
    """Map 1-based line number -> lower-cased allowed rule tokens."""
    allowed: dict[int, set[str]] = {}
    for pragma in pragma_records(source):
        for line in pragma.covered:
            allowed.setdefault(line, set()).update(pragma.tokens)
    return allowed
