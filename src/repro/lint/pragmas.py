"""Inline suppression pragmas: ``# repro: allow-<rule>``.

A pragma names the rule it silences by ID (``allow-det001``) or slug
(``allow-wall-clock``), case-insensitively; several rules may be listed
comma-separated::

    t0 = time.perf_counter()  # repro: allow-wall-clock
    # repro: allow-det002, allow-float-eq
    x = noisy_line()

A pragma covers findings on its own physical line and, when it stands
alone as a comment, the first code line below it (any further comment or
blank lines in between are skipped) -- so a pragma can sit atop an
explanatory comment block above the ``def`` or call it annotates.
Pragmas are extracted with :mod:`tokenize`, so a ``# repro:`` inside a
string literal is never mistaken for one.
"""

from __future__ import annotations

import io
import re
import tokenize

__all__ = ["PRAGMA_RE", "pragma_lines"]

#: Matches the pragma comment body; group 1 holds the allow-list.
PRAGMA_RE = re.compile(
    r"#\s*repro:\s*(allow-[a-z0-9_-]+(?:\s*,\s*allow-[a-z0-9_-]+)*)",
    re.IGNORECASE,
)

_ALLOW_RE = re.compile(r"allow-([a-z0-9_-]+)", re.IGNORECASE)


def _tokens(comment: str) -> set[str]:
    return {m.group(1).lower() for m in _ALLOW_RE.finditer(comment)}


def pragma_lines(source: str) -> dict[int, set[str]]:
    """Map 1-based line number -> lower-cased allowed rule tokens.

    Standalone pragma comments extend their coverage down through any
    directly following comment or blank lines to the first code line;
    trailing pragmas cover only their own line.
    """
    allowed: dict[int, set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, ValueError):
        return allowed
    lines = source.splitlines()
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = PRAGMA_RE.search(tok.string)
        if match is None:
            continue
        names = _tokens(match.group(1))
        line = tok.start[0]
        allowed.setdefault(line, set()).update(names)
        standalone = tok.line[: tok.start[1]].strip() == ""
        if standalone:
            nxt = line + 1
            while nxt <= len(lines):
                stripped = lines[nxt - 1].strip()
                allowed.setdefault(nxt, set()).update(names)
                if stripped and not stripped.startswith("#"):
                    break
                nxt += 1
    return allowed
