"""Deterministic process-pool fan-out for the pipeline's hot paths.

The contract every parallelised stage in this repo honours:

1. **Shard count is a function of the data, never of the worker count.**
   :func:`auto_shards` sizes the shard list from the number of items
   alone, so ``jobs=1`` and ``jobs=8`` execute the *same* shards.
2. **Randomness is drawn per shard from spawned child generators.**
   :func:`spawn_rngs` derives one independent ``numpy`` generator per
   shard from the root seed (``SeedSequence`` spawning), so no shard's
   draws depend on how work was scheduled.
3. **Reduction is ordered.** :func:`map_shards` returns results in shard
   order regardless of completion order, and reducers combine them in
   that order (floating-point accumulation order stays fixed).

Together these make ``jobs=N`` byte-identical to the sequential
``jobs=1`` path -- the property ``tests/test_determinism.py`` pins.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import TypeVar

import numpy as np

from repro.telemetry import registry as _telemetry

__all__ = [
    "auto_shards",
    "effective_jobs",
    "map_shards",
    "plan_shards",
    "shard_bounds",
    "spawn_rngs",
]

S = TypeVar("S")
R = TypeVar("R")

#: Upper bound on automatically chosen shard counts.  Small enough that
#: per-shard batches stay cache-friendly, large enough to feed a typical
#: worker pool.
DEFAULT_MAX_SHARDS = 8


def effective_jobs(jobs: int | None) -> int:
    """Resolve a user-facing ``jobs`` value to a worker count.

    ``None`` means sequential (1); ``0`` or a negative value means "all
    cores"; anything else is taken literally.
    """
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def auto_shards(
    n_items: int,
    *,
    max_shards: int = DEFAULT_MAX_SHARDS,
    min_per_shard: int = 1,
) -> int:
    """Shard count for ``n_items`` work items -- data-dependent only.

    Never exceeds ``max_shards`` or ``n_items``, and never produces
    shards smaller than ``min_per_shard`` items (tiny inputs collapse to
    a single shard, where the parallel path degenerates to the plain
    sequential implementation).
    """
    if n_items <= 0:
        return 0
    by_size = max(1, n_items // max(min_per_shard, 1))
    return max(1, min(int(max_shards), by_size, n_items))


def shard_bounds(n_items: int, n_shards: int) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` bounds covering ``range(n_items)``.

    Shard sizes differ by at most one; the layout depends only on the two
    arguments, so it is stable across runs and worker counts.
    """
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    n_shards = min(n_shards, n_items) or 1
    base, extra = divmod(n_items, n_shards)
    bounds: list[tuple[int, int]] = []
    lo = 0
    for s in range(n_shards):
        hi = lo + base + (1 if s < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def plan_shards(
    n_items: int,
    *,
    max_shards: int = DEFAULT_MAX_SHARDS,
    min_per_shard: int = 1,
) -> list[tuple[int, int]]:
    """Data-derived contiguous shard bounds for ``n_items`` work items.

    Composes :func:`auto_shards` and :func:`shard_bounds`: the partition
    is a pure function of ``n_items`` (and the explicit knobs), never of
    the worker count, so any consumer executing the shards -- inline, a
    process pool, or the supervised load service -- produces the same
    per-shard decomposition.  An empty input yields an empty plan.
    """
    n_shards = auto_shards(n_items, max_shards=max_shards,
                           min_per_shard=min_per_shard)
    if n_shards == 0:
        return []
    return shard_bounds(n_items, n_shards)


def spawn_rngs(
    seed: int | np.random.Generator,
    n: int,
) -> tuple[np.random.Generator, list[np.random.Generator]]:
    """Root generator plus ``n`` independent children.

    Children are derived through ``SeedSequence`` spawning: the ``i``-th
    child is a pure function of the root seed and ``i``, independent of
    worker scheduling.  The returned root is valid for further draws
    (spawning advances only its spawn counter, not its stream).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    rng = (seed if isinstance(seed, np.random.Generator)
           else np.random.default_rng(seed))
    return rng, rng.spawn(n) if n else []


def map_shards(
    fn: Callable[[S], R],
    shard_args: Sequence[S],
    *,
    jobs: int | None = None,
) -> list[R]:
    """Apply ``fn`` to every shard argument, in order.

    ``jobs`` <= 1 (or a single shard) runs inline; otherwise shards fan
    out over a process pool (``fn`` must therefore be a module-level,
    picklable callable).  Results always come back in input order, and a
    worker exception propagates to the caller.
    """
    n = len(shard_args)
    if n == 0:
        return []
    workers = min(effective_jobs(jobs), n)
    reg = _telemetry.active()
    if reg is not None:
        reg.counter("parallel_shards_total",
                    "shards executed by map_shards").inc(n)
        if workers > 1:
            reg.counter("parallel_pool_dispatches_total",
                        "map_shards calls that fanned out over a "
                        "process pool").inc()
    if workers <= 1:
        return [fn(arg) for arg in shard_args]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, shard_args))
