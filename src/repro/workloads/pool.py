"""Workload pool: the augmented set of distinct (function, input) Workloads.

Paper section 3.1.1: the ten FunctionBench workloads are augmented by
varying their input so the pool's execution-time CDF spans the whole trace
distribution, yielding ~2300 distinct Workloads.  The pool keeps runtimes
in a sorted array so the mapping stage's range and nearest-neighbour
queries are ``searchsorted`` calls.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.base import FamilyRegistry, Workload
from repro.workloads.functionbench import default_registry

__all__ = [
    "WorkloadPool",
    "build_default_pool",
    "build_extended_pool",
    "vanilla_functionbench",
]

#: Inputs commonly used in the literature for the un-augmented suite
#: (one per family), mirroring the paper's "vanilla FunctionBench" series.
VANILLA_INPUTS: dict[str, dict] = {
    "chameleon": {"rows": 1_000, "cols": 16},
    "cnn_serving": {"side": 224, "channels": 32},
    "image_processing": {"side": 512, "ops": 4},
    "json_serdes": {"n_records": 1_024, "fields": 8, "roundtrips": 1},
    "matmul": {"n": 512, "reps": 1},
    "lr_serving": {"batch": 1_000, "features": 128},
    "lr_training": {"n_samples": 20_000, "features": 128, "iterations": 800},
    "pyaes": {"length": 4_096, "rounds": 2},
    "rnn_serving": {"seq_len": 128, "hidden": 128},
    "video_processing": {"frames": 64, "side": 240},
}


@dataclass
class WorkloadPool:
    """An immutable, runtime-sorted collection of Workloads."""

    workloads: list[Workload]

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ValueError("pool must contain at least one workload")
        ids = {w.workload_id for w in self.workloads}
        if len(ids) != len(self.workloads):
            raise ValueError("workload ids must be unique")
        self.workloads = sorted(self.workloads, key=lambda w: w.runtime_ms)
        self._runtimes = np.array(
            [w.runtime_ms for w in self.workloads], dtype=np.float64
        )
        self._by_id = {w.workload_id: w for w in self.workloads}

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.workloads)

    def __iter__(self):
        return iter(self.workloads)

    def __getitem__(self, workload_id: str) -> Workload:
        try:
            return self._by_id[workload_id]
        except KeyError:
            raise KeyError(f"unknown workload {workload_id!r}") from None

    @property
    def runtimes_ms(self) -> np.ndarray:
        """Sorted runtime array (read-only view)."""
        v = self._runtimes.view()
        v.flags.writeable = False
        return v

    @property
    def memories_mb(self) -> np.ndarray:
        return np.array([w.memory_mb for w in self.workloads])

    def families(self) -> list[str]:
        return sorted({w.family for w in self.workloads})

    def count_by_family(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for w in self.workloads:
            out[w.family] = out.get(w.family, 0) + 1
        return out

    def fingerprint_parts(self) -> tuple:
        """Compact identity of the pool for content-addressed cache keys.

        Everything the pipeline's output can depend on -- ids, families,
        runtimes, memories, input parameters -- flattened into strings
        and arrays that hash in a handful of updates instead of one
        traversal per Workload (the pool holds thousands).
        """
        return (
            "\x1f".join(w.workload_id for w in self.workloads),
            "\x1f".join(w.family for w in self.workloads),
            "\x1f".join(
                repr(sorted(w.params.items())) for w in self.workloads
            ),
            self._runtimes,
            self.memories_mb,
        )

    # ------------------------------------------------------------------
    # queries used by the mapping stage
    # ------------------------------------------------------------------
    def within_threshold(self, runtime_ms: float, pct: float) -> np.ndarray:
        """Indices of workloads whose runtime is within ``pct``% of target.

        The mapping algorithm's candidate set (paper section 3.1.3): all
        pool entries whose runtime diverges from the Function's reported
        average by at most the error threshold.
        """
        if runtime_ms <= 0:
            raise ValueError("runtime must be positive")
        if pct < 0:
            raise ValueError("threshold must be non-negative")
        lo = runtime_ms * (1.0 - pct / 100.0)
        hi = runtime_ms * (1.0 + pct / 100.0)
        i = np.searchsorted(self._runtimes, lo, side="left")
        j = np.searchsorted(self._runtimes, hi, side="right")
        return np.arange(i, j)

    def nearest(self, runtime_ms: float) -> int:
        """Index of the workload with runtime closest to ``runtime_ms``.

        The fallback when no workload honours the threshold -- used for the
        long-running outlier Functions the paper mentions.
        """
        if runtime_ms <= 0:
            raise ValueError("runtime must be positive")
        j = int(np.searchsorted(self._runtimes, runtime_ms))
        if j == 0:
            return 0
        if j >= self._runtimes.size:
            return int(self._runtimes.size - 1)
        left, right = self._runtimes[j - 1], self._runtimes[j]
        return j - 1 if runtime_ms - left <= right - runtime_ms else j

    def index_of(self, workload_id: str) -> int:
        w = self[workload_id]
        lo = int(np.searchsorted(self._runtimes, w.runtime_ms, side="left"))
        for k in range(lo, len(self.workloads)):
            if self.workloads[k].workload_id == workload_id:
                return k
        raise AssertionError(f"pool index desynchronised for {workload_id}")


def build_default_pool(
    registry: FamilyRegistry | None = None,
    seed: int | None = None,
) -> WorkloadPool:
    """Build the full augmented pool from every registered family.

    ``seed`` is accepted for signature stability but unused: the grid and
    the cost models are deterministic (measurement noise only enters via
    the optional on-host calibration).
    """
    del seed
    registry = registry if registry is not None else default_registry()
    workloads: list[Workload] = []
    for family in registry:
        workloads.extend(family.workloads())
    return WorkloadPool(workloads)


def build_extended_pool(seed: int | None = None) -> WorkloadPool:
    """FunctionBench plus the vSwarm-style suite (~2500 workloads).

    The paper's section-3.3 extensibility claim, realised: four further
    families (graph analytics, compression, sorting, text parsing) widen
    the pool's behavioural variety without touching the pipeline.
    """
    from repro.workloads.vswarm import extended_registry

    return build_default_pool(registry=extended_registry(), seed=seed)


def vanilla_functionbench(
    registry: FamilyRegistry | None = None,
) -> WorkloadPool:
    """The 10-workload un-augmented suite with literature inputs (Fig 6)."""
    registry = registry if registry is not None else default_registry()
    workloads = []
    for name, params in VANILLA_INPUTS.items():
        family = registry.get(name)
        workloads.append(
            Workload(
                workload_id=f"{name}:vanilla",
                family=name,
                params=params,
                runtime_ms=family.estimated_runtime_ms(**params),
                memory_mb=family.estimated_memory_mb(**params),
            )
        )
    return WorkloadPool(workloads)
