"""On-host runtime calibration for workload cost models.

The paper registers each Workload's average warm execution time by running
it repeatedly on the target machine (section 3.1.1).  The equivalent here:
measure a spread of inputs per family with ``time.perf_counter``, then
re-fit the family's linear cost model ``runtime = overhead + ms_per_unit *
work_units`` by least squares.  The shipped coefficients were produced by
exactly this harness on the reference machine; re-running it adapts the
pool to any host.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.workloads.base import WorkloadFamily

__all__ = ["CalibrationResult", "measure_runtime_ms", "calibrate_family"]


@dataclass(frozen=True)
class CalibrationResult:
    """Fit of one family's cost model on this host."""

    family: str
    overhead_ms: float
    ms_per_unit: float
    #: (work_units, measured_ms) samples the fit was computed from.
    samples: tuple[tuple[float, float], ...]
    #: Coefficient of determination of the fit.
    r_squared: float

    def apply(self, family: WorkloadFamily) -> None:
        """Install the fitted coefficients onto a family instance."""
        if family.name != self.family:
            raise ValueError(
                f"calibration for {self.family!r} cannot apply to "
                f"{family.name!r}"
            )
        family.overhead_ms = self.overhead_ms
        family.ms_per_unit = self.ms_per_unit


def measure_runtime_ms(
    family: WorkloadFamily,
    params: dict,
    *,
    repeats: int = 3,
    warmups: int = 1,
    seed: int = 0,
) -> float:
    """Average warm wall-clock runtime of one input, in milliseconds.

    The payload is prepared once outside the timed region (FaaS platforms
    measure the function body, not input marshalling), warm-up iterations
    absorb allocator and cache effects, and the reported value is the mean
    of the remaining repeats.
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    if warmups < 0:
        raise ValueError("warmups must be non-negative")
    rng = np.random.default_rng(seed)
    payload = family.prepare(rng, **params)
    for _ in range(warmups):
        family.execute(payload)
    t0 = time.perf_counter()  # repro: allow-wall-clock
    for _ in range(repeats):
        family.execute(payload)
    elapsed = time.perf_counter() - t0  # repro: allow-wall-clock
    return elapsed / repeats * 1e3


def calibrate_family(
    family: WorkloadFamily,
    param_samples: list[dict],
    *,
    repeats: int = 3,
    warmups: int = 1,
    seed: int = 0,
) -> CalibrationResult:
    """Fit ``overhead_ms`` and ``ms_per_unit`` from measured inputs.

    Least squares on ``measured = overhead + ms_per_unit * units``; the
    overhead is clamped at zero (a negative intercept is measurement noise,
    not a model).  At least two samples with distinct work-unit counts are
    required.
    """
    if len(param_samples) < 2:
        raise ValueError("need at least two parameter samples to fit")
    units = np.array(
        [family.work_units(**p) for p in param_samples], dtype=np.float64
    )
    if np.unique(units).size < 2:
        raise ValueError("parameter samples must span distinct work volumes")
    measured = np.array(
        [
            measure_runtime_ms(
                family, p, repeats=repeats, warmups=warmups, seed=seed
            )
            for p in param_samples
        ]
    )
    design = np.column_stack([np.ones_like(units), units])
    coef, *_ = np.linalg.lstsq(design, measured, rcond=None)
    overhead = float(max(coef[0], 0.0))
    slope = float(max(coef[1], 1e-12))
    predicted = overhead + slope * units
    ss_res = float(((measured - predicted) ** 2).sum())
    ss_tot = float(((measured - measured.mean()) ** 2).sum())
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return CalibrationResult(
        family=family.name,
        overhead_ms=overhead,
        ms_per_unit=slope,
        samples=tuple(zip(units.tolist(), measured.tolist())),
        r_squared=r_squared,
    )
