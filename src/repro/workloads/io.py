"""Workload-pool persistence and composition.

Pools are cheap to rebuild from the grids, but a *calibrated* pool (cost
models re-fitted on a specific host) is an artifact worth sharing -- and
the paper's extensibility story ("a larger volume of benchmarking suites
would lead to even greater variety") needs a way to compose pools from
several suites.  JSON keeps the artifact human-diffable.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.workloads.base import Workload
from repro.workloads.pool import WorkloadPool

__all__ = ["load_pool", "merge_pools", "save_pool"]

_POOL_VERSION = 1


def save_pool(pool: WorkloadPool, path: Path | str) -> None:
    """Serialise a pool (metadata only; bodies live in the families)."""
    data = {
        "version": _POOL_VERSION,
        "workloads": [
            {
                "workload_id": w.workload_id,
                "family": w.family,
                "params": dict(w.params),
                "runtime_ms": w.runtime_ms,
                "memory_mb": w.memory_mb,
            }
            for w in pool
        ],
    }
    Path(path).write_text(json.dumps(data))


def load_pool(path: Path | str) -> WorkloadPool:
    """Load a pool saved by :func:`save_pool`."""
    data = json.loads(Path(path).read_text())
    version = data.get("version")
    if version != _POOL_VERSION:
        raise ValueError(
            f"unsupported pool version {version!r} "
            f"(expected {_POOL_VERSION})"
        )
    workloads = [Workload(**w) for w in data["workloads"]]
    if not workloads:
        raise ValueError(f"{path}: pool file contains no workloads")
    return WorkloadPool(workloads)


def merge_pools(*pools: WorkloadPool) -> WorkloadPool:
    """Union of several pools (suite composition).

    Workload ids must be globally unique across the inputs -- families
    from different suites already namespace their variants, so collisions
    indicate merging the same suite twice.
    """
    if not pools:
        raise ValueError("need at least one pool")
    seen: dict[str, str] = {}
    workloads = []
    for pool in pools:
        for w in pool:
            if w.workload_id in seen:
                raise ValueError(
                    f"workload id {w.workload_id!r} appears in multiple "
                    "pools; are you merging a suite with itself?"
                )
            seen[w.workload_id] = w.family
            workloads.append(w)
    return WorkloadPool(workloads)
