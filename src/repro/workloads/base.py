"""Workload model: runnable FaaS function bodies with cost models.

FaaSRail treats a *Workload* as a distinct ``(function, input)`` combination
with a known average warm execution time (paper section 3.1.1).  Here each
FunctionBench-style family is a :class:`WorkloadFamily` that can

- enumerate an input grid (the paper's "augmentation": varying the input so
  execution times span the whole trace distribution),
- *estimate* the warm runtime of any input through an analytic cost model
  (``overhead + ms_per_unit * work_units(params)``, coefficients shipped
  from calibration on a reference machine and re-fittable on any host via
  :mod:`repro.workloads.calibration`), and
- actually *run* the input (a genuine computation, used by the live
  replayer and by calibration -- never a sleep or busy loop).

The pool built from estimates is deterministic and instant to construct;
the paper's physical measurement step (each workload pinned to a core of a
Xeon 4314) is replaced by the cost model + optional on-host calibration, as
recorded in DESIGN.md.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Workload", "WorkloadFamily", "FamilyRegistry"]


@dataclass(frozen=True)
class Workload:
    """One distinct (function, input) combination.

    Attributes
    ----------
    workload_id:
        Unique id, ``"<family>:<variant index>"``.
    family:
        Name of the originating benchmark (e.g. ``"pyaes"``).
    params:
        Input parameters, as an immutable mapping.
    runtime_ms:
        Average warm execution time used by the mapping stage.
    memory_mb:
        Estimated resident memory, used for the Figure-7 comparison.
    """

    workload_id: str
    family: str
    params: Mapping[str, Any]
    runtime_ms: float
    memory_mb: float

    def __post_init__(self) -> None:
        if self.runtime_ms <= 0:
            raise ValueError(
                f"{self.workload_id}: runtime must be positive, "
                f"got {self.runtime_ms}"
            )
        if self.memory_mb <= 0:
            raise ValueError(
                f"{self.workload_id}: memory must be positive, "
                f"got {self.memory_mb}"
            )
        # Freeze the params mapping so Workloads are safely hashable-by-id
        # and cannot drift after pool construction.
        object.__setattr__(self, "params", dict(self.params))


class WorkloadFamily(abc.ABC):
    """A FunctionBench benchmark with a parameterisable input.

    Subclasses define the input grid, the work-unit function, and the
    runnable body.  Cost coefficients (``overhead_ms``, ``ms_per_unit``)
    are class attributes calibrated on the reference machine; the
    calibration harness re-fits them per host.
    """

    #: Family name; must be unique across the registry.
    name: str = ""
    #: Fixed per-invocation overhead of the body, in ms.
    overhead_ms: float = 0.05
    #: Marginal cost per work unit, in ms.
    ms_per_unit: float = 1.0
    #: Baseline resident memory of the runtime, in MiB.
    base_memory_mb: float = 30.0

    # ------------------------------------------------------------------
    # to implement
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def input_grid(self) -> Iterable[Mapping[str, Any]]:
        """Yield the augmentation grid: one params mapping per variant."""

    @abc.abstractmethod
    def work_units(self, **params) -> float:
        """Abstract work volume of an input (drives the cost model)."""

    @abc.abstractmethod
    def prepare(self, rng, **params) -> Any:
        """Build the invocation payload (deterministic given ``rng``)."""

    @abc.abstractmethod
    def execute(self, payload) -> Any:
        """Run the function body on a prepared payload; returns its result."""

    # ------------------------------------------------------------------
    # provided
    # ------------------------------------------------------------------
    def estimated_runtime_ms(self, **params) -> float:
        """Cost-model estimate of the warm runtime for ``params``."""
        return self.overhead_ms + self.ms_per_unit * self.work_units(**params)

    def estimated_memory_mb(self, **params) -> float:
        """Rough resident-set estimate; families override when input-sized
        buffers dominate."""
        return self.base_memory_mb

    def workloads(self, start_index: int = 0) -> list[Workload]:
        """Materialise this family's grid as Workload records."""
        out = []
        for k, params in enumerate(self.input_grid(), start=start_index):
            out.append(
                Workload(
                    workload_id=f"{self.name}:{k}",
                    family=self.name,
                    params=params,
                    runtime_ms=self.estimated_runtime_ms(**params),
                    memory_mb=self.estimated_memory_mb(**params),
                )
            )
        return out

    def run(self, rng, **params):
        """Prepare and execute in one call (convenience for tests/examples)."""
        return self.execute(self.prepare(rng, **params))


@dataclass
class FamilyRegistry:
    """Name -> family lookup used by the pool builder and the replayer."""

    _families: dict[str, WorkloadFamily] = field(default_factory=dict)

    def register(self, family: WorkloadFamily) -> WorkloadFamily:
        if not family.name:
            raise ValueError(f"{type(family).__name__} has no name")
        if family.name in self._families:
            raise ValueError(f"duplicate family {family.name!r}")
        self._families[family.name] = family
        return family

    def get(self, name: str) -> WorkloadFamily:
        try:
            return self._families[name]
        except KeyError:
            raise KeyError(
                f"unknown workload family {name!r}; known: {sorted(self._families)}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._families)

    def __iter__(self):
        return iter(self._families.values())

    def __len__(self) -> int:
        return len(self._families)
