"""Workload substrate: runnable FunctionBench bodies and the augmented pool.

See :mod:`repro.workloads.base` for the Workload / WorkloadFamily model,
:mod:`repro.workloads.functionbench` for the ten Table-1 benchmarks,
:mod:`repro.workloads.pool` for augmentation, and
:mod:`repro.workloads.calibration` for on-host runtime fitting.
"""

from repro.workloads.base import FamilyRegistry, Workload, WorkloadFamily
from repro.workloads.calibration import (
    CalibrationResult,
    calibrate_family,
    measure_runtime_ms,
)
from repro.workloads.functionbench import ALL_FAMILIES, default_registry
from repro.workloads.io import load_pool, merge_pools, save_pool
from repro.workloads.pool import (
    WorkloadPool,
    build_default_pool,
    build_extended_pool,
    vanilla_functionbench,
)

__all__ = [
    "ALL_FAMILIES",
    "CalibrationResult",
    "FamilyRegistry",
    "Workload",
    "WorkloadFamily",
    "WorkloadPool",
    "build_default_pool",
    "build_extended_pool",
    "calibrate_family",
    "default_registry",
    "load_pool",
    "measure_runtime_ms",
    "merge_pools",
    "save_pool",
    "vanilla_functionbench",
]
