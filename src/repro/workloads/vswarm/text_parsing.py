"""``text_parsing`` -- regex scanning and tokenisation of synthetic logs.

String scanning with branchy per-character work (an API-gateway /
log-processing profile).  Cost is linear in characters scanned per pass.
"""

from __future__ import annotations

import re

import numpy as np

from repro.workloads.base import WorkloadFamily

__all__ = ["TextParsing"]

_LINE_TEMPLATE = "{ts:010d} host-{h:03d} GET /api/v{v}/item/{item:06d} {ms}ms\n"
_PATTERN = re.compile(
    r"^(?P<ts>\d+) host-(?P<host>\d+) (?P<verb>\w+) "
    r"(?P<path>\S+) (?P<ms>\d+)ms$",
    re.MULTILINE,
)


class TextParsing(WorkloadFamily):
    name = "text_parsing"
    overhead_ms = 0.10
    ms_per_unit = 7.1e-4  # per log line scanned per pass
    base_memory_mb = 38.0

    _LINES = np.unique(np.geomspace(200, 400_000, 24).astype(int))
    _PASSES = (1, 2, 4)

    def input_grid(self):
        for n_lines in self._LINES:
            for passes in self._PASSES:
                yield {"n_lines": int(n_lines), "passes": passes}

    def work_units(self, *, n_lines: int, passes: int) -> float:
        return float(n_lines * passes)

    def estimated_memory_mb(self, *, n_lines: int, passes: int) -> float:
        return self.base_memory_mb + n_lines * 60 / 2**20

    def prepare(self, rng, *, n_lines: int, passes: int):
        if n_lines <= 0 or passes <= 0:
            raise ValueError("n_lines and passes must be positive")
        ts = rng.integers(0, 10**9, size=n_lines)
        hosts = rng.integers(0, 1000, size=n_lines)
        items = rng.integers(0, 10**6, size=n_lines)
        ms = rng.integers(1, 5000, size=n_lines)
        text = "".join(
            _LINE_TEMPLATE.format(ts=int(t), h=int(h), v=1 + int(h) % 3,
                                  item=int(i), ms=int(m))
            for t, h, i, m in zip(ts, hosts, items, ms)
        )
        return text, passes

    def execute(self, payload):
        text, passes = payload
        slow = 0
        for _ in range(passes):
            slow = sum(
                1 for m in _PATTERN.finditer(text)
                if int(m.group("ms")) > 2500
            )
        return slow
