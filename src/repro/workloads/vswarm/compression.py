"""``compression`` -- zlib round-trip over a synthetic byte stream.

Byte-oriented CPU work with a memory-bandwidth component, a profile none
of the FunctionBench ten covers.  Cost is linear in bytes processed per
round-trip.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.workloads.base import WorkloadFamily

__all__ = ["Compression"]


class Compression(WorkloadFamily):
    name = "compression"
    overhead_ms = 0.05
    ms_per_unit = 1.9e-5  # per byte compressed+decompressed (level 6)
    base_memory_mb = 35.0

    _SIZES = np.unique(np.geomspace(16_384, 8_388_608, 28).astype(int))
    _ROUNDS = (1, 2, 4)

    def input_grid(self):
        for size in self._SIZES:
            for rounds in self._ROUNDS:
                yield {"size_bytes": int(size), "rounds": rounds}

    def work_units(self, *, size_bytes: int, rounds: int) -> float:
        return float(size_bytes * rounds)

    def estimated_memory_mb(self, *, size_bytes: int, rounds: int) -> float:
        return self.base_memory_mb + 3 * size_bytes / 2**20

    def prepare(self, rng, *, size_bytes: int, rounds: int):
        if size_bytes <= 0 or rounds <= 0:
            raise ValueError("size_bytes and rounds must be positive")
        # Mildly compressible data: random bytes interleaved with runs.
        noise = rng.integers(0, 256, size=size_bytes // 2, dtype=np.uint8)
        runs = np.repeat(
            rng.integers(0, 256, size=max(size_bytes // 64, 1),
                         dtype=np.uint8),
            32,
        )[: size_bytes - noise.size]
        data = np.concatenate([noise, runs]).tobytes()
        return data, rounds

    def execute(self, payload):
        data, rounds = payload
        size = 0
        for _ in range(rounds):
            compressed = zlib.compress(data, 6)
            data = zlib.decompress(compressed)
            size = len(compressed)
        return size
