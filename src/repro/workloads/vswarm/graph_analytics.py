"""``graph_analytics`` -- BFS + PageRank over a random graph (networkx).

Pointer-chasing with irregular memory access, the profile distributed
scheduling research increasingly cares about (paper section 2.2).  Cost
scales with edges times PageRank iterations.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.workloads.base import WorkloadFamily

__all__ = ["GraphAnalytics"]

_EDGES_PER_NODE = 4


class GraphAnalytics(WorkloadFamily):
    name = "graph_analytics"
    overhead_ms = 0.3
    ms_per_unit = 1.05e-4  # per edge-iteration (pure-Python adjacency loops)
    base_memory_mb = 55.0

    _NODES = np.unique(np.geomspace(64, 20_000, 22).astype(int))
    _ITERATIONS = (5, 10, 20)

    def input_grid(self):
        for n_nodes in self._NODES:
            for iterations in self._ITERATIONS:
                yield {"n_nodes": int(n_nodes), "iterations": iterations}

    def work_units(self, *, n_nodes: int, iterations: int) -> float:
        # BFS touches each edge once; PageRank touches them per iteration.
        edges = n_nodes * _EDGES_PER_NODE
        return float(edges * (iterations + 1))

    def estimated_memory_mb(self, *, n_nodes: int, iterations: int) -> float:
        # networkx adjacency dicts are heavy: ~0.5 KiB per edge
        return self.base_memory_mb + \
            n_nodes * _EDGES_PER_NODE * 512 / 2**20

    def prepare(self, rng, *, n_nodes: int, iterations: int):
        if n_nodes <= 1 or iterations <= 0:
            raise ValueError("need n_nodes > 1 and positive iterations")
        graph = nx.barabasi_albert_graph(
            n_nodes, _EDGES_PER_NODE, seed=int(rng.integers(0, 2**31))
        )
        adjacency = [list(graph.neighbors(v)) for v in range(n_nodes)]
        source = int(rng.integers(0, n_nodes))
        return adjacency, source, iterations

    def execute(self, payload):
        adjacency, source, iterations = payload
        n = len(adjacency)
        # BFS reachability: pure-Python pointer chasing.
        seen = [False] * n
        seen[source] = True
        frontier = [source]
        reachable = 0
        while frontier:
            nxt = []
            for v in frontier:
                for w in adjacency[v]:
                    if not seen[w]:
                        seen[w] = True
                        nxt.append(w)
            reachable += len(frontier)
            frontier = nxt
        # Fixed-iteration PageRank power method over the adjacency lists
        # (deliberately dict/list-based: irregular access is the profile).
        damping = 0.85
        rank = [1.0 / n] * n
        degree = [max(len(a), 1) for a in adjacency]
        for _ in range(iterations):
            nxt_rank = [(1.0 - damping) / n] * n
            for v, neighbours in enumerate(adjacency):
                share = damping * rank[v] / degree[v]
                for w in neighbours:
                    nxt_rank[w] += share
            rank = nxt_rank
        top = max(range(n), key=rank.__getitem__)
        return reachable, top
