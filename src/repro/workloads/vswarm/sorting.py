"""``sorting`` -- comparison sorting of string records.

Interpreter-bound comparison work over Python string tuples (Timsort with
custom keys), distinct from NumPy's vectorised number crunching.  Cost is
``n log n`` in records.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import WorkloadFamily

__all__ = ["Sorting"]


class Sorting(WorkloadFamily):
    name = "sorting"
    overhead_ms = 0.05
    ms_per_unit = 2.9e-5  # per record-comparison-ish unit (n log2 n)
    base_memory_mb = 40.0

    _SIZES = np.unique(np.geomspace(1_000, 2_000_000, 24).astype(int))
    _KEYS = (1, 3)

    def input_grid(self):
        for n_records in self._SIZES:
            for n_keys in self._KEYS:
                yield {"n_records": int(n_records), "n_keys": n_keys}

    def work_units(self, *, n_records: int, n_keys: int) -> float:
        return float(n_records * np.log2(max(n_records, 2)) * n_keys)

    def estimated_memory_mb(self, *, n_records: int, n_keys: int) -> float:
        return self.base_memory_mb + n_records * 80 / 2**20

    def prepare(self, rng, *, n_records: int, n_keys: int):
        if n_records <= 0 or n_keys <= 0:
            raise ValueError("n_records and n_keys must be positive")
        ints = rng.integers(0, 10**9, size=(n_records, n_keys))
        records = [tuple(f"k{v:09d}" for v in row) for row in ints]
        return records, n_keys

    def execute(self, payload):
        records, n_keys = payload
        out = records
        for key_idx in range(n_keys):
            out = sorted(out, key=lambda r, k=key_idx: r[k])
        return out[0][0]
