"""A second workload suite, in the spirit of vSwarm / SeBS.

Paper section 3.3 ("Flexibility to adopt new real workloads"): FaaSRail is
not bound to FunctionBench, and enriching the pool with further
open-source suites is the stated plan.  This subpackage delivers four
additional families with execution profiles FunctionBench lacks --
graph analytics (pointer-chasing via networkx), compression (byte-stream
CPU with zlib), text parsing (regex/scanning), and sorting (comparison-
bound) -- wired into the same WorkloadFamily contract, so
:func:`extended_registry` / ``build_extended_pool`` drop them straight
into the mapping machinery.
"""

from repro.workloads.base import FamilyRegistry
from repro.workloads.functionbench import default_registry
from repro.workloads.vswarm.compression import Compression
from repro.workloads.vswarm.graph_analytics import GraphAnalytics
from repro.workloads.vswarm.sorting import Sorting
from repro.workloads.vswarm.text_parsing import TextParsing

__all__ = [
    "Compression",
    "GraphAnalytics",
    "Sorting",
    "TextParsing",
    "VSWARM_FAMILIES",
    "extended_registry",
]

VSWARM_FAMILIES = (Compression, GraphAnalytics, Sorting, TextParsing)


def extended_registry() -> FamilyRegistry:
    """FunctionBench plus the vSwarm-style families (14 total)."""
    registry = default_registry()
    for cls in VSWARM_FAMILIES:
        registry.register(cls())
    return registry
