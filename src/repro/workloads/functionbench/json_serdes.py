"""``json_serdes`` -- JSON serialisation & deserialisation (FunctionBench).

Round-trips a synthetic nested document through ``json.dumps`` /
``json.loads``; cost scales with the number of leaf values.
"""

from __future__ import annotations

import json

from repro.workloads.base import WorkloadFamily

__all__ = ["JsonSerdes"]


class JsonSerdes(WorkloadFamily):
    name = "json_serdes"
    overhead_ms = 0.02
    ms_per_unit = 5.0e-4  # per leaf value round-tripped; calibrated in-repo
    base_memory_mb = 30.0

    import numpy as _np

    _N_RECORDS = tuple(
        int(v)
        for v in _np.unique(_np.geomspace(2_000, 300_000, 44).astype(int))
    )
    _FIELDS = (4, 8, 16)
    _ROUNDTRIPS = (1, 2, 4)
    #: Bounds on leafs*roundtrips: ~5 ms .. ~8 s of serdes work.
    _MIN_WORK = 1.0e4
    _MAX_WORK = 1.6e7

    def input_grid(self):
        for n in self._N_RECORDS:
            for fields in self._FIELDS:
                for roundtrips in self._ROUNDTRIPS:
                    work = n * fields * roundtrips
                    if self._MIN_WORK <= work <= self._MAX_WORK:
                        yield {"n_records": n, "fields": fields,
                               "roundtrips": roundtrips}

    def work_units(self, *, n_records: int, fields: int,
                   roundtrips: int) -> float:
        return float(n_records * fields * roundtrips)

    def estimated_memory_mb(self, *, n_records: int, fields: int,
                            roundtrips: int) -> float:
        return self.base_memory_mb + n_records * fields * 40 / 2**20

    def prepare(self, rng, *, n_records: int, fields: int, roundtrips: int):
        if min(n_records, fields, roundtrips) <= 0:
            raise ValueError("all parameters must be positive")
        doc = [
            {f"field_{j}": int(v) for j, v in
             enumerate(rng.integers(0, 10**9, size=fields))}
            for _ in range(n_records)
        ]
        return doc, roundtrips

    def execute(self, payload):
        doc, roundtrips = payload
        size = 0
        for _ in range(roundtrips):
            blob = json.dumps(doc)
            doc = json.loads(blob)
            size = len(blob)
        return size
