"""``lr_serving`` -- logistic-regression inference (FunctionBench).

The original serves a scikit-learn logistic-regression model; the body
here computes ``sigmoid(X @ w + b)`` over a ``batch x features`` input
with NumPy -- the identical arithmetic, without the sklearn wrapper.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import WorkloadFamily

__all__ = ["LrServing"]


class LrServing(WorkloadFamily):
    name = "lr_serving"
    #: The warm sklearn-style serving path still pays ~1 ms of model lookup
    #: and input marshalling before the dot product.
    overhead_ms = 1.0
    ms_per_unit = 4.4e-7  # per feature MAC
    base_memory_mb = 45.0

    _BATCHES = np.unique(np.geomspace(5_000, 120_000, 36).astype(int))
    _FEATURES = (32, 128, 512)

    def input_grid(self):
        for batch in self._BATCHES:
            for features in self._FEATURES:
                yield {"batch": int(batch), "features": features}

    def work_units(self, *, batch: int, features: int) -> float:
        return float(batch * features)

    def estimated_memory_mb(self, *, batch: int, features: int) -> float:
        return self.base_memory_mb + batch * features * 8 / 2**20

    def prepare(self, rng, *, batch: int, features: int):
        if batch <= 0 or features <= 0:
            raise ValueError("batch and features must be positive")
        x = rng.standard_normal((batch, features))
        w = rng.standard_normal(features)
        b = float(rng.standard_normal())
        return x, w, b

    def execute(self, payload):
        x, w, b = payload
        logits = x @ w + b
        probs = 1.0 / (1.0 + np.exp(-logits))
        return int((probs > 0.5).sum())
