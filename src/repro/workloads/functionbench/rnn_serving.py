"""``rnn_serving`` -- word-generation RNN inference (FunctionBench).

The original runs a PyTorch character RNN; the body here performs the same
forward recurrence (``h = tanh(W_xh x + W_hh h)`` followed by an output
projection and argmax sampling) with NumPy.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import WorkloadFamily

__all__ = ["RnnServing"]


class RnnServing(WorkloadFamily):
    name = "rnn_serving"
    #: Warm framework dispatch (embedding lookups, tensor setup) costs ~1.5
    #: ms before the recurrence itself.
    overhead_ms = 1.5
    ms_per_unit = 1.49e-7  # per recurrent MAC
    base_memory_mb = 70.0

    _SEQ_LENS = (16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768)
    _HIDDEN = (128, 256, 512, 768, 1024)

    def input_grid(self):
        for seq_len in self._SEQ_LENS:
            for hidden in self._HIDDEN:
                yield {"seq_len": seq_len, "hidden": hidden}

    def work_units(self, *, seq_len: int, hidden: int) -> float:
        # two dense hidden-size products plus the vocab projection per step
        vocab = 128
        return float(seq_len) * (2.0 * hidden * hidden + hidden * vocab)

    def estimated_memory_mb(self, *, seq_len: int, hidden: int) -> float:
        vocab = 128
        weights = (2 * hidden * hidden + hidden * vocab) * 8
        return self.base_memory_mb + weights / 2**20

    def prepare(self, rng, *, seq_len: int, hidden: int):
        if seq_len <= 0 or hidden <= 0:
            raise ValueError("seq_len and hidden must be positive")
        vocab = 128
        w_xh = rng.standard_normal((vocab, hidden)) * 0.1
        w_hh = rng.standard_normal((hidden, hidden)) * 0.1
        w_hy = rng.standard_normal((hidden, vocab)) * 0.1
        first = int(rng.integers(0, vocab))
        return w_xh, w_hh, w_hy, first, seq_len

    def execute(self, payload):
        w_xh, w_hh, w_hy, token, seq_len = payload
        hidden = w_hh.shape[0]
        h = np.zeros(hidden)
        out = []
        for _ in range(seq_len):
            h = np.tanh(w_xh[token] + h @ w_hh)
            logits = h @ w_hy
            token = int(np.argmax(logits))
            out.append(token)
        return out[-1]
