"""``chameleon`` -- HTML table rendering (FunctionBench, Table 1).

The original workload renders an HTML table with the Chameleon templating
engine; the body here performs the same string-assembly work in pure
Python: per-cell formatting, row joins and document concatenation, with
cost linear in ``rows * cols``.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import WorkloadFamily

__all__ = ["Chameleon"]


class Chameleon(WorkloadFamily):
    name = "chameleon"
    overhead_ms = 0.02
    ms_per_unit = 5.6e-4  # per table cell; calibrated in-repo
    base_memory_mb = 35.0

    _ROWS = np.unique(np.geomspace(1_000, 120_000, 56).astype(int))
    _COLS = (4, 8, 16, 32, 64)
    #: Bounds on rendered cells: ~5 ms .. ~4 s of templating work.
    _MIN_CELLS = 9_000
    _MAX_CELLS = 7_200_000

    def input_grid(self):
        for rows in self._ROWS:
            for cols in self._COLS:
                cells = int(rows) * cols
                if self._MIN_CELLS <= cells <= self._MAX_CELLS:
                    yield {"rows": int(rows), "cols": int(cols)}

    def work_units(self, *, rows: int, cols: int) -> float:
        return float(rows * cols)

    def estimated_memory_mb(self, *, rows: int, cols: int) -> float:
        # ~24 bytes per rendered cell held in the output document
        return self.base_memory_mb + rows * cols * 24 / 2**20

    def prepare(self, rng, *, rows: int, cols: int):
        if rows <= 0 or cols <= 0:
            raise ValueError("rows and cols must be positive")
        values = rng.integers(0, 10**6, size=(rows, cols))
        return values

    def execute(self, payload):
        values = payload
        rows = []
        for r in values:
            cells = "".join(f"<td>{int(v):06d}</td>" for v in r)
            rows.append(f"<tr>{cells}</tr>")
        doc = "<html><body><table>\n" + "\n".join(rows) + "\n</table></body></html>"
        return len(doc)
