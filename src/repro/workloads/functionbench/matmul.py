"""``matmul`` -- dense matrix multiplication with NumPy (FunctionBench).

``reps`` products of two ``n x n`` float64 matrices; cost model uses the
classical ``n^3`` term plus an ``n^2`` touch term for small sizes where
allocation dominates.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import WorkloadFamily

__all__ = ["MatMul"]


class MatMul(WorkloadFamily):
    name = "matmul"
    overhead_ms = 0.03
    ms_per_unit = 4.0e-8  # per fused multiply-add; calibrated in-repo
    base_memory_mb = 32.0

    _SIZES = np.unique(np.geomspace(288, 2816, 56).astype(int))
    _REPS = (1, 2, 4, 8, 16)
    #: Cap estimated runtime at ~10 s: huge repeated GEMMs are not a
    #: realistic FaaS request body.
    _MAX_RUNTIME_MS = 10_000.0

    def input_grid(self):
        for n in self._SIZES:
            for reps in self._REPS:
                params = {"n": int(n), "reps": reps}
                if self.estimated_runtime_ms(**params) <= self._MAX_RUNTIME_MS:
                    yield params

    def work_units(self, *, n: int, reps: int) -> float:
        return float(reps) * (float(n) ** 3 + 40.0 * n * n)

    def estimated_memory_mb(self, *, n: int, reps: int) -> float:
        return self.base_memory_mb + 3 * n * n * 8 / 2**20

    def prepare(self, rng, *, n: int, reps: int):
        if n <= 0 or reps <= 0:
            raise ValueError("n and reps must be positive")
        a = rng.random((n, n))
        b = rng.random((n, n))
        return a, b, reps

    def execute(self, payload):
        a, b, reps = payload
        acc = 0.0
        for _ in range(reps):
            c = a @ b
            acc += float(c[0, 0])
        return acc
