"""``pyaes`` -- pure-Python AES encryption (FunctionBench, Table 1).

Encrypts ``length`` bytes in CTR mode, ``rounds`` times over.  Pure-Python
byte mangling gives the interpreter-bound CPU profile of the original
workload, and the fine-grained (length x rounds) grid densely populates the
short-running end of the Workload pool -- which is why pyaes ends up
dominating the Huawei-mapped request mix (paper Figure 12b).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import WorkloadFamily
from repro.workloads.functionbench._aes import ctr_encrypt

__all__ = ["PyAES"]


class PyAES(WorkloadFamily):
    name = "pyaes"
    overhead_ms = 0.25
    ms_per_unit = 1.17e-1  # per 16-byte block; calibrated in-repo
    base_memory_mb = 28.0

    _LENGTHS = np.unique(np.geomspace(512, 49_152, 64).astype(int))
    _ROUNDS = (1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 24, 32)
    #: Cap on blocks*rounds: keeps the longest pyaes variant ~3.5 s, in line
    #: with the original workload staying a short/medium-running function.
    _MAX_BLOCK_ROUNDS = 30_000

    def input_grid(self):
        for length in self._LENGTHS:
            blocks = (int(length) + 15) // 16
            for rounds in self._ROUNDS:
                if blocks * rounds <= self._MAX_BLOCK_ROUNDS:
                    yield {"length": int(length), "rounds": int(rounds)}

    def work_units(self, *, length: int, rounds: int) -> float:
        blocks = (length + 15) // 16
        return float(blocks * rounds)

    def estimated_memory_mb(self, *, length: int, rounds: int) -> float:
        return self.base_memory_mb + 2 * length / 2**20

    def prepare(self, rng, *, length: int, rounds: int):
        if length <= 0 or rounds <= 0:
            raise ValueError("length and rounds must be positive")
        key = bytes(rng.integers(0, 256, size=16, dtype=np.uint8))
        data = bytes(rng.integers(0, 256, size=length, dtype=np.uint8))
        return key, data, rounds

    def execute(self, payload):
        key, data, rounds = payload
        out = data
        for _ in range(rounds):
            out = ctr_encrypt(key, out)
        return len(out)
