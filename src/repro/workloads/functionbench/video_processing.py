"""``video_processing`` -- gray-scale effect over video frames (FunctionBench).

The original applies an OpenCV gray-scale effect to a video; the body here
converts ``frames`` RGB frames of ``side x side`` to luma with the BT.601
weights and re-encodes them to a (fake) planar buffer.  Cost is linear in
total pixels, and the per-invocation work is the largest of the suite
after lr_training, giving the pool its mid-to-long-running mass.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import WorkloadFamily

__all__ = ["VideoProcessing"]

_BT601 = np.array([0.299, 0.587, 0.114], dtype=np.float32)


class VideoProcessing(WorkloadFamily):
    name = "video_processing"
    overhead_ms = 0.1
    ms_per_unit = 2.2e-6  # per pixel (weighted sum + store)
    base_memory_mb = 60.0

    _FRAMES = (8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512,
               768, 1024, 1280, 1536, 1792, 2048, 2560)
    _SIDES = (240, 360, 480, 720, 1080, 1440, 1920)
    #: Bounds on total pixels: ~20 ms .. ~15 s of frame processing.
    _MIN_PIXELS = 9.0e6
    _MAX_PIXELS = 6.8e9

    def input_grid(self):
        for frames in self._FRAMES:
            for side in self._SIDES:
                pixels = frames * side * side
                if self._MIN_PIXELS <= pixels <= self._MAX_PIXELS:
                    yield {"frames": frames, "side": side}

    def work_units(self, *, frames: int, side: int) -> float:
        return float(frames * side * side)

    def estimated_memory_mb(self, *, frames: int, side: int) -> float:
        # one RGB frame + one luma frame resident at a time, plus a small
        # window of buffered output frames
        return self.base_memory_mb + side * side * (3 + 4 + 1) * 8 / 2**20

    def prepare(self, rng, *, frames: int, side: int):
        if frames <= 0 or side <= 0:
            raise ValueError("frames and side must be positive")
        # A seed frame; successive frames are derived in execute() so the
        # payload stays one frame large regardless of `frames`.
        seed_frame = rng.integers(0, 256, size=(side, side, 3), dtype=np.uint8)
        return seed_frame, frames

    def execute(self, payload):
        frame, n_frames = payload
        total = 0
        for k in range(n_frames):
            rgb = frame if k == 0 else np.roll(frame, k, axis=0)
            luma = (rgb.astype(np.float32) @ _BT601).astype(np.uint8)
            total += int(luma[0, 0])
        return total
