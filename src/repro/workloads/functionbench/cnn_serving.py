"""``cnn_serving`` -- JPEG-classification CNN inference (FunctionBench).

The original serves a TensorFlow CNN; the body here runs a small
convolutional stack (im2col + matmul convolutions, ReLU, 2x2 max-pool,
dense head) with NumPy over a ``side x side x 3`` input.

Deliberately *not* augmented: the paper keeps cnn_serving at a handful of
fixed inputs (a pre-trained classifier has one input shape family), which
is exactly why it is rare in Azure-mapped request mixes and absent from
Huawei-mapped ones (Figures 12a/12b).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import WorkloadFamily

__all__ = ["CnnServing"]


def _conv2d(x: np.ndarray, kernels: np.ndarray) -> np.ndarray:
    """Valid 3x3 convolution via im2col; x is (h, w, c_in), kernels
    (3, 3, c_in, c_out)."""
    h, w, c_in = x.shape
    kh, kw, _, c_out = kernels.shape
    oh, ow = h - kh + 1, w - kw + 1
    # Gather all 3x3 patches with stride tricks (views, no copy) then one GEMM.
    s0, s1, s2 = x.strides
    patches = np.lib.stride_tricks.as_strided(
        x, shape=(oh, ow, kh, kw, c_in), strides=(s0, s1, s0, s1, s2)
    )
    cols = patches.reshape(oh * ow, kh * kw * c_in)
    out = cols @ kernels.reshape(kh * kw * c_in, c_out)
    return out.reshape(oh, ow, c_out)


def _maxpool2(x: np.ndarray) -> np.ndarray:
    h, w, c = x.shape
    h2, w2 = h // 2, w // 2
    view = x[: h2 * 2, : w2 * 2].reshape(h2, 2, w2, 2, c)
    return view.max(axis=(1, 3))


class CnnServing(WorkloadFamily):
    name = "cnn_serving"
    overhead_ms = 2.0
    ms_per_unit = 1.46e-7  # per conv MAC
    base_memory_mb = 220.0  # a loaded TF/Keras model dominates the footprint

    _SIDES = (64, 96, 128, 224)

    def input_grid(self):
        for side in self._SIDES:
            yield {"side": side, "channels": 64}

    def work_units(self, *, side: int, channels: int) -> float:
        # two conv layers (3 -> c, c -> c) with a pool between them
        l1 = (side - 2) ** 2 * 9 * 3 * channels
        side2 = (side - 2) // 2
        l2 = (side2 - 2) ** 2 * 9 * channels * channels
        return float(l1 + l2)

    def estimated_memory_mb(self, *, side: int, channels: int) -> float:
        acts = side * side * channels * 8
        return self.base_memory_mb + acts / 2**20

    def prepare(self, rng, *, side: int, channels: int):
        if side < 8 or channels <= 0:
            raise ValueError("side must be >= 8 and channels positive")
        img = rng.standard_normal((side, side, 3))
        k1 = rng.standard_normal((3, 3, 3, channels)) * 0.1
        k2 = rng.standard_normal((3, 3, channels, channels)) * 0.1
        dense = rng.standard_normal((channels, 10)) * 0.1
        return img, k1, k2, dense

    def execute(self, payload):
        img, k1, k2, dense = payload
        x = np.maximum(_conv2d(img, k1), 0.0)
        x = _maxpool2(x)
        x = np.maximum(_conv2d(x, k2), 0.0)
        features = x.mean(axis=(0, 1))  # global average pool
        logits = features @ dense
        return int(np.argmax(logits))
