"""The ten FunctionBench workloads of the paper's Table 1.

Each module implements one benchmark as a :class:`~repro.workloads.base.
WorkloadFamily`: a runnable NumPy / pure-Python body with the original's
computational profile, an augmentation input grid, and a calibrated cost
model.  :func:`default_registry` wires them all up.
"""

from repro.workloads.base import FamilyRegistry
from repro.workloads.functionbench.chameleon import Chameleon
from repro.workloads.functionbench.cnn_serving import CnnServing
from repro.workloads.functionbench.image_processing import ImageProcessing
from repro.workloads.functionbench.json_serdes import JsonSerdes
from repro.workloads.functionbench.lr_serving import LrServing
from repro.workloads.functionbench.lr_training import LrTraining
from repro.workloads.functionbench.matmul import MatMul
from repro.workloads.functionbench.pyaes import PyAES
from repro.workloads.functionbench.rnn_serving import RnnServing
from repro.workloads.functionbench.video_processing import VideoProcessing

__all__ = [
    "ALL_FAMILIES",
    "Chameleon",
    "CnnServing",
    "ImageProcessing",
    "JsonSerdes",
    "LrServing",
    "LrTraining",
    "MatMul",
    "PyAES",
    "RnnServing",
    "VideoProcessing",
    "default_registry",
]

#: Family classes in Table-1 order.
ALL_FAMILIES = (
    Chameleon,
    CnnServing,
    ImageProcessing,
    JsonSerdes,
    MatMul,
    LrServing,
    LrTraining,
    PyAES,
    RnnServing,
    VideoProcessing,
)


def default_registry() -> FamilyRegistry:
    """Fresh registry holding one instance of each Table-1 family."""
    registry = FamilyRegistry()
    for cls in ALL_FAMILIES:
        registry.register(cls())
    return registry
