"""``image_processing`` -- JPEG-style image manipulation (FunctionBench).

The original workload flips/rotates/filters a JPEG with Pillow; the body
here applies the same class of operations (flip, rotate, box blur,
contrast stretch) to an in-memory ``side x side x 3`` uint8 array with
NumPy, cost linear in pixels processed per op.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import WorkloadFamily

__all__ = ["ImageProcessing"]


def _box_blur(img: np.ndarray) -> np.ndarray:
    # 3x3 box filter via shifted views; float32 accumulator, no copies of
    # the input beyond the accumulator itself.
    acc = np.zeros(img.shape, dtype=np.float32)
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            acc += np.roll(np.roll(img, dy, axis=0), dx, axis=1)
    return (acc / 9.0).astype(np.uint8)


class ImageProcessing(WorkloadFamily):
    name = "image_processing"
    overhead_ms = 0.05
    ms_per_unit = 6.7e-6  # per pixel-op across the op pipeline
    base_memory_mb = 40.0

    _SIDES = np.unique(np.geomspace(256, 4608, 48).astype(int))
    _OPS = (2, 4, 8, 16, 32)
    #: Bounds on pixel-ops: ~3 ms .. ~4 s across the pipeline.
    _MIN_WORK = 4.5e5
    _MAX_WORK = 6.0e8

    def input_grid(self):
        for side in self._SIDES:
            for ops in self._OPS:
                work = int(side) * int(side) * ops
                if self._MIN_WORK <= work <= self._MAX_WORK:
                    yield {"side": int(side), "ops": ops}

    def work_units(self, *, side: int, ops: int) -> float:
        return float(side * side * ops)

    def estimated_memory_mb(self, *, side: int, ops: int) -> float:
        # uint8 image + float32 blur accumulator, 3 channels
        return self.base_memory_mb + side * side * 3 * 5 / 2**20

    def prepare(self, rng, *, side: int, ops: int):
        if side <= 0 or ops <= 0:
            raise ValueError("side and ops must be positive")
        img = rng.integers(0, 256, size=(side, side, 3), dtype=np.uint8)
        return img, ops

    def execute(self, payload):
        img, ops = payload
        for k in range(ops):
            step = k % 4
            if step == 0:
                img = img[::-1]  # vertical flip (view)
            elif step == 1:
                img = np.rot90(img).copy()
            elif step == 2:
                img = _box_blur(img)
            else:
                lo, hi = img.min(), img.max()
                span = max(int(hi) - int(lo), 1)
                img = ((img.astype(np.int16) - lo) * 255 // span).astype(np.uint8)
        return int(img.sum(dtype=np.int64))
