"""``lr_training`` -- logistic-regression training (FunctionBench).

Full-batch gradient descent on a synthetic binary-classification set.
This is the suite's long-running outlier: the paper notes its quickest
variation needs more than 3 s, which (given that only ~3% of Azure
invocations run that long) explains its low representation in generated
request mixes (Figure 12a).  The grid is deliberately small and coarse --
training jobs do not come in 200 input sizes.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import WorkloadFamily

__all__ = ["LrTraining"]


class LrTraining(WorkloadFamily):
    name = "lr_training"
    overhead_ms = 1.0
    ms_per_unit = 1.05e-6  # per sample-feature-iteration MAC pair
    base_memory_mb = 90.0

    _N_SAMPLES = (20_000, 30_000, 45_000, 68_000, 100_000, 150_000)
    _FEATURES = (128, 256, 512)
    _ITERATIONS = (1_200, 2_400, 4_800)
    #: Bounds on sample-feature-iteration MACs: ~3 s .. ~140 s.
    _MIN_WORK = 2.9e9
    _MAX_WORK = 1.33e11

    def input_grid(self):
        for n_samples in self._N_SAMPLES:
            for features in self._FEATURES:
                for iterations in self._ITERATIONS:
                    work = float(n_samples) * features * iterations
                    if self._MIN_WORK <= work <= self._MAX_WORK:
                        yield {"n_samples": n_samples, "features": features,
                               "iterations": iterations}

    def work_units(self, *, n_samples: int, features: int,
                   iterations: int) -> float:
        return float(n_samples) * features * iterations

    def estimated_memory_mb(self, *, n_samples: int, features: int,
                            iterations: int) -> float:
        return self.base_memory_mb + n_samples * features * 8 / 2**20

    def prepare(self, rng, *, n_samples: int, features: int,
                iterations: int):
        if min(n_samples, features, iterations) <= 0:
            raise ValueError("all parameters must be positive")
        x = rng.standard_normal((n_samples, features))
        true_w = rng.standard_normal(features)
        y = (x @ true_w + 0.5 * rng.standard_normal(n_samples) > 0).astype(
            np.float64
        )
        return x, y, iterations

    def execute(self, payload):
        x, y, iterations = payload
        n, d = x.shape
        w = np.zeros(d)
        lr = 0.1
        for _ in range(iterations):
            probs = 1.0 / (1.0 + np.exp(-(x @ w)))
            grad = x.T @ (probs - y) / n
            w -= lr * grad
        return float(np.linalg.norm(w))
