"""Telemetry: metrics, stage timers, drift monitoring, exporters.

The observability backbone of the repo (ISSUE 3 tentpole).  Three parts:

- :mod:`repro.telemetry.registry` -- counters, gauges, fixed-bucket
  latency histograms with streaming quantile estimates, and named stage
  timers, collected in a :class:`MetricsRegistry`.  Telemetry is off by
  default; :func:`enable` / :func:`use` activate a registry process-wide
  and instrumented code (shrink-ray stages, cache, parallel fan-out,
  load generator, replay engine, simulator) reports into it.  Disabled,
  every instrumentation point degenerates to one ``None`` check or a
  shared no-op singleton -- near-zero overhead, zero allocation.
- :mod:`repro.telemetry.drift` -- the online representativeness monitor:
  windowed empirical CDFs KS-tested against the spec's target CDF,
  emitting ``drift_warning`` events when a configurable band is
  exceeded.
- :mod:`repro.telemetry.exporters` -- JSONL event stream, Prometheus
  text format, and an end-of-run console summary.

Usage::

    from repro import telemetry

    reg = telemetry.enable()
    ...  # run the pipeline / replay
    print(telemetry.console_summary(reg))
    telemetry.write_jsonl(reg, "run.jsonl")
    telemetry.disable()
"""

from repro.telemetry.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    StageTimer,
    active,
    default_edges,
    disable,
    enable,
    stage,
    use,
)

__all__ = [
    "Counter",
    "DriftMonitor",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "StageTimer",
    "active",
    "console_summary",
    "default_edges",
    "disable",
    "enable",
    "prometheus_text",
    "registry_snapshot",
    "stage",
    "use",
    "write_jsonl",
    "write_prometheus",
]

_DRIFT_EXPORTS = {"DriftMonitor"}
_EXPORTER_EXPORTS = {
    "console_summary",
    "prometheus_text",
    "registry_snapshot",
    "write_jsonl",
    "write_prometheus",
}


def __getattr__(name: str) -> object:
    # Lazy re-exports keep `import repro.cache` (which pulls the registry
    # for its hit/miss counters) from dragging in the drift monitor's
    # stats dependencies on every cold import.
    if name in _DRIFT_EXPORTS:
        from repro.telemetry import drift

        return getattr(drift, name)
    if name in _EXPORTER_EXPORTS:
        from repro.telemetry import exporters

        return getattr(exporters, name)
    raise AttributeError(
        f"module 'repro.telemetry' has no attribute {name!r}"
    )
