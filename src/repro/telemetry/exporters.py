"""Telemetry exporters: JSONL event stream, Prometheus text, console.

All three render the same :class:`~repro.telemetry.registry.MetricsRegistry`
snapshot, deterministically ordered (sorted by metric name, then labels),
so exported files from identical runs are byte-identical -- the same
property the rest of the pipeline holds.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any

from repro.telemetry.registry import MetricsRegistry

__all__ = [
    "console_summary",
    "prometheus_text",
    "registry_snapshot",
    "write_jsonl",
    "write_prometheus",
]

#: Schema version stamped on every JSONL stream.
JSONL_SCHEMA_VERSION = 1

_QUANTILES = (0.5, 0.9, 0.99)


def _num(value: float) -> float | int:
    """Render counts as ints, everything else as floats (JSON-friendly)."""
    f = float(value)
    return int(f) if f.is_integer() else f


def registry_snapshot(registry: MetricsRegistry) -> list[dict[str, Any]]:
    """Flatten a registry into ordered, JSON-serialisable records."""
    records: list[dict[str, Any]] = [
        {"type": "meta", "schema": JSONL_SCHEMA_VERSION,
         "producer": "repro.telemetry"}
    ]
    for c in registry.counters():
        records.append({
            "type": "counter", "name": c.name, "labels": c.labels,
            "value": _num(c.value),
        })
    for g in registry.gauges():
        records.append({
            "type": "gauge", "name": g.name, "labels": g.labels,
            "value": _num(g.value),
        })
    for h in registry.histograms():
        rec: dict[str, Any] = {
            "type": "histogram", "name": h.name, "labels": h.labels,
            "count": int(h.n), "sum": float(h.sum),
            "edges": [float(e) for e in h.edges],
            "bucket_counts": [int(c) for c in h.counts],
        }
        if h.n:
            rec["min"] = float(h.min)
            rec["max"] = float(h.max)
            rec["mean"] = h.mean()
            for q in _QUANTILES:
                rec[f"p{int(q * 100)}"] = h.quantile(q)
        records.append(rec)
    for event in registry.events:
        records.append({"type": "event", **event})
    return records


def write_jsonl(registry: MetricsRegistry, path: Path | str) -> Path:
    """Write the registry snapshot as one JSON object per line."""
    path = Path(path)
    lines = [json.dumps(rec, sort_keys=True)
             for rec in registry_snapshot(registry)]
    path.write_text("\n".join(lines) + "\n")
    return path


# ----------------------------------------------------------------------
# Prometheus text exposition format
# ----------------------------------------------------------------------
_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    name = _PROM_INVALID.sub("_", name)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (text.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _prom_labels(labels: dict[str, str],
                 extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{_prom_name(str(k))}="{_escape_label_value(str(v))}"'
        for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def _prom_value(value: float) -> str:
    f = float(value)
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return f"{f:.10g}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format.

    ``# HELP`` lines escape backslashes and newlines, label values
    additionally escape double quotes (the format's three escapes);
    histograms expose cumulative ``_bucket{le=...}`` series plus
    ``_sum`` / ``_count``, counters get the ``_total`` suffix when
    missing.  Metric names are sanitised to the allowed charset (dots in
    stage names become underscores).
    """
    out: list[str] = []
    typed: set[str] = set()

    def header(name: str, help_text: str, kind: str) -> None:
        if name in typed:
            return
        typed.add(name)
        if help_text:
            out.append(f"# HELP {name} {_escape_help(help_text)}")
        out.append(f"# TYPE {name} {kind}")

    for c in registry.counters():
        name = _prom_name(c.name)
        if not name.endswith("_total"):
            name += "_total"
        header(name, c.help, "counter")
        out.append(f"{name}{_prom_labels(c.labels)} {_prom_value(c.value)}")
    for g in registry.gauges():
        name = _prom_name(g.name)
        header(name, g.help, "gauge")
        out.append(f"{name}{_prom_labels(g.labels)} {_prom_value(g.value)}")
    for h in registry.histograms():
        name = _prom_name(h.name)
        header(name, h.help, "histogram")
        cum = 0
        for edge, count in zip(h.edges, h.counts):
            cum += int(count)
            labels = _prom_labels(h.labels, {"le": _prom_value(edge)})
            out.append(f"{name}_bucket{labels} {cum}")
        labels = _prom_labels(h.labels, {"le": "+Inf"})
        out.append(f"{name}_bucket{labels} {int(h.n)}")
        out.append(f"{name}_sum{_prom_labels(h.labels)} "
                   f"{_prom_value(h.sum)}")
        out.append(f"{name}_count{_prom_labels(h.labels)} {int(h.n)}")
    return "\n".join(out) + "\n" if out else ""


def write_prometheus(registry: MetricsRegistry, path: Path | str) -> Path:
    path = Path(path)
    path.write_text(prometheus_text(registry))
    return path


# ----------------------------------------------------------------------
# console summary
# ----------------------------------------------------------------------
def _fmt_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def console_summary(registry: MetricsRegistry) -> str:
    """Human-readable end-of-run digest of the registry."""
    lines: list[str] = ["telemetry summary"]
    counters = registry.counters()
    gauges = registry.gauges()
    histograms = registry.histograms()
    if not counters and not gauges and not histograms \
            and not registry.events:
        lines.append("  (no metrics recorded)")
        return "\n".join(lines)
    if counters:
        lines.append("  counters:")
        for c in counters:
            lines.append(
                f"    {c.name}{_fmt_labels(c.labels)} = "
                f"{_prom_value(c.value)}"
            )
    if gauges:
        lines.append("  gauges:")
        for g in gauges:
            lines.append(
                f"    {g.name}{_fmt_labels(g.labels)} = "
                f"{_prom_value(g.value)}"
            )
    if histograms:
        lines.append("  histograms:")
        for h in histograms:
            label = f"    {h.name}{_fmt_labels(h.labels)}"
            if h.n == 0:
                lines.append(f"{label}: empty")
                continue
            qs = " ".join(
                f"p{int(q * 100)}={h.quantile(q):.4g}" for q in _QUANTILES
            )
            lines.append(
                f"{label}: n={h.n} mean={h.mean():.4g} {qs} "
                f"min={h.min:.4g} max={h.max:.4g}"
            )
    if registry.events:
        kinds: dict[str, int] = {}
        for e in registry.events:
            kinds[e["kind"]] = kinds.get(e["kind"], 0) + 1
        shown = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
        lines.append(f"  events: {shown}")
        for w in registry.events:
            if w["kind"] == "drift_warning":
                lines.append(
                    f"    DRIFT {w.get('metric', '?')} "
                    f"ks={w.get('ks', float('nan')):.4f} > "
                    f"band={w.get('band', float('nan')):.4f} "
                    f"at t={w.get('time_s', float('nan')):.1f}s"
                )
    return "\n".join(lines)
