"""Online representativeness-drift monitoring.

FaaSRail's promise is that generated load *stays* representative of the
source trace; before this module that could only be checked offline,
after a run, through the analysis figures.  A :class:`DriftMonitor`
checks it continuously: as replay (or generation) proceeds it maintains a
windowed empirical CDF of an observed quantity -- invocation durations by
default, inter-arrival gaps work identically -- and computes the
Kolmogorov-Smirnov distance of each completed window against the shrink
ray spec's target CDF.  Windows whose KS distance exceeds a configurable
band emit a ``drift_warning`` event (recorded on the monitor itself and
mirrored into the active telemetry registry), so a mis-mapped workload
pool or a drifting replay surfaces *during* the run rather than in a
post-mortem.

The monitor is purely observational: it draws no randomness and mutates
nothing it observes, so enabling it cannot perturb generated traces
(pinned by the determinism suite).
"""

from __future__ import annotations

from typing import Any

import numpy as np
from numpy.typing import ArrayLike

from repro.stats.distance import dkw_band, ks_distance
from repro.stats.ecdf import EmpiricalCDF
from repro.telemetry import registry as _registry

__all__ = ["DriftMonitor"]


class DriftMonitor:
    """Windowed KS drift detector against a fixed target CDF.

    Parameters
    ----------
    target:
        The reference distribution -- typically
        :meth:`repro.core.spec.ExperimentSpec.invocation_duration_cdf`.
    band:
        KS-distance threshold above which a window is flagged.  Must
        exceed the sampling noise floor of a faithful window
        (:func:`repro.stats.distance.dkw_band` of the window size, plus
        whatever within-run mix variation the workload legitimately has).
    window:
        Samples per drift check.
    min_samples:
        Smallest partial window :meth:`flush` will still evaluate.
    metric:
        Label naming the observed quantity in events and metrics.
    """

    def __init__(
        self,
        target: EmpiricalCDF,
        *,
        band: float = 0.15,
        window: int = 1024,
        min_samples: int = 64,
        metric: str = "duration_ms",
    ) -> None:
        if band <= 0:
            raise ValueError("band must be positive")
        if window <= 1:
            raise ValueError("window must exceed 1")
        if not 1 <= min_samples <= window:
            raise ValueError("need 1 <= min_samples <= window")
        self.target = target
        self.band = float(band)
        self.window = int(window)
        self.min_samples = int(min_samples)
        self.metric = str(metric)
        self._buf = np.empty(self.window, dtype=np.float64)
        self._fill = 0
        self._last_time = 0.0
        self.n_observed = 0
        self.n_windows = 0
        self.last_ks: float | None = None
        self.max_ks = 0.0
        self.warnings: list[dict[str, Any]] = []

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def observe(self, value: float, time_s: float = 0.0) -> None:
        """Record one sample (the paced, truly-online replay path)."""
        self._buf[self._fill] = value
        self._fill += 1
        self.n_observed += 1
        self._last_time = float(time_s)
        if self._fill == self.window:
            self._check(self._buf, self._last_time)
            self._fill = 0

    def observe_many(self, values: ArrayLike,
                     times_s: ArrayLike | None = None) -> None:
        """Record a batch of samples (the vectorised replay path).

        ``times_s`` -- optional per-sample trace times aligned with
        ``values``; each completed window is stamped with the trace time
        of its last sample, so warnings localise *when* the run drifted.
        """
        v = np.asarray(values, dtype=np.float64).ravel()
        t: np.ndarray | None = None
        if times_s is not None:
            t = np.asarray(times_s, dtype=np.float64).ravel()
            if t.shape != v.shape:
                raise ValueError("times_s must align with values")
        lo = 0
        while lo < v.size:
            take = min(self.window - self._fill, v.size - lo)
            self._buf[self._fill:self._fill + take] = v[lo:lo + take]
            self._fill += take
            lo += take
            self._last_time = float(
                t[lo - 1] if t is not None else self._last_time
            )
            if self._fill == self.window:
                self._check(self._buf, self._last_time)
                self._fill = 0
        self.n_observed += v.size

    def flush(self) -> None:
        """Evaluate a trailing partial window of >= ``min_samples``."""
        if self._fill >= self.min_samples:
            self._check(self._buf[:self._fill], self._last_time)
        self._fill = 0

    # ------------------------------------------------------------------
    # internals / summaries
    # ------------------------------------------------------------------
    def _check(self, samples: np.ndarray, time_s: float) -> None:
        ks = ks_distance(EmpiricalCDF.from_samples(samples), self.target)
        self.n_windows += 1
        self.last_ks = ks
        if ks > self.max_ks:
            self.max_ks = ks
        # explicit None check: an empty MetricsRegistry is falsy (len 0)
        reg = _registry.active()
        if reg is None:
            reg = _registry.NULL_REGISTRY
        reg.gauge(
            "drift_ks", "KS distance of the latest drift window",
            labels={"metric": self.metric},
        ).set(ks)
        if ks > self.band:
            warning = {
                "kind": "drift_warning",
                "metric": self.metric,
                "ks": float(ks),
                "band": self.band,
                "time_s": float(time_s),
                "window_size": int(samples.size),
                "window_index": self.n_windows - 1,
            }
            self.warnings.append(warning)
            reg.event(**warning)
            reg.counter(
                "drift_warnings_total",
                "drift windows whose KS distance exceeded the band",
                labels={"metric": self.metric},
            ).inc()

    def noise_floor(self, alpha: float = 0.01) -> float:
        """DKW sampling-noise KS bound for one faithful window.

        A sensible ``band`` sits well above this (plus the workload's own
        legitimate within-run mix variation); a band below it flags pure
        sampling noise.
        """
        return dkw_band(self.window, alpha)

    def summary(self) -> dict[str, Any]:
        """End-of-run digest (the console exporter prints this)."""
        return {
            "metric": self.metric,
            "band": self.band,
            "window": self.window,
            "n_observed": self.n_observed,
            "n_windows": self.n_windows,
            "n_warnings": len(self.warnings),
            "max_ks": self.max_ks,
            "last_ks": self.last_ks,
        }
