"""Metric primitives and the process-wide registry.

Design constraints (ISSUE 3 tentpole):

- **Near-zero overhead when disabled.**  Instrumented code consults
  :func:`active` (one module-global read) and skips everything when no
  registry is enabled; :func:`stage` returns a shared no-op context
  manager, so a disabled stage timer allocates nothing.
- **Never perturbs results.**  No metric primitive touches a random
  generator or reorders work, so telemetry-on runs are byte-identical to
  telemetry-off runs (pinned by ``tests/test_determinism.py``).
- **Hot loops observe in bulk.**  :meth:`Histogram.observe_many` is one
  ``searchsorted`` + ``bincount`` pass over an array, so the replay and
  generator hot paths record whole traces without per-request Python
  calls.
"""

from __future__ import annotations

import time
from types import TracebackType
from typing import Any, TypeVar, cast

import numpy as np
from numpy.typing import ArrayLike

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "StageTimer",
    "active",
    "default_edges",
    "disable",
    "enable",
    "stage",
    "use",
]


def default_edges(
    lo: float = 1e-4, hi: float = 1e4, per_decade: int = 4
) -> np.ndarray:
    """Log-spaced histogram bucket upper bounds.

    Latencies and inter-arrival gaps in this repo span many orders of
    magnitude (sub-millisecond offsets to multi-minute horizons), so the
    default buckets are geometric: ``per_decade`` buckets per decade from
    ``lo`` to ``hi``.  Values above ``hi`` land in the overflow bucket.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi")
    if per_decade <= 0:
        raise ValueError("per_decade must be positive")
    n = int(round(np.log10(hi / lo) * per_decade)) + 1
    return np.geomspace(lo, hi, n)


def _label_key(labels: dict[str, str] | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "labels", "value")

    def __init__(self, name: str, help: str = "",
                 labels: dict[str, str] | None = None) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels) if labels else {}
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A value that can go up and down (queue depth, live sandboxes)."""

    __slots__ = ("name", "help", "labels", "value")

    def __init__(self, name: str, help: str = "",
                 labels: dict[str, str] | None = None) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels) if labels else {}
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """Fixed-bucket histogram with streaming quantile estimates.

    Buckets are defined by ascending upper-bound ``edges``; a value lands
    in the first bucket whose edge is >= the value, with one implicit
    overflow bucket above the last edge.  Quantiles are estimated by
    linear interpolation inside the containing bucket, clamped to the
    observed ``[min, max]`` range -- the classic fixed-bucket estimator,
    exact at bucket boundaries and monotone in ``q``.
    """

    __slots__ = ("name", "help", "labels", "edges", "counts", "n", "sum",
                 "min", "max")

    def __init__(self, name: str, help: str = "",
                 edges: np.ndarray | None = None,
                 labels: dict[str, str] | None = None) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels) if labels else {}
        edges = default_edges() if edges is None else np.asarray(
            edges, dtype=np.float64
        )
        if edges.ndim != 1 or edges.size == 0:
            raise ValueError("edges must be a non-empty 1-D array")
        if edges.size > 1 and not np.all(np.diff(edges) > 0):
            raise ValueError("edges must be strictly increasing")
        self.edges = edges
        self.counts = np.zeros(edges.size + 1, dtype=np.int64)
        self.n = 0
        self.sum = 0.0
        self.min = np.inf
        self.max = -np.inf

    def observe(self, value: float) -> None:
        value = float(value)
        if not np.isfinite(value):
            raise ValueError("histogram values must be finite")
        idx = int(np.searchsorted(self.edges, value, side="left"))
        self.counts[idx] += 1
        self.n += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_many(self, values: ArrayLike) -> None:
        """Bulk observation: one vectorised pass, for hot-path callers."""
        v = np.asarray(values, dtype=np.float64).ravel()
        if v.size == 0:
            return
        # min/max double as the finiteness check (NaN propagates through
        # both reductions), sparing a full isfinite pass per batch
        lo, hi = float(v.min()), float(v.max())
        if not (np.isfinite(lo) and np.isfinite(hi)):
            raise ValueError("histogram values must be finite")
        idx = np.searchsorted(self.edges, v, side="left")
        self.counts += np.bincount(idx, minlength=self.counts.size)
        self.n += v.size
        self.sum += float(v.sum())
        self.min = min(self.min, lo)
        self.max = max(self.max, hi)

    def mean(self) -> float:
        if self.n == 0:
            raise ValueError("histogram is empty")
        return self.sum / self.n

    def quantile(self, q: float) -> float:
        """Streaming quantile estimate from the bucket counts."""
        if self.n == 0:
            raise ValueError("histogram is empty")
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must lie in [0, 1]")
        cum = np.cumsum(self.counts)
        target = q * self.n
        b = int(np.searchsorted(cum, target, side="left"))
        lo = self.edges[b - 1] if b > 0 else self.min
        hi = self.edges[b] if b < self.edges.size else self.max
        below = cum[b - 1] if b > 0 else 0
        in_bucket = self.counts[b]
        if in_bucket > 0:
            frac = (target - below) / in_bucket
            est = lo + (hi - lo) * min(max(frac, 0.0), 1.0)
        else:
            est = hi
        return float(min(max(est, self.min), self.max))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, n={self.n})"


class StageTimer:
    """Context manager timing one named pipeline stage into a histogram."""

    __slots__ = ("histogram", "_t0")

    def __init__(self, histogram: Histogram) -> None:
        self.histogram = histogram
        self._t0 = 0.0

    def __enter__(self) -> StageTimer:
        self._t0 = time.perf_counter()  # repro: allow-wall-clock
        return self

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None,
                 tb: TracebackType | None) -> bool:
        # repro: allow-wall-clock (stage timers measure real time)
        self.histogram.observe(time.perf_counter() - self._t0)
        return False


#: Buckets for stage timers: 100 us .. 1000 s, 4 per decade.
_TIMER_EDGES = default_edges(1e-4, 1e3, per_decade=4)


#: Union of the concrete metric kinds a registry can hold.
_Metric = Counter | Gauge | Histogram
_MetricKey = tuple[str, tuple[tuple[str, str], ...]]
_M = TypeVar("_M", Counter, Gauge, Histogram)


class MetricsRegistry:
    """Holds every metric and event of one observed run.

    Metrics are addressed by ``(name, labels)``: repeated lookups return
    the same object, so instrumented code calls ``registry.counter(...)``
    at use sites without bookkeeping.  A name registered as one metric
    kind cannot be re-registered as another.
    """

    def __init__(self) -> None:
        self._metrics: dict[_MetricKey, _Metric] = {}
        self._kinds: dict[str, type[_Metric]] = {}
        self.events: list[dict[str, Any]] = []

    # ------------------------------------------------------------------
    # metric accessors (get-or-create)
    # ------------------------------------------------------------------
    def _get(self, cls: type[_M], name: str, help: str,
             labels: dict[str, str] | None, **kwargs: Any) -> _M:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is not None:
            if type(metric) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}"
                )
            return cast("_M", metric)
        registered = self._kinds.get(name)
        if registered is not None and registered is not cls:
            raise ValueError(
                f"metric {name!r} already registered as {registered.__name__}"
            )
        new_metric = cls(name, help, labels=labels, **kwargs)
        self._metrics[key] = new_metric
        self._kinds[name] = cls
        return new_metric

    def counter(self, name: str, help: str = "",
                labels: dict[str, str] | None = None) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: dict[str, str] | None = None) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  edges: np.ndarray | None = None,
                  labels: dict[str, str] | None = None) -> Histogram:
        return self._get(Histogram, name, help, labels, edges=edges)

    def timer(self, name: str, help: str = "") -> StageTimer:
        """A stage timer recording seconds into ``<name>_seconds``."""
        return StageTimer(
            self.histogram(f"{name}_seconds", help, edges=_TIMER_EDGES)
        )

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def event(self, kind: str, **fields: Any) -> dict[str, Any]:
        """Append one structured event (e.g. ``drift_warning``)."""
        record: dict[str, Any] = {"kind": str(kind), **fields}
        self.events.append(record)
        return record

    def events_of_kind(self, kind: str) -> list[dict[str, Any]]:
        return [e for e in self.events if e["kind"] == kind]

    # ------------------------------------------------------------------
    # views (exporters iterate these; deterministic order)
    # ------------------------------------------------------------------
    def _of_type(self, cls: type[_M]) -> list[_M]:
        out = [cast("_M", m) for m in self._metrics.values()
               if type(m) is cls]
        return sorted(out, key=lambda m: (m.name, _label_key(m.labels)))

    def counters(self) -> list[Counter]:
        return self._of_type(Counter)

    def gauges(self) -> list[Gauge]:
        return self._of_type(Gauge)

    def histograms(self) -> list[Histogram]:
        return self._of_type(Histogram)

    def __len__(self) -> int:
        return len(self._metrics)


# ----------------------------------------------------------------------
# disabled mode: shared no-op singletons, zero allocation per use
# ----------------------------------------------------------------------
class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> _NullTimer:
        return self

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None,
                 tb: TracebackType | None) -> bool:
        return False


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values: ArrayLike) -> None:
        pass


_NULL_TIMER = _NullTimer()
_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """Accepts every telemetry call and records nothing.

    Every accessor returns a shared singleton, so routing code through a
    ``NullRegistry`` neither allocates nor branches beyond the method
    call itself -- the "zero-allocation no-op" the perf suite pins.
    """

    events: list[dict[str, Any]] = []  # intentionally shared, always empty

    def counter(self, name: str, help: str = "",
                labels: dict[str, str] | None = None) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, help: str = "",
              labels: dict[str, str] | None = None) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, help: str = "",
                  edges: np.ndarray | None = None,
                  labels: dict[str, str] | None = None) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def timer(self, name: str, help: str = "") -> _NullTimer:
        return _NULL_TIMER

    def event(self, kind: str, **fields: Any) -> None:
        return None


NULL_REGISTRY = NullRegistry()

# ----------------------------------------------------------------------
# module-global activation
# ----------------------------------------------------------------------
_active: MetricsRegistry | None = None


def enable(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Activate telemetry process-wide; returns the active registry."""
    global _active
    _active = registry if registry is not None else MetricsRegistry()
    return _active


def disable() -> None:
    """Deactivate telemetry (instrumented code reverts to no-ops)."""
    global _active
    _active = None


def active() -> MetricsRegistry | None:
    """The enabled registry, or ``None`` when telemetry is off."""
    return _active


class use:
    """Scoped activation: ``with telemetry.use(reg): ...`` (re-entrant)."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._prev: MetricsRegistry | None = None

    def __enter__(self) -> MetricsRegistry:
        global _active
        self._prev = _active
        _active = self.registry
        return self.registry

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None,
                 tb: TracebackType | None) -> bool:
        global _active
        _active = self._prev
        return False


def stage(name: str, help: str = "") -> StageTimer | _NullTimer:
    """Stage timer against the active registry; shared no-op when off."""
    reg = _active
    if reg is None:
        return _NULL_TIMER
    return reg.timer(name, help)
