"""Prior-work load-generation strategies FaaSRail is evaluated against."""

from repro.baselines.busyloop import BusyLoop, busyloop_pool_from_trace
from repro.baselines.invitro import invitro_spec
from repro.baselines.plain_poisson import plain_poisson_trace
from repro.baselines.random_sampling import random_sampling_spec

__all__ = [
    "BusyLoop",
    "busyloop_pool_from_trace",
    "invitro_spec",
    "plain_poisson_trace",
    "random_sampling_spec",
]
