"""Busy-loop synthetic workloads (paper section 2.3.1, "Busy loops").

Prior work fabricates spin-for-X functions to follow trace runtime
distributions exactly.  FaaSRail argues against them (no real memory/I/O
behaviour), but the reproduction ships the strategy as a comparison
baseline: a family whose body spins the CPU for a target duration, plus a
builder that clones a trace's runtime distribution into such a pool.
"""

from __future__ import annotations

import time

import numpy as np

from repro.traces.model import Trace
from repro.workloads.base import Workload, WorkloadFamily
from repro.workloads.pool import WorkloadPool

__all__ = ["BusyLoop", "busyloop_pool_from_trace"]


class BusyLoop(WorkloadFamily):
    """Spin until ``target_ms`` of wall-clock time has elapsed."""

    name = "busyloop"
    overhead_ms = 0.005
    ms_per_unit = 1.0  # by definition: one unit == one millisecond
    base_memory_mb = 20.0

    _TARGETS_MS = (1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0)

    def input_grid(self):
        for target_ms in self._TARGETS_MS:
            yield {"target_ms": target_ms}

    def work_units(self, *, target_ms: float) -> float:
        return float(target_ms)

    def prepare(self, rng, *, target_ms: float):
        del rng
        if target_ms <= 0:
            raise ValueError("target_ms must be positive")
        return target_ms

    def execute(self, payload):
        target_s = payload / 1e3
        t0 = time.perf_counter()  # repro: allow-wall-clock
        spins = 0
        while time.perf_counter() - t0 < target_s:  # repro: allow-wall-clock
            spins += 1
        return spins


def busyloop_pool_from_trace(
    trace: Trace,
    n_workloads: int,
    seed: int | np.random.Generator = 0,
) -> WorkloadPool:
    """A synthetic pool whose runtime CDF clones the trace's.

    Workload runtimes are the trace duration distribution's quantiles at
    ``n_workloads`` evenly spread probabilities (jittered so repeated
    builds differ), each realised as a busy-loop variant.  This is the
    strategy's whole appeal -- perfect runtime fidelity -- and its whole
    weakness: every workload is the same spin loop.
    """
    if n_workloads <= 0:
        raise ValueError("n_workloads must be positive")
    rng = np.random.default_rng(seed)
    from repro.stats.ecdf import EmpiricalCDF

    cdf = EmpiricalCDF.from_samples(trace.durations_ms)
    probs = (np.arange(n_workloads) + rng.random(n_workloads)) / n_workloads
    runtimes = np.maximum(np.asarray(cdf.quantile(np.sort(probs))), 0.001)
    family = BusyLoop()
    workloads = [
        Workload(
            workload_id=f"busyloop:{i}",
            family="busyloop",
            params={"target_ms": float(rt)},
            runtime_ms=float(rt) + family.overhead_ms,
            memory_mb=family.base_memory_mb,
        )
        for i, rt in enumerate(runtimes)
    ]
    return WorkloadPool(workloads)
