"""The "random trace sampling" baseline (paper Figures 1 and section 2.3.1).

The other common prior-work practice: uniformly sample a subset of trace
functions, map each to the *closest* vanilla FunctionBench workload, pick a
random time window, and proportionally rescale the invocation volume.  It
inherits some popularity skew from the sampled functions but -- as the
paper shows -- distorts the runtime distribution (only 10 mapping targets)
and produces flat, spiky load.
"""

from __future__ import annotations

import numpy as np

from repro.core.spec import ExperimentSpec, SpecEntry
from repro.traces.model import Trace
from repro.traces.ops import sample_functions
from repro.workloads.pool import WorkloadPool, vanilla_functionbench

__all__ = ["random_sampling_spec"]


def random_sampling_spec(
    trace: Trace,
    n_functions: int,
    total_invocations: int,
    duration_minutes: int,
    seed: int | np.random.Generator = 0,
    *,
    pool: WorkloadPool | None = None,
) -> ExperimentSpec:
    """Build a spec the way the sampled-trace literature does.

    Parameters
    ----------
    trace:
        Source production trace.
    n_functions:
        Uniform random sample size.
    total_invocations:
        Target invocation volume after proportional rescaling.
    duration_minutes:
        Length of the randomly-placed replay window.
    pool:
        Mapping targets; defaults to vanilla FunctionBench (the point of
        the baseline is the impoverished 10-workload pool).
    """
    if total_invocations <= 0:
        raise ValueError("total_invocations must be positive")
    if duration_minutes <= 0 or duration_minutes > trace.n_minutes:
        raise ValueError("duration_minutes must fit inside the trace")
    rng = np.random.default_rng(seed)
    pool = pool if pool is not None else vanilla_functionbench()

    sampled = sample_functions(trace, n_functions, rng)
    start = int(rng.integers(0, trace.n_minutes - duration_minutes + 1))
    window = sampled.minute_range(start, start + duration_minutes)

    matrix = window.per_minute.astype(np.float64)
    mass = matrix.sum()
    if mass == 0:
        # a fully idle window: spread the target uniformly (degenerate but
        # the baseline has no better answer -- part of its inconsistency)
        matrix[:] = 1.0
        mass = matrix.size
    # Proportional rescale via one multinomial over all cells.
    flat_p = (matrix / mass).ravel()
    counts = rng.multinomial(total_invocations, flat_p).reshape(matrix.shape)

    entries = []
    for i in range(window.n_functions):
        k = pool.nearest(float(window.durations_ms[i]))
        w = pool.workloads[k]
        entries.append(
            SpecEntry(
                function_id=str(window.function_ids[i]),
                workload_id=w.workload_id,
                family=w.family,
                runtime_ms=w.runtime_ms,
                memory_mb=w.memory_mb,
            )
        )
    return ExperimentSpec(
        name=f"{trace.name}/random-sampling",
        source_trace=trace.name,
        max_rps=max(counts.sum(axis=0).max() / 60.0, 1e-9),
        entries=entries,
        per_minute=counts,
        metadata={
            "baseline": "random-sampling",
            "n_sampled_functions": n_functions,
            "window_start_minute": start,
        },
    )
