"""In-Vitro-style baseline: representative sampling + synthetic workloads.

Paper section 5 discusses In-Vitro (Ustiugov et al., WORDS '23) as the
closest prior art: instead of sampling trace functions *randomly*, it
recursively picks the most representative candidate sample (w.r.t.
invocation rate and execution times) -- but drives *busy-loop* workloads
and operates on a fixed trace window.  This module implements that
strategy faithfully enough to compare against:

- candidate samples are scored by the KS distance of their duration and
  invocation-count distributions to the full trace's, best of
  ``n_candidates`` wins (a flat version of In-Vitro's recursive search);
- each sampled function maps to a busy-loop workload spinning for exactly
  its average duration;
- the replay window is user-fixed; nothing outside it exists.

The two structural limitations the paper calls out fall straight out of
the construction: one synthetic workload family, and no whole-day trend.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.busyloop import BusyLoop
from repro.core.spec import ExperimentSpec, SpecEntry
from repro.stats.distance import ks_statistic_samples
from repro.traces.model import Trace

__all__ = ["invitro_spec"]


def _sample_score(trace: Trace, idx: np.ndarray) -> float:
    """Representativity of a candidate sample: lower is better."""
    dur_ks = ks_statistic_samples(
        trace.durations_ms[idx], trace.durations_ms
    )
    counts = trace.invocations_per_function
    # compare rate distributions in log space (counts span many decades)
    rate_ks = ks_statistic_samples(
        np.log1p(counts[idx]), np.log1p(counts)
    )
    return dur_ks + rate_ks


def invitro_spec(
    trace: Trace,
    n_functions: int,
    total_invocations: int,
    duration_minutes: int,
    seed: int | np.random.Generator = 0,
    *,
    window_start: int | None = None,
    n_candidates: int = 32,
) -> ExperimentSpec:
    """Build an In-Vitro-style experiment spec.

    Parameters
    ----------
    trace:
        Source production trace.
    n_functions:
        Sample size (each becomes one busy-loop workload).
    total_invocations:
        Target invocation volume after proportional rescaling.
    duration_minutes:
        Replay-window length.
    window_start:
        First trace minute of the window; defaults to the busiest stretch
        (In-Vitro leaves this to the user; the busiest window is the
        charitable choice).
    n_candidates:
        Candidate samples scored for representativity.
    """
    if not 0 < n_functions <= trace.n_functions:
        raise ValueError("invalid sample size")
    if total_invocations <= 0:
        raise ValueError("total_invocations must be positive")
    if not 0 < duration_minutes <= trace.n_minutes:
        raise ValueError("duration_minutes must fit inside the trace")
    if n_candidates <= 0:
        raise ValueError("n_candidates must be positive")
    rng = np.random.default_rng(seed)

    # Representative sampling: best of n_candidates by combined KS score.
    best_idx, best_score = None, np.inf
    for _ in range(n_candidates):
        idx = rng.choice(trace.n_functions, size=n_functions, replace=False)
        score = _sample_score(trace, idx)
        if score < best_score:
            best_idx, best_score = idx, score
    sampled = trace.select(np.sort(best_idx))

    if window_start is None:
        agg = trace.aggregate_per_minute
        windows = np.convolve(
            agg, np.ones(duration_minutes), mode="valid"
        )
        window_start = int(np.argmax(windows))
    window = sampled.minute_range(
        window_start, window_start + duration_minutes
    )

    matrix = window.per_minute.astype(np.float64)
    mass = matrix.sum()
    if mass == 0:
        matrix[:] = 1.0
        mass = matrix.size
    flat_p = (matrix / mass).ravel()
    counts = rng.multinomial(total_invocations, flat_p).reshape(matrix.shape)

    family = BusyLoop()
    entries = [
        SpecEntry(
            function_id=str(window.function_ids[i]),
            workload_id=f"busyloop:iv{i}",
            family="busyloop",
            runtime_ms=float(window.durations_ms[i]),
            memory_mb=family.base_memory_mb,
        )
        for i in range(window.n_functions)
    ]
    return ExperimentSpec(
        name=f"{trace.name}/invitro",
        source_trace=trace.name,
        max_rps=max(counts.sum(axis=0).max() / 60.0, 1e-9),
        entries=entries,
        per_minute=counts,
        metadata={
            "baseline": "invitro",
            "representativity_score": float(best_score),
            "window_start_minute": int(window_start),
            "n_candidates": n_candidates,
        },
    )
