"""The "plain Poisson" baseline of the literature (paper Figures 1 and 8).

A constant-rate Poisson process over the vanilla (un-augmented)
FunctionBench suite, requests spread uniformly across the 10 workloads --
the common prior-work practice the paper critiques: it gets sub-minute
burstiness right but violates the runtime CDFs, the popularity skew, and
the load's variation over time.
"""

from __future__ import annotations

import numpy as np

from repro.loadgen.requests import RequestTrace
from repro.workloads.pool import WorkloadPool, vanilla_functionbench

__all__ = ["plain_poisson_trace"]


def plain_poisson_trace(
    rate_rps: float,
    duration_minutes: int,
    seed: int | np.random.Generator = 0,
    *,
    pool: WorkloadPool | None = None,
) -> RequestTrace:
    """Constant-rate Poisson load over a (vanilla) workload pool.

    Parameters
    ----------
    rate_rps:
        The constant target request rate.
    duration_minutes:
        Experiment length.
    pool:
        Workload set to spray uniformly; defaults to the 10-workload
        vanilla FunctionBench suite.
    """
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    if duration_minutes <= 0:
        raise ValueError("duration_minutes must be positive")
    rng = np.random.default_rng(seed)
    pool = pool if pool is not None else vanilla_functionbench()

    horizon_s = duration_minutes * 60.0
    # Draw arrivals until the horizon: expected count + 6 sigma of slack,
    # then trim to the horizon.
    expected = rate_rps * horizon_s
    n_draw = int(expected + 6.0 * np.sqrt(expected) + 16)
    gaps = rng.exponential(1.0 / rate_rps, size=n_draw)
    times = np.cumsum(gaps)
    times = times[times < horizon_s]
    if times.size == 0:
        raise ValueError("no requests fell within the horizon; raise the "
                         "rate or the duration")

    # Uniform workload choice: the popularity violation under study.
    picks = rng.integers(0, len(pool), size=times.size)
    workloads = [pool.workloads[int(k)] for k in picks]
    return RequestTrace(
        timestamps_s=times,
        workload_ids=np.array([w.workload_id for w in workloads]),
        function_ids=np.array([w.workload_id for w in workloads]),
        runtimes_ms=np.array([w.runtime_ms for w in workloads]),
        families=np.array([w.family for w in workloads]),
    )
