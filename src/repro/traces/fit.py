"""Calibrating the synthetic generators from an observed trace.

When the real Azure CSVs (or any trace in that schema) are loaded via
:func:`repro.traces.io.load_azure_day`, these helpers extract the
statistical parameters the synthetic generators take -- closing the loop
between "drop in real data" and "regenerate arbitrarily many consistent
synthetic days from it":

- the duration mixture, via EM (:mod:`repro.stats.fitting`);
- the popularity tail exponent, via a log-log rank-frequency regression
  over the head of the distribution;
- summary statistics for reporting (``repro trace-info``).
"""

from __future__ import annotations

import numpy as np

from repro.stats.fitting import MixtureFit, fit_lognormal_mixture
from repro.traces.model import Trace

__all__ = [
    "characterize_trace",
    "fit_generator_from_trace",
    "fit_popularity_exponent",
]


def fit_popularity_exponent(
    invocations: np.ndarray,
    *,
    head_fraction: float = 0.2,
) -> float:
    """Zipf exponent of the popularity head via log-log regression.

    Fits ``log count ~ -s * log rank`` over the most popular
    ``head_fraction`` of functions (the tail is floor-dominated and
    would bias the slope).
    """
    counts = np.sort(np.asarray(invocations, dtype=np.float64))[::-1]
    counts = counts[counts > 0]
    if counts.size < 10:
        raise ValueError("need at least 10 invoked functions")
    if not 0 < head_fraction <= 1:
        raise ValueError("head_fraction must be in (0, 1]")
    head = max(int(counts.size * head_fraction), 10)
    head = min(head, counts.size)
    ranks = np.arange(1, head + 1, dtype=np.float64)
    slope, _ = np.polyfit(np.log(ranks), np.log(counts[:head]), 1)
    return float(max(-slope, 0.0))


def fit_generator_from_trace(
    trace: Trace,
    n_components: int = 3,
    *,
    seed: int | np.random.Generator = 0,
    cache=None,
) -> dict:
    """Generator parameters fitted from an observed trace day.

    Returns a dict with ``duration_mixture`` (LognormalComponents),
    ``popularity_exponent``, and the fitted :class:`MixtureFit` -- ready
    to feed :func:`repro.traces.azure.synthetic_azure_trace`'s knobs or a
    custom call into :mod:`repro.traces.synth`.

    ``cache`` -- a :class:`repro.cache.ContentCache` -- memoises the EM
    fit under a fingerprint of the trace content, ``n_components``, and
    the (integer) seed; generator seeds bypass the cache.
    """

    def compute() -> dict:
        fit: MixtureFit = fit_lognormal_mixture(
            trace.durations_ms, n_components=n_components, seed=seed
        )
        exponent = fit_popularity_exponent(trace.invocations_per_function)
        return {
            "duration_mixture": fit.to_components(),
            "popularity_exponent": exponent,
            "mixture_fit": fit,
        }

    if cache is None or not isinstance(seed, (int, np.integer)):
        return compute()
    from repro.cache import code_version, fingerprint

    key = fingerprint("fit-generator", code_version(), trace,
                      n_components, int(seed))
    return cache.memoize(key, compute)


def characterize_trace(trace: Trace) -> dict:
    """One-stop statistical summary of a trace (``repro trace-info``)."""
    durations = trace.durations_ms
    counts = trace.invocations_per_function.astype(np.float64)
    mask = counts > 0
    total = counts.sum()
    sorted_counts = np.sort(counts)[::-1]
    top8 = sorted_counts[: max(int(0.08 * counts.size), 1)].sum()
    agg = trace.aggregate_per_minute.astype(np.float64)
    if mask.any():
        order = np.argsort(durations[mask])
        sorted_dur = durations[mask][order]
        cum = np.cumsum(counts[mask][order]) / counts[mask].sum()
        weighted_median = float(np.interp(0.5, cum, sorted_dur))
    else:
        weighted_median = float("nan")
    return {
        "name": trace.name,
        "n_functions": trace.n_functions,
        "n_minutes": trace.n_minutes,
        "total_invocations": int(total),
        "busiest_minute": trace.busiest_minute_rate,
        "duration_ms": {
            "min": float(durations.min()),
            "median": float(np.median(durations)),
            "mean": float(durations.mean()),
            "max": float(durations.max()),
            "frac_subsecond": float((durations < 1000.0).mean()),
        },
        "weighted_median_duration_ms": weighted_median,
        "popularity": {
            "top8pct_share": float(top8 / total) if total else 0.0,
            "frac_low_rate": float((counts <= trace.n_minutes).mean()),
        },
        "load": {
            "per_minute_cv": float(agg.std() / agg.mean())
            if agg.mean() > 0 else float("nan"),
            "peak_to_mean": float(agg.max() / agg.mean())
            if agg.mean() > 0 else float("nan"),
        },
        "reports_memory": bool(trace.app_memory_mb),
    }
