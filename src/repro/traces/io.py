"""CSV IO in the Azure Functions public-dataset layout.

The real Azure 2019 release ships three per-day CSV families:

- ``invocations_per_function_md.anon.d01.csv`` --
  ``HashOwner,HashApp,HashFunction,Trigger,1,...,1440``
- ``function_durations_percentiles.anon.d01.csv`` --
  ``HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum,...``
- ``app_memory_percentiles.anon.d01.csv`` --
  ``HashOwner,HashApp,SampleCount,AverageAllocatedMb,...``

These readers/writers speak that schema (the subset of columns FaaSRail
consumes), so a directory holding the *real* dataset loads directly into a
:class:`~repro.traces.model.Trace`, and synthetic traces round-trip through
the same files for inspection.

Malformed rows raise ``ValueError`` carrying the file path, 1-based line
number, and offending column, so a bad cell in a multi-million-row dump
is locatable without a debugger (mirroring the path-context validation of
:mod:`repro.loadgen.io`).  The row-level conversion helpers are shared
with the chunked readers in :mod:`repro.traces.streaming`.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.traces.model import Trace

__all__ = [
    "dump_azure_day",
    "load_azure_day",
    "read_durations_csv",
    "read_invocations_csv",
    "read_memory_csv",
    "write_durations_csv",
    "write_invocations_csv",
    "write_memory_csv",
]

INVOCATIONS_FILE = "invocations_per_function.csv"
DURATIONS_FILE = "function_durations.csv"
MEMORY_FILE = "app_memory.csv"

# Backwards-compatible aliases (pre-streaming these were module-private).
_INVOCATIONS_FILE = INVOCATIONS_FILE
_DURATIONS_FILE = DURATIONS_FILE
_MEMORY_FILE = MEMORY_FILE


def convert_count_row(
    values: list[str], path: Path | str, line: int
) -> np.ndarray:
    """Convert one row of per-minute count cells to int64 with context.

    On a malformed cell the raised ``ValueError`` names the file, the
    1-based CSV line, and the offending minute column -- the cheap numpy
    bulk conversion is retried cell-by-cell only on failure.
    """
    try:
        return np.array(values, dtype=np.int64)
    except (ValueError, OverflowError):
        for col, cell in enumerate(values):
            try:
                int(cell)
            except (ValueError, OverflowError):
                raise ValueError(
                    f"{path}: line {line}: column {col + 5} "
                    f"(minute {col + 1}) has invalid invocation count "
                    f"{cell!r}"
                ) from None
        raise  # pragma: no cover - bulk failed but every cell parsed


def convert_float_cell(
    value: str | None, path: Path | str, line: int, column: str
) -> float:
    """Convert one CSV cell to float, with file/line/column context."""
    if value is None:
        raise ValueError(
            f"{path}: line {line}: column {column} is missing"
        )
    try:
        return float(value)
    except ValueError:
        raise ValueError(
            f"{path}: line {line}: column {column} has invalid value "
            f"{value!r}"
        ) from None


def write_invocations_csv(trace: Trace, path: Path | str) -> None:
    """Write the per-minute invocation matrix in Azure's schema."""
    path = Path(path)
    n_minutes = trace.n_minutes
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["HashOwner", "HashApp", "HashFunction", "Trigger"]
            + [str(m) for m in range(1, n_minutes + 1)]
        )
        for i in range(trace.n_functions):
            writer.writerow(
                ["owner", trace.app_ids[i], trace.function_ids[i], "http"]
                + trace.per_minute[i].tolist()
            )


def read_invocations_csv(path: Path | str):
    """Read an invocations CSV; returns (app_ids, function_ids, matrix)."""
    path = Path(path)
    apps, fns, rows = [], [], []
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        if header[:4] != ["HashOwner", "HashApp", "HashFunction", "Trigger"]:
            raise ValueError(f"{path}: unexpected invocations header {header[:4]}")
        n_minutes = len(header) - 4
        line = 1
        for row in reader:
            line += 1
            if len(row) != 4 + n_minutes:
                fn = row[2] if len(row) > 2 else "?"
                raise ValueError(
                    f"{path}: line {line}: ragged row for function "
                    f"{fn!r} ({len(row)} fields, expected "
                    f"{4 + n_minutes})"
                )
            apps.append(row[1])
            fns.append(row[2])
            rows.append(convert_count_row(row[4:], path, line))
    if not fns:
        raise ValueError(f"{path}: no functions")
    matrix = np.vstack(rows).astype(np.int32)
    return np.array(apps), np.array(fns), matrix


def write_durations_csv(trace: Trace, path: Path | str) -> None:
    """Write per-function average durations in Azure's schema."""
    path = Path(path)
    counts = trace.invocations_per_function
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["HashOwner", "HashApp", "HashFunction", "Average", "Count",
             "Minimum", "Maximum"]
        )
        for i in range(trace.n_functions):
            avg = trace.durations_ms[i]
            writer.writerow(
                ["owner", trace.app_ids[i], trace.function_ids[i],
                 f"{avg:.6g}", int(counts[i]), f"{avg:.6g}", f"{avg:.6g}"]
            )


def read_durations_csv(path: Path | str):
    """Read a durations CSV; returns (function_ids, averages_ms)."""
    path = Path(path)
    fns, avgs = [], []
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        required = {"HashFunction", "Average"}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise ValueError(f"{path}: durations header missing {required}")
        line = 1
        for row in reader:
            line += 1
            fns.append(row["HashFunction"])
            avgs.append(convert_float_cell(row.get("Average"), path, line,
                                           "Average"))
    if not fns:
        raise ValueError(f"{path}: no functions")
    return np.array(fns), np.array(avgs, dtype=np.float64)


def write_memory_csv(trace: Trace, path: Path | str) -> None:
    """Write per-app average allocated memory in Azure's schema."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["HashOwner", "HashApp", "SampleCount",
                         "AverageAllocatedMb"])
        for app, mb in sorted(trace.app_memory_mb.items()):
            writer.writerow(["owner", app, 1, f"{mb:.6g}"])


def read_memory_csv(path: Path | str) -> dict[str, float]:
    """Read an app-memory CSV into ``{app_id: average_mb}``."""
    path = Path(path)
    out: dict[str, float] = {}
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        required = {"HashApp", "AverageAllocatedMb"}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise ValueError(f"{path}: memory header missing {required}")
        line = 1
        for row in reader:
            line += 1
            out[row["HashApp"]] = convert_float_cell(
                row.get("AverageAllocatedMb"), path, line,
                "AverageAllocatedMb",
            )
    return out


def dump_azure_day(trace: Trace, directory: Path | str) -> None:
    """Write a trace as the three Azure-layout CSVs under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    write_invocations_csv(trace, directory / INVOCATIONS_FILE)
    write_durations_csv(trace, directory / DURATIONS_FILE)
    if trace.app_memory_mb:
        write_memory_csv(trace, directory / MEMORY_FILE)


def load_azure_day(directory: Path | str, name: str = "azure-csv") -> Trace:
    """Load a trace from Azure-layout CSVs.

    Functions present in the invocation file but missing a reported duration
    are dropped, mirroring how the paper works only with the ~49.7K day-1
    functions that report execution times.
    """
    directory = Path(directory)
    apps, fns, matrix = read_invocations_csv(directory / INVOCATIONS_FILE)
    dur_fns, dur_avgs = read_durations_csv(directory / DURATIONS_FILE)
    duration_of = dict(zip(dur_fns.tolist(), dur_avgs.tolist()))
    keep = np.array([f in duration_of for f in fns])
    if not keep.any():
        raise ValueError(f"{directory}: no function has both invocations and "
                         "a reported duration")
    fns, apps, matrix = fns[keep], apps[keep], matrix[keep]
    durations = np.array([duration_of[f] for f in fns], dtype=np.float64)

    mem_path = directory / MEMORY_FILE
    memory = read_memory_csv(mem_path) if mem_path.exists() else {}
    return Trace(
        name=name,
        function_ids=fns,
        app_ids=apps,
        durations_ms=durations,
        per_minute=matrix,
        app_memory_mb=memory,
    )
