"""Calibrated synthetic Azure Functions trace.

Stands in for the 2019 Azure Functions public dataset (Shahrad et al., ATC
'20), which FaaSRail's evaluation is driven by.  The generator reproduces
the statistics the paper relies on:

- ~50% of functions have average warm execution time below 1 s; durations
  span roughly 1 ms to several minutes (2-4 orders of magnitude);
- popularity is extremely skewed: the top few percent of functions receive
  ~99% of invocations, while ~90% of functions are invoked about once a
  minute or less;
- the most popular functions skew short, so ~80% of *invocations* run under
  1 s;
- aggregate load follows a diurnal curve (Figure 8) with per-function
  burstiness, and the per-(function, minute) counts are reported for each of
  the day's 1440 minutes;
- app memory is lognormal-ish between ~16 MiB and a few GiB (Figure 7);
- across the 14 trace days, ~90% of functions have day-to-day CVs below 1
  for both duration and invocation count (Figure 3).

Scale defaults are reduced (12 000 functions instead of 49 728) so figure
benchmarks run in seconds; pass ``full_scale=True`` for paper-scale counts.
"""

from __future__ import annotations

import numpy as np

from repro.traces.model import MINUTES_PER_DAY, MultiDaySummary, Trace
from repro.traces.synth import (
    LognormalComponent,
    correlate_popularity_with_duration,
    diurnal_profile,
    sample_duration_mixture,
    spread_over_minutes,
    synth_app_memory,
    synth_multiday_summary,
    zipf_invocation_counts,
)

__all__ = [
    "AZURE_DURATION_MIXTURE",
    "AZURE_FULL_FUNCTIONS",
    "AZURE_FULL_INVOCATIONS",
    "synthetic_azure_trace",
    "synthetic_azure_multiday",
]

#: Functions with reported execution times on day 1 of the real trace.
AZURE_FULL_FUNCTIONS = 49_728
#: Total invocations on day 1 of the real trace (Figure 9 legend).
AZURE_FULL_INVOCATIONS = 909_011_626

#: Duration mixture calibrated so ~50% of functions run < 1 s and the body
#: spans 1 ms .. 10 min.  (short / medium / long-running populations)
AZURE_DURATION_MIXTURE = (
    LognormalComponent(weight=0.30, median_ms=120.0, sigma=1.1),
    LognormalComponent(weight=0.40, median_ms=1_000.0, sigma=1.0),
    LognormalComponent(weight=0.30, median_ms=8_000.0, sigma=1.4),
)

#: Mean functions per Azure application (~45K functions over ~17K apps).
_FUNCTIONS_PER_APP = 2.6


def _make_app_ids(n: int, rng: np.random.Generator) -> np.ndarray:
    n_apps = max(1, int(round(n / _FUNCTIONS_PER_APP)))
    assignment = rng.integers(0, n_apps, size=n)
    return np.array([f"app-{a:06d}" for a in assignment])


def synthetic_azure_trace(
    n_functions: int = 12_000,
    total_invocations: int | None = None,
    seed: int | np.random.Generator = 0,
    *,
    full_scale: bool = False,
    popularity_exponent: float = 1.6,
    popularity_beta: float = 0.3,
    popularity_sigma: float = 2.5,
) -> Trace:
    """Generate one synthetic Azure-like trace day.

    Parameters
    ----------
    n_functions:
        Number of distinct functions (paper day 1: 49 728).  Ignored when
        ``full_scale`` is set.
    total_invocations:
        Total invocations over the day.  Defaults to the paper's day-1 count
        scaled proportionally to ``n_functions``.
    seed:
        Seed or generator; the trace is fully deterministic given it.
    full_scale:
        Use the paper's exact day-1 cardinalities (slower, ~300 MiB matrix).
    popularity_exponent / popularity_beta / popularity_sigma:
        Skew and duration-coupling knobs; see :mod:`repro.traces.synth`.
        The defaults are calibrated so the top 8% of functions hold ~99% of
        invocations, ~90% of functions fire once a minute or less, and ~80%
        of invocations run under 1 s.  Exposed for ablations.
    """
    rng = np.random.default_rng(seed)
    if full_scale:
        n_functions = AZURE_FULL_FUNCTIONS
        total_invocations = AZURE_FULL_INVOCATIONS
    if n_functions <= 0:
        raise ValueError("n_functions must be positive")
    if total_invocations is None:
        total_invocations = int(
            AZURE_FULL_INVOCATIONS * n_functions / AZURE_FULL_FUNCTIONS
        )

    durations = sample_duration_mixture(
        n_functions, AZURE_DURATION_MIXTURE, rng, lo_ms=1.0, hi_ms=600_000.0
    )
    ranked_counts = zipf_invocation_counts(
        n_functions, total_invocations, rng, exponent=popularity_exponent
    )
    counts = correlate_popularity_with_duration(
        durations, ranked_counts, rng, beta=popularity_beta, sigma=popularity_sigma
    )

    # Head functions trend-follow (large gamma shape) so the aggregate series
    # shows the diurnal pattern; mid-popularity functions are moderately
    # noisy and the tail stays spiky/bursty.
    head_cutoff = max(float(np.quantile(counts, 0.995)), 10_000.0)
    gamma_shape = np.where(
        counts >= head_cutoff, 150.0, np.where(counts >= 1_440, 6.0, 0.7)
    )
    per_minute = spread_over_minutes(
        counts,
        rng,
        n_minutes=MINUTES_PER_DAY,
        profile=diurnal_profile(amplitude=0.18, secondary=0.08),
        burst_gamma_shape=gamma_shape,
        sparse_threshold=MINUTES_PER_DAY,
    )

    function_ids = np.array([f"fn-{i:06d}" for i in range(n_functions)])
    app_ids = _make_app_ids(n_functions, rng)
    return Trace(
        name="azure-synth",
        function_ids=function_ids,
        app_ids=app_ids,
        durations_ms=durations,
        per_minute=per_minute,
        app_memory_mb=synth_app_memory(app_ids, rng),
    )


def synthetic_azure_multiday(
    trace: Trace,
    n_days: int = 14,
    seed: int | np.random.Generator = 0,
) -> MultiDaySummary:
    """Daily summaries across the 14-day window, for the Figure 3 analysis.

    Day-to-day variability is layered on top of an existing day's trace so
    the two artifacts stay mutually consistent.
    """
    rng = np.random.default_rng(seed)
    return synth_multiday_summary(
        base_duration_ms=trace.durations_ms,
        base_invocations=trace.invocations_per_function.astype(np.float64),
        n_days=n_days,
        rng=rng,
    )
