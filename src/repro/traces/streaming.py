"""Streaming, memory-bounded trace ingestion.

The in-memory loaders in :mod:`repro.traces.io` materialise the full
``(n_functions, n_minutes)`` invocation matrix before the shrink ray can
run -- fine for one synthetic day, a non-starter for the real Azure 2019
release (~908M invocations/day for 14 days).  This module ingests the
same CSV layout in fixed-size row blocks and folds each block into a
:class:`StreamingTraceSummary` built from the mergeable one-pass
summaries of :mod:`repro.stats.sketches`:

- the exact per-minute **rate matrix** of super-Functions (quantised
  duration groups), byte-identical to the in-memory aggregation stage
  for any chunking;
- a deterministic KLL **duration sketch** (invocation-weighted) and an
  app-**memory sketch**, each carrying its own rank-error bound;
- a space-saving **popularity** counter over raw function ids.

Peak memory is bounded by ``chunk_rows`` plus the per-key group state
(~12.7K duration keys for Azure) plus the function->duration join map --
never by the full matrix.  Chunk partials can fan out over
:mod:`repro.parallel` workers; the reduction is *ordered* (partials merge
in chunk order), so ``jobs=N`` produces a byte-identical summary to
``jobs=1``.  Exact integer statistics are additionally invariant to
``chunk_rows``; sketch state is chunking-dependent but its estimates
stay within the tracked rank-error bound for every chunking.

Both production trace families this repo speaks -- Azure 2019 and the
Huawei releases -- are ingested through the same on-disk layout (the
Azure column schema, which Huawei traces round-trip through via
:func:`repro.traces.io.dump_azure_day`).
"""

from __future__ import annotations

import csv
from collections.abc import Iterator
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.parallel import effective_jobs, map_shards
from repro.stats.sketches import (
    KLLSketch,
    RateMatrixAccumulator,
    SpaceSavingCounter,
)
from repro.stats.ecdf import EmpiricalCDF
from repro.telemetry import registry as _telemetry
from repro.traces.io import (
    DURATIONS_FILE,
    INVOCATIONS_FILE,
    MEMORY_FILE,
    convert_count_row,
    read_durations_csv,
    read_memory_csv,
)
from repro.traces.model import Trace

__all__ = [
    "DEFAULT_CHUNK_ROWS",
    "STREAMING_SCHEMA_VERSION",
    "InvocationBlock",
    "StreamingTraceSummary",
    "iter_invocation_blocks",
    "stream_azure_day",
    "summarize_trace",
]

#: Bump when the chunk schema or summary layout changes: it is part of
#: every streaming fingerprint, so stale cache entries self-invalidate.
STREAMING_SCHEMA_VERSION = 1

#: Default rows per ingestion block.  At Azure's 1440 minute columns one
#: block is ~0.7 GiB/1e6 rows of int64, so 65536 rows stays under 50 MiB.
DEFAULT_CHUNK_ROWS = 65_536

#: Default KLL compactor capacity: rank error stays under 0.01 out to
#: ~10^9 weighted samples (see ``KLLSketch``).
DEFAULT_SKETCH_K = 2048

#: Default space-saving capacity: any function holding more than
#: ``1/capacity`` of the day's invocations is guaranteed tracked.
DEFAULT_TOPK_CAPACITY = 256


@dataclass(frozen=True)
class InvocationBlock:
    """One fixed-size slice of invocation CSV rows."""

    #: App id per row.
    apps: np.ndarray
    #: Function id per row.
    functions: np.ndarray
    #: ``(rows, n_minutes)`` int64 invocation counts.
    per_minute: np.ndarray
    #: 1-based CSV line number of the block's first data row.
    first_line: int

    @property
    def n_rows(self) -> int:
        return int(self.functions.size)


#: (keys, matrix, counts, durations, sizes) from the rate accumulator.
GroupArrays = tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray,
                    np.ndarray]

#: (name, n_minutes, quantize_ms, sketch_k, topk_capacity).
_SummaryConfig = tuple[str, int, float, int, int]

#: (functions, durations, per_minute, rows_read, dropped, config).
_ChunkArgs = tuple[np.ndarray, np.ndarray, np.ndarray, int, int,
                   _SummaryConfig]


def iter_invocation_blocks(
    path: Path | str,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> Iterator[InvocationBlock]:
    """Yield :class:`InvocationBlock` slices of an invocations CSV.

    Validates the header and every row's arity up front; malformed
    numeric cells raise ``ValueError`` carrying the file path, 1-based
    line number, and offending column.  Memory use is bounded by one
    block.
    """
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
    path = Path(path)
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path}: empty invocations file") from None
        if header[:4] != ["HashOwner", "HashApp", "HashFunction", "Trigger"]:
            raise ValueError(
                f"{path}: unexpected invocations header {header[:4]}"
            )
        n_minutes = len(header) - 4
        if n_minutes < 1:
            raise ValueError(f"{path}: invocations header has no minute "
                             "columns")

        apps: list[str] = []
        fns: list[str] = []
        rows: list[np.ndarray] = []
        first_line = 2
        line = 1
        for row in reader:
            line += 1
            if len(row) != 4 + n_minutes:
                fn = row[2] if len(row) > 2 else "?"
                raise ValueError(
                    f"{path}: line {line}: ragged row for function "
                    f"{fn!r} ({len(row)} fields, expected "
                    f"{4 + n_minutes})"
                )
            apps.append(row[1])
            fns.append(row[2])
            rows.append(convert_count_row(row[4:], path, line))
            if len(rows) >= chunk_rows:
                yield InvocationBlock(
                    apps=np.asarray(apps),
                    functions=np.asarray(fns),
                    per_minute=np.vstack(rows),
                    first_line=first_line,
                )
                apps, fns, rows = [], [], []
                first_line = line + 1
        if rows:
            yield InvocationBlock(
                apps=np.asarray(apps),
                functions=np.asarray(fns),
                per_minute=np.vstack(rows),
                first_line=first_line,
            )


class StreamingTraceSummary:
    """Bounded-memory, mergeable stand-in for a materialised ``Trace``.

    Holds everything the shrink ray's aggregation / rate-scaling /
    mapping stages consume, accumulated one chunk at a time:
    :attr:`rate` (exact aggregated rate matrix), :attr:`duration_sketch`
    (invocation-weighted duration CDF), :attr:`memory_sketch` (app
    memory CDF), and :attr:`popularity` (heavy-hitter function ids).
    Pass one to :meth:`repro.core.ShrinkRay.run` wherever a ``Trace``
    is accepted.
    """

    __slots__ = (
        "name", "n_minutes", "quantize_ms", "sketch_k", "topk_capacity",
        "rate", "duration_sketch", "memory_sketch", "popularity",
        "functions_seen", "functions_dropped", "rows_read", "chunks",
        "n_apps_with_memory",
    )

    def __init__(
        self,
        name: str,
        n_minutes: int,
        *,
        quantize_ms: float = 1.0,
        sketch_k: int = DEFAULT_SKETCH_K,
        topk_capacity: int = DEFAULT_TOPK_CAPACITY,
    ) -> None:
        self.name = name
        self.n_minutes = int(n_minutes)
        self.quantize_ms = float(quantize_ms)
        self.sketch_k = int(sketch_k)
        self.topk_capacity = int(topk_capacity)
        self.rate = RateMatrixAccumulator(n_minutes, quantize_ms)
        self.duration_sketch = KLLSketch(sketch_k)
        self.memory_sketch = KLLSketch(sketch_k)
        self.popularity = SpaceSavingCounter(topk_capacity)
        #: Rows that joined with a reported duration.
        self.functions_seen = 0
        #: Rows dropped for lack of a reported duration (the paper keeps
        #: only functions that report execution times).
        self.functions_dropped = 0
        self.rows_read = 0
        self.chunks = 0
        self.n_apps_with_memory = 0

    # ------------------------------------------------------------------
    # accumulation
    # ------------------------------------------------------------------
    def observe_functions(
        self,
        function_ids: np.ndarray,
        durations_ms: np.ndarray,
        per_minute: np.ndarray,
    ) -> None:
        """Fold one joined block (rows that have a duration) in."""
        durations = np.asarray(durations_ms, dtype=np.float64)
        matrix = np.asarray(per_minute)
        fns = np.asarray(function_ids)
        if fns.shape != durations.shape:
            raise ValueError(
                "function_ids must align with durations: "
                f"{fns.shape} vs {durations.shape}"
            )
        self.rate.observe_block(durations, matrix)
        totals = matrix.sum(axis=1, dtype=np.int64)
        self.duration_sketch.insert_many(durations, totals)
        self.popularity.add_many(fns, totals)
        self.functions_seen += int(fns.size)

    def observe_memory(self, app_memory_mb: dict[str, float]) -> None:
        """Fold reported per-app memory values in (sorted by app id)."""
        for app in sorted(app_memory_mb):
            self.memory_sketch.insert(app_memory_mb[app])
        self.n_apps_with_memory += len(app_memory_mb)

    def merge(self, other: StreamingTraceSummary) -> None:
        """Ordered fold of another summary built with identical params."""
        if (other.n_minutes != self.n_minutes
                or other.quantize_ms != self.quantize_ms
                or other.sketch_k != self.sketch_k
                or other.topk_capacity != self.topk_capacity):
            raise ValueError(
                "cannot merge streaming summaries with different "
                "parameters"
            )
        self.rate.merge(other.rate)
        self.duration_sketch.merge(other.duration_sketch)
        self.memory_sketch.merge(other.memory_sketch)
        self.popularity.merge(other.popularity)
        self.functions_seen += other.functions_seen
        self.functions_dropped += other.functions_dropped
        self.rows_read += other.rows_read
        self.chunks += other.chunks
        self.n_apps_with_memory += other.n_apps_with_memory

    # ------------------------------------------------------------------
    # views the shrink ray consumes
    # ------------------------------------------------------------------
    @property
    def total_invocations(self) -> int:
        return self.duration_sketch.n

    @property
    def n_functions(self) -> int:
        """Source function count (rows that reported a duration)."""
        return self.functions_seen

    def aggregated_groups(self) -> GroupArrays:
        """``(keys, matrix, counts, durations, sizes)`` -- see
        :meth:`repro.stats.sketches.RateMatrixAccumulator.finalize`."""
        return self.rate.finalize()

    def to_aggregated_trace(self) -> Trace:
        """The super-Function trace, matching the in-memory aggregation
        stage: integer statistics byte-identical, group durations equal
        up to float accumulation order."""
        keys, matrix, _counts, durations, _sizes = self.rate.finalize()
        return Trace(
            name=f"{self.name}/aggregated",
            function_ids=np.array([f"sf-{k}" for k in keys.tolist()]),
            app_ids=np.array([f"sf-app-{k}" for k in keys.tolist()]),
            durations_ms=durations,
            per_minute=matrix,
            app_memory_mb={},
        )

    def invocation_duration_cdf(self) -> EmpiricalCDF:
        """Sketched invocation-weighted duration CDF (with
        :attr:`duration_rank_error` as its KS bound vs the exact one)."""
        return self.duration_sketch.to_ecdf()

    def memory_cdf(self) -> EmpiricalCDF:
        """Sketched app-memory CDF; raises if no memory was reported."""
        if self.memory_sketch.n == 0:
            raise ValueError(
                f"streaming summary {self.name!r} observed no app memory"
            )
        return self.memory_sketch.to_ecdf()

    @property
    def duration_rank_error(self) -> float:
        return self.duration_sketch.rank_error_bound

    def fingerprint_parts(self) -> tuple[object, ...]:
        """Plain-data identity for :func:`repro.cache.fingerprint`.

        Includes the streaming chunk-schema version and every sketch
        parameter alongside the accumulated state, per the cache rules
        in docs/EXTENDING.md: two summaries fingerprint equal only if
        built from the same content with the same sketch configuration.
        """
        return (
            "streaming-summary", STREAMING_SCHEMA_VERSION, self.name,
            self.n_minutes, self.quantize_ms, self.sketch_k,
            self.topk_capacity, self.functions_seen,
            self.functions_dropped, self.n_apps_with_memory,
            self.rate.fingerprint_parts(),
            self.duration_sketch.fingerprint_parts(),
            self.memory_sketch.fingerprint_parts(),
            self.popularity.fingerprint_parts(),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamingTraceSummary({self.name!r}, "
            f"functions={self.functions_seen}, "
            f"invocations={self.total_invocations}, "
            f"groups={self.rate.n_groups}, chunks={self.chunks})"
        )


def _summarize_chunk(args: _ChunkArgs) -> StreamingTraceSummary:
    """Fold one joined chunk into a fresh partial summary.

    Module-level so it pickles into :func:`repro.parallel.map_shards`
    workers.  The caller merges partials in chunk order (ordered
    reduction), which makes the result independent of worker count.
    """
    fns, durations, matrix, n_rows, n_dropped, config = args
    name, n_minutes, quantize_ms, sketch_k, topk_capacity = config
    partial = StreamingTraceSummary(
        name, n_minutes, quantize_ms=quantize_ms, sketch_k=sketch_k,
        topk_capacity=topk_capacity,
    )
    if fns.size:
        partial.observe_functions(fns, durations, matrix)
    partial.rows_read = n_rows
    partial.functions_dropped = n_dropped
    partial.chunks = 1
    return partial


class _ChunkFold:
    """Ordered parallel reduction of joined chunks into one summary."""

    def __init__(self, summary: StreamingTraceSummary,
                 jobs: int | None) -> None:
        self.summary = summary
        self.jobs = jobs
        # Batch width scales with the worker pool; it only groups
        # scheduling, never the merge order, so it cannot affect results.
        self.batch_size = max(1, effective_jobs(jobs))
        self._config: _SummaryConfig = (
            summary.name, summary.n_minutes, summary.quantize_ms,
            summary.sketch_k, summary.topk_capacity,
        )
        self._batch: list[_ChunkArgs] = []

    def push(self, fns: np.ndarray, durations: np.ndarray,
             matrix: np.ndarray, n_rows: int, n_dropped: int) -> None:
        self._batch.append(
            (fns, durations, matrix, n_rows, n_dropped, self._config)
        )
        if len(self._batch) >= self.batch_size:
            self.flush()

    def flush(self) -> None:
        if not self._batch:
            return
        partials = map_shards(_summarize_chunk, self._batch, jobs=self.jobs)
        for partial in partials:
            self.summary.merge(partial)
        self._batch = []


def _join_block(
    block: InvocationBlock, duration_of: dict[str, float]
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Join a block against the duration map; split kept/dropped rows."""
    has_duration = np.array(
        [f in duration_of for f in block.functions.tolist()], dtype=bool
    )
    kept = block.functions[has_duration]
    durations = np.array(
        [duration_of[f] for f in kept.tolist()], dtype=np.float64
    )
    matrix = block.per_minute[has_duration]
    n_dropped = int(block.n_rows - kept.size)
    return kept, durations, matrix, n_dropped


def _emit_ingest_metrics(summary: StreamingTraceSummary) -> None:
    reg = _telemetry.active()
    if reg is None:
        return
    reg.counter("streaming_rows_total",
                "invocation CSV rows ingested by the streaming "
                "reader").inc(summary.rows_read)
    reg.counter("streaming_chunks_total",
                "fixed-size row blocks folded into streaming "
                "summaries").inc(summary.chunks)
    reg.counter("streaming_functions_dropped_total",
                "rows dropped for lacking a reported duration"
                ).inc(summary.functions_dropped)
    reg.gauge("streaming_duration_rank_error",
              "tracked worst-case rank error of the duration sketch"
              ).set(summary.duration_rank_error)


def stream_azure_day(
    directory: Path | str,
    *,
    name: str = "azure-csv",
    quantize_ms: float = 1.0,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    sketch_k: int = DEFAULT_SKETCH_K,
    topk_capacity: int = DEFAULT_TOPK_CAPACITY,
    jobs: int | None = None,
) -> StreamingTraceSummary:
    """One-pass, memory-bounded ingestion of an Azure-layout trace day.

    The drop-in streaming counterpart of
    :func:`repro.traces.io.load_azure_day`: instead of materialising a
    :class:`~repro.traces.model.Trace`, it folds ``chunk_rows``-sized
    blocks of the invocations CSV into a :class:`StreamingTraceSummary`
    the shrink ray accepts directly.  Functions without a reported
    duration are dropped, mirroring the in-memory loader.

    ``jobs`` fans chunk summarisation over worker processes; the merge
    is ordered, so any value yields a byte-identical summary.
    ``chunk_rows`` bounds peak memory and never changes the exact
    integer statistics; sketched CDFs stay within their tracked
    rank-error bound for every value.
    """
    directory = Path(directory)
    with _telemetry.stage("streaming_ingest",
                          "wall time of streaming trace ingestion"):
        dur_fns, dur_avgs = read_durations_csv(directory / DURATIONS_FILE)
        duration_of = dict(zip(dur_fns.tolist(), dur_avgs.tolist()))

        summary: StreamingTraceSummary | None = None
        fold: _ChunkFold | None = None
        for block in iter_invocation_blocks(
            directory / INVOCATIONS_FILE, chunk_rows
        ):
            if summary is None:
                summary = StreamingTraceSummary(
                    name, block.per_minute.shape[1],
                    quantize_ms=quantize_ms, sketch_k=sketch_k,
                    topk_capacity=topk_capacity,
                )
                fold = _ChunkFold(summary, jobs)
            kept, durations, matrix, n_dropped = _join_block(
                block, duration_of
            )
            assert fold is not None
            fold.push(kept, durations, matrix, block.n_rows, n_dropped)
        if summary is None or fold is None:
            raise ValueError(
                f"{directory / INVOCATIONS_FILE}: no functions"
            )
        fold.flush()
        if summary.functions_seen == 0:
            raise ValueError(
                f"{directory}: no function has both invocations and a "
                "reported duration"
            )

        mem_path = directory / MEMORY_FILE
        if mem_path.exists():
            summary.observe_memory(read_memory_csv(mem_path))
    _emit_ingest_metrics(summary)
    return summary


def summarize_trace(
    trace: Trace,
    *,
    quantize_ms: float = 1.0,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    sketch_k: int = DEFAULT_SKETCH_K,
    topk_capacity: int = DEFAULT_TOPK_CAPACITY,
    jobs: int | None = None,
) -> StreamingTraceSummary:
    """Build a :class:`StreamingTraceSummary` from an in-memory trace.

    Chunks the trace's function rows exactly like the CSV reader chunks
    files, through the same ordered parallel fold -- the differential
    equivalence harness leans on this to compare streaming against the
    materialised pipeline without touching disk, and the CLI uses it to
    exercise ``--streaming`` on synthetic sources.
    """
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
    with _telemetry.stage("streaming_ingest",
                          "wall time of streaming trace ingestion"):
        summary = StreamingTraceSummary(
            trace.name, trace.n_minutes, quantize_ms=quantize_ms,
            sketch_k=sketch_k, topk_capacity=topk_capacity,
        )
        fold = _ChunkFold(summary, jobs)
        per_minute = trace.per_minute.astype(np.int64, copy=False)
        for lo in range(0, trace.n_functions, chunk_rows):
            hi = min(lo + chunk_rows, trace.n_functions)
            fold.push(trace.function_ids[lo:hi], trace.durations_ms[lo:hi],
                      per_minute[lo:hi], hi - lo, 0)
        fold.flush()
        if trace.app_memory_mb:
            summary.observe_memory(trace.app_memory_mb)
    _emit_ingest_metrics(summary)
    return summary
