"""Window selection for Minute Range mode.

Minute Range mode (paper section 3.2.1.2) replays a verbatim window of
the trace; the paper leaves *which* window to the user.  These helpers
pick principled ones:

- :func:`find_busiest_window` -- maximum total invocations (capacity /
  stress studies);
- :func:`find_burstiest_window` -- maximum minute-scale variability
  (burst-sensitive studies, e.g. instance pre-allocation);
- :func:`find_quietest_window` -- minimum total invocations (idle-time /
  keep-alive studies, cf. section 3.3 "Long idle times");
- :func:`window_stats` -- the summary a paper's experiment-setup table
  would quote for the chosen window.
"""

from __future__ import annotations

import numpy as np

from repro.traces.model import Trace

__all__ = [
    "find_burstiest_window",
    "find_busiest_window",
    "find_quietest_window",
    "window_stats",
]


def _window_sums(agg: np.ndarray, duration: int) -> np.ndarray:
    """Sliding-window sums of the aggregate series (one per start)."""
    cumulative = np.concatenate(([0], np.cumsum(agg, dtype=np.int64)))
    return cumulative[duration:] - cumulative[:-duration]


def _validate(trace: Trace, duration_minutes: int) -> np.ndarray:
    if not 0 < duration_minutes <= trace.n_minutes:
        raise ValueError(
            f"duration_minutes must be in [1, {trace.n_minutes}], got "
            f"{duration_minutes}"
        )
    return trace.aggregate_per_minute.astype(np.int64)


def find_busiest_window(trace: Trace, duration_minutes: int) -> int:
    """Start minute of the window with the most invocations."""
    agg = _validate(trace, duration_minutes)
    return int(np.argmax(_window_sums(agg, duration_minutes)))


def find_quietest_window(trace: Trace, duration_minutes: int) -> int:
    """Start minute of the window with the fewest invocations."""
    agg = _validate(trace, duration_minutes)
    return int(np.argmin(_window_sums(agg, duration_minutes)))


def find_burstiest_window(trace: Trace, duration_minutes: int) -> int:
    """Start minute of the window with the highest minute-scale
    variability (index of dispersion of its per-minute counts).

    Computed for every start position via sliding sums of the series and
    its square -- O(n_minutes), no per-window loop.
    """
    agg = _validate(trace, duration_minutes).astype(np.float64)
    if duration_minutes < 2:
        raise ValueError("burstiness needs windows of at least 2 minutes")
    sums = _window_sums(agg, duration_minutes)
    sq_sums = _window_sums(agg * agg, duration_minutes)
    mean = sums / duration_minutes
    var = sq_sums / duration_minutes - mean * mean
    with np.errstate(divide="ignore", invalid="ignore"):
        iod = np.where(mean > 0, var / np.where(mean > 0, mean, 1.0), -1.0)
    return int(np.argmax(iod))


def window_stats(trace: Trace, start: int, duration_minutes: int) -> dict:
    """Summary of one window: volume, peak, variability, active functions."""
    window = trace.minute_range(start, start + duration_minutes)
    agg = window.aggregate_per_minute.astype(np.float64)
    active = int((window.invocations_per_function > 0).sum())
    return {
        "start_minute": start,
        "duration_minutes": duration_minutes,
        "total_invocations": window.total_invocations,
        "busiest_minute": int(agg.max()),
        "mean_per_minute": float(agg.mean()),
        "index_of_dispersion": float(agg.var() / agg.mean())
        if agg.mean() > 0 else float("nan"),
        "active_functions": active,
        "active_fraction": active / trace.n_functions,
    }
