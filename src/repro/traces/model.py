"""Data model for production FaaS traces.

A :class:`Trace` is the in-memory form FaaSRail consumes: one record per
*function* with its average warm execution duration, plus the per-minute
invocation-count matrix for one day (Azure's trace reports invocations for
each of the 1440 minutes of a day; Huawei's is aggregated to the same shape).

Design notes
------------
The invocation matrix is a single dense ``(n_functions, n_minutes)`` int32
array.  Everything the shrink ray does to it -- rate scaling, thumbnail
aggregation, popularity computation -- is then an array operation, never a
Python loop over functions (see the hpc-parallel vectorisation guidance).
int32 comfortably holds any per-(function, minute) count seen in practice;
reductions are taken with an int64 accumulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Trace", "MultiDaySummary", "MINUTES_PER_DAY"]

MINUTES_PER_DAY = 1440


@dataclass
class Trace:
    """A single-day FaaS trace.

    Attributes
    ----------
    name:
        Human label, e.g. ``"azure-synth"`` or ``"huawei-private-synth"``.
    function_ids:
        ``(n,)`` array of unique function identifiers (hashes in the real
        Azure dataset).
    app_ids:
        ``(n,)`` array mapping each function to its application (Azure groups
        functions into apps; memory is reported per app).
    durations_ms:
        ``(n,)`` float64 average *warm* execution duration per function.
    per_minute:
        ``(n, n_minutes)`` int32 invocation counts.
    app_memory_mb:
        Mapping from app id to its average allocated memory in MiB.  May be
        empty for traces that do not report memory.
    """

    name: str
    function_ids: np.ndarray
    app_ids: np.ndarray
    durations_ms: np.ndarray
    per_minute: np.ndarray
    app_memory_mb: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.function_ids = np.asarray(self.function_ids)
        self.app_ids = np.asarray(self.app_ids)
        self.durations_ms = np.asarray(self.durations_ms, dtype=np.float64)
        self.per_minute = np.asarray(self.per_minute)
        n = self.function_ids.size
        if n == 0:
            raise ValueError("a trace must contain at least one function")
        if self.app_ids.shape != (n,):
            raise ValueError("app_ids must align with function_ids")
        if self.durations_ms.shape != (n,):
            raise ValueError("durations_ms must align with function_ids")
        if self.per_minute.ndim != 2 or self.per_minute.shape[0] != n:
            raise ValueError(
                "per_minute must be (n_functions, n_minutes), got "
                f"{self.per_minute.shape}"
            )
        if np.any(self.durations_ms <= 0):
            raise ValueError("durations must be strictly positive")
        if np.any(self.per_minute < 0):
            raise ValueError("invocation counts must be non-negative")
        if np.unique(self.function_ids).size != n:
            raise ValueError("function_ids must be unique")
        if not np.issubdtype(self.per_minute.dtype, np.integer):
            raise ValueError("per_minute must be an integer array")

    # ------------------------------------------------------------------
    # derived views (cheap; no copies unless noted)
    # ------------------------------------------------------------------
    @property
    def n_functions(self) -> int:
        return int(self.function_ids.size)

    @property
    def n_minutes(self) -> int:
        return int(self.per_minute.shape[1])

    @property
    def invocations_per_function(self) -> np.ndarray:
        """``(n,)`` int64 total invocations per function over the day."""
        return self.per_minute.sum(axis=1, dtype=np.int64)

    @property
    def aggregate_per_minute(self) -> np.ndarray:
        """``(n_minutes,)`` int64 total invocations per minute, all functions."""
        return self.per_minute.sum(axis=0, dtype=np.int64)

    @property
    def total_invocations(self) -> int:
        return int(self.per_minute.sum(dtype=np.int64))

    @property
    def busiest_minute_rate(self) -> int:
        """Peak aggregate invocations in any single minute."""
        return int(self.aggregate_per_minute.max())

    def memory_per_app_array(self) -> np.ndarray:
        """All reported app memory values, as an array (for CDFs, Fig 7)."""
        if not self.app_memory_mb:
            raise ValueError(f"trace {self.name!r} reports no memory data")
        return np.fromiter(self.app_memory_mb.values(), dtype=np.float64)

    # ------------------------------------------------------------------
    # transforms (produce new Traces)
    # ------------------------------------------------------------------
    def select(self, indices) -> Trace:
        """Sub-trace with only the functions at ``indices`` (in that order)."""
        idx = np.asarray(indices)
        if idx.size == 0:
            raise ValueError("cannot select an empty set of functions")
        sub_apps = self.app_ids[idx]
        keep = set(np.unique(sub_apps).tolist())
        return Trace(
            name=self.name,
            function_ids=self.function_ids[idx],
            app_ids=sub_apps,
            durations_ms=self.durations_ms[idx],
            per_minute=self.per_minute[idx],
            app_memory_mb={
                a: m for a, m in self.app_memory_mb.items() if a in keep
            },
        )

    def minute_range(self, start: int, stop: int) -> Trace:
        """Sub-trace covering minutes ``[start, stop)`` (Minute Range mode).

        Functions with zero invocations inside the window are kept: an idle
        function is still deployed and still occupies the mapping space.
        """
        if not (0 <= start < stop <= self.n_minutes):
            raise ValueError(
                f"invalid minute range [{start}, {stop}) for a "
                f"{self.n_minutes}-minute trace"
            )
        return Trace(
            name=self.name,
            function_ids=self.function_ids,
            app_ids=self.app_ids,
            durations_ms=self.durations_ms,
            per_minute=self.per_minute[:, start:stop],
            app_memory_mb=dict(self.app_memory_mb),
        )

    def nonzero_functions(self) -> Trace:
        """Drop functions that are never invoked during this day."""
        mask = self.invocations_per_function > 0
        if not mask.any():
            raise ValueError("trace has no invoked functions")
        return self.select(np.flatnonzero(mask))


@dataclass
class MultiDaySummary:
    """Per-function daily summaries across a multi-day trace window.

    Only what the day-selection analysis (paper Figure 3) needs: the daily
    average execution duration and the daily invocation count for every
    function -- not the full minute-resolution matrix for every day.
    """

    daily_avg_duration_ms: np.ndarray  # (n_functions, n_days)
    daily_invocations: np.ndarray  # (n_functions, n_days)

    def __post_init__(self) -> None:
        self.daily_avg_duration_ms = np.asarray(
            self.daily_avg_duration_ms, dtype=np.float64
        )
        self.daily_invocations = np.asarray(
            self.daily_invocations, dtype=np.float64
        )
        if self.daily_avg_duration_ms.shape != self.daily_invocations.shape:
            raise ValueError("duration and invocation matrices must align")
        if self.daily_avg_duration_ms.ndim != 2:
            raise ValueError("expected (n_functions, n_days) matrices")
        if self.n_days < 2:
            raise ValueError("need at least two days to study variability")

    @property
    def n_functions(self) -> int:
        return int(self.daily_avg_duration_ms.shape[0])

    @property
    def n_days(self) -> int:
        return int(self.daily_avg_duration_ms.shape[1])
