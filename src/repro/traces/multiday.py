"""Multi-day trace windows and day selection.

The Azure dataset spans 14 days with clear weekly and diurnal seasonality;
the paper's day-selection argument (section 3.1.2, Figure 3) is that a
single day is statistically representative because per-function day-to-day
variability is low.  This module provides the full-resolution counterpart
of :class:`~repro.traces.model.MultiDaySummary`:

- :func:`synthetic_azure_week` generates a window of minute-resolution
  day traces over a *shared* function population, with weekday/weekend
  modulation and per-function day noise consistent with Figure 3;
- :func:`pick_representative_day` selects the day whose duration and
  volume statistics sit closest to the window's pooled behaviour -- the
  principled version of "just take day 1";
- :func:`summarize_days` folds a day list into a
  :class:`~repro.traces.model.MultiDaySummary` for the CV analysis.
"""

from __future__ import annotations

import numpy as np

from repro.stats.distance import ks_statistic_samples
from repro.traces.azure import synthetic_azure_trace
from repro.traces.model import MultiDaySummary, Trace

__all__ = [
    "pick_representative_day",
    "summarize_days",
    "synthetic_azure_week",
]

#: Relative daily volume by weekday (Mon..Sun): business days run hotter.
_WEEKLY_PROFILE = np.array([1.0, 1.04, 1.05, 1.03, 0.98, 0.78, 0.74])


def synthetic_azure_week(
    n_functions: int = 2_000,
    n_days: int = 7,
    seed: int | np.random.Generator = 0,
    *,
    start_weekday: int = 0,
    daily_duration_sigma: float = 0.15,
    daily_volume_sigma: float = 0.25,
) -> list[Trace]:
    """A window of consistent minute-resolution Azure-like day traces.

    All days share the same function population (ids, app grouping,
    memory); each day's per-function invocation volume is the base
    volume scaled by the weekday profile and per-function lognormal noise,
    and its reported average duration wobbles mildly around the base --
    matching the low CVs of Figure 3 for the typical function.
    """
    if n_days <= 0:
        raise ValueError("n_days must be positive")
    if not 0 <= start_weekday < 7:
        raise ValueError("start_weekday must be in [0, 7)")
    rng = np.random.default_rng(seed)
    base = synthetic_azure_trace(n_functions=n_functions, seed=rng)

    base_counts = base.invocations_per_function.astype(np.float64)
    days: list[Trace] = []
    for d in range(n_days):
        weekday = (start_weekday + d) % 7
        volume_noise = rng.lognormal(0.0, daily_volume_sigma, n_functions)
        day_counts = np.maximum(
            np.round(base_counts * _WEEKLY_PROFILE[weekday] * volume_noise),
            0,
        ).astype(np.int64)
        duration_noise = rng.lognormal(0.0, daily_duration_sigma,
                                       n_functions)
        from repro.traces.synth import diurnal_profile, spread_over_minutes

        head_cutoff = max(float(np.quantile(day_counts, 0.995)), 10_000.0)
        gamma_shape = np.where(
            day_counts >= head_cutoff, 150.0,
            np.where(day_counts >= 1_440, 6.0, 0.7),
        )
        per_minute = spread_over_minutes(
            day_counts, rng,
            profile=diurnal_profile(amplitude=0.18, secondary=0.08),
            burst_gamma_shape=gamma_shape,
        )
        days.append(Trace(
            name=f"{base.name}/day{d:02d}",
            function_ids=base.function_ids,
            app_ids=base.app_ids,
            durations_ms=base.durations_ms * duration_noise,
            per_minute=per_minute,
            app_memory_mb=dict(base.app_memory_mb),
        ))
    return days


def summarize_days(days: list[Trace]) -> MultiDaySummary:
    """Fold a day list into the per-day summary the CV analysis consumes."""
    if len(days) < 2:
        raise ValueError("need at least two days")
    durations = np.column_stack([d.durations_ms for d in days])
    invocations = np.column_stack(
        [d.invocations_per_function for d in days]
    ).astype(np.float64)
    return MultiDaySummary(daily_avg_duration_ms=durations,
                           daily_invocations=invocations)


def pick_representative_day(days: list[Trace]) -> int:
    """Index of the day statistically closest to the window's pooled view.

    Scores each day by the KS distance of its duration distribution to
    the pooled multi-day durations plus the relative deviation of its
    total volume from the window median -- low score wins.
    """
    if not days:
        raise ValueError("no days given")
    if len(days) == 1:
        return 0
    pooled_durations = np.concatenate([d.durations_ms for d in days])
    totals = np.array([d.total_invocations for d in days], dtype=float)
    median_total = np.median(totals)
    scores = []
    for d, trace in enumerate(days):
        dur_ks = ks_statistic_samples(trace.durations_ms, pooled_durations)
        vol_dev = abs(totals[d] - median_total) / median_total
        scores.append(dur_ks + vol_dev)
    return int(np.argmin(scores))
