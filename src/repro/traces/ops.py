"""Derived statistics over traces.

Thin, vectorised helpers shared by the shrink ray and the analysis layer:
invocation-weighted duration CDFs, relative load series, random-sampling
utilities (used by the random-sampling *baseline*, not by FaaSRail itself).
"""

from __future__ import annotations

import numpy as np

from repro.stats.ecdf import EmpiricalCDF
from repro.traces.model import Trace

__all__ = [
    "function_duration_cdf",
    "invocation_duration_cdf",
    "relative_load_series",
    "sample_functions",
]


def function_duration_cdf(trace: Trace) -> EmpiricalCDF:
    """CDF of distinct functions' average execution durations (Fig 1a, 6)."""
    return EmpiricalCDF.from_samples(trace.durations_ms)


def invocation_duration_cdf(trace: Trace) -> EmpiricalCDF:
    """Invocation-weighted duration CDF (Fig 1b, 9, 11).

    Each function's average duration enters weighted by its invocation
    count, exactly how the paper builds the "execution durations of all
    invocations" distribution from per-function averages.
    """
    counts = trace.invocations_per_function
    mask = counts > 0
    if not mask.any():
        raise ValueError("trace has no invocations")
    return EmpiricalCDF.from_samples(
        trace.durations_ms[mask], counts[mask].astype(np.float64)
    )


def relative_load_series(per_minute_aggregate: np.ndarray) -> np.ndarray:
    """Per-minute aggregate load normalised to its peak (Fig 1d, 8)."""
    agg = np.asarray(per_minute_aggregate, dtype=np.float64)
    peak = agg.max()
    if peak <= 0:
        raise ValueError("aggregate load is identically zero")
    return agg / peak


def sample_functions(
    trace: Trace,
    n: int,
    rng: np.random.Generator,
    *,
    weighted: bool = False,
) -> Trace:
    """Random sub-sample of ``n`` functions (the literature's sampling step).

    ``weighted=True`` biases the draw by invocation count; the plain uniform
    draw is what the paper's Section 2 critique targets.
    """
    if not 0 < n <= trace.n_functions:
        raise ValueError(
            f"cannot sample {n} of {trace.n_functions} functions"
        )
    if weighted:
        counts = trace.invocations_per_function.astype(np.float64)
        p = counts / counts.sum()
        idx = rng.choice(trace.n_functions, size=n, replace=False, p=p)
    else:
        idx = rng.choice(trace.n_functions, size=n, replace=False)
    return trace.select(np.sort(idx))
