"""Trace substrate: data model, Azure-schema IO, calibrated synthetic traces.

The real Azure / Huawei datasets are unavailable offline; the synthetic
generators in :mod:`repro.traces.azure` and :mod:`repro.traces.huawei`
reproduce the statistical marginals FaaSRail consumes (see DESIGN.md).  A
directory containing the genuine Azure CSVs loads through
:func:`load_azure_day` without code changes.
"""

from repro.traces.azure import (
    AZURE_FULL_FUNCTIONS,
    AZURE_FULL_INVOCATIONS,
    synthetic_azure_multiday,
    synthetic_azure_trace,
)
from repro.traces.huawei import (
    HUAWEI_FULL_FUNCTIONS,
    HUAWEI_FULL_INVOCATIONS,
    synthetic_huawei_public_trace,
    synthetic_huawei_trace,
)
from repro.traces.fit import (
    characterize_trace,
    fit_generator_from_trace,
    fit_popularity_exponent,
)
from repro.traces.io import dump_azure_day, load_azure_day
from repro.traces.streaming import (
    StreamingTraceSummary,
    iter_invocation_blocks,
    stream_azure_day,
    summarize_trace,
)
from repro.traces.synth import memoized_trace
from repro.traces.model import MINUTES_PER_DAY, MultiDaySummary, Trace
from repro.traces.multiday import (
    pick_representative_day,
    summarize_days,
    synthetic_azure_week,
)
from repro.traces.seconds import SecondTrace, expand_to_seconds
from repro.traces.windows import (
    find_burstiest_window,
    find_busiest_window,
    find_quietest_window,
    window_stats,
)
from repro.traces.ops import (
    function_duration_cdf,
    invocation_duration_cdf,
    relative_load_series,
    sample_functions,
)

__all__ = [
    "AZURE_FULL_FUNCTIONS",
    "AZURE_FULL_INVOCATIONS",
    "HUAWEI_FULL_FUNCTIONS",
    "HUAWEI_FULL_INVOCATIONS",
    "MINUTES_PER_DAY",
    "MultiDaySummary",
    "SecondTrace",
    "StreamingTraceSummary",
    "Trace",
    "characterize_trace",
    "dump_azure_day",
    "expand_to_seconds",
    "find_burstiest_window",
    "find_busiest_window",
    "find_quietest_window",
    "fit_generator_from_trace",
    "fit_popularity_exponent",
    "function_duration_cdf",
    "invocation_duration_cdf",
    "iter_invocation_blocks",
    "load_azure_day",
    "memoized_trace",
    "pick_representative_day",
    "relative_load_series",
    "sample_functions",
    "stream_azure_day",
    "summarize_days",
    "summarize_trace",
    "synthetic_azure_multiday",
    "synthetic_azure_trace",
    "synthetic_azure_week",
    "synthetic_huawei_public_trace",
    "synthetic_huawei_trace",
    "window_stats",
]
