"""Second-resolution trace refinement (paper section 3.3, future work).

Azure reports per-minute invocation counts only, but Huawei's private
trace also reports *per-second* rates, and its key takeaway is that
burstiness persists at seconds granularity.  The paper leaves consuming
that statistic to future work; this module implements it:

- :class:`SecondTrace` pairs a minute-resolution :class:`~repro.traces.
  model.Trace` with a consistent ``(n_functions, n_minutes * 60)``
  per-second matrix;
- :func:`expand_to_seconds` synthesises such a refinement from a
  minute trace (bursty within-minute structure via the same gamma-noise
  multinomial machinery the generators use);
- the load generator's ``trace-seconds`` path
  (:func:`repro.loadgen.generator.generate_from_second_matrix`) then
  replays the recorded second counts verbatim instead of modelling the
  sub-minute distribution.

A real per-second dataset drops in by constructing :class:`SecondTrace`
directly from its matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traces.model import Trace

__all__ = ["SecondTrace", "expand_to_seconds"]

#: Guard against accidentally materialising a 50K-function second matrix
#: (Azure-sized traces would need ~17 GiB; per-second data only exists for
#: small-cardinality traces like Huawei's anyway).
_MAX_CELLS = 200_000_000


@dataclass
class SecondTrace:
    """A trace whose invocations are known at one-second resolution."""

    trace: Trace
    per_second: np.ndarray  # (n_functions, n_minutes * 60) int32

    def __post_init__(self) -> None:
        self.per_second = np.asarray(self.per_second)
        n, m = self.trace.n_functions, self.trace.n_minutes
        if self.per_second.shape != (n, m * 60):
            raise ValueError(
                f"per_second must be ({n}, {m * 60}), got "
                f"{self.per_second.shape}"
            )
        if not np.issubdtype(self.per_second.dtype, np.integer):
            raise ValueError("per_second must be an integer array")
        if np.any(self.per_second < 0):
            raise ValueError("per-second counts must be non-negative")
        # Consistency: second counts must refine the minute counts exactly.
        folded = self.per_second.reshape(n, m, 60).sum(
            axis=2, dtype=np.int64
        )
        if not np.array_equal(folded, self.trace.per_minute.astype(np.int64)):
            raise ValueError(
                "per-second matrix does not fold back to the trace's "
                "per-minute counts"
            )

    @property
    def n_seconds(self) -> int:
        return int(self.per_second.shape[1])

    @property
    def aggregate_per_second(self) -> np.ndarray:
        return self.per_second.sum(axis=0, dtype=np.int64)

    @property
    def busiest_second_rate(self) -> int:
        return int(self.aggregate_per_second.max())

    def second_window(self, start_minute: int, duration_minutes: int):
        """Per-second slice covering the given minute window."""
        if duration_minutes <= 0:
            raise ValueError("duration_minutes must be positive")
        lo, hi = start_minute * 60, (start_minute + duration_minutes) * 60
        if not 0 <= lo < hi <= self.n_seconds:
            raise ValueError(
                f"window [{start_minute}, "
                f"{start_minute + duration_minutes}) min is outside the "
                f"{self.n_seconds // 60}-minute trace"
            )
        return self.per_second[:, lo:hi]


def expand_to_seconds(
    trace: Trace,
    seed: int | np.random.Generator = 0,
    *,
    burst_gamma_shape: float = 0.5,
    chunk_rows: int = 64,
) -> SecondTrace:
    """Synthesise a second-resolution refinement of a minute trace.

    Each (function, minute) count is distributed over the minute's 60
    seconds with gamma-modulated multinomial draws: small
    ``burst_gamma_shape`` concentrates a minute's requests on few seconds
    (Huawei-style second-scale bursts), large values spread them evenly.
    Row sums fold back to the input exactly.
    """
    if burst_gamma_shape <= 0:
        raise ValueError("burst_gamma_shape must be positive")
    n, m = trace.n_functions, trace.n_minutes
    if n * m * 60 > _MAX_CELLS:
        raise ValueError(
            f"second matrix would need {n * m * 60:,} cells; per-second "
            "refinement is intended for small-cardinality traces "
            "(use a sub-trace via Trace.select / minute_range first)"
        )
    rng = np.random.default_rng(seed)
    out = np.zeros((n, m * 60), dtype=np.int32)
    for lo in range(0, n, chunk_rows):
        hi = min(lo + chunk_rows, n)
        counts = trace.per_minute[lo:hi].astype(np.int64).ravel()
        rows = hi - lo
        # One multinomial per (function, minute) cell over its 60 seconds.
        k = burst_gamma_shape
        pvals = rng.gamma(k, 1.0 / k, (rows * m, 60))
        pvals /= pvals.sum(axis=1, keepdims=True)
        draws = rng.multinomial(counts, pvals)
        out[lo:hi] = draws.reshape(rows, m * 60)
    return SecondTrace(trace=trace, per_second=out)
