"""Shared machinery for synthesising production-like FaaS traces.

The public Azure / Huawei datasets cannot be downloaded in this environment,
so the reproduction generates *calibrated* synthetic traces instead: the
statistical marginals FaaSRail consumes (duration CDF, popularity skew,
per-minute rate structure, day-to-day variability, app memory) are matched to
what the traces' papers report.  See DESIGN.md section 1 for the full
substitution argument.  Everything here is deterministic under a seed and
vectorised; the only per-function loop is the chunked multinomial draw.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.traces.model import MINUTES_PER_DAY, MultiDaySummary, Trace

__all__ = [
    "LognormalComponent",
    "memoized_trace",
    "sample_duration_mixture",
    "zipf_invocation_counts",
    "correlate_popularity_with_duration",
    "diurnal_profile",
    "spread_over_minutes",
    "synth_multiday_summary",
    "synth_app_memory",
]


def memoized_trace(builder: Callable[[], Trace], cache, *key_parts):
    """Build a synthetic trace through a content-addressed cache.

    ``builder`` is a zero-argument callable returning a
    :class:`~repro.traces.model.Trace`; ``key_parts`` must capture every
    input that shapes its output (source kind, size, seed, knobs) -- the
    cache key is their fingerprint plus the code version, so cached days
    invalidate automatically on upgrades.  With ``cache=None`` this is
    just ``builder()``.
    """
    if cache is None:
        return builder()
    from repro.cache import code_version, fingerprint

    key = fingerprint("synthetic-trace", code_version(), *key_parts)
    return cache.memoize(key, builder)


@dataclass(frozen=True)
class LognormalComponent:
    """One component of a lognormal mixture over execution durations.

    ``median_ms`` is the component median (``exp(mu)`` of the underlying
    normal); ``sigma`` its log-space standard deviation; ``weight`` its
    mixture weight (weights are normalised by the sampler).
    """

    weight: float
    median_ms: float
    sigma: float


def sample_duration_mixture(
    n: int,
    components: Sequence[LognormalComponent],
    rng: np.random.Generator,
    *,
    lo_ms: float = 1.0,
    hi_ms: float = 600_000.0,
) -> np.ndarray:
    """Draw ``n`` durations (ms) from a clipped lognormal mixture.

    Production traces show execution times spanning 2-4 orders of magnitude
    with a roughly lognormal body; a small mixture captures the short /
    medium / long-running populations without fitting machinery.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not components:
        raise ValueError("need at least one mixture component")
    weights = np.array([c.weight for c in components], dtype=np.float64)
    if np.any(weights <= 0):
        raise ValueError("component weights must be positive")
    weights /= weights.sum()
    which = rng.choice(len(components), size=n, p=weights)
    mu = np.log([c.median_ms for c in components])
    sigma = np.array([c.sigma for c in components])
    draws = rng.lognormal(mean=mu[which], sigma=sigma[which])
    return np.clip(draws, lo_ms, hi_ms)


def zipf_invocation_counts(
    n: int,
    total: int,
    rng: np.random.Generator,
    *,
    exponent: float = 1.3,
    jitter_sigma: float = 0.6,
    min_invocations: int = 1,
) -> np.ndarray:
    """Heavy-tailed per-function daily invocation counts summing to ``total``.

    Counts are proportional to ``rank**-exponent`` with multiplicative
    lognormal jitter, then rescaled.  With the default exponent the top few
    percent of functions receive the overwhelming majority of invocations,
    matching the Azure observation that 8% of functions account for 99% of
    invocations while ~90% of functions are invoked about once a minute or
    less.

    Returns counts in *descending* order (rank 1 first); callers typically
    permute them onto functions afterwards.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if total < n * min_invocations:
        raise ValueError(
            f"total={total} cannot give each of {n} functions "
            f">= {min_invocations} invocations"
        )
    ranks = np.arange(1, n + 1, dtype=np.float64)
    base = ranks**-exponent
    base *= rng.lognormal(0.0, jitter_sigma, size=n)
    base[::-1].sort()  # descending in place
    scale = (total - n * min_invocations) / base.sum()
    counts = np.floor(base * scale).astype(np.int64) + min_invocations
    # Distribute the rounding remainder over the head so the sum is exact.
    deficit = total - counts.sum()
    if deficit > 0:
        counts[: int(deficit)] += 1
    return counts


def correlate_popularity_with_duration(
    durations_ms: np.ndarray,
    sorted_counts: np.ndarray,
    rng: np.random.Generator,
    *,
    beta: float = 0.3,
    sigma: float = 2.5,
) -> np.ndarray:
    """Assign descending counts to functions, favouring short durations.

    Azure reports that its most popular functions are short-running, which is
    what shifts the invocation-weighted duration CDF left of the per-function
    CDF (80% of invocations vs 50% of functions under 1 s).  Each function
    gets a popularity *propensity* ``-beta * log(duration) + sigma * Z``;
    counts are assigned by descending propensity.  ``beta`` controls how hard
    popularity prefers short functions, ``sigma`` how much genuine mixing
    remains (so some medium/long functions are still popular and the weighted
    CDF stays smooth rather than collapsing onto the shortest functions).
    """
    if beta < 0:
        raise ValueError(f"beta must be non-negative, got {beta}")
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    n = durations_ms.size
    if sorted_counts.shape != (n,):
        raise ValueError("counts must align with durations")
    propensity = -beta * np.log(durations_ms) + sigma * rng.standard_normal(n)
    order = np.argsort(propensity)[::-1]  # highest propensity first
    counts = np.empty(n, dtype=np.int64)
    counts[order] = sorted_counts
    return counts


def diurnal_profile(
    n_minutes: int = MINUTES_PER_DAY,
    *,
    amplitude: float = 0.35,
    secondary: float = 0.12,
    phase_minutes: float = 540.0,
) -> np.ndarray:
    """Smooth daily load shape, normalised to mean 1.

    A fundamental plus one harmonic reproduce the mid-day peak / night trough
    pattern visible in Figure 8's Azure day; the default phase puts the peak
    in the afternoon.
    """
    t = np.arange(n_minutes, dtype=np.float64)
    w = 2.0 * np.pi / n_minutes
    shape = (
        1.0
        + amplitude * np.sin(w * (t - phase_minutes))
        + secondary * np.sin(2.0 * w * (t - 0.35 * phase_minutes))
    )
    shape = np.maximum(shape, 0.05)
    return shape / shape.mean()


def spread_over_minutes(
    counts: np.ndarray,
    rng: np.random.Generator,
    *,
    n_minutes: int = MINUTES_PER_DAY,
    profile: np.ndarray | None = None,
    burst_gamma_shape: float | np.ndarray = 0.6,
    sparse_threshold: int | None = None,
    chunk: int = 2048,
) -> np.ndarray:
    """Distribute each function's daily count over minutes.

    Popular functions follow the diurnal ``profile`` modulated by per-minute
    gamma noise (bursty but trend-following).  Functions with few invocations
    ("sparse", below ``sparse_threshold``) instead get probability mass
    concentrated on a small random set of active minutes -- sudden spikes
    followed by idle time, the burst pattern the Azure paper highlights.

    ``burst_gamma_shape`` may be a scalar or a per-function array: a large
    shape (>~4) makes that function's series hug the diurnal trend, a small
    shape (<1) makes it spiky.  Callers typically give the few head functions
    a large shape so the *aggregate* series stays legible (paper Figure 8)
    while the long tail stays bursty.

    Returns an ``(n, n_minutes)`` int32 matrix whose row sums equal ``counts``.
    Work proceeds in chunks to bound the transient ``(chunk, n_minutes)``
    float64 probability buffer.
    """
    counts = np.asarray(counts, dtype=np.int64)
    n = counts.size
    if np.any(counts < 0):
        raise ValueError("counts must be non-negative")
    if profile is None:
        profile = diurnal_profile(n_minutes)
    if profile.shape != (n_minutes,):
        raise ValueError("profile length must equal n_minutes")
    if sparse_threshold is None:
        sparse_threshold = n_minutes  # ~once a minute or less
    gamma_shape = np.broadcast_to(
        np.asarray(burst_gamma_shape, dtype=np.float64), (n,)
    )
    if np.any(gamma_shape <= 0):
        raise ValueError("burst_gamma_shape must be positive")
    out = np.zeros((n, n_minutes), dtype=np.int32)
    base_p = profile / profile.sum()

    for lo in range(0, n, chunk):
        hi = min(lo + chunk, n)
        m = hi - lo
        c = counts[lo:hi]
        pvals = np.broadcast_to(base_p, (m, n_minutes)).copy()
        # Multiplicative gamma noise: shape < 1 gives heavy bursts.
        k = gamma_shape[lo:hi, None]
        pvals *= rng.gamma(k, 1.0 / k, (m, n_minutes))

        sparse = c < sparse_threshold
        if sparse.any():
            # Concentrate sparse functions on a handful of active minutes.
            n_sparse = int(sparse.sum())
            # 1..32 active minutes, never more than the day has
            active = rng.integers(1, min(33, n_minutes + 1), size=n_sparse)
            rows = np.flatnonzero(sparse)
            mask = rng.random((n_sparse, n_minutes))
            # Keep the `active[i]` minutes with the largest random keys:
            # threshold each row at its own quantile.
            cutoffs = np.take_along_axis(
                np.sort(mask, axis=1),
                (n_minutes - active)[:, None],
                axis=1,
            )
            keep = mask >= cutoffs
            pvals[rows] = np.where(keep, pvals[rows] + 1e-12, 0.0)

        row_sums = pvals.sum(axis=1, keepdims=True)
        np.divide(pvals, row_sums, out=pvals)
        out[lo:hi] = rng.multinomial(c, pvals).astype(np.int32)
    return out


def synth_multiday_summary(
    base_duration_ms: np.ndarray,
    base_invocations: np.ndarray,
    n_days: int,
    rng: np.random.Generator,
    *,
    stable_fraction: float = 0.88,
    stable_sigma_range: tuple[float, float] = (0.05, 0.55),
    volatile_sigma_range: tuple[float, float] = (0.8, 1.5),
) -> MultiDaySummary:
    """Per-day summaries with Azure-like day-to-day variability.

    About 90% of Azure functions show a coefficient of variation below 1 for
    both daily average duration and daily invocation count (Figure 3); the
    remainder are genuinely volatile.  Daily values are the base values under
    multiplicative lognormal noise whose sigma is drawn from the stable or
    volatile range per function.
    """
    if n_days < 2:
        raise ValueError("need at least two days")
    if not 0.0 < stable_fraction <= 1.0:
        raise ValueError("stable_fraction must be in (0, 1]")
    n = base_duration_ms.size
    if base_invocations.shape != (n,):
        raise ValueError("bases must align")

    def _noise(sig_lo_hi_stable, sig_lo_hi_volatile):
        stable = rng.random(n) < stable_fraction
        sigma = np.where(
            stable,
            rng.uniform(*sig_lo_hi_stable, size=n),
            rng.uniform(*sig_lo_hi_volatile, size=n),
        )
        return rng.lognormal(0.0, sigma[:, None], size=(n, n_days))

    durations = base_duration_ms[:, None] * _noise(
        stable_sigma_range, volatile_sigma_range
    )
    invocations = np.maximum(
        np.round(
            base_invocations[:, None]
            * _noise(stable_sigma_range, volatile_sigma_range)
        ),
        0.0,
    )
    return MultiDaySummary(
        daily_avg_duration_ms=durations, daily_invocations=invocations
    )


def synth_app_memory(
    app_ids: np.ndarray,
    rng: np.random.Generator,
    *,
    median_mb: float = 120.0,
    sigma: float = 0.9,
    lo_mb: float = 16.0,
    hi_mb: float = 4096.0,
) -> dict[str, float]:
    """Lognormal per-app allocated memory (MiB), Azure Figure-7 ballpark."""
    uniq = np.unique(app_ids)
    mem = np.clip(
        rng.lognormal(np.log(median_mb), sigma, size=uniq.size), lo_mb, hi_mb
    )
    return {str(a): float(m) for a, m in zip(uniq, mem)}
