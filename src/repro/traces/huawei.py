"""Calibrated synthetic Huawei Private trace.

Stands in for the Huawei internal-workload dataset (Joosen et al., SoCC
'23).  Relative to Azure, the paper stresses that the private trace:

- covers far fewer functions (104 report execution times on day 1);
- reports vastly more invocations (Figure 11b's legend: 4 267 023 992);
- is dominated by much *faster* functions (its duration CDF sits roughly an
  order of magnitude left of Azure's, Figure 6);
- is bursty at sub-minute granularity.

Only the duration CDF and the invocation weights feed FaaSRail's evaluation
on this trace (Figures 6, 11b, 12b), but a full per-minute matrix is still
generated so the whole pipeline can run against it.  The default total
invocation count is scaled down (the statistical shape, not the absolute
magnitude, is what matters); pass ``full_scale=True`` for the paper figure.
"""

from __future__ import annotations

import numpy as np

from repro.traces.model import MINUTES_PER_DAY, Trace
from repro.traces.synth import (
    LognormalComponent,
    correlate_popularity_with_duration,
    diurnal_profile,
    sample_duration_mixture,
    spread_over_minutes,
    zipf_invocation_counts,
)

__all__ = [
    "HUAWEI_DURATION_MIXTURE",
    "HUAWEI_FULL_FUNCTIONS",
    "HUAWEI_FULL_INVOCATIONS",
    "HUAWEI_PUBLIC_DURATION_MIXTURE",
    "synthetic_huawei_public_trace",
    "synthetic_huawei_trace",
]

#: Functions with day-1 execution times in the real private trace.
HUAWEI_FULL_FUNCTIONS = 104
#: Day-1 invocation total shown in the paper's Figure 11b legend.
HUAWEI_FULL_INVOCATIONS = 4_267_023_992

#: Duration mixture roughly an order of magnitude faster than Azure's:
#: the bulk of functions complete within tens of milliseconds.
HUAWEI_DURATION_MIXTURE = (
    LognormalComponent(weight=0.55, median_ms=15.0, sigma=0.8),
    LognormalComponent(weight=0.33, median_ms=70.0, sigma=0.9),
    LognormalComponent(weight=0.12, median_ms=450.0, sigma=1.0),
)

#: The *public-facing* Huawei platform profile.  The paper notes it "has a
#: very similar profile to Azure" -- same mixture shape, shifted slightly
#: left (public Huawei functions skew a bit shorter than Azure's).
HUAWEI_PUBLIC_DURATION_MIXTURE = (
    LognormalComponent(weight=0.35, median_ms=80.0, sigma=1.1),
    LognormalComponent(weight=0.40, median_ms=700.0, sigma=1.0),
    LognormalComponent(weight=0.25, median_ms=5_000.0, sigma=1.4),
)


def synthetic_huawei_trace(
    n_functions: int = HUAWEI_FULL_FUNCTIONS,
    total_invocations: int | None = None,
    seed: int | np.random.Generator = 0,
    *,
    full_scale: bool = False,
) -> Trace:
    """Generate one synthetic Huawei-Private-like trace day.

    Parameters
    ----------
    n_functions:
        Distinct functions (paper: 104).
    total_invocations:
        Daily invocation total.  Defaults to 40M -- large enough that the
        head functions fire thousands of times per minute, small enough to
        keep the default benches quick.  ``full_scale=True`` restores the
        paper's 4.27B.
    seed:
        Seed or generator.
    """
    rng = np.random.default_rng(seed)
    if full_scale:
        n_functions = HUAWEI_FULL_FUNCTIONS
        total_invocations = HUAWEI_FULL_INVOCATIONS
    if n_functions <= 0:
        raise ValueError("n_functions must be positive")
    if total_invocations is None:
        total_invocations = 40_000_000

    durations = sample_duration_mixture(
        n_functions, HUAWEI_DURATION_MIXTURE, rng, lo_ms=1.0, hi_ms=60_000.0
    )
    # Popularity is skewed here too, and with only ~100 functions the head
    # share is even more pronounced (this drives Figure 12b's imbalance).
    ranked_counts = zipf_invocation_counts(
        n_functions,
        total_invocations,
        rng,
        exponent=1.6,
        jitter_sigma=0.4,
        min_invocations=100,
    )
    counts = correlate_popularity_with_duration(
        durations, ranked_counts, rng, beta=0.5, sigma=1.2
    )

    gamma_shape = np.where(counts >= np.quantile(counts, 0.9), 5.0, 0.5)
    per_minute = spread_over_minutes(
        counts,
        rng,
        n_minutes=MINUTES_PER_DAY,
        profile=diurnal_profile(amplitude=0.12, secondary=0.05),
        burst_gamma_shape=gamma_shape,
        sparse_threshold=MINUTES_PER_DAY,
    )

    function_ids = np.array([f"hw-fn-{i:04d}" for i in range(n_functions)])
    # The private trace is internal workloads; treat each function as its
    # own app and omit memory (the paper uses Azure for the memory figure).
    app_ids = np.array([f"hw-app-{i:04d}" for i in range(n_functions)])
    return Trace(
        name="huawei-private-synth",
        function_ids=function_ids,
        app_ids=app_ids,
        durations_ms=durations,
        per_minute=per_minute,
    )


def synthetic_huawei_public_trace(
    n_functions: int = 5_000,
    total_invocations: int | None = None,
    seed: int | np.random.Generator = 0,
) -> Trace:
    """Generate a Huawei *Public* platform trace day.

    The paper characterises the public trace as Azure-like (section 2.1);
    this generator reuses the Azure-style machinery with a slightly
    faster duration mixture and the same popularity and diurnal
    structure, giving experiments a third realistic cloud profile.
    """
    rng = np.random.default_rng(seed)
    if n_functions <= 0:
        raise ValueError("n_functions must be positive")
    if total_invocations is None:
        total_invocations = int(20_000 * n_functions)

    durations = sample_duration_mixture(
        n_functions, HUAWEI_PUBLIC_DURATION_MIXTURE, rng,
        lo_ms=1.0, hi_ms=300_000.0,
    )
    ranked_counts = zipf_invocation_counts(
        n_functions, total_invocations, rng, exponent=1.55,
    )
    counts = correlate_popularity_with_duration(
        durations, ranked_counts, rng, beta=0.3, sigma=2.5,
    )
    head_cutoff = max(float(np.quantile(counts, 0.995)), 10_000.0)
    gamma_shape = np.where(
        counts >= head_cutoff, 150.0, np.where(counts >= 1_440, 6.0, 0.7)
    )
    per_minute = spread_over_minutes(
        counts, rng,
        n_minutes=MINUTES_PER_DAY,
        profile=diurnal_profile(amplitude=0.20, secondary=0.07,
                                phase_minutes=480.0),
        burst_gamma_shape=gamma_shape,
    )
    function_ids = np.array([f"hwpub-fn-{i:06d}" for i in range(n_functions)])
    app_ids = np.array(
        [f"hwpub-app-{i % max(n_functions // 3, 1):05d}"
         for i in range(n_functions)]
    )
    return Trace(
        name="huawei-public-synth",
        function_ids=function_ids,
        app_ids=app_ids,
        durations_ms=durations,
        per_minute=per_minute,
    )
