"""Online request-trace generation.

Turns an :class:`~repro.core.spec.ExperimentSpec` (Spec mode) or a
:class:`~repro.core.smirnov.SmirnovSample` (Smirnov Transform mode) into a
time-ordered :class:`~repro.loadgen.requests.RequestTrace`.

Everything is array work: realised per-cell counts, within-minute offsets,
one global ordering -- no per-request Python loop, which is what lets the
generator emit millions of requests per second of CPU (measured by the
``test_perf_loadgen`` benchmark).

Spec-mode materialisation is sharded over contiguous minute ranges, each
shard drawing from its own spawned child generator (see
:mod:`repro.parallel`): the shard layout and every draw depend only on
the spec, the seed, and the shard count -- never on ``jobs`` -- so
parallel generation is byte-identical to sequential generation, and the
result can be memoised in a :class:`repro.cache.ContentCache`.
"""

from __future__ import annotations

import numpy as np

from repro.core.smirnov import SmirnovSample
from repro.core.spec import ExperimentSpec
from repro.loadgen.arrivals import cell_counts, minute_offsets
from repro.loadgen.requests import RequestTrace
from repro.parallel import auto_shards, map_shards, shard_bounds, spawn_rngs
from repro.telemetry import registry as _telemetry

__all__ = [
    "generate_from_second_matrix",
    "generate_request_trace",
    "generate_smirnov_trace",
]


def _materialize_shard(args):
    """Realise one contiguous minute range of the spec matrix.

    Returns (timestamps, function indices), unsorted.  Module-level so it
    pickles into pool workers; all randomness comes from the shard's own
    child generator, so scheduling cannot perturb the draws.
    """
    matrix, minute_lo, mode, rng = args
    n_minutes = matrix.shape[1]
    realised = cell_counts(matrix, mode, rng)
    flat = realised.ravel()  # cell-major: function-major then minute
    offsets = minute_offsets(flat, mode, rng)
    cell_idx = np.repeat(np.arange(flat.size), flat)
    fn_idx = cell_idx // n_minutes
    minute_idx = cell_idx % n_minutes + minute_lo
    return minute_idx * 60.0 + offsets, fn_idx


def generate_request_trace(
    spec: ExperimentSpec,
    seed: int | np.random.Generator = 0,
    *,
    arrival_mode: str = "poisson",
    variable_input: str | bool = "auto",
    jobs: int | None = None,
    shards: int | None = None,
    cache=None,
) -> RequestTrace:
    """Realise a spec into concrete, timestamped requests (Spec mode).

    ``variable_input`` controls the per-invocation input-variation
    extension: ``"auto"`` (default) uses the spec's variant table when one
    was attached by ``ShrinkRay(variable_input=True)``; ``True`` requires
    one; ``False`` ignores it and replays each Function's fixed input.

    ``jobs`` fans the per-minute materialisation out over worker
    processes (``None``/1 = sequential, 0 = all cores) without changing
    the result; ``shards`` overrides the minute-shard count and *does*
    participate in the draws (same shards = same trace).  ``cache`` -- a
    :class:`repro.cache.ContentCache` -- memoises the finished trace
    under a fingerprint of spec + seed + parameters (integer seeds only;
    generator seeds bypass the cache).
    """
    if variable_input not in ("auto", True, False):
        raise ValueError("variable_input must be 'auto', True, or False")
    with _telemetry.stage("generate_request_trace",
                          "wall time of Spec-mode trace realisation"):
        trace = _generate_request_trace(
            spec, seed, arrival_mode=arrival_mode,
            variable_input=variable_input, jobs=jobs, shards=shards,
            cache=cache,
        )
    reg = _telemetry.active()
    if reg is not None:
        reg.counter("generated_requests_total",
                    "requests realised by the load generator"
                    ).inc(trace.n_requests)
        reg.gauge("generated_horizon_s",
                  "trace-time horizon of the last generated trace"
                  ).set(trace.duration_s)
    return trace


def _generate_request_trace(
    spec: ExperimentSpec,
    seed: int | np.random.Generator,
    *,
    arrival_mode: str,
    variable_input: str | bool,
    jobs: int | None,
    shards: int | None,
    cache,
) -> RequestTrace:
    variants = spec.metadata.get("variants")
    if variable_input is True and variants is None:
        raise ValueError(
            "spec carries no variant table; build it with "
            "ShrinkRay(variable_input=True)"
        )
    use_variants = variants is not None and variable_input in ("auto", True)
    matrix = spec.per_minute  # (n_functions, n_minutes)
    n_functions, n_minutes = matrix.shape
    n_shards = shards if shards is not None else auto_shards(n_minutes) or 1

    key = None
    if cache is not None and isinstance(seed, (int, np.integer)):
        from repro.cache import code_version, fingerprint

        key = fingerprint(
            "generate-request-trace", code_version(), spec,
            int(seed), arrival_mode, str(variable_input), n_shards,
        )
        try:
            return cache.get(key)
        except KeyError:
            pass

    rng, children = spawn_rngs(seed, n_shards)
    results = map_shards(
        _materialize_shard,
        [
            (matrix[:, lo:hi], lo, arrival_mode, child)
            for (lo, hi), child in zip(shard_bounds(n_minutes, n_shards),
                                       children)
        ],
        jobs=jobs,
    )
    times = np.concatenate([r[0] for r in results])
    fn_idx = np.concatenate([r[1] for r in results])
    if times.size == 0:
        raise ValueError("spec realised zero requests; raise max_rps")

    # One global ordering; the stable sort keeps equal timestamps in
    # shard order, which is itself deterministic.
    order = np.argsort(times, kind="stable")
    times = times[order]
    fn_idx = fn_idx[order]

    function_ids = np.array([e.function_id for e in spec.entries])
    if use_variants:
        from repro.core.variable_input import sample_variants

        req_wids, req_rt, req_fam = sample_variants(variants, fn_idx, rng)
    else:
        workload_ids = np.array([e.workload_id for e in spec.entries])
        runtimes = np.array([e.runtime_ms for e in spec.entries])
        families = np.array([e.family for e in spec.entries])
        req_wids = workload_ids[fn_idx]
        req_rt = runtimes[fn_idx]
        req_fam = families[fn_idx]
    trace = RequestTrace(
        timestamps_s=times,
        workload_ids=req_wids,
        function_ids=function_ids[fn_idx],
        runtimes_ms=req_rt,
        families=req_fam,
    )
    if key is not None:
        cache.put(key, trace)
    return trace


def generate_from_second_matrix(
    per_second: np.ndarray,
    entries,
    seed: int | np.random.Generator = 0,
) -> RequestTrace:
    """Replay recorded per-second counts verbatim ("trace-seconds" mode).

    The future-work path of paper section 3.3: when the input trace
    reports per-second rates (Huawei) there is nothing to model below the
    minute -- each (function, second) cell's count is emitted inside its
    second at uniformly random sub-second offsets.

    Parameters
    ----------
    per_second:
        ``(n_entries, n_seconds)`` integer counts (e.g. a
        :meth:`~repro.traces.seconds.SecondTrace.second_window`).
    entries:
        Spec entries aligned with the matrix rows (workload metadata).
    """
    per_second = np.asarray(per_second)
    if per_second.ndim != 2:
        raise ValueError("per_second must be 2-D")
    if per_second.shape[0] != len(entries):
        raise ValueError(
            f"matrix rows ({per_second.shape[0]}) must match entries "
            f"({len(entries)})"
        )
    if np.any(per_second < 0):
        raise ValueError("counts must be non-negative")
    rng = np.random.default_rng(seed)
    n_entries, n_seconds = per_second.shape
    flat = per_second.astype(np.int64).ravel()
    total = int(flat.sum())
    if total == 0:
        raise ValueError("second matrix carries no requests")

    cell_idx = np.repeat(np.arange(flat.size), flat)
    fn_idx = cell_idx // n_seconds
    second_idx = cell_idx % n_seconds
    times = second_idx + rng.random(total)

    order = np.argsort(times, kind="stable")
    times = times[order]
    fn_idx = fn_idx[order]
    workload_ids = np.array([e.workload_id for e in entries])
    function_ids = np.array([e.function_id for e in entries])
    runtimes = np.array([e.runtime_ms for e in entries])
    families = np.array([e.family for e in entries])
    return RequestTrace(
        timestamps_s=times,
        workload_ids=workload_ids[fn_idx],
        function_ids=function_ids[fn_idx],
        runtimes_ms=runtimes[fn_idx],
        families=families[fn_idx],
    )


def generate_smirnov_trace(
    sample: SmirnovSample,
    rate_rps: float,
    seed: int | np.random.Generator = 0,
    *,
    arrival_mode: str = "poisson",
) -> RequestTrace:
    """Replay a Smirnov request sample at a constant target rate.

    The sample fixes *what* is invoked; this fixes *when*: requests are
    spread over ``n / rate_rps`` seconds with the chosen inter-arrival
    distribution (exponential / uniform / equidistant gaps at constant
    rate), matching the paper's description of the mode's replay step.
    """
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    rng = np.random.default_rng(seed)
    n = sample.n_requests
    horizon = n / rate_rps

    if arrival_mode == "poisson":
        gaps = rng.exponential(1.0 / rate_rps, size=n)
        times = np.cumsum(gaps) - gaps[0]
    elif arrival_mode == "uniform":
        times = np.sort(rng.random(n)) * horizon
    elif arrival_mode == "equidistant":
        times = np.arange(n) / rate_rps
    else:
        raise ValueError(f"unknown arrival mode {arrival_mode!r}")

    # Requests are already in (random) generation order; keep that pairing
    # between times and sampled workloads.
    return RequestTrace(
        timestamps_s=times,
        workload_ids=sample.workload_ids,
        function_ids=np.full(n, "", dtype=object),
        runtimes_ms=sample.mapped_runtime_ms,
        families=sample.families,
    )
