"""Supervised, open-loop, crash-tolerant replay service.

Promotes the single-process replay loop to a production-style load
*service* (ROADMAP item 1) built from three cooperating pieces:

- a **supervisor** that partitions the request stream into ordered,
  data-derived shards (:func:`repro.parallel.plan_shards` -- the
  partition depends on the trace alone, never on the worker count),
  spawns worker processes, monitors them through heartbeat messages on
  a control queue, and on a worker crash or hang deterministically
  restarts the affected shard from its last atomic checkpoint
  (:func:`repro.loadgen.resilience.save_checkpoint` NPZ files extended
  with per-shard fingerprints);
- a per-worker **constant-throughput open-loop dispatcher** in the wrk2
  mould: send times are scheduled from the *trace clock* (service epoch
  + trace timestamp / speed), never from response completion, so queueing
  delay shows up as measured latency instead of silently stretching the
  schedule (coordinated omission).  The dispatcher records
  intended-vs-actual dispatch lag per request and, under overload, sheds
  admissions explicitly (outcome ``shed`` in the standard taxonomy --
  never a silent drop);
- a **reconciliation pass** that merges the per-shard outcome ledgers
  and *proves* schedule coverage: every scheduled request is accounted
  for exactly once (ok/retried/error/timeout/shed/dropped) regardless of
  shard count, worker count, or injected crashes.  The proof is a
  machine-readable :class:`CoverageReport` carrying restart/heartbeat
  counters and a SHA-256 of the reconciled ledger.

Determinism contract
--------------------
For a fixed seed the reconciled ledger (per-request outcome + attempt
count) is byte-identical across ``workers`` values and across runs with
and without injected worker crashes, provided the backend's failure
behaviour is a pure function of each request (timestamp, workload, or
global index) rather than of its call history -- the property the
keyed :class:`ServiceFaultPlan` and the trace-time-clocked policies in
:mod:`repro.loadgen.resilience` are built around.  Requests completed
after a shard's last checkpoint are re-submitted on restart
(at-least-once delivery between checkpoints); their ledger entries are
recomputed identically.  Wall-clock dispatch-lag measurements are kept
*outside* the ledger for exactly this reason.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import signal
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.loadgen.replay import Backend, ReplayResult, _record_replay_telemetry
from repro.loadgen.requests import RequestTrace
from repro.loadgen.resilience import (
    OUTCOME_CODES,
    OUTCOMES,
    CircuitBreaker,
    RetryPolicy,
    load_checkpoint,
    save_checkpoint,
)
from repro.parallel import DEFAULT_MAX_SHARDS, plan_shards
from repro.telemetry import registry as _telemetry

__all__ = [
    "BreakerSpec",
    "CoverageReport",
    "CrashPoint",
    "ServiceConfig",
    "ServiceError",
    "ServiceFaultPlan",
    "ServiceInjectedError",
    "ServiceResult",
    "run_service",
]

#: Sentinel outcome code marking a ledger slot no shard has filled yet;
#: reconciliation proves none survive.  Distinct from every real code.
UNACCOUNTED = np.uint8(255)


class ServiceError(RuntimeError):
    """The service could not complete the schedule (config error, shard
    exceeding its restart budget, or the global service deadline)."""


class ServiceInjectedError(RuntimeError):
    """Fault injected by a :class:`ServiceFaultPlan` (always retryable)."""

    retryable = True


@dataclass(frozen=True)
class BreakerSpec:
    """Picklable recipe for one per-shard circuit breaker.

    The service builds a *fresh* breaker per shard (breaker state is
    trace-time-clocked and shard-local); passing a live
    :class:`~repro.loadgen.resilience.CircuitBreaker` across process
    boundaries would smuggle mutable state into workers.
    """

    failure_threshold: int = 5
    reset_timeout_s: float = 30.0
    half_open_probes: int = 1

    def make(self) -> CircuitBreaker:
        return CircuitBreaker(
            failure_threshold=self.failure_threshold,
            reset_timeout_s=self.reset_timeout_s,
            half_open_probes=self.half_open_probes,
        )


@dataclass(frozen=True)
class CrashPoint:
    """Kill or hang the worker owning ``shard`` at global request
    ``at_index`` -- once per service run (a sentinel file in the service
    directory makes the injection one-shot, so the restarted shard runs
    through).  ``mode`` is ``"sigkill"`` (hard crash) or ``"hang"``
    (stop heartbeating; the supervisor must detect and kill it)."""

    shard: int
    at_index: int
    mode: str = "sigkill"

    def __post_init__(self) -> None:
        if self.mode not in ("sigkill", "hang"):
            raise ValueError("mode must be 'sigkill' or 'hang'")


@dataclass(frozen=True)
class ServiceFaultPlan:
    """Deterministic fault injection at the *service* boundary.

    ``error_rate`` injects retryable :class:`ServiceInjectedError`
    failures keyed on ``(seed, global_request_index, attempt)`` -- a pure
    per-request function, so a shard resumed from a checkpoint sees
    exactly the failures an uninterrupted run would have (unlike the
    sequential draw stream of
    :class:`~repro.platform.faults.FaultyBackend`, which is only
    restart-stable for whole-trace replays).  ``worker_crash`` lists
    :class:`CrashPoint` process-level faults for supervision tests.
    """

    error_rate: float = 0.0
    seed: int = 0
    worker_crash: tuple[CrashPoint, ...] = ()

    def __post_init__(self) -> None:
        if not 0 <= self.error_rate <= 1:
            raise ValueError("error_rate must be in [0, 1]")
        object.__setattr__(
            self, "worker_crash",
            tuple(cp if isinstance(cp, CrashPoint) else CrashPoint(**cp)
                  for cp in self.worker_crash),
        )

    def should_error(self, index: int, attempt: int) -> bool:
        """Does attempt ``attempt`` of global request ``index`` fail?"""
        if self.error_rate <= 0:
            return False
        rng = np.random.default_rng([self.seed, index, attempt])
        return bool(rng.random() < self.error_rate)

    def crash_for_shard(self, shard: int) -> CrashPoint | None:
        for cp in self.worker_crash:
            if cp.shard == shard:
                return cp
        return None


@dataclass(frozen=True)
class ServiceConfig:
    """Supervision and dispatch knobs for :func:`run_service`.

    ``workers=0`` runs every shard inline in the calling process (no
    subprocesses) -- the shard plan, checkpoints, and reconciliation are
    identical, which is what makes the ledger worker-count-invariant
    testable cheaply.  ``speed`` follows :func:`repro.loadgen.replay.
    replay`: ``inf`` dispatches as fast as the backend accepts (no
    pacing, dispatch lag defined as 0); a finite value paces each send
    at ``epoch + timestamp/speed`` wall time.  ``max_lag_s`` is the
    admission bound: a request whose scheduled send time has already
    slipped past it is shed (recorded, counted, never silently dropped).
    """

    workers: int = 2
    speed: float = math.inf
    max_lag_s: float | None = None
    max_shards: int = DEFAULT_MAX_SHARDS
    min_per_shard: int = 1
    checkpoint_every: int = 1000
    heartbeat_every: int = 256
    heartbeat_timeout_s: float = 10.0
    max_restarts_per_shard: int = 3
    service_timeout_s: float = 300.0
    poll_interval_s: float = 0.02
    collect_records: bool = True
    start_method: str | None = None

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be non-negative")
        if self.speed <= 0:
            raise ValueError("speed must be positive")
        if self.max_lag_s is not None and self.max_lag_s <= 0:
            raise ValueError("max_lag_s must be positive")
        if self.checkpoint_every <= 0 or self.heartbeat_every <= 0:
            raise ValueError("checkpoint/heartbeat cadences must be "
                             "positive")
        if self.heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat_timeout_s must be positive")
        if self.max_restarts_per_shard < 0:
            raise ValueError("max_restarts_per_shard must be "
                             "non-negative")
        if self.service_timeout_s <= 0:
            raise ValueError("service_timeout_s must be positive")

    def resolved_start_method(self) -> str:
        if self.start_method is not None:
            return self.start_method
        import multiprocessing

        return ("fork" if "fork" in multiprocessing.get_all_start_methods()
                else "spawn")


# ----------------------------------------------------------------------
# coverage report
# ----------------------------------------------------------------------


@dataclass
class CoverageReport:
    """Machine-readable proof that the schedule was fully covered.

    ``accounted`` is True iff the shard bounds partition ``[0, n)``
    exactly and no ledger slot retains the :data:`UNACCOUNTED` sentinel
    -- i.e. every scheduled request carries exactly one outcome.
    ``ledger_sha256`` hashes the reconciled ``outcomes`` + ``attempts``
    bytes, giving crash/worker-count invariance a one-line check.
    """

    n_scheduled: int
    n_shards: int
    n_workers: int
    outcome_counts: dict[str, int]
    accounted: bool
    unaccounted: list[int]
    restarts: int
    heartbeat_misses: int
    shed_overload: int
    shed_breaker: int
    ledger_sha256: str
    per_shard: list[dict[str, int]]
    dispatch_lag_ms: dict[str, float]

    @property
    def ok(self) -> bool:
        return (self.accounted
                and sum(self.outcome_counts.values()) == self.n_scheduled)

    def as_dict(self) -> dict[str, Any]:
        return {
            "n_scheduled": self.n_scheduled,
            "n_shards": self.n_shards,
            "n_workers": self.n_workers,
            "outcome_counts": dict(self.outcome_counts),
            "accounted": self.accounted,
            "unaccounted": list(self.unaccounted),
            "restarts": self.restarts,
            "heartbeat_misses": self.heartbeat_misses,
            "shed_overload": self.shed_overload,
            "shed_breaker": self.shed_breaker,
            "ledger_sha256": self.ledger_sha256,
            "per_shard": [dict(s) for s in self.per_shard],
            "dispatch_lag_ms": dict(self.dispatch_lag_ms),
            "ok": self.ok,
        }

    def to_json(self, path: Path | str) -> None:
        Path(path).write_text(json.dumps(self.as_dict(), indent=2) + "\n")


@dataclass
class ServiceResult:
    """Everything one service run produced, reconciled in shard order."""

    n_requests: int
    wall_clock_s: float
    outcomes: np.ndarray = field(repr=False)
    attempts: np.ndarray = field(repr=False)
    lag_ms: np.ndarray = field(repr=False)
    records: list = field(repr=False)
    coverage: CoverageReport = field(repr=False)
    shard_bounds: list[tuple[int, int]] = field(repr=False)

    def outcome_counts(self) -> dict[str, int]:
        counts = np.bincount(self.outcomes, minlength=len(OUTCOMES))
        return {name: int(counts[i]) for i, name in enumerate(OUTCOMES)}

    def as_replay_result(self) -> ReplayResult:
        """The classic single-process result view, for the existing
        summary helpers (``outcome_summary``, ``record_outcome_metrics``,
        telemetry post-passes)."""
        return ReplayResult(
            n_requests=self.n_requests,
            wall_clock_s=self.wall_clock_s,
            records=self.records,
            outcomes=self.outcomes,
            attempts=self.attempts,
        )


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------


@dataclass
class _ShardWork:
    """Everything a worker needs; must stay picklable for spawn/fork."""

    timestamps: np.ndarray
    workload_ids: np.ndarray
    bounds: list[tuple[int, int]]
    epoch_wall_s: float
    speed: float
    max_lag_s: float | None
    checkpoint_every: int
    heartbeat_every: int
    collect_records: bool
    service_dir: str
    backend_factory: Callable[[], Backend]
    retry: RetryPolicy | None
    breaker_spec: BreakerSpec | None
    fault_plan: ServiceFaultPlan | None


def _shard_checkpoint_path(service_dir: str, shard: int) -> Path:
    return Path(service_dir) / f"shard-{shard:04d}.npz"


def _crash_sentinel(service_dir: str, shard: int) -> Path:
    return Path(service_dir) / f"shard-{shard:04d}.crashed"


def _maybe_trigger_crash(crash: CrashPoint | None, index: int,
                         service_dir: str) -> None:
    """One-shot process-level fault injection (SIGKILL or hang)."""
    if crash is None or index != crash.at_index:
        return
    sentinel = _crash_sentinel(service_dir, crash.shard)
    if sentinel.exists():
        return
    sentinel.touch()
    if crash.mode == "sigkill":  # pragma: no cover - dies before report
        os.kill(os.getpid(), signal.SIGKILL)
    # "hang": stop making progress (and heartbeating) long enough that
    # the supervisor's heartbeat timeout must fire and kill us.
    time.sleep(3600.0)  # pragma: no cover


def _sleep_until(target_wall_s: float, heartbeat, max_slice_s: float,
                 ) -> None:
    """Open-loop pacer: sleep toward an *absolute* wall-clock target.

    Sleeps in bounded slices so a paced worker keeps heartbeating even
    through sparse stretches of the trace; the loop re-reads the clock,
    so oversleep never accumulates across requests.
    """
    while True:
        # repro: allow-wall-clock (pacer: real time is the point)
        delay = target_wall_s - time.time()
        if delay <= 0:
            return
        time.sleep(min(delay, max_slice_s))
        if heartbeat is not None:
            heartbeat(-1)


def _run_shard(shard: int, work: _ShardWork, heartbeat=None,
               clock: Callable[[], float] = time.time,
               ) -> dict[str, Any]:
    """Dispatch one shard's requests; returns its outcome ledger slice.

    The per-request policy loop mirrors the single-process resilient
    replay (same taxonomy, same trace-time-clocked breaker, same
    ``(seed, index, attempt)``-keyed backoff) but schedules sends
    open-loop from the shared service epoch and additionally records
    dispatch lag and applies the overload admission bound.

    ``clock`` is the wall-clock source for lag accounting and overload
    shedding; injecting a virtual clock makes the admission path
    deterministic under test.
    """
    lo, hi = work.bounds[shard]
    n_shard = hi - lo
    ts_all = work.timestamps
    timestamps = ts_all[lo:hi].tolist()
    workload_ids = [str(w) for w in work.workload_ids[lo:hi].tolist()]
    fingerprint = (n_shard, float(timestamps[0]), float(timestamps[-1]))
    shard_fp = (shard, lo, hi)
    ckpt = _shard_checkpoint_path(work.service_dir, shard)

    outcomes = np.zeros(n_shard, dtype=np.uint8)
    attempts = np.zeros(n_shard, dtype=np.int32)
    lag_ms = np.zeros(n_shard, dtype=np.float64)
    start = 0
    resumed = 0
    if ckpt.exists():
        start, done_outcomes, done_attempts = load_checkpoint(
            ckpt, fingerprint, shard=shard_fp
        )
        outcomes[:start] = done_outcomes
        attempts[:start] = done_attempts
        resumed = 1

    backend = work.backend_factory()
    retry = work.retry
    breaker = (work.breaker_spec.make()
               if work.breaker_spec is not None else None)
    fault_plan = work.fault_plan
    crash = (fault_plan.crash_for_shard(shard)
             if fault_plan is not None else None)
    inject = (fault_plan is not None and fault_plan.error_rate > 0)

    code_ok = OUTCOME_CODES["ok"]
    code_retried = OUTCOME_CODES["retried"]
    code_error = OUTCOME_CODES["error"]
    code_timeout = OUTCOME_CODES["timeout"]
    code_shed = OUTCOME_CODES["shed"]
    code_dropped = OUTCOME_CODES["dropped"]
    max_attempts = retry.max_attempts if retry is not None else 1
    deadline_s = retry.deadline_s if retry is not None else None

    pace = np.isfinite(work.speed)
    speed = work.speed
    epoch = work.epoch_wall_s
    max_lag_s = work.max_lag_s
    hb_every = work.heartbeat_every
    hb_slice = 0.5
    invoke_at = getattr(backend, "invoke_at", None)
    shed_overload = 0
    shed_breaker = 0

    for j in range(start, n_shard):
        i = lo + j  # global request index: keys backoff + fault draws
        ts = timestamps[j]
        wid = workload_ids[j]
        if heartbeat is not None and j % hb_every == 0:
            heartbeat(j)
        _maybe_trigger_crash(crash, i, work.service_dir)
        scheduled_wall = None
        if pace:
            scheduled_wall = epoch + ts / speed
            _sleep_until(scheduled_wall, heartbeat, hb_slice)
            lag = clock() - scheduled_wall
            if lag > 0:
                lag_ms[j] = lag * 1e3
                if max_lag_s is not None and lag > max_lag_s:
                    # overload: shed the admission explicitly instead of
                    # letting the schedule silently slip (coordinated
                    # omission) -- the ledger records it as `shed`
                    outcomes[j] = code_shed
                    attempts[j] = 0
                    shed_overload += 1
                    continue
        if breaker is not None and not breaker.allow(ts):
            outcomes[j] = code_shed
            attempts[j] = 0
            shed_breaker += 1
        else:
            attempt = 0
            waited_s = 0.0
            while True:
                attempt += 1
                try:
                    if inject and fault_plan.should_error(i, attempt):
                        raise ServiceInjectedError(
                            f"injected service fault for request {i}"
                        )
                    if invoke_at is not None:
                        remaining = (None if deadline_s is None
                                     else deadline_s - waited_s)
                        invoke_at(ts, wid,
                                  scheduled_wall_s=scheduled_wall,
                                  deadline_s=remaining)
                    else:
                        backend.invoke(ts, wid)
                except Exception as exc:
                    if breaker is not None:
                        breaker.record_failure(ts)
                    if not getattr(exc, "retryable", True):
                        outcome = code_dropped
                        break
                    if attempt >= max_attempts:
                        outcome = code_error
                        break
                    backoff = retry.backoff_s(attempt, i)
                    if (deadline_s is not None
                            and waited_s + backoff > deadline_s):
                        outcome = code_timeout
                        break
                    waited_s += backoff
                    if pace and backoff > 0:
                        time.sleep(backoff / speed)
                    if breaker is not None and not breaker.allow(ts):
                        outcome = code_shed
                        shed_breaker += 1
                        break
                else:
                    if breaker is not None:
                        breaker.record_success(ts)
                    outcome = code_ok if attempt == 1 else code_retried
                    break
            outcomes[j] = outcome
            attempts[j] = attempt
        if (j + 1) % work.checkpoint_every == 0:
            save_checkpoint(ckpt, offset=j + 1, outcomes=outcomes,
                            attempts=attempts,
                            trace_fingerprint=fingerprint,
                            shard=shard_fp)

    save_checkpoint(ckpt, offset=n_shard, outcomes=outcomes,
                    attempts=attempts, trace_fingerprint=fingerprint,
                    shard=shard_fp)
    records = backend.drain() if work.collect_records else []
    return {
        "shard": shard,
        "outcomes": outcomes,
        "attempts": attempts,
        "lag_ms": lag_ms,
        "records": records,
        "shed_overload": shed_overload,
        "shed_breaker": shed_breaker,
        "resumed": resumed,
    }


def _worker_main(conn, work: _ShardWork) -> None:  # pragma: no cover
    """Worker process entry: serve shard assignments until ``None``.

    The worker talks to the supervisor over a *dedicated duplex pipe* --
    never a shared queue.  A SIGKILLed process can die mid-write while
    holding a shared queue's lock, poisoning every sibling; with
    per-worker pipes a dying worker can only corrupt its own channel,
    which the supervisor observes as EOF and handles as a crash.

    Runs only inside worker processes, so the in-process coverage gate
    cannot see it -- kept to the thinnest possible shim over
    :func:`_run_shard`, which the inline (``workers=0``) path measures.
    """
    while True:
        try:
            cmd = conn.recv()
        except (EOFError, OSError):
            return
        if cmd is None:
            return
        shard = int(cmd)

        def beat(progress: int, _shard: int = shard) -> None:
            try:
                conn.send(("hb", _shard, progress))
            except (BrokenPipeError, OSError):
                pass  # supervisor gone; the run is over either way

        try:
            payload = _run_shard(shard, work, heartbeat=beat)
        except Exception:
            conn.send(("fatal", shard, traceback.format_exc()))
            return
        conn.send(("done", shard, payload))


# ----------------------------------------------------------------------
# supervisor side
# ----------------------------------------------------------------------


@dataclass
class _WorkerState:
    proc: Any
    conn: Any
    shard: int | None = None
    last_hb_s: float = 0.0


def _prepare_service_dir(service_dir: Path, resume: bool) -> None:
    service_dir.mkdir(parents=True, exist_ok=True)
    if not resume:
        for p in service_dir.glob("shard-*.npz"):
            p.unlink()
    # crash sentinels are per-run fault-injection state, never resumed
    for p in service_dir.glob("shard-*.crashed"):
        p.unlink()


def _supervise(work: _ShardWork, config: ServiceConfig,
               stats: dict[str, int]) -> dict[int, dict[str, Any]]:
    """Run the worker fleet to completion; returns per-shard payloads.

    Shards are assigned explicitly over each worker's private control
    pipe (ownership is always unambiguous).  A dead, channel-broken, or
    heartbeat-silent worker forfeits its shard, which is re-queued
    (bounded by ``max_restarts_per_shard``) and handed to a replacement
    worker that resumes from the shard's last atomic checkpoint.
    """
    import multiprocessing
    from multiprocessing import connection as mp_connection

    ctx = multiprocessing.get_context(config.resolved_start_method())
    n_shards = len(work.bounds)
    queue: deque[int] = deque(range(n_shards))
    pending: set[int] = set(range(n_shards))
    results: dict[int, dict[str, Any]] = {}
    restarts: dict[int, int] = dict.fromkeys(range(n_shards), 0)
    workers: dict[int, _WorkerState] = {}
    next_worker_id = 0

    def spawn() -> None:
        nonlocal next_worker_id
        wid = next_worker_id
        next_worker_id += 1
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=_worker_main, args=(child_conn, work),
            daemon=True, name=f"repro-loadsvc-{wid}",
        )
        proc.start()
        child_conn.close()
        workers[wid] = _WorkerState(
            proc=proc, conn=parent_conn,
            # repro: allow-wall-clock (supervision liveness clock)
            last_hb_s=time.time(),
        )

    def retire(wid: int, st: _WorkerState, kill: bool) -> None:
        if kill and st.proc.is_alive():
            st.proc.kill()
        st.proc.join(timeout=2.0)
        if st.proc.is_alive():  # pragma: no cover - second-chance kill
            st.proc.kill()
            st.proc.join(timeout=2.0)
        st.conn.close()
        workers.pop(wid, None)

    def forfeit(wid: int, st: _WorkerState, reason: str) -> None:
        """Reclaim a failed worker's shard and re-queue it."""
        shard = st.shard
        st.shard = None
        if shard is None or shard in results:
            return
        stats["restarts"] += 1
        restarts[shard] += 1
        if restarts[shard] > config.max_restarts_per_shard:
            raise ServiceError(
                f"shard {shard} exceeded its restart budget "
                f"({config.max_restarts_per_shard}); last worker "
                f"{wid} ({reason})"
            )
        queue.append(shard)

    def assign(now: float) -> None:
        for st in workers.values():
            if not queue:
                return
            if st.shard is None and st.proc.is_alive():
                shard = queue.popleft()
                try:
                    st.conn.send(shard)
                except (BrokenPipeError, OSError):
                    queue.appendleft(shard)
                    continue  # liveness pass will retire this worker
                st.shard = shard
                st.last_hb_s = now

    def shutdown(kill: bool = False) -> None:
        for wid, st in list(workers.items()):
            if not kill:
                try:
                    st.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
            retire(wid, st, kill)

    for _ in range(min(config.workers, n_shards)):
        spawn()

    # repro: allow-wall-clock (supervision deadline)
    deadline = time.time() + config.service_timeout_s
    try:
        while pending:
            # repro: allow-wall-clock (supervision liveness clock)
            now = time.time()
            assign(now)
            conn_owner = {st.conn: wid for wid, st in workers.items()}
            ready = mp_connection.wait(list(conn_owner),
                                       timeout=config.poll_interval_s)
            # repro: allow-wall-clock (supervision liveness clock)
            now = time.time()
            for conn in ready:
                wid = conn_owner[conn]
                st = workers.get(wid)
                if st is None:  # pragma: no cover - retired this pass
                    continue
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    # died mid-message (e.g. SIGKILL during a send)
                    forfeit(wid, st, "control channel closed")
                    retire(wid, st, kill=True)
                    if pending:
                        spawn()
                    continue
                kind = msg[0]
                if kind == "hb":
                    st.last_hb_s = now
                elif kind == "done":
                    shard, payload = msg[1], msg[2]
                    results[shard] = payload
                    pending.discard(shard)
                    st.shard = None
                    st.last_hb_s = now
                elif kind == "fatal":
                    shard, tb = msg[1], msg[2]
                    stats["worker_errors"] += 1
                    st.shard = shard
                    forfeit(wid, st, f"worker error:\n{tb}")
                    retire(wid, st, kill=True)
                    if pending:
                        spawn()
            for wid, st in list(workers.items()):
                if not st.proc.is_alive():
                    forfeit(wid, st, f"exit code {st.proc.exitcode}")
                    retire(wid, st, kill=False)
                    if pending:
                        spawn()
                elif (st.shard is not None
                      and now - st.last_hb_s > config.heartbeat_timeout_s):
                    stats["heartbeat_misses"] += 1
                    forfeit(wid, st, "heartbeat timeout")
                    retire(wid, st, kill=True)
                    if pending:
                        spawn()
            if now > deadline and pending:
                raise ServiceError(
                    f"service deadline ({config.service_timeout_s:g}s) "
                    f"exceeded with shards {sorted(pending)} unfinished"
                )
    except Exception:
        shutdown(kill=True)
        raise
    shutdown()
    return results


# ----------------------------------------------------------------------
# reconciliation
# ----------------------------------------------------------------------


def _reconcile(trace: RequestTrace, bounds: list[tuple[int, int]],
               results: dict[int, dict[str, Any]],
               stats: dict[str, int], n_workers: int,
               wall_clock_s: float, pace: bool) -> ServiceResult:
    """Merge per-shard ledgers in shard order and prove coverage."""
    n = trace.n_requests
    outcomes = np.full(n, UNACCOUNTED, dtype=np.uint8)
    attempts = np.zeros(n, dtype=np.int32)
    lag_ms = np.zeros(n, dtype=np.float64)
    records: list = []
    per_shard: list[dict[str, int]] = []
    shed_overload = 0
    shed_breaker = 0
    partition_ok = bool(bounds) and bounds[0][0] == 0 and bounds[-1][1] == n
    prev_hi = 0
    for s, (lo, hi) in enumerate(bounds):
        partition_ok = partition_ok and lo == prev_hi and hi > lo
        prev_hi = hi
        payload = results.get(s)
        if payload is not None and payload["outcomes"].shape == (hi - lo,):
            outcomes[lo:hi] = payload["outcomes"]
            attempts[lo:hi] = payload["attempts"]
            lag_ms[lo:hi] = payload["lag_ms"]
            records.extend(payload["records"])
            shed_overload += payload["shed_overload"]
            shed_breaker += payload["shed_breaker"]
        per_shard.append({
            "shard": s, "lo": lo, "hi": hi,
            "n_requests": hi - lo,
            "resumed": int(payload["resumed"]) if payload else 0,
        })
    unaccounted = np.flatnonzero(outcomes == UNACCOUNTED)
    accounted = partition_ok and unaccounted.size == 0
    counts = np.bincount(outcomes[outcomes != UNACCOUNTED],
                         minlength=len(OUTCOMES))
    outcome_counts = {name: int(counts[i])
                      for i, name in enumerate(OUTCOMES)}
    digest = hashlib.sha256()
    digest.update(outcomes.tobytes())
    digest.update(attempts.tobytes())
    # "late" uses the same 1 ms threshold as
    # repro.platform.metrics.dispatch_lag_summary: every paced send has
    # *some* measurable lag, so lag > 0 would always read 100%
    late = lag_ms[lag_ms > 1.0]
    lag_summary = {
        "mean": float(lag_ms.mean()) if n else 0.0,
        "max": float(lag_ms.max()) if n else 0.0,
        "p99": float(np.percentile(lag_ms, 99)) if n else 0.0,
        "late_fraction": float(late.size / n) if n else 0.0,
    } if pace else {"mean": 0.0, "max": 0.0, "p99": 0.0,
                    "late_fraction": 0.0}
    coverage = CoverageReport(
        n_scheduled=n,
        n_shards=len(bounds),
        n_workers=n_workers,
        outcome_counts=outcome_counts,
        accounted=accounted,
        unaccounted=unaccounted[:64].tolist(),
        restarts=stats["restarts"],
        heartbeat_misses=stats["heartbeat_misses"],
        shed_overload=shed_overload,
        shed_breaker=shed_breaker,
        ledger_sha256=digest.hexdigest(),
        per_shard=per_shard,
        dispatch_lag_ms=lag_summary,
    )
    return ServiceResult(
        n_requests=n,
        wall_clock_s=wall_clock_s,
        outcomes=outcomes,
        attempts=attempts,
        lag_ms=lag_ms,
        records=records,
        coverage=coverage,
        shard_bounds=list(bounds),
    )


def _record_service_telemetry(reg, trace: RequestTrace,
                              result: ServiceResult,
                              config: ServiceConfig) -> None:
    cov = result.coverage
    reg.counter("service_shards_total",
                "shards dispatched by the load service"
                ).inc(cov.n_shards)
    reg.counter("service_restarts_total",
                "worker/shard restarts after crash or hang"
                ).inc(cov.restarts)
    reg.counter("service_heartbeat_misses_total",
                "workers killed for missing heartbeats"
                ).inc(cov.heartbeat_misses)
    reg.gauge("service_workers",
              "worker processes configured for the last service run"
              ).set(float(config.workers))
    if cov.shed_overload:
        reg.counter("service_shed_total",
                    "requests shed by the service, by reason",
                    labels={"reason": "overload"}).inc(cov.shed_overload)
    if cov.shed_breaker:
        reg.counter("service_shed_total",
                    "requests shed by the service, by reason",
                    labels={"reason": "breaker"}).inc(cov.shed_breaker)
    if np.isfinite(config.speed):
        reg.histogram(
            "service_dispatch_lag_ms",
            "intended-vs-actual dispatch lag per request (ms)",
        ).observe_many(result.lag_ms)
    # the classic replay post-pass (per-window counts, inter-arrival
    # histogram, outcome counters) applies unchanged to the merged view
    _record_replay_telemetry(reg, trace, result.as_replay_result(),
                             breaker=None)


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------


def run_service(
    trace: RequestTrace,
    backend_factory: Callable[[], Backend],
    *,
    service_dir: Path | str,
    config: ServiceConfig | None = None,
    retry: RetryPolicy | None = None,
    breaker: BreakerSpec | None = None,
    fault_plan: ServiceFaultPlan | None = None,
    resume: bool = False,
) -> ServiceResult:
    """Replay ``trace`` through the supervised open-loop load service.

    Parameters
    ----------
    trace:
        The generated request series (global schedule).
    backend_factory:
        Picklable zero-argument callable building one backend per shard
        *inside* the worker process (backends are never shipped across
        process boundaries).  Use a module-level function or
        ``functools.partial`` over one.
    service_dir:
        Directory for per-shard checkpoints, crash sentinels, and the
        coverage report; cleared of stale checkpoints unless
        ``resume=True``.
    config / retry / breaker / fault_plan:
        Supervision + dispatch knobs, per-request retry policy,
        per-shard circuit-breaker recipe, and deterministic fault
        injection -- see the respective classes.
    resume:
        Continue a previously killed service run from its per-shard
        checkpoints instead of starting every shard from scratch.

    Returns a :class:`ServiceResult` whose :class:`CoverageReport`
    proves (or refutes -- ``coverage.ok``) full schedule coverage.
    """
    config = config or ServiceConfig()
    service_dir = Path(service_dir)
    _prepare_service_dir(service_dir, resume)
    bounds = plan_shards(trace.n_requests, max_shards=config.max_shards,
                         min_per_shard=config.min_per_shard)
    if not bounds:
        raise ServiceError("trace contains no requests to schedule")
    # Small head start so paced workers come up before their first send
    # time; the epoch is shared by every worker (and every restart), so
    # the schedule is one global clock, not per-worker clocks.
    # repro: allow-wall-clock (service epoch anchors the open loop)
    epoch = time.time() + (0.2 if np.isfinite(config.speed) else 0.0)
    work = _ShardWork(
        timestamps=trace.timestamps_s,
        workload_ids=trace.workload_ids,
        bounds=bounds,
        epoch_wall_s=epoch,
        speed=config.speed,
        max_lag_s=config.max_lag_s,
        checkpoint_every=config.checkpoint_every,
        heartbeat_every=config.heartbeat_every,
        collect_records=config.collect_records,
        service_dir=str(service_dir),
        backend_factory=backend_factory,
        retry=retry,
        breaker_spec=breaker,
        fault_plan=fault_plan,
    )
    stats = {"restarts": 0, "heartbeat_misses": 0, "worker_errors": 0}
    t0 = time.perf_counter()  # repro: allow-wall-clock
    if config.workers == 0:
        results = {s: _run_shard(s, work) for s in range(len(bounds))}
    else:
        results = _supervise(work, config, stats)
    wall = time.perf_counter() - t0  # repro: allow-wall-clock
    result = _reconcile(trace, bounds, results, stats,
                        n_workers=config.workers, wall_clock_s=wall,
                        pace=bool(np.isfinite(config.speed)))
    result.coverage.to_json(service_dir / "coverage.json")
    reg = _telemetry.active()
    if reg is not None:
        _record_service_telemetry(reg, trace, result, config)
    return result
