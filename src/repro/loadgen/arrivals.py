"""Sub-minute arrival modelling (paper section 3.2.1.3).

Azure's trace reports per-minute counts only, so within each minute FaaSRail
models arrivals itself:

- ``poisson`` (default): the per-minute count is the intensity of a Poisson
  process for that minute -- exponentially distributed inter-arrival delays,
  emitted count random with the given mean.  This reproduces second-scale
  burstiness (the key takeaway of the Huawei per-second data).
- ``uniform``: emit exactly the specified count at uniformly random offsets.
- ``equidistant``: emit exactly the specified count, evenly spaced (the
  constant-rate profile of prior-work replay utilities).
"""

from __future__ import annotations

import numpy as np

__all__ = ["ARRIVAL_MODES", "minute_offsets", "cell_counts"]

ARRIVAL_MODES = ("poisson", "uniform", "equidistant")


def cell_counts(
    counts: np.ndarray,
    mode: str,
    rng: np.random.Generator,
) -> np.ndarray:
    """Realised number of requests per (function, minute) cell.

    ``poisson`` draws the emitted count from Poisson(count) -- the process
    interpretation; the deterministic modes emit the count verbatim.
    """
    counts = np.asarray(counts)
    if np.any(counts < 0):
        raise ValueError("counts must be non-negative")
    if mode == "poisson":
        return rng.poisson(counts).astype(np.int64)
    if mode in ("uniform", "equidistant"):
        return counts.astype(np.int64)
    raise ValueError(
        f"unknown arrival mode {mode!r}; expected one of {ARRIVAL_MODES}"
    )


def minute_offsets(
    realised: np.ndarray,
    mode: str,
    rng: np.random.Generator,
) -> np.ndarray:
    """Within-minute offsets (seconds, in [0, 60)) for every request.

    Parameters
    ----------
    realised:
        Flat array of per-cell realised counts (output of
        :func:`cell_counts`, flattened).
    mode:
        Arrival mode; see module docstring.

    Returns
    -------
    numpy.ndarray
        Concatenated offsets, cell-major: the first ``realised[0]`` values
        belong to cell 0, and so on.  Offsets within a cell are ascending.

    Notes
    -----
    For ``poisson``, arrivals conditioned on the realised count are i.i.d.
    uniform order statistics (the standard conditioning property of the
    Poisson process), so after :func:`cell_counts` has drawn the counts the
    offsets are sorted uniforms -- statistically identical to inserting
    Exp(lambda) delays, with no sequential loop.
    """
    realised = np.asarray(realised, dtype=np.int64).ravel()
    if np.any(realised < 0):
        raise ValueError("realised counts must be non-negative")
    total = int(realised.sum())
    if total == 0:
        return np.empty(0, dtype=np.float64)
    if mode not in ARRIVAL_MODES:
        raise ValueError(
            f"unknown arrival mode {mode!r}; expected one of {ARRIVAL_MODES}"
        )

    cell_of = np.repeat(np.arange(realised.size), realised)
    if mode == "equidistant":
        # k-th of n requests in a cell sits at (k + phase) / n of the
        # minute.  The phase is random per cell: spacing stays exactly
        # constant within each function's stream, but streams do not
        # synchronise with each other (a shared phase would pile every
        # once-a-minute function onto the same second and fabricate
        # aggregate bursts no constant-rate tool produces).
        starts = np.concatenate(([0], np.cumsum(realised)[:-1]))
        within = np.arange(total) - starts[cell_of]
        phase = rng.random(realised.size)[cell_of]
        offsets = (within + phase) / realised[cell_of] * 60.0
        return offsets

    u = rng.random(total) * 60.0
    # Sort within cells only: one lexsort on (cell, offset).
    order = np.lexsort((u, cell_of))
    return u[order]
