"""Resilience policies for the replay engine.

The replayer's client-side fault handling, mirroring what production FaaS
clients do when the platform misbehaves (see ``repro.platform.faults``
for making it misbehave on purpose):

- :class:`RetryPolicy` -- bounded retries with exponential backoff,
  deterministic per-request jitter, and a per-request deadline;
- :class:`CircuitBreaker` -- consecutive-failure tripping with timed
  half-open probing, clocked on *trace time* so simulator runs stay
  deterministic;
- :data:`OUTCOMES` -- the per-request outcome taxonomy the resilient
  replay path records;
- checkpoint save/load -- periodic NPZ snapshots of replay progress so a
  killed replay resumes from the last completed offset.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = [
    "OUTCOMES",
    "OUTCOME_CODES",
    "CircuitBreaker",
    "RetryPolicy",
    "load_checkpoint",
    "save_checkpoint",
]

#: Per-request outcomes, in code order (index == stored uint8 code).
#:
#: ok       -- succeeded on the first attempt
#: retried  -- succeeded after at least one retry
#: error    -- every allowed attempt failed with a retryable fault
#: timeout  -- the per-request deadline expired before success
#: shed     -- load-shed without submission (circuit breaker open)
#: dropped  -- failed with a non-retryable fault (no retry can help)
OUTCOMES = ("ok", "retried", "error", "timeout", "shed", "dropped")
OUTCOME_CODES = {name: np.uint8(i) for i, name in enumerate(OUTCOMES)}


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    ``backoff_s`` grows as ``base_delay_s * multiplier**(attempt-1)``,
    capped at ``max_delay_s`` and scaled by a jitter factor drawn
    uniformly from ``[1-jitter, 1+jitter]``.  The jitter draw is keyed on
    ``(seed, request_index, attempt)`` rather than on call history, so a
    replay resumed from a checkpoint sees exactly the delays an
    uninterrupted run would have.

    ``deadline_s`` bounds the *cumulative backoff* a single request may
    accrue; exceeding it yields outcome ``timeout``.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.1
    multiplier: float = 2.0
    max_delay_s: float = 10.0
    jitter: float = 0.1
    deadline_s: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1:
            raise ValueError("multiplier must be >= 1")
        if not 0 <= self.jitter < 1:
            raise ValueError("jitter must be in [0, 1)")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")

    def backoff_s(self, attempt: int, request_index: int = 0) -> float:
        """Delay before retry number ``attempt`` (1 = first retry)."""
        if attempt < 1:
            raise ValueError("attempt must be at least 1")
        delay = min(self.base_delay_s * self.multiplier ** (attempt - 1),
                    self.max_delay_s)
        if self.jitter > 0:
            rng = np.random.default_rng(
                [self.seed, request_index, attempt]
            )
            delay *= float(rng.uniform(1 - self.jitter, 1 + self.jitter))
        return delay


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing.

    States follow the classic pattern: *closed* (all traffic) trips to
    *open* after ``failure_threshold`` consecutive failures; after
    ``reset_timeout_s`` of trace time the breaker goes *half-open* and
    admits up to ``half_open_probes`` probe requests -- any probe failure
    re-opens it, ``half_open_probes`` successes close it.  While open,
    the replayer sheds load (outcome ``shed``) instead of submitting.

    The clock is the *request timestamp*, not the wall clock, so
    breaker behaviour is reproducible for simulated replays at infinite
    speed.  Transitions are recorded in :attr:`transitions` and, with a
    ``tracer`` attached, emitted as ``breaker_*`` platform events.
    """

    def __init__(self, failure_threshold: int = 5,
                 reset_timeout_s: float = 30.0,
                 half_open_probes: int = 1, *, tracer=None):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if reset_timeout_s <= 0:
            raise ValueError("reset_timeout_s must be positive")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be at least 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.half_open_probes = half_open_probes
        self.tracer = tracer
        self.state = "closed"
        self.transitions: list[tuple[float, str]] = []
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_successes = 0

    # ------------------------------------------------------------------
    def allow(self, now_s: float) -> bool:
        """May a request be submitted at trace time ``now_s``?"""
        if self.state == "open":
            if now_s - self._opened_at >= self.reset_timeout_s:
                self._transition("half-open", now_s)
                self._probe_successes = 0
                return True
            return False
        return True

    def record_success(self, now_s: float) -> None:
        self._consecutive_failures = 0
        if self.state == "half-open":
            self._probe_successes += 1
            if self._probe_successes >= self.half_open_probes:
                self._transition("closed", now_s)

    def record_failure(self, now_s: float) -> None:
        self._consecutive_failures += 1
        if self.state == "half-open":
            self._open(now_s)
        elif (self.state == "closed"
              and self._consecutive_failures >= self.failure_threshold):
            self._open(now_s)

    # ------------------------------------------------------------------
    def _open(self, now_s: float) -> None:
        self._opened_at = now_s
        self._consecutive_failures = 0
        self._transition("open", now_s)

    def _transition(self, state: str, now_s: float) -> None:
        self.state = state
        self.transitions.append((now_s, state))
        if self.tracer is not None:
            kind = "breaker_" + state.replace("-", "_")
            self.tracer.emit(now_s, kind, -1, "")


# ----------------------------------------------------------------------
# replay checkpoints
# ----------------------------------------------------------------------

_CKPT_VERSION = 1


def save_checkpoint(path: Path | str, *, offset: int,
                    outcomes: np.ndarray, attempts: np.ndarray,
                    trace_fingerprint: tuple[int, float, float],
                    shard: tuple[int, int, int] | None = None) -> None:
    """Atomically write replay progress through request ``offset``.

    The fingerprint (``n_requests, first_ts, last_ts``) guards a resume
    against a different trace.  ``shard`` -- ``(shard_index, lo, hi)``
    in global request coordinates -- extends the fingerprint for the
    supervised load service, whose per-shard checkpoints must never be
    resumed into a different shard of the same trace.  The write goes
    through a temp file + ``os.replace`` so a kill mid-write never
    leaves a torn checkpoint.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    n, first_ts, last_ts = trace_fingerprint
    arrays = dict(
        version=np.int64(_CKPT_VERSION),
        offset=np.int64(offset),
        outcomes=np.asarray(outcomes[:offset], dtype=np.uint8),
        attempts=np.asarray(attempts[:offset], dtype=np.int32),
        n_requests=np.int64(n),
        first_ts=np.float64(first_ts),
        last_ts=np.float64(last_ts),
    )
    if shard is not None:
        arrays["shard"] = np.asarray(shard, dtype=np.int64)
    with open(tmp, "wb") as fh:  # file handle: savez must not append .npz
        np.savez(fh, **arrays)
    os.replace(tmp, path)


def load_checkpoint(path: Path | str,
                    trace_fingerprint: tuple[int, float, float],
                    *, shard: tuple[int, int, int] | None = None,
                    ) -> tuple[int, np.ndarray, np.ndarray]:
    """Read a checkpoint, returning ``(offset, outcomes, attempts)``.

    Raises ValueError if the file does not match ``trace_fingerprint`` --
    resuming one trace's replay with another is almost certainly a bug.
    With ``shard`` given, the stored per-shard fingerprint must match it
    exactly; a whole-trace checkpoint (no stored shard) is likewise
    rejected, and vice versa.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        required = {"version", "offset", "outcomes", "attempts",
                    "n_requests", "first_ts", "last_ts"}
        missing = required - set(data.files)
        if missing:
            raise ValueError(
                f"{path}: not a replay checkpoint (missing "
                f"{sorted(missing)})"
            )
        if int(data["version"]) != _CKPT_VERSION:
            raise ValueError(
                f"{path}: checkpoint version {int(data['version'])} "
                f"unsupported (expected {_CKPT_VERSION})"
            )
        n, first_ts, last_ts = trace_fingerprint
        stored = (int(data["n_requests"]), float(data["first_ts"]),
                  float(data["last_ts"]))
        if stored != (n, first_ts, last_ts):
            raise ValueError(
                f"{path}: checkpoint was taken for a different trace "
                f"(fingerprint {stored}, trace {trace_fingerprint})"
            )
        stored_shard = (tuple(int(v) for v in data["shard"])
                        if "shard" in data.files else None)
        if shard is not None and stored_shard is None:
            raise ValueError(
                f"{path}: whole-trace checkpoint cannot resume shard "
                f"{shard}"
            )
        if stored_shard is not None and stored_shard != shard:
            raise ValueError(
                f"{path}: checkpoint belongs to shard {stored_shard}, "
                f"not {shard}"
            )
        offset = int(data["offset"])
        if not 0 <= offset <= n:
            raise ValueError(f"{path}: corrupt offset {offset}")
        outcomes = np.array(data["outcomes"], dtype=np.uint8)
        attempts = np.array(data["attempts"], dtype=np.int32)
        if outcomes.shape != (offset,) or attempts.shape != (offset,):
            raise ValueError(f"{path}: arrays do not match offset")
    return offset, outcomes, attempts
