"""The request-trace artifact produced by the online load generator."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.ecdf import EmpiricalCDF

__all__ = ["RequestTrace"]


@dataclass
class RequestTrace:
    """A time-ordered series of workload invocation requests.

    Attributes
    ----------
    timestamps_s:
        Ascending request times in seconds from experiment start.
    workload_ids:
        Workload id per request.
    function_ids:
        Originating (super-)Function id per request ("" where the mode has
        no Function notion, e.g. Smirnov samples).
    runtimes_ms:
        Expected warm runtime of each request's workload.
    families:
        Benchmark family per request.
    """

    timestamps_s: np.ndarray
    workload_ids: np.ndarray
    function_ids: np.ndarray
    runtimes_ms: np.ndarray
    families: np.ndarray

    def __post_init__(self) -> None:
        self.timestamps_s = np.asarray(self.timestamps_s, dtype=np.float64)
        n = self.timestamps_s.size
        if n == 0:
            raise ValueError("a request trace must contain requests")
        for name in ("workload_ids", "function_ids", "runtimes_ms",
                     "families"):
            arr = np.asarray(getattr(self, name))
            if arr.shape != (n,):
                raise ValueError(f"{name} must align with timestamps")
            setattr(self, name, arr)
        if not np.all(np.isfinite(self.timestamps_s)):
            raise ValueError("timestamps must be finite (no NaN/inf)")
        if np.any(np.diff(self.timestamps_s) < 0):
            raise ValueError("timestamps must be ascending")
        if np.any(self.timestamps_s < 0):
            raise ValueError("timestamps must be non-negative")
        self.runtimes_ms = np.asarray(self.runtimes_ms, dtype=np.float64)
        if np.any(~np.isfinite(self.runtimes_ms) | (self.runtimes_ms < 0)):
            raise ValueError("runtimes_ms must be finite and non-negative")

    # ------------------------------------------------------------------
    @property
    def n_requests(self) -> int:
        return int(self.timestamps_s.size)

    @property
    def duration_s(self) -> float:
        return float(self.timestamps_s[-1])

    def per_second_rate(self, horizon_s: float | None = None) -> np.ndarray:
        """Requests per second, binned at 1 s."""
        horizon = horizon_s if horizon_s is not None else self.duration_s + 1
        bins = np.arange(0, int(np.ceil(horizon)) + 1)
        hist, _ = np.histogram(self.timestamps_s, bins=bins)
        return hist

    def per_minute_rate(self, horizon_s: float | None = None) -> np.ndarray:
        """Requests per minute, binned at 60 s."""
        horizon = horizon_s if horizon_s is not None else self.duration_s + 1
        n_minutes = int(np.ceil(horizon / 60.0))
        bins = np.arange(0, (n_minutes + 1) * 60, 60)
        hist, _ = np.histogram(self.timestamps_s, bins=bins)
        return hist

    def duration_cdf(self) -> EmpiricalCDF:
        """CDF of the requests' expected execution durations."""
        return EmpiricalCDF.from_samples(self.runtimes_ms)

    def family_shares(self) -> dict[str, float]:
        names, counts = np.unique(self.families, return_counts=True)
        return {str(f): float(c) / self.n_requests
                for f, c in zip(names, counts)}

    def slice_time(self, start_s: float, stop_s: float) -> RequestTrace:
        """Requests with ``start_s <= t < stop_s``."""
        if not 0 <= start_s < stop_s:
            raise ValueError("need 0 <= start < stop")
        lo = np.searchsorted(self.timestamps_s, start_s, side="left")
        hi = np.searchsorted(self.timestamps_s, stop_s, side="left")
        if hi <= lo:
            raise ValueError("slice contains no requests")
        sl = slice(lo, hi)
        return RequestTrace(
            timestamps_s=self.timestamps_s[sl],
            workload_ids=self.workload_ids[sl],
            function_ids=self.function_ids[sl],
            runtimes_ms=self.runtimes_ms[sl],
            families=self.families[sl],
        )
