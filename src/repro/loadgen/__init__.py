"""Online load generator: arrivals, request traces, replay engine."""

from repro.loadgen.arrivals import ARRIVAL_MODES, cell_counts, minute_offsets
from repro.loadgen.generator import (
    generate_from_second_matrix,
    generate_request_trace,
    generate_smirnov_trace,
)
from repro.loadgen.io import (
    load_request_trace_csv,
    load_request_trace_npz,
    save_request_trace_csv,
    save_request_trace_npz,
)
from repro.loadgen.replay import Backend, ReplayResult, replay
from repro.loadgen.requests import RequestTrace
from repro.loadgen.resilience import (
    OUTCOMES,
    CircuitBreaker,
    RetryPolicy,
    load_checkpoint,
    save_checkpoint,
)
from repro.loadgen.service import (
    BreakerSpec,
    CoverageReport,
    CrashPoint,
    ServiceConfig,
    ServiceError,
    ServiceFaultPlan,
    ServiceResult,
    run_service,
)

__all__ = [
    "ARRIVAL_MODES",
    "Backend",
    "BreakerSpec",
    "CircuitBreaker",
    "CoverageReport",
    "CrashPoint",
    "OUTCOMES",
    "ReplayResult",
    "RequestTrace",
    "RetryPolicy",
    "ServiceConfig",
    "ServiceError",
    "ServiceFaultPlan",
    "ServiceResult",
    "cell_counts",
    "generate_from_second_matrix",
    "generate_request_trace",
    "generate_smirnov_trace",
    "load_checkpoint",
    "load_request_trace_csv",
    "load_request_trace_npz",
    "minute_offsets",
    "replay",
    "run_service",
    "save_checkpoint",
    "save_request_trace_csv",
    "save_request_trace_npz",
]
