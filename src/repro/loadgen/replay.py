"""Replay engine: drive a request trace against a backend FaaS system.

The backend protocol is deliberately tiny so both the discrete-event
simulator (:mod:`repro.platform`) and the in-process live executor satisfy
it; the replayer itself is backend-agnostic, as in the paper's design
("replay such specifications against a backend FaaS system").

Two execution paths share one entry point:

- the **fast path** (no resilience options) is a bare submission loop,
  tuned for simulator throughput -- per-request type conversions are
  hoisted out of the loop;
- the **resilient path** (any of ``retry`` / ``breaker`` /
  ``checkpoint_path`` set) catches per-invocation failures, applies the
  :class:`~repro.loadgen.resilience.RetryPolicy` and
  :class:`~repro.loadgen.resilience.CircuitBreaker`, records a
  per-request outcome from the
  :data:`~repro.loadgen.resilience.OUTCOMES` taxonomy, and periodically
  checkpoints progress so a killed replay can resume.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Protocol

import numpy as np

from repro.loadgen.requests import RequestTrace
from repro.loadgen.resilience import (
    OUTCOME_CODES,
    OUTCOMES,
    CircuitBreaker,
    RetryPolicy,
    load_checkpoint,
    save_checkpoint,
)

__all__ = ["Backend", "ReplayResult", "replay"]


class Backend(Protocol):
    """What the replayer needs from a FaaS system."""

    def invoke(self, timestamp_s: float, workload_id: str) -> None:
        """Submit one request arriving at ``timestamp_s``."""

    def drain(self) -> list:
        """Finish all outstanding work and return per-request records."""


@dataclass
class ReplayResult:
    """Outcome of one replay run.

    ``outcomes`` and ``attempts`` are populated only by the resilient
    path: one outcome code (index into
    :data:`~repro.loadgen.resilience.OUTCOMES`) and one attempt count per
    trace request, in trace order.
    """

    n_requests: int
    wall_clock_s: float
    records: list
    outcomes: np.ndarray | None = field(default=None, repr=False)
    attempts: np.ndarray | None = field(default=None, repr=False)

    def latencies_ms(self) -> np.ndarray:
        """End-to-end latency per request, for records exposing one."""
        vals = [r.latency_ms for r in self.records if hasattr(r, "latency_ms")]
        if not vals:
            raise ValueError("backend records carry no latencies")
        return np.array(vals)

    def cold_start_fraction(self) -> float:
        flags = [r.cold for r in self.records if hasattr(r, "cold")]
        if not flags:
            raise ValueError("backend records carry no cold-start flags")
        return float(np.mean(flags))

    def outcome_counts(self) -> dict[str, int]:
        """Requests per outcome; values sum to ``n_requests``."""
        if self.outcomes is None:
            raise ValueError(
                "no outcomes recorded; replay with retry/breaker/"
                "checkpointing to get the outcome taxonomy"
            )
        counts = np.bincount(self.outcomes, minlength=len(OUTCOMES))
        return {name: int(counts[i]) for i, name in enumerate(OUTCOMES)}

    def retry_counts(self) -> np.ndarray:
        """Attempts made per request (0 for shed requests)."""
        if self.attempts is None:
            raise ValueError("no attempt counts recorded")
        return self.attempts


def replay(
    trace: RequestTrace,
    backend: Backend,
    *,
    speed: float = float("inf"),
    retry: RetryPolicy | None = None,
    breaker: CircuitBreaker | None = None,
    checkpoint_path: Path | str | None = None,
    checkpoint_every: int = 1000,
    resume: bool = False,
) -> ReplayResult:
    """Feed every request of ``trace`` to ``backend`` in timestamp order.

    Parameters
    ----------
    trace:
        The generated request series.
    backend:
        Simulator or live executor.
    speed:
        Wall-clock pacing factor: ``inf`` (default) submits as fast as the
        backend accepts (correct for simulators, which keep their own
        virtual clock); ``1.0`` paces submissions in real time; ``60`` runs
        a 1-hour trace in a minute.  Only finite speeds sleep.
    retry:
        Per-request retry policy.  Failed invocations are re-submitted at
        their *original* timestamp (backend clocks stay monotone); the
        backoff delay counts against the policy deadline and, at finite
        speed, is slept scaled by ``speed``.
    breaker:
        Circuit breaker consulted before every submission; requests
        arriving while it is open are shed, not submitted.
    checkpoint_path:
        When set, replay progress is checkpointed here every
        ``checkpoint_every`` completed requests (and once at the end).
        With ``resume=True`` and an existing checkpoint, the replay
        continues from the stored offset instead of request 0; the
        backend must still hold its earlier state (a live deployment, or
        the same in-process backend object).  Requests completed after
        the last checkpoint but before a kill are re-submitted on resume
        (at-least-once delivery between checkpoints).
    resume:
        Continue from ``checkpoint_path`` if it exists (no-op when it
        does not).

    Any of ``retry`` / ``breaker`` / ``checkpoint_path`` switches to the
    resilient path: invocation failures no longer propagate, and the
    result carries per-request ``outcomes`` and ``attempts``.
    """
    if speed <= 0:
        raise ValueError("speed must be positive")
    if checkpoint_every <= 0:
        raise ValueError("checkpoint_every must be positive")
    resilient = (retry is not None or breaker is not None
                 or checkpoint_path is not None)
    # hoist per-request conversions out of the hot loop: one vectorised
    # pass instead of n_requests float()/str() calls
    timestamps = trace.timestamps_s.tolist()
    workload_ids = [str(w) for w in trace.workload_ids.tolist()]
    if resilient:
        return _replay_resilient(
            trace, backend, timestamps, workload_ids, speed=speed,
            retry=retry, breaker=breaker, checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every, resume=resume,
        )
    t_start = time.perf_counter()
    if np.isfinite(speed):
        for ts, wid in zip(timestamps, workload_ids):
            delay = t_start + ts / speed - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            backend.invoke(ts, wid)
    else:
        invoke = backend.invoke
        for ts, wid in zip(timestamps, workload_ids):
            invoke(ts, wid)
    records = backend.drain()
    return ReplayResult(
        n_requests=trace.n_requests,
        wall_clock_s=time.perf_counter() - t_start,
        records=records,
    )


def _replay_resilient(
    trace: RequestTrace,
    backend: Backend,
    timestamps: list[float],
    workload_ids: list[str],
    *,
    speed: float,
    retry: RetryPolicy | None,
    breaker: CircuitBreaker | None,
    checkpoint_path: Path | str | None,
    checkpoint_every: int,
    resume: bool,
) -> ReplayResult:
    n = trace.n_requests
    fingerprint = (n, float(timestamps[0]), float(timestamps[-1]))
    outcomes = np.zeros(n, dtype=np.uint8)
    attempts = np.zeros(n, dtype=np.int32)
    start = 0
    if (resume and checkpoint_path is not None
            and Path(checkpoint_path).exists()):
        start, done_outcomes, done_attempts = load_checkpoint(
            checkpoint_path, fingerprint
        )
        outcomes[:start] = done_outcomes
        attempts[:start] = done_attempts

    code_ok = OUTCOME_CODES["ok"]
    code_retried = OUTCOME_CODES["retried"]
    code_error = OUTCOME_CODES["error"]
    code_timeout = OUTCOME_CODES["timeout"]
    code_shed = OUTCOME_CODES["shed"]
    code_dropped = OUTCOME_CODES["dropped"]
    max_attempts = retry.max_attempts if retry is not None else 1
    pace = np.isfinite(speed)
    t_start = time.perf_counter()

    for i in range(start, n):
        ts = timestamps[i]
        wid = workload_ids[i]
        if pace:
            delay = t_start + ts / speed - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
        if breaker is not None and not breaker.allow(ts):
            outcomes[i] = code_shed
            attempts[i] = 0
        else:
            attempt = 0
            waited_s = 0.0
            while True:
                attempt += 1
                try:
                    backend.invoke(ts, wid)
                except Exception as exc:
                    if breaker is not None:
                        breaker.record_failure(ts)
                    if not getattr(exc, "retryable", True):
                        outcome = code_dropped
                        break
                    if attempt >= max_attempts:
                        outcome = code_error
                        break
                    backoff = retry.backoff_s(attempt, i)
                    if (retry.deadline_s is not None
                            and waited_s + backoff > retry.deadline_s):
                        outcome = code_timeout
                        break
                    waited_s += backoff
                    if pace and backoff > 0:
                        time.sleep(backoff / speed)
                    if breaker is not None and not breaker.allow(ts):
                        outcome = code_shed
                        break
                else:
                    if breaker is not None:
                        breaker.record_success(ts)
                    outcome = code_ok if attempt == 1 else code_retried
                    break
            outcomes[i] = outcome
            attempts[i] = attempt
        if checkpoint_path is not None and (i + 1) % checkpoint_every == 0:
            save_checkpoint(checkpoint_path, offset=i + 1,
                            outcomes=outcomes, attempts=attempts,
                            trace_fingerprint=fingerprint)

    if checkpoint_path is not None:
        save_checkpoint(checkpoint_path, offset=n, outcomes=outcomes,
                        attempts=attempts, trace_fingerprint=fingerprint)
    records = backend.drain()
    return ReplayResult(
        n_requests=n,
        wall_clock_s=time.perf_counter() - t_start,
        records=records,
        outcomes=outcomes,
        attempts=attempts,
    )
