"""Replay engine: drive a request trace against a backend FaaS system.

The backend protocol is deliberately tiny so both the discrete-event
simulator (:mod:`repro.platform`) and the in-process live executor satisfy
it; the replayer itself is backend-agnostic, as in the paper's design
("replay such specifications against a backend FaaS system").

Two execution paths share one entry point:

- the **fast path** (no resilience options) is a bare submission loop,
  tuned for simulator throughput -- per-request type conversions are
  hoisted out of the loop;
- the **resilient path** (any of ``retry`` / ``breaker`` /
  ``checkpoint_path`` set) catches per-invocation failures, applies the
  :class:`~repro.loadgen.resilience.RetryPolicy` and
  :class:`~repro.loadgen.resilience.CircuitBreaker`, records a
  per-request outcome from the
  :data:`~repro.loadgen.resilience.OUTCOMES` taxonomy, and periodically
  checkpoints progress so a killed replay can resume.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Protocol

import numpy as np

from repro.loadgen.requests import RequestTrace
from repro.platform.simulator_vec import iter_trace_slabs
from repro.loadgen.resilience import (
    OUTCOME_CODES,
    OUTCOMES,
    CircuitBreaker,
    RetryPolicy,
    load_checkpoint,
    save_checkpoint,
)
from repro.telemetry import registry as _telemetry

__all__ = ["Backend", "ReplayResult", "replay"]

#: Trace-time bucket (seconds) for the per-window request-count metric.
TELEMETRY_WINDOW_S = 60.0


def _record_replay_telemetry(reg, trace: RequestTrace,
                             result: ReplayResult,
                             breaker: CircuitBreaker | None) -> None:
    """Fold one finished replay into the registry.

    Everything here is vectorised array work over the already-known
    trace, so the replay hot loop itself stays untouched: per-window
    request counts, the inter-arrival histogram, outcome/retry/breaker
    counters.
    """
    ts = trace.timestamps_s
    reg.counter("replay_requests_total",
                "requests submitted to a backend").inc(result.n_requests)
    reg.gauge("replay_wall_clock_s",
              "wall-clock seconds of the last replay"
              ).set(result.wall_clock_s)
    reg.gauge("replay_horizon_s",
              "trace-time horizon of the last replay").set(float(ts[-1]))
    if ts.size > 1:
        # deterministic stride subsample caps the histogram pass at
        # 8-16Ki gaps (DKW noise ~1.5%), keeping huge replays inside the
        # <5% telemetry budget the perf suite pins; gathering the strided
        # gap endpoints directly also spares a full-array diff
        stride = max(1, (ts.size - 1) >> 13)
        lo = np.arange(0, ts.size - 1, stride)
        reg.histogram(
            "replay_interarrival_s",
            "inter-arrival gaps of the replayed trace (seconds; stride-"
            "subsampled beyond 8192 requests)",
        ).observe_many(ts[lo + 1] - ts[lo])
    # timestamps are ascending (RequestTrace invariant), so per-window
    # counts are a searchsorted over the ~horizon/window boundaries --
    # O(windows log n), not a full-array pass
    n_windows = int(ts[-1] // TELEMETRY_WINDOW_S) + 1
    cuts = np.searchsorted(
        ts, np.arange(1, n_windows) * TELEMETRY_WINDOW_S, side="left"
    )
    windows = np.diff(np.concatenate(([0], cuts, [ts.size])))
    reg.histogram(
        "replay_window_requests",
        f"requests per {TELEMETRY_WINDOW_S:.0f}s trace-time window",
        edges=np.array([1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6]),
    ).observe_many(windows)
    if result.outcomes is not None:
        counts = np.bincount(result.outcomes, minlength=len(OUTCOMES))
        for name, count in zip(OUTCOMES, counts):
            if count:
                # repro: allow-telemetry-hot-loop (bounded: one
                # labelled counter per outcome kind, <= 6 iterations)
                reg.counter(
                    "replay_outcomes_total",
                    "resilient-replay requests per outcome",
                    labels={"outcome": name},
                ).inc(int(count))
    if result.attempts is not None:
        retried = result.attempts[result.attempts > 1]
        if retried.size:
            reg.counter("replay_retries_total",
                        "extra attempts beyond each request's first"
                        ).inc(int(retried.sum() - retried.size))
    if breaker is not None:
        reg.counter("replay_breaker_transitions_total",
                    "circuit-breaker state transitions"
                    ).inc(len(breaker.transitions))


class Backend(Protocol):
    """What the replayer needs from a FaaS system."""

    def invoke(self, timestamp_s: float, workload_id: str) -> None:
        """Submit one request arriving at ``timestamp_s``."""

    def drain(self) -> list:
        """Finish all outstanding work and return per-request records."""


@dataclass
class ReplayResult:
    """Outcome of one replay run.

    ``outcomes`` and ``attempts`` are populated only by the resilient
    path: one outcome code (index into
    :data:`~repro.loadgen.resilience.OUTCOMES`) and one attempt count per
    trace request, in trace order.
    """

    n_requests: int
    wall_clock_s: float
    records: list
    outcomes: np.ndarray | None = field(default=None, repr=False)
    attempts: np.ndarray | None = field(default=None, repr=False)

    def latencies_ms(self) -> np.ndarray:
        """End-to-end latency per request, for records exposing one."""
        vals = [r.latency_ms for r in self.records if hasattr(r, "latency_ms")]
        if not vals:
            raise ValueError("backend records carry no latencies")
        return np.array(vals)

    def cold_start_fraction(self) -> float:
        flags = [r.cold for r in self.records if hasattr(r, "cold")]
        if not flags:
            raise ValueError("backend records carry no cold-start flags")
        return float(np.mean(flags))

    def outcome_counts(self) -> dict[str, int]:
        """Requests per outcome; values sum to ``n_requests``."""
        if self.outcomes is None:
            raise ValueError(
                "no outcomes recorded; replay with retry/breaker/"
                "checkpointing to get the outcome taxonomy"
            )
        counts = np.bincount(self.outcomes, minlength=len(OUTCOMES))
        return {name: int(counts[i]) for i, name in enumerate(OUTCOMES)}

    def retry_counts(self) -> np.ndarray:
        """Attempts made per request (0 for shed requests)."""
        if self.attempts is None:
            raise ValueError("no attempt counts recorded")
        return self.attempts


def replay(
    trace: RequestTrace,
    backend: Backend,
    *,
    speed: float = math.inf,
    retry: RetryPolicy | None = None,
    breaker: CircuitBreaker | None = None,
    checkpoint_path: Path | str | None = None,
    checkpoint_every: int = 1000,
    resume: bool = False,
    drift=None,
    chunk_rows: int | None = None,
) -> ReplayResult:
    """Feed every request of ``trace`` to ``backend`` in timestamp order.

    Parameters
    ----------
    trace:
        The generated request series.
    backend:
        Simulator or live executor.
    speed:
        Wall-clock pacing factor: ``inf`` (default) submits as fast as the
        backend accepts (correct for simulators, which keep their own
        virtual clock); ``1.0`` paces submissions in real time; ``60`` runs
        a 1-hour trace in a minute.  Only finite speeds sleep.
    retry:
        Per-request retry policy.  Failed invocations are re-submitted at
        their *original* timestamp (backend clocks stay monotone); the
        backoff delay counts against the policy deadline and, at finite
        speed, is slept scaled by ``speed``.
    breaker:
        Circuit breaker consulted before every submission; requests
        arriving while it is open are shed, not submitted.
    checkpoint_path:
        When set, replay progress is checkpointed here every
        ``checkpoint_every`` completed requests (and once at the end).
        With ``resume=True`` and an existing checkpoint, the replay
        continues from the stored offset instead of request 0; the
        backend must still hold its earlier state (a live deployment, or
        the same in-process backend object).  Requests completed after
        the last checkpoint but before a kill are re-submitted on resume
        (at-least-once delivery between checkpoints).
    resume:
        Continue from ``checkpoint_path`` if it exists (no-op when it
        does not).
    chunk_rows:
        When set (infinite speed only), the trace is sliced into slabs
        of at most this many requests and submitted via the backend's
        ``invoke_chunked`` (falling back to per-slab ``invoke_many``),
        bounding the working set a batched backend touches at once --
        the array simulator carries its bulk state across slab
        boundaries, so results are identical to one-shot submission.
        Ignored on the paced and resilient paths, which are per-request
        anyway.
    drift:
        Optional :class:`~repro.telemetry.drift.DriftMonitor` fed the
        replayed requests' expected durations in arrival order, so
        representativeness regressions (e.g. a mis-mapped workload pool)
        emit ``drift_warning`` events during the run.  Paced (finite
        ``speed``) and resilient replays observe request-by-request; the
        infinite-speed fast path observes in one vectorised pass so the
        bare submission loop stays untouched.

    Any of ``retry`` / ``breaker`` / ``checkpoint_path`` switches to the
    resilient path: invocation failures no longer propagate, and the
    result carries per-request ``outcomes`` and ``attempts``.

    When telemetry is enabled (:func:`repro.telemetry.enable`), every
    replay also folds per-window request counts, the inter-arrival
    histogram, and outcome / retry / breaker counters into the active
    registry -- all as vectorised post-passes, never per-request work,
    so telemetry-on output is byte-identical to telemetry-off output.
    """
    if speed <= 0:
        raise ValueError("speed must be positive")
    if checkpoint_every <= 0:
        raise ValueError("checkpoint_every must be positive")
    resilient = (retry is not None or breaker is not None
                 or checkpoint_path is not None)
    # hoist per-request conversions out of the hot loop: one vectorised
    # pass instead of n_requests float()/str() calls
    timestamps = trace.timestamps_s.tolist()
    workload_ids = [str(w) for w in trace.workload_ids.tolist()]
    if resilient:
        result = _replay_resilient(
            trace, backend, timestamps, workload_ids, speed=speed,
            retry=retry, breaker=breaker, checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every, resume=resume, drift=drift,
        )
        reg = _telemetry.active()
        if reg is not None:
            _record_replay_telemetry(reg, trace, result, breaker)
        return result
    t_start = time.perf_counter()  # repro: allow-wall-clock
    if np.isfinite(speed):
        runtimes = trace.runtimes_ms.tolist() if drift is not None else None
        for i, (ts, wid) in enumerate(zip(timestamps, workload_ids)):
            # repro: allow-wall-clock (pacer: real time is the point)
            delay = t_start + ts / speed - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            backend.invoke(ts, wid)
            if runtimes is not None:
                drift.observe(runtimes[i], ts)
    else:
        # Batched dispatch when the backend supports it (the array-native
        # simulator and any decorator that *explicitly* implements it).
        # Looked up on the type, not the instance: a decorator that only
        # forwards attribute access (e.g. FaultyBackend.__getattr__) must
        # not let the batch bypass its per-request invoke() logic.
        batch_invoke = getattr(type(backend), "invoke_many", None)
        chunked_invoke = getattr(type(backend), "invoke_chunked", None)
        if chunk_rows is not None and chunked_invoke is not None:
            chunked_invoke(
                backend,
                iter_trace_slabs(
                    trace.timestamps_s, workload_ids,
                    chunk_rows=chunk_rows,
                ),
            )
        elif chunk_rows is not None and batch_invoke is not None:
            for slab_ts, slab_wids in iter_trace_slabs(
                trace.timestamps_s, workload_ids, chunk_rows=chunk_rows
            ):
                batch_invoke(backend, slab_ts, slab_wids)
        elif batch_invoke is not None:
            batch_invoke(backend, trace.timestamps_s, workload_ids)
        else:
            invoke = backend.invoke
            for ts, wid in zip(timestamps, workload_ids):
                invoke(ts, wid)
        if drift is not None:
            drift.observe_many(trace.runtimes_ms, trace.timestamps_s)
    if drift is not None:
        drift.flush()
    records = backend.drain()
    result = ReplayResult(
        n_requests=trace.n_requests,
        wall_clock_s=time.perf_counter() - t_start,  # repro: allow-wall-clock
        records=records,
    )
    reg = _telemetry.active()
    if reg is not None:
        _record_replay_telemetry(reg, trace, result, breaker=None)
    return result


def _replay_resilient(
    trace: RequestTrace,
    backend: Backend,
    timestamps: list[float],
    workload_ids: list[str],
    *,
    speed: float,
    retry: RetryPolicy | None,
    breaker: CircuitBreaker | None,
    checkpoint_path: Path | str | None,
    checkpoint_every: int,
    resume: bool,
    drift=None,
) -> ReplayResult:
    n = trace.n_requests
    runtimes = trace.runtimes_ms.tolist() if drift is not None else None
    fingerprint = (n, float(timestamps[0]), float(timestamps[-1]))
    outcomes = np.zeros(n, dtype=np.uint8)
    attempts = np.zeros(n, dtype=np.int32)
    start = 0
    if (resume and checkpoint_path is not None
            and Path(checkpoint_path).exists()):
        start, done_outcomes, done_attempts = load_checkpoint(
            checkpoint_path, fingerprint
        )
        outcomes[:start] = done_outcomes
        attempts[:start] = done_attempts

    code_ok = OUTCOME_CODES["ok"]
    code_retried = OUTCOME_CODES["retried"]
    code_error = OUTCOME_CODES["error"]
    code_timeout = OUTCOME_CODES["timeout"]
    code_shed = OUTCOME_CODES["shed"]
    code_dropped = OUTCOME_CODES["dropped"]
    max_attempts = retry.max_attempts if retry is not None else 1
    pace = np.isfinite(speed)
    t_start = time.perf_counter()  # repro: allow-wall-clock

    for i in range(start, n):
        ts = timestamps[i]
        wid = workload_ids[i]
        if pace:
            # repro: allow-wall-clock (pacer: real time is the point)
            delay = t_start + ts / speed - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
        if breaker is not None and not breaker.allow(ts):
            outcomes[i] = code_shed
            attempts[i] = 0
        else:
            attempt = 0
            waited_s = 0.0
            while True:
                attempt += 1
                try:
                    backend.invoke(ts, wid)
                except Exception as exc:
                    if breaker is not None:
                        breaker.record_failure(ts)
                    if not getattr(exc, "retryable", True):
                        outcome = code_dropped
                        break
                    if attempt >= max_attempts:
                        outcome = code_error
                        break
                    backoff = retry.backoff_s(attempt, i)
                    if (retry.deadline_s is not None
                            and waited_s + backoff > retry.deadline_s):
                        outcome = code_timeout
                        break
                    waited_s += backoff
                    if pace and backoff > 0:
                        time.sleep(backoff / speed)
                    if breaker is not None and not breaker.allow(ts):
                        outcome = code_shed
                        break
                else:
                    if breaker is not None:
                        breaker.record_success(ts)
                    outcome = code_ok if attempt == 1 else code_retried
                    break
            outcomes[i] = outcome
            attempts[i] = attempt
        if runtimes is not None:
            drift.observe(runtimes[i], ts)
        if checkpoint_path is not None and (i + 1) % checkpoint_every == 0:
            save_checkpoint(checkpoint_path, offset=i + 1,
                            outcomes=outcomes, attempts=attempts,
                            trace_fingerprint=fingerprint)

    if checkpoint_path is not None:
        save_checkpoint(checkpoint_path, offset=n, outcomes=outcomes,
                        attempts=attempts, trace_fingerprint=fingerprint)
    if drift is not None:
        drift.flush()
    records = backend.drain()
    return ReplayResult(
        n_requests=n,
        wall_clock_s=time.perf_counter() - t_start,  # repro: allow-wall-clock
        records=records,
        outcomes=outcomes,
        attempts=attempts,
    )
