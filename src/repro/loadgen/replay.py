"""Replay engine: drive a request trace against a backend FaaS system.

The backend protocol is deliberately tiny so both the discrete-event
simulator (:mod:`repro.platform`) and the in-process live executor satisfy
it; the replayer itself is backend-agnostic, as in the paper's design
("replay such specifications against a backend FaaS system").
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.loadgen.requests import RequestTrace

__all__ = ["Backend", "ReplayResult", "replay"]


class Backend(Protocol):
    """What the replayer needs from a FaaS system."""

    def invoke(self, timestamp_s: float, workload_id: str) -> None:
        """Submit one request arriving at ``timestamp_s``."""

    def drain(self) -> list:
        """Finish all outstanding work and return per-request records."""


@dataclass
class ReplayResult:
    """Outcome of one replay run."""

    n_requests: int
    wall_clock_s: float
    records: list

    def latencies_ms(self) -> np.ndarray:
        """End-to-end latency per request, for records exposing one."""
        vals = [r.latency_ms for r in self.records if hasattr(r, "latency_ms")]
        if not vals:
            raise ValueError("backend records carry no latencies")
        return np.array(vals)

    def cold_start_fraction(self) -> float:
        flags = [r.cold for r in self.records if hasattr(r, "cold")]
        if not flags:
            raise ValueError("backend records carry no cold-start flags")
        return float(np.mean(flags))


def replay(
    trace: RequestTrace,
    backend: Backend,
    *,
    speed: float = float("inf"),
) -> ReplayResult:
    """Feed every request of ``trace`` to ``backend`` in timestamp order.

    Parameters
    ----------
    trace:
        The generated request series.
    backend:
        Simulator or live executor.
    speed:
        Wall-clock pacing factor: ``inf`` (default) submits as fast as the
        backend accepts (correct for simulators, which keep their own
        virtual clock); ``1.0`` paces submissions in real time; ``60`` runs
        a 1-hour trace in a minute.  Only finite speeds sleep.
    """
    if speed <= 0:
        raise ValueError("speed must be positive")
    t_start = time.perf_counter()
    pace = np.isfinite(speed)
    for ts, wid in zip(trace.timestamps_s, trace.workload_ids):
        if pace:
            target = t_start + ts / speed
            delay = target - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
        backend.invoke(float(ts), str(wid))
    records = backend.drain()
    return ReplayResult(
        n_requests=trace.n_requests,
        wall_clock_s=time.perf_counter() - t_start,
        records=records,
    )
