"""Request-trace persistence.

Two formats:

- **CSV** -- one row per request, human-greppable, the interchange format
  for replaying against external systems (also what the CLI's ``generate``
  emits);
- **NPZ** -- compressed column arrays for round-tripping large traces
  without string-parsing costs.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.loadgen.requests import RequestTrace

__all__ = [
    "load_request_trace_csv",
    "load_request_trace_npz",
    "save_request_trace_csv",
    "save_request_trace_npz",
]

_CSV_HEADER = ["timestamp_s", "workload_id", "function_id", "runtime_ms",
               "family"]


def _build_trace(path: Path, **columns) -> RequestTrace:
    """Construct a RequestTrace, prefixing validation errors with the
    source file so unsorted/NaN/misaligned data names its origin."""
    try:
        return RequestTrace(**columns)
    except ValueError as exc:
        raise ValueError(f"{path}: invalid request trace: {exc}") from exc


def save_request_trace_csv(trace: RequestTrace, path: Path | str) -> None:
    """Write a request trace as CSV (rows in timestamp order)."""
    with Path(path).open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_CSV_HEADER)
        for i in range(trace.n_requests):
            writer.writerow([
                f"{trace.timestamps_s[i]:.6f}",
                trace.workload_ids[i],
                trace.function_ids[i],
                f"{trace.runtimes_ms[i]:.6g}",
                trace.families[i],
            ])


def load_request_trace_csv(path: Path | str) -> RequestTrace:
    """Read a CSV written by :func:`save_request_trace_csv`."""
    path = Path(path)
    cols: dict[str, list] = {name: [] for name in _CSV_HEADER}
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames != _CSV_HEADER:
            raise ValueError(
                f"{path}: unexpected header {reader.fieldnames}; "
                f"expected {_CSV_HEADER}"
            )
        for lineno, row in enumerate(reader, start=2):
            if any(row.get(name) is None for name in _CSV_HEADER):
                raise ValueError(
                    f"{path}:{lineno}: row has missing columns"
                )
            for name in _CSV_HEADER:
                cols[name].append(row[name])
    if not cols["timestamp_s"]:
        raise ValueError(f"{path}: no requests")
    try:
        timestamps = np.array(cols["timestamp_s"], dtype=np.float64)
        runtimes = np.array(cols["runtime_ms"], dtype=np.float64)
    except ValueError as exc:
        raise ValueError(
            f"{path}: non-numeric timestamp_s/runtime_ms column: {exc}"
        ) from exc
    return _build_trace(
        path,
        timestamps_s=timestamps,
        workload_ids=np.array(cols["workload_id"]),
        function_ids=np.array(cols["function_id"]),
        runtimes_ms=runtimes,
        families=np.array(cols["family"]),
    )


def save_request_trace_npz(trace: RequestTrace, path: Path | str) -> None:
    """Write a request trace as a compressed NPZ column bundle."""
    np.savez_compressed(
        Path(path),
        timestamps_s=trace.timestamps_s,
        workload_ids=trace.workload_ids.astype(str),
        function_ids=trace.function_ids.astype(str),
        runtimes_ms=trace.runtimes_ms,
        families=trace.families.astype(str),
    )


def load_request_trace_npz(path: Path | str) -> RequestTrace:
    """Read an NPZ written by :func:`save_request_trace_npz`."""
    with np.load(Path(path), allow_pickle=False) as data:
        required = {"timestamps_s", "workload_ids", "function_ids",
                    "runtimes_ms", "families"}
        missing = required - set(data.files)
        if missing:
            raise ValueError(f"{path}: missing arrays {sorted(missing)}")
        lengths = {name: data[name].shape for name in sorted(required)}
        if len(set(lengths.values())) > 1:
            raise ValueError(
                f"{path}: arrays have mismatched lengths {lengths}"
            )
        return _build_trace(
            Path(path),
            timestamps_s=data["timestamps_s"],
            workload_ids=data["workload_ids"],
            function_ids=data["function_ids"],
            runtimes_ms=data["runtimes_ms"],
            families=data["families"],
        )
