"""Command-line interface: ``repro <subcommand>``.

Subcommands mirror the paper's workflow:

- ``shrinkray`` -- run the offline pipeline, write an experiment spec;
- ``generate``  -- realise a spec into a timestamped request CSV;
- ``replay``    -- drive generated load through the cluster simulator;
- ``figures``   -- rebuild any evaluation figure's data and print it;
- ``calibrate`` -- re-fit a workload family's cost model on this host.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

__all__ = ["main", "build_parser"]


def _load_trace(source: str, n_functions: int, seed: int, cache=None):
    from repro.traces import (
        load_azure_day,
        memoized_trace,
        synthetic_azure_trace,
        synthetic_huawei_public_trace,
        synthetic_huawei_trace,
    )

    if source == "azure":
        return memoized_trace(
            lambda: synthetic_azure_trace(n_functions=n_functions,
                                          seed=seed),
            cache, "azure", n_functions, seed,
        )
    if source == "huawei":
        return memoized_trace(
            lambda: synthetic_huawei_trace(seed=seed),
            cache, "huawei", seed,
        )
    if source == "huawei-public":
        return memoized_trace(
            lambda: synthetic_huawei_public_trace(n_functions=n_functions,
                                                  seed=seed),
            cache, "huawei-public", n_functions, seed,
        )
    path = Path(source)
    if path.is_dir():
        return load_azure_day(path)
    if path.exists():
        raise SystemExit(
            f"trace path {source!r} is not a directory of Azure-layout "
            "CSVs (expected a directory, found a file)"
        )
    if any(sep in source for sep in ("/", "\\")) or path.suffix:
        raise SystemExit(f"trace path {source!r} does not exist")
    raise SystemExit(
        f"unknown trace source {source!r}: expected 'azure', 'huawei', "
        "'huawei-public', or a directory of Azure-layout CSVs"
    )


def _resolve_cache(args):
    from repro.cache import resolve_cache

    return resolve_cache(getattr(args, "cache_dir", None),
                         getattr(args, "no_cache", False))


def _load_streaming_summary(args, cache=None):
    """Ingest the trace source as a bounded-memory streaming summary.

    A directory of Azure-layout CSVs streams straight off disk in
    ``--chunk-rows`` blocks; synthetic sources are generated and then
    folded through the same chunked path (useful for exercising the
    streaming pipeline without the real dataset).
    """
    from repro.traces import stream_azure_day, summarize_trace

    if args.chunk_rows < 1:
        raise SystemExit("--chunk-rows must be at least 1")
    path = Path(args.trace)
    if path.is_dir():
        return stream_azure_day(path, chunk_rows=args.chunk_rows,
                                jobs=args.jobs)
    trace = _load_trace(args.trace, args.functions, args.seed, cache=cache)
    return summarize_trace(trace, chunk_rows=args.chunk_rows,
                           jobs=args.jobs)


def _setup_telemetry(args, spec):
    """(registry, drift monitor) per the telemetry flags; (None, None) off.

    Any of ``--telemetry`` / ``--drift-band`` switches collection on; the
    drift monitor tracks the spec's invocation-duration CDF.
    """
    telemetry_path = getattr(args, "telemetry", None)
    band = getattr(args, "drift_band", None)
    if telemetry_path is None and band is None:
        return None, None
    from repro.telemetry import DriftMonitor, MetricsRegistry

    registry = MetricsRegistry()
    drift = None
    if band is not None:
        if band <= 0:
            raise SystemExit("--drift-band must be positive")
        drift = DriftMonitor(spec.invocation_duration_cdf(), band=band)
    return registry, drift


def _scoped_telemetry(registry):
    """Activation context: the registry's scope, or a no-op when off."""
    if registry is None:
        import contextlib

        return contextlib.nullcontext()
    from repro.telemetry import use

    return use(registry)


def _finish_telemetry(args, registry, drift=None) -> None:
    """Report drift, write the snapshot file, print the console digest."""
    from repro.telemetry import console_summary, write_jsonl, write_prometheus

    if drift is not None:
        s = drift.summary()
        print(f"drift monitor: {s['n_windows']} windows over "
              f"{s['n_observed']} samples, max KS "
              f"{s['max_ks']:.4f} (band {s['band']:g}), "
              f"{s['n_warnings']} warnings")
    if args.telemetry is not None:
        writer = (write_prometheus if args.telemetry_format == "prom"
                  else write_jsonl)
        writer(registry, args.telemetry)
        print(f"wrote telemetry snapshot to {args.telemetry}")
    print(console_summary(registry))


def _cmd_shrinkray(args) -> int:
    from repro.core import ShrinkRay
    from repro.workloads import build_default_pool

    cache = _resolve_cache(args)
    registry = None
    if args.telemetry is not None:
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
    with _scoped_telemetry(registry):
        if args.streaming:
            trace = _load_streaming_summary(args, cache=cache)
        else:
            trace = _load_trace(args.trace, args.functions, args.seed,
                                cache=cache)
        pool = build_default_pool()
        spec = ShrinkRay(
            error_threshold_pct=args.threshold,
            time_mode=args.time_mode,
            range_start_minute=args.range_start,
            jobs=args.jobs,
        ).run(
            trace, pool,
            max_rps=args.max_rps,
            duration_minutes=args.duration,
            seed=args.seed,
            cache=cache,
        )
    spec.save(args.out)
    print(
        f"wrote {args.out}: {spec.n_functions} functions, "
        f"{spec.total_requests} requests over {spec.duration_minutes} min "
        f"(busiest minute {spec.busiest_minute_rate}/min)"
    )
    if registry is not None:
        _finish_telemetry(args, registry)
    return 0


def _cmd_generate(args) -> int:
    from repro.core import ExperimentSpec
    from repro.loadgen import (
        generate_request_trace,
        save_request_trace_csv,
        save_request_trace_npz,
    )

    spec = ExperimentSpec.load(args.spec)
    registry, drift = _setup_telemetry(args, spec)
    with _scoped_telemetry(registry):
        trace = generate_request_trace(
            spec, seed=args.seed, arrival_mode=args.arrival_mode,
            jobs=args.jobs, cache=_resolve_cache(args),
        )
        if drift is not None:
            drift.observe_many(trace.runtimes_ms, trace.timestamps_s)
            drift.flush()
    if str(args.out).endswith(".npz"):
        save_request_trace_npz(trace, args.out)
    else:
        save_request_trace_csv(trace, args.out)
    print(f"wrote {args.out}: {trace.n_requests} requests, "
          f"{trace.duration_s:.0f}s horizon")
    if registry is not None:
        _finish_telemetry(args, registry, drift)
    return 0


def _sim_backend_factory(spec_path, nodes, node_memory, scheduler_name,
                         keepalive_name, keepalive_ttl, seed,
                         error_rate):
    """Build one fresh simulator backend inside a service worker.

    Module-level (and driven through ``functools.partial`` over plain
    values) so the factory pickles cleanly into spawned processes.
    """
    from repro.core import ExperimentSpec
    from repro.platform import (
        FaaSCluster,
        FaultProfile,
        FaultyBackend,
        FixedKeepAlive,
        HashAffinityScheduler,
        HistogramKeepAlive,
        LeastLoadedScheduler,
        NoKeepAlive,
        RandomScheduler,
        profiles_from_spec,
    )

    spec = ExperimentSpec.load(spec_path)
    scheduler = {
        "least-loaded": LeastLoadedScheduler(),
        "random": RandomScheduler(seed),
        "hash": HashAffinityScheduler(),
    }[scheduler_name]
    keepalive = {
        "none": NoKeepAlive(),
        "fixed": FixedKeepAlive(keepalive_ttl),
        "histogram": HistogramKeepAlive(),
    }[keepalive_name]
    profile = None
    if error_rate is not None:
        profile = FaultProfile()
        profile.error_rate = error_rate
    backend = FaaSCluster(
        profiles_from_spec(spec),
        n_nodes=nodes,
        node_memory_mb=node_memory,
        scheduler=scheduler,
        keepalive=keepalive,
        fault_hook=(profile.simulator_hook()
                    if profile is not None else None),
    )
    if profile is not None:
        backend = FaultyBackend(backend, profile)
    return backend


def _http_backend_factory(base_url, timeout_s):
    from repro.platform import HTTPBackend

    return HTTPBackend(base_url, timeout_s=timeout_s)


def _cmd_replay_service(args, spec, registry, retry) -> int:
    """The ``--service`` branch: supervised multi-process open loop."""
    import functools
    import math

    from repro.loadgen import generate_request_trace
    from repro.loadgen.service import (
        BreakerSpec,
        ServiceConfig,
        ServiceFaultPlan,
        run_service,
    )
    from repro.platform import summarize

    if args.target_url is not None:
        factory = functools.partial(
            _http_backend_factory, base_url=args.target_url,
            timeout_s=args.http_timeout,
        )
    else:
        factory = functools.partial(
            _sim_backend_factory, spec_path=args.spec, nodes=args.nodes,
            node_memory=args.node_memory, scheduler_name=args.scheduler,
            keepalive_name=args.keepalive,
            keepalive_ttl=args.keepalive_ttl, seed=args.seed,
            error_rate=args.error_rate,
        )
    breaker_spec = BreakerSpec(
        failure_threshold=args.breaker_threshold,
        reset_timeout_s=args.breaker_reset,
    ) if args.breaker else None
    # Simulator-side error injection happens inside the worker's
    # backend factory; the service-level keyed plan covers backends
    # without their own fault hooks (HTTP targets).
    fault_plan = None
    if args.error_rate is not None and args.target_url is not None:
        fault_plan = ServiceFaultPlan(error_rate=args.error_rate,
                                      seed=args.seed)
    config = ServiceConfig(
        workers=args.workers,
        speed=(math.inf if args.speed is None else args.speed),
        max_lag_s=args.max_lag,
        checkpoint_every=args.checkpoint_every,
        heartbeat_timeout_s=args.heartbeat_timeout,
        service_timeout_s=args.service_timeout,
    )
    with _scoped_telemetry(registry):
        trace = generate_request_trace(spec, seed=args.seed,
                                       arrival_mode=args.arrival_mode)
        result = run_service(
            trace, factory,
            service_dir=args.service_dir,
            config=config,
            retry=retry,
            breaker=breaker_spec,
            fault_plan=fault_plan,
            resume=args.resume,
        )
    cov = result.coverage
    print(f"service replay: {cov.n_scheduled} requests over "
          f"{cov.n_shards} shards / {cov.n_workers} workers in "
          f"{result.wall_clock_s:.2f}s")
    print(f"  coverage            : "
          f"{'complete' if cov.ok else 'INCOMPLETE'} "
          f"(ledger {cov.ledger_sha256[:16]})")
    counts = result.outcome_counts()
    shown = ", ".join(f"{k}={v}" for k, v in counts.items() if v)
    print(f"  request outcomes    : {shown}")
    if cov.restarts or cov.heartbeat_misses:
        print(f"  supervision         : {cov.restarts} restarts, "
              f"{cov.heartbeat_misses} heartbeat misses")
    if cov.shed_overload or cov.shed_breaker:
        print(f"  shed                : {cov.shed_overload} overload, "
              f"{cov.shed_breaker} breaker")
    if cov.dispatch_lag_ms["max"] > 0:
        lag = cov.dispatch_lag_ms
        print(f"  dispatch lag        : mean {lag['mean']:.2f} ms, "
              f"p99 {lag['p99']:.2f} ms, "
              f"late {lag['late_fraction']:.2%}")
    if result.records:
        summary = summarize(result.records)
        lat = summary["latency_ms"]
        print(f"  latency p50/p90/p99 : {lat['p50']:.1f} / "
              f"{lat['p90']:.1f} / {lat['p99']:.1f} ms")
    print(f"  coverage report     : "
          f"{Path(args.service_dir) / 'coverage.json'}")
    if registry is not None:
        _finish_telemetry(args, registry)
    return 0 if cov.ok else 1


def _cmd_replay(args) -> int:
    from repro.core import ExperimentSpec
    from repro.loadgen import (
        CircuitBreaker,
        RetryPolicy,
        generate_request_trace,
        replay,
    )
    from repro.platform import (
        FaaSCluster,
        FaultProfile,
        FaultyBackend,
        FixedKeepAlive,
        HashAffinityScheduler,
        HistogramKeepAlive,
        LeastLoadedScheduler,
        NoKeepAlive,
        RandomScheduler,
        profiles_from_spec,
        summarize,
    )

    spec = ExperimentSpec.load(args.spec)
    registry, drift = _setup_telemetry(args, spec)

    if args.error_rate is not None and not 0 <= args.error_rate <= 1:
        raise SystemExit("--error-rate must be in [0, 1]")
    retry = None
    if args.retry is not None:
        if args.retry < 1:
            raise SystemExit("--retry must be at least 1")
        retry = RetryPolicy(
            max_attempts=args.retry,
            base_delay_s=args.retry_base_delay,
            deadline_s=args.retry_deadline,
            seed=args.seed,
        )

    if args.service:
        if args.fault_profile is not None:
            raise SystemExit("--fault-profile is not supported with "
                             "--service (use --error-rate)")
        return _cmd_replay_service(args, spec, registry, retry)

    scheduler = {
        "least-loaded": LeastLoadedScheduler(),
        "random": RandomScheduler(args.seed),
        "hash": HashAffinityScheduler(),
    }[args.scheduler]
    keepalive = {
        "none": NoKeepAlive(),
        "fixed": FixedKeepAlive(args.keepalive_ttl),
        "histogram": HistogramKeepAlive(),
    }[args.keepalive]

    profile = None
    if args.fault_profile is not None:
        try:
            profile = FaultProfile.from_json(args.fault_profile)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot load fault profile: {exc}") from exc
    if args.error_rate is not None:
        profile = profile or FaultProfile()
        profile.error_rate = args.error_rate

    backend = FaaSCluster(
        profiles_from_spec(spec),
        n_nodes=args.nodes,
        node_memory_mb=args.node_memory,
        scheduler=scheduler,
        keepalive=keepalive,
        fault_hook=(profile.simulator_hook()
                    if profile is not None else None),
    )
    if profile is not None:
        backend = FaultyBackend(backend, profile)

    breaker = CircuitBreaker(
        failure_threshold=args.breaker_threshold,
        reset_timeout_s=args.breaker_reset,
    ) if args.breaker else None

    with _scoped_telemetry(registry):
        trace = generate_request_trace(spec, seed=args.seed,
                                       arrival_mode=args.arrival_mode)
        result = replay(
            trace, backend,
            retry=retry,
            breaker=breaker,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            resume=args.resume,
            drift=drift,
        )
    if registry is not None and result.outcomes is not None:
        from repro.platform import record_outcome_metrics

        record_outcome_metrics(registry, result, breaker=breaker,
                               horizon_s=trace.duration_s)
    if not result.records:
        print("no invocations reached the backend (all requests shed, "
              "or the replay was already complete at resume)")
    else:
        summary = summarize(result.records)
        print(f"replayed {summary['n_invocations']} invocations on "
              f"{args.nodes} nodes ({args.scheduler} / {args.keepalive})")
        print(f"  cold-start fraction : {summary['cold_fraction']:.4f}")
        lat = summary["latency_ms"]
        print(f"  latency p50/p90/p99 : {lat['p50']:.1f} / "
              f"{lat['p90']:.1f} / {lat['p99']:.1f} ms")
        print(f"  mean queueing       : {summary['queueing_ms_mean']:.2f} "
              f"ms")
        print(f"  node imbalance      : {summary['node_imbalance']:.2f}x")
        if summary["ok_fraction"] < 1.0:
            print(f"  ok fraction         : {summary['ok_fraction']:.4f}")
    if result.outcomes is not None:
        counts = result.outcome_counts()
        shown = ", ".join(f"{k}={v}" for k, v in counts.items() if v)
        print(f"  request outcomes    : {shown}")
    if profile is not None and backend.n_injected:
        shown = ", ".join(f"{k}={v}"
                          for k, v in backend.injected.items() if v)
        print(f"  injected faults     : {shown}")
    if breaker is not None and breaker.transitions:
        print(f"  breaker transitions : {len(breaker.transitions)} "
              f"(final state {breaker.state})")
    if registry is not None:
        _finish_telemetry(args, registry, drift)
    return 0


_FIGURES = {
    "fig1": "fig1_motivation",
    "fig3": "fig3_cv",
    "fig4": "fig4_popularity_change",
    "fig6": "fig6_pool_cdfs",
    "fig7": "fig7_memory",
    "fig8": "fig8_load_over_time",
    "fig9": "fig9_spec_cdf",
    "fig10": "fig10_popularity",
    "fig11": "fig11_smirnov",
    "fig12": "fig12_balance",
}


def _cmd_figures(args) -> int:
    from repro.analysis import FigureContext, render_figure

    ctx = FigureContext(azure_functions=args.functions, seed=args.seed)
    which = list(_FIGURES) if args.which == ["all"] else args.which
    for name in which:
        if name not in _FIGURES:
            raise SystemExit(
                f"unknown figure {name!r}; choose from "
                f"{', '.join(_FIGURES)} or 'all'"
            )
        data = getattr(ctx, _FIGURES[name])()
        print(render_figure(name, data))
        print()
    return 0


def _cmd_smirnov(args) -> int:
    from repro.core import smirnov_request_sample
    from repro.loadgen import generate_smirnov_trace
    from repro.workloads import build_default_pool

    trace = _load_trace(args.trace, args.functions, args.seed)
    pool = build_default_pool()
    sample = smirnov_request_sample(
        trace, pool, args.requests, seed=args.seed,
        inverse_method=args.inverse,
    )
    req = generate_smirnov_trace(sample, rate_rps=args.rate,
                                 seed=args.seed,
                                 arrival_mode=args.arrival_mode)
    shares = sorted(sample.family_shares().items(), key=lambda kv: -kv[1])
    print(f"sampled {sample.n_requests} requests from {trace.name} "
          f"({args.inverse} inverse); horizon {req.duration_s:.0f}s "
          f"at {args.rate:g} rps")
    for fam, share in shares:
        print(f"  {fam:<20} {share:7.2%}")
    if args.out:
        import csv

        with open(args.out, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["timestamp_s", "workload_id", "runtime_ms",
                             "family"])
            for i in range(req.n_requests):
                writer.writerow([
                    f"{req.timestamps_s[i]:.6f}", req.workload_ids[i],
                    f"{req.runtimes_ms[i]:.3f}", req.families[i],
                ])
        print(f"wrote {args.out}")
    return 0


def _cmd_spec_info(args) -> int:
    from repro.core import ExperimentSpec

    spec = ExperimentSpec.load(args.spec)
    print(f"spec        : {spec.name}")
    print(f"source trace: {spec.source_trace}")
    print(f"functions   : {spec.n_functions}")
    print(f"duration    : {spec.duration_minutes} min")
    print(f"requests    : {spec.total_requests:,} "
          f"(busiest minute {spec.busiest_minute_rate})")
    print(f"target rate : {spec.max_rps:g} rps")
    print("family shares:")
    for fam, share in sorted(spec.family_request_shares().items(),
                             key=lambda kv: -kv[1]):
        print(f"  {fam:<20} {share:7.2%}")
    if spec.metadata:
        print("metadata    :")
        for k, v in spec.metadata.items():
            if k == "variants":
                print(f"  variants: table for {len(v)} functions")
            else:
                print(f"  {k}: {v}")
    return 0


def _cmd_report(args) -> int:
    from repro.analysis import FigureContext, generate_report

    ctx = FigureContext(azure_functions=args.functions, seed=args.seed)
    text = generate_report(ctx)
    if args.out:
        Path(args.out).write_text(text)
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _cmd_trace_info(args) -> int:
    from repro.traces import characterize_trace, fit_generator_from_trace

    trace = _load_trace(args.trace, args.functions, args.seed)
    info = characterize_trace(trace)
    print(f"trace       : {info['name']}")
    print(f"functions   : {info['n_functions']}, minutes: "
          f"{info['n_minutes']}")
    print(f"invocations : {info['total_invocations']:,} "
          f"(busiest minute {info['busiest_minute']:,})")
    d = info["duration_ms"]
    print(f"durations   : median {d['median']:.1f} ms, "
          f"{d['frac_subsecond']:.0%} sub-second, "
          f"range {d['min']:.1f}..{d['max']:.0f} ms")
    print(f"weighted med: {info['weighted_median_duration_ms']:.1f} ms")
    p = info["popularity"]
    print(f"popularity  : top 8% of functions hold "
          f"{p['top8pct_share']:.1%} of invocations; "
          f"{p['frac_low_rate']:.0%} fire <= once/minute")
    if args.fit:
        fitted = fit_generator_from_trace(trace, seed=args.seed)
        print(f"fitted popularity exponent: "
              f"{fitted['popularity_exponent']:.3f}")
        print("fitted duration mixture:")
        for comp in fitted["duration_mixture"]:
            print(f"  weight={comp.weight:.3f} "
                  f"median={comp.median_ms:.1f}ms sigma={comp.sigma:.3f}")
    return 0


def _cmd_sensitivity(args) -> int:
    from repro.analysis import seed_sweep

    results = seed_sweep(
        range(args.seeds),
        n_functions=args.functions,
        max_rps=args.max_rps,
        duration_minutes=args.duration,
    )
    print(f"fidelity across {args.seeds} seeds "
          f"({args.functions} functions, {args.duration} min @ "
          f"{args.max_rps:g} rps):")
    for res in results.values():
        print(f"  {res.metric:<28} mean={res.mean:.4f} std={res.std:.4f} "
              f"range=[{res.best:.4f}, {res.worst:.4f}]")
    return 0


def _cmd_calibrate(args) -> int:
    from repro.workloads import calibrate_family, default_registry

    registry = default_registry()
    names = registry.names() if args.family == "all" else [args.family]
    for name in names:
        family = registry.get(name)
        grid = list(family.input_grid())
        # a small spread across the grid: first, middle two, near-largest
        picks = sorted({0, len(grid) // 3, 2 * len(grid) // 3,
                        max(len(grid) - 2, 0)})
        samples = [grid[i] for i in picks]
        result = calibrate_family(family, samples, repeats=args.repeats)
        print(f"{name:<18} overhead={result.overhead_ms:.4f}ms "
              f"ms_per_unit={result.ms_per_unit:.4g} "
              f"r2={result.r_squared:.4f}")
    return 0


def _cmd_simulate(args) -> int:
    import json

    from repro.platform.shootout import (
        CPU_POLICY_NAMES,
        KEEPALIVE_NAMES,
        SCHEDULER_NAMES,
        ShootoutCell,
        ShootoutConfig,
        run_cell,
        run_shootout,
    )

    def _names(raw: str, universe: tuple[str, ...],
               what: str) -> tuple[str, ...]:
        chosen = tuple(s.strip() for s in raw.split(",") if s.strip())
        if not chosen:
            raise SystemExit(f"--{what} needs at least one name")
        for name in chosen:
            if name not in universe:
                raise SystemExit(
                    f"unknown {what[:-1]} {name!r} "
                    f"(choose from {', '.join(universe)})"
                )
        return chosen

    schedulers = _names(args.schedulers, SCHEDULER_NAMES, "schedulers")
    keepalives = _names(args.keepalives, KEEPALIVE_NAMES, "keepalives")
    cpu_policies = _names(args.cpu_policies, CPU_POLICY_NAMES,
                          "cpu-policies")
    config = ShootoutConfig(
        seed=args.seed,
        n_requests=args.requests,
        n_workloads=args.workloads,
        horizon_s=args.horizon,
        n_nodes=args.nodes,
        node_memory_mb=args.node_memory,
        cores=args.cores,
        quantum_s=args.quantum,
        keepalive_ttl_s=args.keepalive_ttl,
        schedulers=schedulers,
        keepalives=keepalives,
        cpu_policies=cpu_policies,
    )
    registry = None
    if args.telemetry is not None:
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
    with _scoped_telemetry(registry):
        if args.shootout:
            result = run_shootout(
                config,
                cache=_resolve_cache(args),
                jobs=args.jobs,
                out_dir=args.out,
            )
            print(f"shootout: {len(result.rows)} cells "
                  f"({result.computed} computed, {result.cached} cached)")
            print(f"wrote {Path(args.out) / 'shootout.csv'}")
        else:
            if (len(schedulers), len(keepalives),
                    len(cpu_policies)) != (1, 1, 1):
                raise SystemExit(
                    "without --shootout, pick exactly one scheduler, "
                    "keepalive, and cpu policy (or pass --shootout to "
                    "sweep the grid)"
                )
            row = run_cell(config, ShootoutCell(
                schedulers[0], keepalives[0], cpu_policies[0],
            ))
            print(json.dumps(row, indent=2, sort_keys=True))
    if registry is not None:
        _finish_telemetry(args, registry)
    return 0


def _add_telemetry_flags(p) -> None:
    p.add_argument("--telemetry", default=None, metavar="PATH",
                   help="collect run telemetry and write the end-of-run "
                        "snapshot here (also prints a console summary)")
    p.add_argument("--telemetry-format", choices=["jsonl", "prom"],
                   default="jsonl",
                   help="snapshot format for --telemetry (default: jsonl)")
    p.add_argument("--drift-band", type=float, default=None, metavar="KS",
                   help="monitor representativeness online: warn whenever "
                        "a window of invocation durations sits further "
                        "than this KS distance from the spec's target CDF")


def _add_parallel_cache_flags(p) -> None:
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker processes for the sharded pipeline "
                        "stages (default sequential; 0 = all cores; "
                        "results are identical for any value)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="content-addressed artifact cache (default: "
                        "$REPRO_CACHE_DIR if set, else caching is off)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the cache even if REPRO_CACHE_DIR or "
                        "--cache-dir is set")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FaaSRail reproduction: representative FaaS load "
                    "generation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("shrinkray", help="build an experiment spec")
    p.add_argument("--trace", default="azure",
                   help="'azure', 'huawei', or a directory of Azure CSVs")
    p.add_argument("--functions", type=int, default=8000,
                   help="synthetic trace size")
    p.add_argument("--max-rps", type=float, required=True)
    p.add_argument("--duration", type=int, required=True,
                   help="experiment minutes")
    p.add_argument("--threshold", type=float, default=10.0,
                   help="mapping error threshold (%%)")
    p.add_argument("--time-mode", choices=["thumbnails", "minute-range"],
                   default="thumbnails")
    p.add_argument("--range-start", type=int, default=0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default="spec.json")
    p.add_argument("--streaming", action="store_true",
                   help="ingest the trace in bounded-memory row blocks "
                        "(mergeable sketches) instead of materialising "
                        "it; exact rate/popularity statistics are "
                        "identical, duration CDFs carry a tracked "
                        "rank-error bound")
    p.add_argument("--chunk-rows", type=int, default=65_536, metavar="N",
                   help="rows per streaming ingestion block (bounds peak "
                        "memory; never changes exact statistics)")
    p.add_argument("--telemetry", default=None, metavar="PATH",
                   help="collect pipeline + ingestion telemetry and "
                        "write the end-of-run snapshot here")
    p.add_argument("--telemetry-format", choices=["jsonl", "prom"],
                   default="jsonl",
                   help="snapshot format for --telemetry (default: jsonl)")
    _add_parallel_cache_flags(p)
    p.set_defaults(func=_cmd_shrinkray)

    p = sub.add_parser("generate", help="spec -> request CSV")
    p.add_argument("--spec", required=True)
    p.add_argument("--arrival-mode", default="poisson",
                   choices=["poisson", "uniform", "equidistant"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default="requests.csv")
    _add_parallel_cache_flags(p)
    _add_telemetry_flags(p)
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("replay", help="drive a spec through the simulator")
    p.add_argument("--spec", required=True)
    p.add_argument("--nodes", type=int, default=8)
    p.add_argument("--node-memory", type=float, default=16_384.0)
    p.add_argument("--scheduler", default="least-loaded",
                   choices=["least-loaded", "random", "hash"])
    p.add_argument("--keepalive", default="fixed",
                   choices=["none", "fixed", "histogram"])
    p.add_argument("--keepalive-ttl", type=float, default=600.0)
    p.add_argument("--arrival-mode", default="poisson",
                   choices=["poisson", "uniform", "equidistant"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--fault-profile", default=None, metavar="JSON",
                   help="inject faults from a FaultProfile JSON file")
    p.add_argument("--error-rate", type=float, default=None,
                   help="shortcut: inject this invocation error "
                        "probability (overrides the profile's)")
    p.add_argument("--retry", type=int, default=None, metavar="N",
                   help="retry failed invocations up to N attempts "
                        "(exponential backoff)")
    p.add_argument("--retry-base-delay", type=float, default=0.1,
                   help="backoff base delay in seconds")
    p.add_argument("--retry-deadline", type=float, default=None,
                   help="per-request cumulative backoff deadline (s)")
    p.add_argument("--breaker", action="store_true",
                   help="shed load through a circuit breaker")
    p.add_argument("--breaker-threshold", type=int, default=5,
                   help="consecutive failures before the breaker opens")
    p.add_argument("--breaker-reset", type=float, default=30.0,
                   help="trace seconds before half-open probing")
    p.add_argument("--checkpoint", default=None, metavar="NPZ",
                   help="checkpoint replay progress to this file")
    p.add_argument("--checkpoint-every", type=int, default=1000,
                   help="requests between checkpoints")
    p.add_argument("--resume", action="store_true",
                   help="resume from --checkpoint if it exists (with "
                        "--service: from the per-shard checkpoints in "
                        "--service-dir)")
    p.add_argument("--service", action="store_true",
                   help="run the supervised multi-process open-loop "
                        "load service instead of the in-process loop "
                        "(crash-tolerant workers, verified schedule "
                        "coverage; see docs/LOADSERVICE.md)")
    p.add_argument("--workers", type=int, default=2, metavar="N",
                   help="service worker processes (0 = run shards "
                        "inline; the reconciled ledger is identical "
                        "for any value)")
    p.add_argument("--target-url", default=None, metavar="URL",
                   help="drive generated load at a real HTTP endpoint "
                        "instead of the simulator")
    p.add_argument("--http-timeout", type=float, default=10.0,
                   help="per-request HTTP timeout in seconds")
    p.add_argument("--service-dir", default="service-run", metavar="DIR",
                   help="per-shard checkpoints + coverage report "
                        "directory for --service")
    p.add_argument("--speed", type=float, default=None, metavar="X",
                   help="open-loop pacing speedup (1 = trace real "
                        "time; default: unpaced, as fast as the "
                        "backend accepts)")
    p.add_argument("--max-lag", type=float, default=None, metavar="S",
                   help="shed a request once its dispatch lags more "
                        "than S seconds behind schedule (outcome "
                        "'shed'; default: never shed)")
    p.add_argument("--heartbeat-timeout", type=float, default=10.0,
                   help="seconds of worker silence before the "
                        "supervisor kills and restarts its shard")
    p.add_argument("--service-timeout", type=float, default=300.0,
                   help="global wall-clock deadline for the whole "
                        "service run")
    _add_telemetry_flags(p)
    p.set_defaults(func=_cmd_replay)

    p = sub.add_parser("figures", help="rebuild evaluation figures")
    p.add_argument("which", nargs="+",
                   help=f"figure names ({', '.join(_FIGURES)}) or 'all'")
    p.add_argument("--functions", type=int, default=8000)
    p.add_argument("--seed", type=int, default=42)
    p.set_defaults(func=_cmd_figures)

    p = sub.add_parser("smirnov",
                       help="Smirnov-Transform-mode sampling + replay plan")
    p.add_argument("--trace", default="azure")
    p.add_argument("--functions", type=int, default=4000)
    p.add_argument("--requests", type=int, default=30_000)
    p.add_argument("--rate", type=float, default=50.0,
                   help="constant replay rate (rps)")
    p.add_argument("--inverse", choices=["linear", "step"],
                   default="linear")
    p.add_argument("--arrival-mode", default="poisson",
                   choices=["poisson", "uniform", "equidistant"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=None, help="optional request CSV")
    p.set_defaults(func=_cmd_smirnov)

    p = sub.add_parser("spec-info", help="inspect a saved experiment spec")
    p.add_argument("--spec", required=True)
    p.set_defaults(func=_cmd_spec_info)

    p = sub.add_parser("report",
                       help="regenerate the paper-vs-measured claim table")
    p.add_argument("--functions", type=int, default=6000)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--out", default=None)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("trace-info",
                       help="characterise a trace; optionally fit "
                            "generator parameters")
    p.add_argument("--trace", default="azure")
    p.add_argument("--functions", type=int, default=4000)
    p.add_argument("--fit", action="store_true",
                   help="EM-fit the duration mixture + popularity "
                        "exponent")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_trace_info)

    p = sub.add_parser("sensitivity",
                       help="fidelity stability across seeds")
    p.add_argument("--seeds", type=int, default=5)
    p.add_argument("--functions", type=int, default=2000)
    p.add_argument("--max-rps", type=float, default=10.0)
    p.add_argument("--duration", type=int, default=30)
    p.set_defaults(func=_cmd_sensitivity)

    p = sub.add_parser("calibrate", help="re-fit cost models on this host")
    p.add_argument("--family", default="all")
    p.add_argument("--repeats", type=int, default=3)
    p.set_defaults(func=_cmd_calibrate)

    p = sub.add_parser(
        "simulate",
        help="contention scenario lab: run one simulator cell, or "
             "--shootout the full policy grid",
    )
    p.add_argument("--shootout", action="store_true",
                   help="sweep every (scheduler x keepalive x "
                        "cpu-policy) cell and write per-cell tables")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--requests", type=int, default=2000,
                   help="synthetic requests per cell")
    p.add_argument("--workloads", type=int, default=12,
                   help="distinct workloads in the synthetic load")
    p.add_argument("--horizon", type=float, default=60.0,
                   help="arrival horizon in seconds")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--node-memory", type=float, default=4096.0)
    p.add_argument("--cores", type=int, default=4,
                   help="CPU cores per node (contention model)")
    p.add_argument("--quantum", type=float, default=0.020,
                   help="scheduling timeslice in seconds")
    p.add_argument("--keepalive-ttl", type=float, default=5.0,
                   help="TTL for the fixed policy / fallback default "
                        "for the adaptive ones")
    p.add_argument("--schedulers",
                   default=",".join(
                       ("least-loaded", "random", "power-of-two",
                        "locality", "hash")),
                   help="comma-separated scheduler names to sweep")
    p.add_argument("--keepalives",
                   default="none,fixed,histogram,hybrid",
                   help="comma-separated keep-alive names to sweep")
    p.add_argument("--cpu-policies", default="fifo,fair,stf",
                   help="comma-separated CPU policy names to sweep")
    p.add_argument("--out", default="benchmarks/results",
                   metavar="DIR",
                   help="directory for the per-cell result tables")
    _add_parallel_cache_flags(p)
    _add_telemetry_flags(p)
    p.set_defaults(func=_cmd_simulate)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
