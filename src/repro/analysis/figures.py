"""Data-series builders, one per figure of the paper's evaluation.

Each ``figN_*`` function returns a plain dict with two keys:

- ``"series"``: label -> ``(x, y)`` NumPy array pairs, exactly the curves
  the paper's figure draws;
- ``"summary"``: label -> scalar, the quantitative statements of the claim
  (KS distances, correlations, fractions) that the benchmark harness prints
  and EXPERIMENTS.md records.

Builders take explicit inputs so benches can choose scale;
:class:`FigureContext` bundles the shared artifacts (traces, pool, spec,
samples) and builds each lazily exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines import plain_poisson_trace, random_sampling_spec
from repro.core import ShrinkRay, smirnov_request_sample, thumbnail_scale
from repro.stats import (
    EmpiricalCDF,
    cv_cdf_series,
    coefficient_of_variation,
    ks_distance,
    popularity_curve,
)
from repro.stats.distance import ks_relative_band
from repro.traces import (
    relative_load_series,
    synthetic_azure_multiday,
    synthetic_azure_trace,
    synthetic_huawei_trace,
)
from repro.workloads import build_default_pool, vanilla_functionbench

__all__ = ["FigureContext"]


def _cdf_xy(values, weights=None, n=256):
    return EmpiricalCDF.from_samples(values, weights).series(n=n)


@dataclass
class FigureContext:
    """Shared, lazily-built artifacts for the whole figure suite.

    Default sizes are scaled down from the paper (12K-function Azure day
    instead of 49.7K) so the full suite builds in seconds; every statistic
    under comparison is scale-free (CDFs, shares, correlations).
    """

    azure_functions: int = 8_000
    huawei_seed: int = 7
    seed: int = 42
    max_rps: float = 20.0
    duration_minutes: int = 120
    smirnov_requests: int = 120_408  # the paper's Figure-11 sample size
    _cache: dict = field(default_factory=dict, repr=False)

    def _get(self, key, build):
        if key not in self._cache:
            self._cache[key] = build()
        return self._cache[key]

    # ------------------------------------------------------------------
    # shared artifacts
    # ------------------------------------------------------------------
    @property
    def azure(self):
        return self._get("azure", lambda: synthetic_azure_trace(
            n_functions=self.azure_functions, seed=self.seed))

    @property
    def huawei(self):
        return self._get("huawei", lambda: synthetic_huawei_trace(
            seed=self.huawei_seed))

    @property
    def pool(self):
        return self._get("pool", build_default_pool)

    @property
    def vanilla(self):
        return self._get("vanilla", vanilla_functionbench)

    @property
    def shrinkray(self):
        return self._get("shrinkray", ShrinkRay)

    @property
    def spec(self):
        def build():
            return self.shrinkray.run(
                self.azure, self.pool,
                max_rps=self.max_rps,
                duration_minutes=self.duration_minutes,
                seed=self.seed,
            )
        return self._get("spec", build)

    @property
    def report(self):
        _ = self.spec  # ensure the run happened
        return self.shrinkray.last_report

    @property
    def smirnov_azure(self):
        return self._get("smirnov_azure", lambda: smirnov_request_sample(
            self.azure, self.pool, self.smirnov_requests, seed=self.seed))

    @property
    def smirnov_huawei(self):
        return self._get("smirnov_huawei", lambda: smirnov_request_sample(
            self.huawei, self.pool, 35_000, seed=self.seed))

    # ------------------------------------------------------------------
    # figures
    # ------------------------------------------------------------------
    def fig1_motivation(self):
        """Figure 1: how prior-work strategies violate trace statistics."""
        azure = self.azure
        counts = azure.invocations_per_function.astype(float)
        mask = counts > 0
        target_total = 144_000

        poisson = plain_poisson_trace(
            target_total / (self.duration_minutes * 60.0),
            self.duration_minutes, seed=self.seed)
        sampling = random_sampling_spec(
            azure, n_functions=100, total_invocations=target_total,
            duration_minutes=self.duration_minutes, seed=self.seed)

        # (a) functions' average durations
        fn_cdfs = {
            "azure": _cdf_xy(azure.durations_ms),
            "poisson": _cdf_xy(np.unique(poisson.runtimes_ms)),
            "sampling": _cdf_xy(np.array(
                [e.runtime_ms for e in sampling.entries])),
        }
        # (b) invocations' durations
        inv_cdfs = {
            "azure": _cdf_xy(azure.durations_ms[mask], counts[mask]),
            "poisson": _cdf_xy(poisson.runtimes_ms),
            "sampling": _cdf_xy(
                sampling.runtimes_ms,
                sampling.requests_per_function.astype(float)),
        }
        # (c) popularity
        pop = {
            "azure": popularity_curve(counts[mask]),
            "poisson": popularity_curve(np.bincount(
                np.unique(poisson.workload_ids, return_inverse=True)[1])),
            "sampling": popularity_curve(
                sampling.requests_per_function + 1),
        }
        # (d) load over time, normalised to peak
        load = {
            "azure": relative_load_series(azure.aggregate_per_minute),
            "poisson": relative_load_series(
                poisson.per_minute_rate(self.duration_minutes * 60)),
            "sampling": relative_load_series(
                sampling.aggregate_per_minute + 1e-9),
        }
        summary = {
            "ks_inv_poisson_vs_azure": ks_distance(
                EmpiricalCDF.from_samples(poisson.runtimes_ms),
                EmpiricalCDF.from_samples(azure.durations_ms[mask],
                                          counts[mask])),
            "ks_inv_sampling_vs_azure": ks_distance(
                EmpiricalCDF.from_samples(
                    sampling.runtimes_ms,
                    np.maximum(sampling.requests_per_function, 1e-9)),
                EmpiricalCDF.from_samples(azure.durations_ms[mask],
                                          counts[mask])),
            "poisson_top10pct_share": float(
                popularity_curve(np.bincount(np.unique(
                    poisson.workload_ids, return_inverse=True)[1]))[1][0]),
            "azure_load_cv": float(np.std(load["azure"]) /
                                   np.mean(load["azure"])),
            "poisson_load_cv": float(np.std(load["poisson"]) /
                                     np.mean(load["poisson"])),
        }
        return {
            "series": {
                **{f"1a/{k}": v for k, v in fn_cdfs.items()},
                **{f"1b/{k}": v for k, v in inv_cdfs.items()},
                **{f"1c/{k}": v for k, v in pop.items()},
                **{f"1d/{k}": (np.arange(v.size, dtype=float), v)
                   for k, v in load.items()},
            },
            "summary": summary,
        }

    def fig3_cv(self, n_days: int = 14):
        """Figure 3: day-to-day CVs justify single-day sampling."""
        md = synthetic_azure_multiday(self.azure, n_days=n_days,
                                      seed=self.seed)
        cv_dur = coefficient_of_variation(md.daily_avg_duration_ms)
        cv_inv = coefficient_of_variation(md.daily_invocations)
        return {
            "series": {
                "execution_time": cv_cdf_series(cv_dur),
                "invocations": cv_cdf_series(cv_inv),
            },
            "summary": {
                "frac_duration_cv_below_1": float((cv_dur < 1.0).mean()),
                "frac_invocations_cv_below_1": float((cv_inv < 1.0).mean()),
            },
        }

    def fig4_popularity_change(self):
        """Figure 4: aggregation barely moves function popularity."""
        audit = self.report.aggregation_audit
        changes, probs = audit.popularity_change_series()
        below_1pct = float(probs[np.searchsorted(
            changes, 0.01, side="right") - 1]) if changes.size else 1.0
        return {
            "series": {"popularity_change": (changes, probs)},
            "summary": {
                "n_super_functions": audit.n_aggregated,
                "n_original_functions": audit.n_original,
                "frac_changes_below_1pct": below_1pct,
                "max_change": float(changes.max()),
            },
        }

    def fig6_pool_cdfs(self):
        """Figure 6: augmentation vs the traces' runtime distributions."""
        azure_cdf = EmpiricalCDF.from_samples(self.azure.durations_ms)
        pool_cdf = EmpiricalCDF.from_samples(self.pool.runtimes_ms)
        vanilla_cdf = EmpiricalCDF.from_samples(self.vanilla.runtimes_ms)
        huawei_cdf = EmpiricalCDF.from_samples(self.huawei.durations_ms)
        return {
            "series": {
                f"azure ({self.azure.n_functions})": azure_cdf.series(),
                f"huawei ({self.huawei.n_functions})": huawei_cdf.series(),
                "functionbench (10)": vanilla_cdf.series(),
                f"workload pool ({len(self.pool)})": pool_cdf.series(),
            },
            "summary": {
                "pool_size": len(self.pool),
                "ks_pool_vs_azure": ks_distance(pool_cdf, azure_cdf),
                "ks_vanilla_vs_azure": ks_distance(vanilla_cdf, azure_cdf),
                "ks_pool_vs_huawei": ks_distance(pool_cdf, huawei_cdf),
            },
        }

    def fig7_memory(self):
        """Figure 7: workload memory vs Azure app memory."""
        azure_mem = self.azure.memory_per_app_array()
        # distinct workloads referenced by the Spec-mode run
        used = {e.workload_id: e.memory_mb for e in self.spec.entries}
        wl_mem = np.fromiter(used.values(), dtype=float)
        a = EmpiricalCDF.from_samples(azure_mem)
        b = EmpiricalCDF.from_samples(wl_mem)
        return {
            "series": {"azure apps": a.series(), "faasrail workloads":
                       b.series()},
            "summary": {
                "azure_median_mb": float(np.median(azure_mem)),
                "faasrail_median_mb": float(np.median(wl_mem)),
                "left_shift": float(np.median(wl_mem)
                                    < np.median(azure_mem)),
            },
        }

    def fig8_load_over_time(self):
        """Figure 8: FaaSRail tracks the day's shape; plain Poisson is flat."""
        azure_rel = relative_load_series(self.azure.aggregate_per_minute)
        spec_rel = relative_load_series(self.spec.aggregate_per_minute)
        poisson = plain_poisson_trace(self.max_rps, self.duration_minutes,
                                      seed=self.seed)
        poisson_rel = relative_load_series(
            poisson.per_minute_rate(self.duration_minutes * 60))
        target = thumbnail_scale(
            self.azure.per_minute, self.duration_minutes).sum(axis=0)
        corr_faasrail = float(np.corrcoef(
            spec_rel, target / target.max())[0, 1])
        corr_poisson = float(np.corrcoef(
            poisson_rel[: self.duration_minutes],
            (target / target.max())[: poisson_rel.size])[0, 1])
        return {
            "series": {
                "azure (1440 min)": (np.arange(azure_rel.size, dtype=float),
                                     azure_rel),
                "faasrail": (np.arange(spec_rel.size, dtype=float),
                             spec_rel),
                "poisson": (np.arange(poisson_rel.size, dtype=float),
                            poisson_rel),
            },
            "summary": {
                "corr_faasrail_vs_azure_thumb": corr_faasrail,
                "corr_poisson_vs_azure_thumb": corr_poisson,
                "faasrail_rel_range": float(spec_rel.max() - spec_rel.min()),
                "poisson_rel_range": float(
                    poisson_rel.max() - poisson_rel.min()),
            },
        }

    def fig9_spec_cdf(self):
        """Figure 9: Spec-mode invocation-duration CDF vs Azure."""
        azure = self.azure
        counts = azure.invocations_per_function.astype(float)
        mask = counts > 0
        req = self.spec.requests_per_function.astype(float)
        live = req > 0
        ks = ks_relative_band(
            self.spec.runtimes_ms[live], azure.durations_ms[mask],
            x_weights=req[live], y_weights=counts[mask])
        return {
            "series": {
                f"azure ({int(counts.sum())})": _cdf_xy(
                    azure.durations_ms[mask], counts[mask]),
                f"faasrail ({self.spec.total_requests})": _cdf_xy(
                    self.spec.runtimes_ms[live], req[live]),
            },
            "summary": {
                "total_requests": self.spec.total_requests,
                "ks_relative_band": ks,
            },
        }

    def fig10_popularity(self):
        """Figure 10: cumulative invocation fraction vs popular functions."""
        azure = self.azure
        counts = azure.invocations_per_function
        req = self.spec.requests_per_function
        az_x, az_y = popularity_curve(counts[counts > 0])
        fr_x, fr_y = popularity_curve(req[req > 0])

        def top_share(x, y, frac):
            return float(y[np.searchsorted(x, frac, side="left")])

        return {
            "series": {"azure": (az_x, az_y), "faasrail": (fr_x, fr_y)},
            "summary": {
                "azure_top1pct_share": top_share(az_x, az_y, 0.01),
                "faasrail_top1pct_share": top_share(fr_x, fr_y, 0.01),
                "azure_top10pct_share": top_share(az_x, az_y, 0.10),
                "faasrail_top10pct_share": top_share(fr_x, fr_y, 0.10),
            },
        }

    def fig11_smirnov(self):
        """Figure 11: Smirnov-mode CDFs vs Azure (a) and Huawei (b)."""
        out_series, summary = {}, {}
        for label, trace, sample in (
            ("azure", self.azure, self.smirnov_azure),
            ("huawei", self.huawei, self.smirnov_huawei),
        ):
            counts = trace.invocations_per_function.astype(float)
            mask = counts > 0
            out_series[f"{label}/trace"] = _cdf_xy(
                trace.durations_ms[mask], counts[mask])
            out_series[f"{label}/faasrail"] = _cdf_xy(
                sample.mapped_runtime_ms)
            summary[f"ks_{label}"] = ks_relative_band(
                sample.mapped_runtime_ms, trace.durations_ms[mask],
                y_weights=counts[mask])
        return {"series": out_series, "summary": summary}

    def fig12_balance(self):
        """Figure 12: per-benchmark occurrence balance of generated load."""
        azure_shares = self.spec.family_request_shares()
        huawei_shares = self.smirnov_huawei.family_shares()
        all_families = sorted(self.pool.families())
        series = {
            "azure-spec": (
                np.arange(len(all_families), dtype=float),
                np.array([azure_shares.get(f, 0.0) for f in all_families]),
            ),
            "huawei-smirnov": (
                np.arange(len(all_families), dtype=float),
                np.array([huawei_shares.get(f, 0.0) for f in all_families]),
            ),
        }
        return {
            "series": series,
            "families": all_families,
            "summary": {
                "azure_families_present": float(
                    sum(1 for f in all_families
                        if azure_shares.get(f, 0.0) > 0.001)),
                "huawei_families_present": float(
                    sum(1 for f in all_families
                        if huawei_shares.get(f, 0.0) > 0.001)),
                "azure_max_share": max(azure_shares.values()),
                "huawei_max_share": max(huawei_shares.values()),
                "azure_lr_training_share": azure_shares.get(
                    "lr_training", 0.0),
                "huawei_lr_training_share": huawei_shares.get(
                    "lr_training", 0.0),
            },
        }
