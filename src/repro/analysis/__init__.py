"""Figure reproduction: data-series builders and text renderers."""

from repro.analysis.figures import FigureContext
from repro.analysis.render import render_figure, render_series_table
from repro.analysis.report import (
    ClaimCheck,
    generate_report,
    run_claim_checks,
)
from repro.analysis.sensitivity import SensitivityResult, seed_sweep

__all__ = [
    "ClaimCheck",
    "FigureContext",
    "SensitivityResult",
    "generate_report",
    "render_figure",
    "render_series_table",
    "run_claim_checks",
    "seed_sweep",
]
