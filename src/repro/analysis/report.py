"""Programmatic experiment report: the EXPERIMENTS.md table, regenerated.

``generate_report(ctx)`` runs every figure builder on a
:class:`~repro.analysis.figures.FigureContext` and renders one markdown
document with the measured statistic next to the paper's claim -- so the
reproduction record can be refreshed on any machine / scale / seed with
one call (or ``repro report`` from the CLI).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.analysis.figures import FigureContext

__all__ = ["ClaimCheck", "generate_report", "run_claim_checks"]


@dataclass(frozen=True)
class ClaimCheck:
    """One paper claim, its measured value, and the pass predicate."""

    figure: str
    claim: str
    metric: str
    value: float
    passed: bool


def _checks_for(ctx: FigureContext) -> list[ClaimCheck]:
    out: list[ClaimCheck] = []

    def add(figure, claim, metric, value, ok: Callable[[float], bool]):
        out.append(ClaimCheck(figure, claim, metric,
                              float(value), bool(ok(value))))

    s = ctx.fig1_motivation()["summary"]
    add("Fig 1b", "Poisson baseline violates the invocation-duration CDF",
        "ks_inv_poisson_vs_azure", s["ks_inv_poisson_vs_azure"],
        lambda v: v > 0.3)
    add("Fig 1c", "Poisson spreads requests uniformly (no popularity skew)",
        "poisson_top10pct_share", s["poisson_top10pct_share"],
        lambda v: v < 0.2)
    add("Fig 1d", "Poisson load does not fluctuate like the trace",
        "poisson_load_cv", s["poisson_load_cv"],
        lambda v: v < s["azure_load_cv"])

    s = ctx.fig3_cv()["summary"]
    add("Fig 3", "~90% of functions have day-to-day duration CV < 1",
        "frac_duration_cv_below_1", s["frac_duration_cv_below_1"],
        lambda v: 0.85 <= v <= 0.97)
    add("Fig 3", "~90% of functions have day-to-day invocation CV < 1",
        "frac_invocations_cv_below_1", s["frac_invocations_cv_below_1"],
        lambda v: 0.85 <= v <= 0.97)

    s = ctx.fig4_popularity_change()["summary"]
    add("Fig 4", "aggregation leaves popularity essentially unchanged",
        "frac_changes_below_1pct", s["frac_changes_below_1pct"],
        lambda v: v >= 0.99)

    s = ctx.fig6_pool_cdfs()["summary"]
    add("Fig 6", "augmented pool tracks Azure far better than vanilla FB",
        "ks_pool_vs_azure", s["ks_pool_vs_azure"],
        lambda v: v < s["ks_vanilla_vs_azure"])

    s = ctx.fig7_memory()["summary"]
    add("Fig 7", "workload memory left of Azure apps, same magnitude",
        "faasrail_median_mb", s["faasrail_median_mb"],
        lambda v: s["azure_median_mb"] / 10 < v < s["azure_median_mb"])

    s = ctx.fig8_load_over_time()["summary"]
    add("Fig 8", "FaaSRail tracks the day's shape; Poisson does not",
        "corr_faasrail_vs_azure_thumb", s["corr_faasrail_vs_azure_thumb"],
        lambda v: v > 0.95)

    s = ctx.fig9_spec_cdf()["summary"]
    add("Fig 9", "Spec mode reproduces the invocation-duration CDF",
        "ks_relative_band", s["ks_relative_band"], lambda v: v < 0.08)

    s = ctx.fig10_popularity()["summary"]
    add("Fig 10", "popularity skew preserved (top 10% share)",
        "faasrail_top10pct_share", s["faasrail_top10pct_share"],
        lambda v: v > 0.85)

    s = ctx.fig11_smirnov()["summary"]
    add("Fig 11a", "Smirnov mode tracks Azure's distribution",
        "ks_azure", s["ks_azure"], lambda v: v < 0.08)
    add("Fig 11b", "Smirnov mode tracks Huawei (within interpolation "
        "smoothing of the 104-point staircase)",
        "ks_huawei", s["ks_huawei"], lambda v: v < 0.45)

    s = ctx.fig12_balance()["summary"]
    add("Fig 12a", "Azure-mapped load keeps >= 9 of 10 benchmarks",
        "azure_families_present", s["azure_families_present"],
        lambda v: v >= 9)
    add("Fig 12b", "Huawei-mapped load drops long-running benchmarks",
        "huawei_lr_training_share", s["huawei_lr_training_share"],
        lambda v: v == 0.0)
    return out


def run_claim_checks(ctx: FigureContext) -> list[ClaimCheck]:
    """Evaluate every paper claim on a (possibly custom-scaled) context."""
    return _checks_for(ctx)


def generate_report(ctx: FigureContext) -> str:
    """Render the claim table as a markdown document."""
    checks = run_claim_checks(ctx)
    lines = [
        "# FaaSRail reproduction report",
        "",
        f"Context: {ctx.azure_functions} Azure functions, seed {ctx.seed},"
        f" Spec target {ctx.duration_minutes} min @ {ctx.max_rps:g} RPS.",
        "",
        "| figure | claim | metric | measured | verdict |",
        "|---|---|---|---|---|",
    ]
    for c in checks:
        verdict = "pass" if c.passed else "**FAIL**"
        lines.append(
            f"| {c.figure} | {c.claim} | `{c.metric}` "
            f"| {c.value:.4g} | {verdict} |"
        )
    n_pass = sum(c.passed for c in checks)
    lines += ["", f"**{n_pass} / {len(checks)} claims reproduced.**", ""]
    return "\n".join(lines)
