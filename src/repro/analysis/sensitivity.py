"""Seed-sensitivity harness for the reproduction's key statistics.

Every headline number in EXPERIMENTS.md comes from one seed; this harness
answers "is that number stable?" by sweeping seeds through the full
pipeline and reporting mean / std / extremes of the fidelity metrics.
Used by the robustness benchmark and available from the CLI.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.core import shrink
from repro.core.spec_ops import fidelity_report
from repro.traces import synthetic_azure_trace
from repro.workloads import WorkloadPool, build_default_pool

__all__ = ["SensitivityResult", "seed_sweep"]


@dataclass(frozen=True)
class SensitivityResult:
    """Across-seed distribution of one metric."""

    metric: str
    values: tuple[float, ...]

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values))

    @property
    def worst(self) -> float:
        return float(np.max(self.values))

    @property
    def best(self) -> float:
        return float(np.min(self.values))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{self.metric}: mean={self.mean:.4f} std={self.std:.4f} "
                f"range=[{self.best:.4f}, {self.worst:.4f}]")


def seed_sweep(
    seeds: Iterable[int] | None = None,
    *,
    n_functions: int = 2_000,
    max_rps: float = 10.0,
    duration_minutes: int = 30,
    pool: WorkloadPool | None = None,
) -> dict[str, SensitivityResult]:
    """Run the full pipeline once per seed; collect fidelity metrics.

    Each seed regenerates the synthetic trace *and* the downstream
    randomness, so the spread covers both substrate and pipeline noise.
    ``seeds`` defaults to ``range(5)``.
    """
    seeds = list(seeds) if seeds is not None else list(range(5))
    if not seeds:
        raise ValueError("need at least one seed")
    pool = pool if pool is not None else build_default_pool()
    collected: dict[str, list[float]] = {}
    for seed in seeds:
        trace = synthetic_azure_trace(n_functions=n_functions, seed=seed)
        spec = shrink(trace, pool, max_rps=max_rps,
                      duration_minutes=duration_minutes, seed=seed)
        report = fidelity_report(spec, trace)
        for key in ("invocation_duration_ks", "load_shape_corr",
                    "popularity_top10pct_spec"):
            collected.setdefault(key, []).append(float(report[key]))
    return {
        key: SensitivityResult(metric=key, values=tuple(vals))
        for key, vals in collected.items()
    }
