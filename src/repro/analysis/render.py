"""Plain-text rendering of figure data (no plotting stack required)."""

from __future__ import annotations

import numpy as np

__all__ = ["render_figure", "render_series_table"]


def render_series_table(series: dict, n_points: int = 9) -> str:
    """Downsample every series to ``n_points`` aligned columns of text."""
    lines = []
    for label, (x, y) in series.items():
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        idx = np.linspace(0, x.size - 1, min(n_points, x.size)).astype(int)
        pairs = "  ".join(f"({x[i]:.3g}, {y[i]:.3g})" for i in idx)
        lines.append(f"  {label:<28} {pairs}")
    return "\n".join(lines)


def render_figure(name: str, data: dict) -> str:
    """One printable block per figure: summary scalars + sampled series."""
    lines = [f"== {name} =="]
    for key, value in data.get("summary", {}).items():
        if isinstance(value, float):
            lines.append(f"  {key:<36} {value:.4g}")
        else:
            lines.append(f"  {key:<36} {value}")
    if "families" in data:
        lines.append("  families: " + ", ".join(data["families"]))
    lines.append(render_series_table(data["series"]))
    return "\n".join(lines)
