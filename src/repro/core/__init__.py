"""FaaSRail's core: the offline shrink ray and the Smirnov Transform mode.

The :func:`shrink` / :class:`ShrinkRay` entry points implement paper
section 3 end to end; :func:`generate` forwards to the online load
generator so the two-step "spec then replay" flow is one import away.
"""

from typing import TYPE_CHECKING

from repro.core.aggregation import AggregationAudit, aggregate_functions
from repro.core.mapping import FunctionMapping, map_functions
from repro.core.rate_scaling import scale_request_rate
from repro.core.shrinkray import ShrinkRay, ShrinkReport, shrink
from repro.core.smirnov import SmirnovSample, smirnov_request_sample
from repro.core.spec import ExperimentSpec, SpecEntry
from repro.core.spec_ops import (
    fidelity_report,
    filter_spec,
    merge_specs,
    rescale_spec,
)
from repro.core.time_scaling import minute_range_scale, thumbnail_scale
from repro.core.variable_input import build_variant_table, sample_variants

if TYPE_CHECKING:
    from typing import Any

    import numpy as np

    from repro.loadgen.generator import RequestTrace

__all__ = [
    "AggregationAudit",
    "ExperimentSpec",
    "FunctionMapping",
    "ShrinkRay",
    "ShrinkReport",
    "SmirnovSample",
    "SpecEntry",
    "aggregate_functions",
    "build_variant_table",
    "fidelity_report",
    "filter_spec",
    "generate",
    "map_functions",
    "merge_specs",
    "rescale_spec",
    "sample_variants",
    "minute_range_scale",
    "scale_request_rate",
    "shrink",
    "smirnov_request_sample",
    "thumbnail_scale",
]


def generate(
    spec: "ExperimentSpec",
    seed: "int | np.random.Generator" = 0,
    **kwargs: "Any",
) -> "RequestTrace":
    """Generate a request trace from a spec (see
    :func:`repro.loadgen.generate_request_trace`)."""
    from repro.loadgen import generate_request_trace

    return generate_request_trace(spec, seed=seed, **kwargs)
