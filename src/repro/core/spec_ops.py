"""Operations over experiment specs.

Specs are the shareable artifact of FaaSRail's "consistent evaluation"
goal; these helpers cover the lifecycle around them: re-targeting the
rate of an existing spec, merging specs (multi-trace experiments),
filtering to a subset of Functions, and producing a fidelity report
against the source trace without re-running the pipeline.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.core.rate_scaling import scale_request_rate
from repro.core.spec import ExperimentSpec, SpecEntry
from repro.stats.distance import ks_relative_band
from repro.traces.model import Trace

__all__ = [
    "fidelity_report",
    "filter_spec",
    "merge_specs",
    "rescale_spec",
]


def rescale_spec(
    spec: ExperimentSpec,
    new_max_rps: float,
    seed: int | np.random.Generator = 0,
) -> ExperimentSpec:
    """Re-target an existing spec's maximum request rate (downscale only).

    Avoids re-running aggregation/mapping when only the load volume
    changes between experiments.
    """
    rng = np.random.default_rng(seed)
    matrix = scale_request_rate(spec.per_minute, new_max_rps, rng)
    return ExperimentSpec(
        name=f"{spec.name}->rescaled@{new_max_rps:g}rps",
        source_trace=spec.source_trace,
        max_rps=new_max_rps,
        entries=list(spec.entries),
        per_minute=matrix,
        metadata={**spec.metadata, "rescaled_from_rps": spec.max_rps},
    )


def merge_specs(a: ExperimentSpec, b: ExperimentSpec) -> ExperimentSpec:
    """Union of two specs' Functions (multi-trace / multi-tenant load).

    Both specs must share the experiment duration; function ids must be
    disjoint (prefix them before merging if they collide).  The merged
    ``max_rps`` is the realised busiest minute, not the sum of the inputs'
    targets.
    """
    if a.duration_minutes != b.duration_minutes:
        raise ValueError(
            f"durations differ: {a.duration_minutes} vs "
            f"{b.duration_minutes} minutes"
        )
    ids_a = {e.function_id for e in a.entries}
    clash = ids_a & {e.function_id for e in b.entries}
    if clash:
        raise ValueError(
            f"function ids collide across specs (e.g. {sorted(clash)[:3]}); "
            "prefix them before merging"
        )
    matrix = np.vstack([a.per_minute, b.per_minute])
    busiest = int(matrix.sum(axis=0, dtype=np.int64).max())
    return ExperimentSpec(
        name=f"merge({a.name}, {b.name})",
        source_trace=f"{a.source_trace}+{b.source_trace}",
        max_rps=max(busiest / 60.0, 1e-9),
        entries=list(a.entries) + list(b.entries),
        per_minute=matrix,
        metadata={"merged_from": [a.name, b.name]},
    )


def filter_spec(
    spec: ExperimentSpec, predicate: Callable[[SpecEntry], bool]
) -> ExperimentSpec:
    """Spec restricted to the entries where ``predicate(entry)`` holds."""
    keep = [i for i, e in enumerate(spec.entries) if predicate(e)]
    if not keep:
        raise ValueError("predicate removed every entry")
    entries = [spec.entries[i] for i in keep]
    matrix = spec.per_minute[keep]
    busiest = int(matrix.sum(axis=0, dtype=np.int64).max())
    return ExperimentSpec(
        name=f"{spec.name}/filtered",
        source_trace=spec.source_trace,
        max_rps=max(busiest / 60.0, 1e-9),
        entries=entries,
        per_minute=matrix,
        metadata={**spec.metadata, "filtered_from": spec.name},
    )


def fidelity_report(spec: ExperimentSpec, trace: Trace) -> dict[str, float]:
    """How faithfully a spec downscales its source trace.

    Returns the three statistics the paper's evaluation revolves around:
    invocation-duration band-KS (tolerant to sub-threshold relative shifts),
    aggregate-load-shape correlation against the trace's thumbnail, and
    the top-decile popularity share gap.
    """
    from repro.core.time_scaling import thumbnail_scale
    from repro.stats.popularity import popularity_curve

    counts = trace.invocations_per_function.astype(float)
    mask = counts > 0
    if not mask.any():
        raise ValueError("trace has no invocations")
    req = spec.requests_per_function.astype(float)
    live = req > 0
    if not live.any():
        raise ValueError("spec carries no requests")

    ks = ks_relative_band(
        spec.runtimes_ms[live], trace.durations_ms[mask],
        x_weights=req[live], y_weights=counts[mask],
    )
    target = thumbnail_scale(
        trace.per_minute, spec.duration_minutes
    ).sum(axis=0).astype(float)
    corr = float(np.corrcoef(
        spec.aggregate_per_minute.astype(float), target)[0, 1])

    def top_decile(vals: np.ndarray) -> float:
        x, y = popularity_curve(vals)
        return float(y[np.searchsorted(x, 0.10, side="left")])

    return {
        "invocation_duration_ks": float(ks),
        "load_shape_corr": corr,
        "popularity_top10pct_trace": top_decile(counts[mask]),
        "popularity_top10pct_spec": top_decile(req[live]),
        "total_requests": spec.total_requests,
        "busiest_minute": spec.busiest_minute_rate,
    }
