"""Request-rate scaling (paper section 3.2.1.1).

Normalises the per-minute invocation matrix so that the *busiest* aggregate
minute approximates a user-given maximum request rate and no minute ever
exceeds it, while preserving the per-function and aggregate rate trends.

Each minute's scaled aggregate target is distributed back over functions
with a multinomial draw whose probabilities are the functions' shares of
that minute's original traffic -- an unbiased downsampling of the trace
(every function keeps its expected share; integer counts come out exact per
minute).
"""

from __future__ import annotations

import numpy as np

__all__ = ["scale_request_rate"]


def scale_request_rate(
    per_minute: np.ndarray,
    max_rps: float,
    rng: np.random.Generator,
    *,
    chunk: int = 128,
) -> np.ndarray:
    """Downscale ``per_minute`` so the busiest minute hits ``max_rps``.

    Parameters
    ----------
    per_minute:
        ``(n_functions, n_minutes)`` integer invocation counts.
    max_rps:
        Target maximum request rate (requests per *second*); the busiest
        experiment minute is normalised to ``max_rps * 60`` requests.
    rng:
        Generator driving the multinomial redistribution.
    chunk:
        Minutes per multinomial batch (bounds the transient pvals buffer).

    Returns
    -------
    numpy.ndarray
        Scaled ``(n_functions, n_minutes)`` int64 matrix.  Every column sum
        is ``round(original_share * cap)`` and never exceeds the cap; row
        trends follow the original trace in expectation.

    Notes
    -----
    Scaling *up* (a cap above the trace's busiest minute) is rejected: the
    tool downsamples traces, it does not fabricate load the trace never had.
    """
    per_minute = np.asarray(per_minute)
    if per_minute.ndim != 2:
        raise ValueError("per_minute must be 2-D")
    if max_rps <= 0:
        raise ValueError(f"max_rps must be positive, got {max_rps}")

    agg = per_minute.sum(axis=0, dtype=np.int64)
    busiest = int(agg.max())
    if busiest == 0:
        raise ValueError("trace has no invocations")
    cap = max_rps * 60.0
    if cap >= busiest:
        raise ValueError(
            f"target max rate ({cap:.0f}/min) is not below the trace's "
            f"busiest minute ({busiest}/min); nothing to downscale"
        )

    factor = cap / busiest
    n_minutes = per_minute.shape[1]
    targets = np.floor(agg * factor + 0.5).astype(np.int64)
    # floor+0.5 rounding can only reach cap at the busiest minute itself;
    # clamp defensively so the invariant is unconditional.
    targets = np.minimum(targets, int(cap))

    out = np.zeros_like(per_minute, dtype=np.int64)
    for lo in range(0, n_minutes, chunk):
        hi = min(lo + chunk, n_minutes)
        block = per_minute[:, lo:hi].T.astype(np.float64)  # (m, n_functions)
        sums = block.sum(axis=1, keepdims=True)
        live = sums[:, 0] > 0
        if not live.any():
            continue
        pvals = block[live] / sums[live]
        draws = rng.multinomial(targets[lo:hi][live], pvals)
        cols = np.flatnonzero(live) + lo
        out[:, cols] = draws.T
    return out
