"""Variable input per Function (paper section 3.3, future work).

In its published form FaaSRail maps each Function to a *single*
(function, input) Workload, so every invocation of that Function runs the
same input and the expected execution time never varies.  The paper lists
varying the input across invocations as a next step; this module
implements it:

- :func:`build_variant_table` associates each Function with up to
  ``max_variants`` pool Workloads inside the error threshold (weights
  favouring the runtime-closest candidates), falling back to the single
  nearest Workload exactly like the base mapping;
- the table serialises into ``ExperimentSpec.metadata["variants"]`` so
  variable-input specs stay ordinary JSON;
- :func:`sample_variants` draws a concrete Workload per request at
  generation time.

Because every variant's runtime is inside the threshold band, the
invocation-duration CDF stays within the same fidelity envelope as the
fixed-input mapping -- now with genuine per-invocation input diversity.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.traces.model import Trace
from repro.workloads.pool import WorkloadPool

__all__ = ["build_variant_table", "sample_variants"]


def build_variant_table(
    trace: Trace,
    pool: WorkloadPool,
    *,
    error_threshold_pct: float = 10.0,
    max_variants: int = 4,
) -> list[list[dict[str, Any]]]:
    """Per-Function candidate Workloads with sampling weights.

    Returns a JSON-able table aligned with ``trace``'s functions: each row
    is a list of ``{workload_id, family, runtime_ms, memory_mb, weight}``
    dicts whose weights sum to 1.  Weights are inverse-distance in
    relative-runtime space, so the closest input is the most likely but
    the rest of the threshold band genuinely occurs.
    """
    if max_variants <= 0:
        raise ValueError("max_variants must be positive")
    if error_threshold_pct < 0:
        raise ValueError("error_threshold_pct must be non-negative")
    runtimes = pool.runtimes_ms
    table: list[list[dict[str, Any]]] = []
    for target in trace.durations_ms:
        cand = pool.within_threshold(float(target), error_threshold_pct)
        if cand.size == 0:
            cand = np.array([pool.nearest(float(target))])
        rel_err = np.abs(runtimes[cand] - target) / target
        order = np.argsort(rel_err)[:max_variants]
        chosen = cand[order]
        weights = 1.0 / (1.0 + rel_err[order] / max(error_threshold_pct, 1e-9) * 100.0)
        weights = weights / weights.sum()
        table.append([
            {
                "workload_id": pool.workloads[int(k)].workload_id,
                "family": pool.workloads[int(k)].family,
                "runtime_ms": float(pool.workloads[int(k)].runtime_ms),
                "memory_mb": float(pool.workloads[int(k)].memory_mb),
                "weight": float(w),
            }
            for k, w in zip(chosen, weights)
        ])
    return table


def sample_variants(
    table: list[list[dict[str, Any]]],
    fn_idx: np.ndarray,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Draw one variant per request.

    Parameters
    ----------
    table:
        Output of :func:`build_variant_table` (or the deserialised
        ``metadata["variants"]``).
    fn_idx:
        Per-request Function index into ``table``.

    Returns
    -------
    (workload_ids, runtimes_ms, families):
        Per-request arrays, variant-resolved.
    """
    fn_idx = np.asarray(fn_idx)
    if fn_idx.size == 0:
        raise ValueError("no requests to sample variants for")
    if fn_idx.min() < 0 or fn_idx.max() >= len(table):
        raise ValueError("function index outside the variant table")

    # Flatten the ragged table into parallel arrays + per-function offsets.
    counts = np.array([len(row) for row in table])
    if np.any(counts == 0):
        raise ValueError("every Function needs at least one variant")
    offsets = np.concatenate(([0], np.cumsum(counts)))
    flat_ids = np.array([v["workload_id"] for row in table for v in row])
    flat_rt = np.array([v["runtime_ms"] for row in table for v in row])
    flat_fam = np.array([v["family"] for row in table for v in row])
    flat_w = np.array([v["weight"] for row in table for v in row])
    # Per-function cumulative weights for vectorised inverse sampling.
    cumw = np.cumsum(flat_w)
    row_tot = cumw[offsets[1:] - 1]
    row_base = np.concatenate(([0.0], cumw[offsets[1:-1] - 1]))

    u = rng.random(fn_idx.size)
    targets = row_base[fn_idx] + u * (row_tot[fn_idx] - row_base[fn_idx])
    picks = np.searchsorted(cumw, targets, side="right")
    # Clamp inside each function's own slice (guards the u ~ 1.0 edge).
    picks = np.minimum(picks, offsets[fn_idx + 1] - 1)
    picks = np.maximum(picks, offsets[fn_idx])
    return flat_ids[picks], flat_rt[picks], flat_fam[picks]
