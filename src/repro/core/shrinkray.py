"""The offline "shrink ray": end-to-end experiment-spec construction.

Wires the methodology of paper section 3 together, in the order of its
Figure 2:

1. aggregate the input trace's functions into super-Functions
   (:mod:`repro.core.aggregation`);
2. scale the day down in time -- thumbnails or minute-range
   (:mod:`repro.core.time_scaling`);
3. scale the request rate down to the target maximum RPS
   (:mod:`repro.core.rate_scaling`);
4. map every Function to a pool Workload (:mod:`repro.core.mapping`);
5. emit a replayable :class:`~repro.core.spec.ExperimentSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.aggregation import AggregationAudit, aggregate_functions
from repro.core.mapping import FunctionMapping, map_functions
from repro.core.rate_scaling import scale_request_rate
from repro.core.spec import ExperimentSpec, SpecEntry
from repro.core.time_scaling import thumbnail_scale
from repro.telemetry import registry as _telemetry
from repro.traces.model import Trace
from repro.traces.streaming import StreamingTraceSummary
from repro.workloads.pool import WorkloadPool

if TYPE_CHECKING:
    from repro.cache import ContentCache

__all__ = ["ShrinkRay", "ShrinkReport", "shrink"]


@dataclass
class ShrinkReport:
    """Everything a run produced besides the spec itself (for analysis)."""

    aggregation_audit: AggregationAudit
    mapping: FunctionMapping
    aggregated_trace: Trace


@dataclass
class ShrinkRay:
    """Configured offline pipeline.

    Parameters
    ----------
    error_threshold_pct:
        Mapping error threshold (section 3.1.3).
    quantize_ms:
        Duration quantisation for the aggregation stage.
    time_mode:
        ``"thumbnails"`` (default; whole-day miniature) or
        ``"minute-range"`` (verbatim window).
    range_start_minute:
        First trace minute of the window in minute-range mode.
    aggregate:
        Disable to skip the aggregation stage (ablation knob).
    balance:
        Disable balance-aware workload selection (ablation knob).
    variable_input:
        Attach a per-Function variant table to the spec
        (``metadata["variants"]``) so each invocation samples among
        threshold-compatible inputs instead of replaying one fixed input
        -- the paper's section-3.3 extension.
    max_variants:
        Variant-table width when ``variable_input`` is set.
    memory_aware:
        Bias workload selection (inside the runtime threshold) toward
        candidates whose memory footprint matches the trace's app-memory
        distribution -- the section-3.3 memory-fidelity extension.
        Requires the input trace to report app memory.
    memory_weight:
        Near-closest runtime band width (percentage points) for the
        memory tie-break; see :func:`repro.core.mapping.map_functions`.
    jobs:
        Worker processes for the sharded aggregation and mapping stages
        (``None``/1 = sequential, 0 = all cores).  Purely an execution
        knob: the spec is byte-identical for any value.
    shards:
        Shard-count override for those stages (default: data-sized).
        Same ``shards`` = same spec, whatever ``jobs`` is.
    """

    error_threshold_pct: float = 10.0
    quantize_ms: float = 1.0
    time_mode: str = "thumbnails"
    range_start_minute: int = 0
    aggregate: bool = True
    balance: bool = True
    variable_input: bool = False
    max_variants: int = 4
    memory_aware: bool = False
    memory_weight: float = 2.0
    jobs: int | None = None
    shards: int | None = None
    _last_report: ShrinkReport | None = field(
        default=None, init=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.time_mode not in ("thumbnails", "minute-range"):
            raise ValueError(
                f"unknown time mode {self.time_mode!r}; expected "
                "'thumbnails' or 'minute-range'"
            )

    @property
    def last_report(self) -> ShrinkReport:
        """Diagnostics of the most recent :meth:`run` call."""
        if self._last_report is None:
            raise RuntimeError("run() has not been called yet")
        return self._last_report

    def _cache_key(
        self,
        trace: Trace | StreamingTraceSummary,
        pool: WorkloadPool,
        max_rps: float,
        duration_minutes: int,
        seed: int,
    ) -> str:
        from repro.cache import code_version, fingerprint

        # A streaming summary fingerprints through its accumulated state
        # plus every sketch parameter and the chunk-schema version (see
        # docs/EXTENDING.md): summaries of the same content built with
        # different sketch configurations must never share cache entries.
        trace_part: object = (
            trace.fingerprint_parts()
            if isinstance(trace, StreamingTraceSummary) else trace
        )
        config = {
            "error_threshold_pct": self.error_threshold_pct,
            "quantize_ms": self.quantize_ms,
            "time_mode": self.time_mode,
            "range_start_minute": self.range_start_minute,
            "aggregate": self.aggregate,
            "balance": self.balance,
            "variable_input": self.variable_input,
            "max_variants": self.max_variants,
            "memory_aware": self.memory_aware,
            "memory_weight": self.memory_weight,
            "shards": self.shards,
        }
        return fingerprint(
            "shrinkray", code_version(), config, trace_part,
            pool.fingerprint_parts(),
            max_rps, duration_minutes, seed,
        )

    def _aggregate_summary(
        self, summary: StreamingTraceSummary
    ) -> tuple[Trace, AggregationAudit]:
        """Adapt a streaming summary into the aggregation stage's output.

        The summary already holds the super-Function groups (exact
        integer rate matrix, invocation-weighted durations), so this is
        a reshape, not a recomputation.  The audit is group-level: the
        summary does not retain per-original-function shares (that is
        the point of streaming), so original and aggregated sides
        coincide.
        """
        if not self.aggregate:
            raise ValueError(
                "streaming summaries are pre-aggregated; aggregate=False "
                "requires a materialised Trace"
            )
        if summary.quantize_ms != self.quantize_ms:
            raise ValueError(
                f"summary was accumulated at quantize_ms="
                f"{summary.quantize_ms:g} but this ShrinkRay expects "
                f"{self.quantize_ms:g}; re-ingest with matching "
                "quantisation"
            )
        keys, _matrix, counts, _durations, sizes = (
            summary.aggregated_groups()
        )
        shares = counts.astype(np.float64) / counts.sum()
        audit = AggregationAudit(
            original_keys=keys,
            original_shares=shares,
            aggregated_keys=keys,
            aggregated_shares=shares,
            group_sizes=sizes,
        )
        return summary.to_aggregated_trace(), audit

    def run(
        self,
        trace: Trace | StreamingTraceSummary,
        pool: WorkloadPool,
        *,
        max_rps: float,
        duration_minutes: int,
        seed: int | np.random.Generator = 0,
        cache: ContentCache | None = None,
    ) -> ExperimentSpec:
        """Produce an experiment spec for ``trace`` against ``pool``.

        ``trace`` may be a materialised :class:`~repro.traces.model.Trace`
        or a :class:`~repro.traces.streaming.StreamingTraceSummary` built
        by one bounded-memory pass over the raw CSVs -- the two paths
        share every stage after aggregation, and their exact integer
        statistics (rate matrix, per-group invocation counts) are
        byte-identical (pinned by ``tests/test_streaming_equivalence``).

        ``max_rps`` and ``duration_minutes`` are the two user inputs of the
        paper's interface: the target maximum request rate and the target
        total experiment duration.

        ``cache`` -- a :class:`repro.cache.ContentCache` -- memoises the
        finished spec under a fingerprint of trace content, pool,
        configuration, inputs, seed, and code version.  A warm hit
        returns the stored spec byte-identical to a cold run but skips
        every stage, so :attr:`last_report` diagnostics are unavailable
        for cached results.  Generator seeds bypass the cache (their
        state is not fingerprintable); integer seeds use it.
        """
        if duration_minutes <= 0:
            raise ValueError("duration_minutes must be positive")

        key = None
        if cache is not None and isinstance(seed, (int, np.integer)):
            key = self._cache_key(trace, pool, max_rps, duration_minutes,
                                  int(seed))
            try:
                cached: ExperimentSpec = cache.get(key)
            except KeyError:
                pass
            else:
                self._last_report = None
                return cached

        rng = np.random.default_rng(seed)

        if isinstance(trace, StreamingTraceSummary):
            working, audit = self._aggregate_summary(trace)
        elif self.aggregate:
            working, audit = aggregate_functions(
                trace.nonzero_functions(), quantize_ms=self.quantize_ms,
                jobs=self.jobs, shards=self.shards,
            )
        else:
            working = trace.nonzero_functions()
            counts = working.invocations_per_function.astype(np.float64)
            shares = counts / counts.sum()
            keys = np.arange(working.n_functions)
            audit = AggregationAudit(
                original_keys=keys,
                original_shares=shares,
                aggregated_keys=keys,
                aggregated_shares=shares,
                group_sizes=np.ones(working.n_functions, dtype=np.int64),
            )

        # Time scaling first, so the rate cap applies to the experiment's
        # wall-clock minutes (the busiest *experiment* minute is what the
        # user's max_rps bounds).
        with _telemetry.stage("shrinkray_scaling",
                              "wall time of time + rate scaling"):
            if self.time_mode == "thumbnails":
                matrix = thumbnail_scale(working.per_minute,
                                         duration_minutes)
            else:
                window = working.minute_range(
                    self.range_start_minute,
                    self.range_start_minute + duration_minutes,
                )
                matrix = window.per_minute.astype(np.int64)

            matrix = scale_request_rate(matrix, max_rps, rng)

        memory_targets = None
        if self.memory_aware:
            if isinstance(trace, StreamingTraceSummary):
                # Raises with context if no app memory was observed.
                mem_cdf = trace.memory_cdf()
            elif not trace.app_memory_mb:
                raise ValueError(
                    "memory_aware shrinking needs a trace that reports app "
                    "memory"
                )
            else:
                from repro.stats.ecdf import EmpiricalCDF

                mem_cdf = EmpiricalCDF.from_samples(
                    trace.memory_per_app_array()
                )
            memory_targets = np.asarray(
                mem_cdf.quantile(rng.random(working.n_functions))
            )

        with _telemetry.stage("shrinkray_mapping",
                              "wall time of the mapping stage"):
            mapping = map_functions(
                working,
                pool,
                error_threshold_pct=self.error_threshold_pct,
                balance=self.balance,
                memory_targets=memory_targets,
                memory_weight=self.memory_weight,
                jobs=self.jobs,
                shards=self.shards,
            )

        entries = [
            SpecEntry(
                function_id=str(working.function_ids[i]),
                workload_id=mapping.workload_ids[i],
                family=pool.workloads[int(mapping.workload_indices[i])].family,
                runtime_ms=float(mapping.mapped_runtime_ms[i]),
                memory_mb=pool.workloads[
                    int(mapping.workload_indices[i])
                ].memory_mb,
            )
            for i in range(working.n_functions)
        ]
        variants = None
        if self.variable_input:
            from repro.core.variable_input import build_variant_table

            variants = build_variant_table(
                working, pool,
                error_threshold_pct=self.error_threshold_pct,
                max_variants=self.max_variants,
            )
        spec = ExperimentSpec(
            name=f"{trace.name}/{duration_minutes}min@{max_rps:g}rps",
            source_trace=trace.name,
            max_rps=max_rps,
            entries=entries,
            per_minute=matrix,
            metadata={
                "error_threshold_pct": self.error_threshold_pct,
                "quantize_ms": self.quantize_ms,
                "time_mode": self.time_mode,
                "range_start_minute": self.range_start_minute,
                "aggregate": self.aggregate,
                "balance": self.balance,
                "n_fallbacks": mapping.n_fallbacks,
                "source_functions": trace.n_functions,
                "source_invocations": trace.total_invocations,
            },
        )
        if variants is not None:
            spec.metadata["variants"] = variants
        self._last_report = ShrinkReport(
            aggregation_audit=audit,
            mapping=mapping,
            aggregated_trace=working,
        )
        reg = _telemetry.active()
        if reg is not None:
            reg.counter("shrinkray_runs_total",
                        "cold shrink-ray pipeline executions").inc()
            if isinstance(trace, StreamingTraceSummary):
                reg.counter("shrinkray_streaming_runs_total",
                            "shrink-ray runs fed by a streaming "
                            "summary").inc()
            reg.gauge("shrinkray_spec_requests",
                      "total requests of the last produced spec"
                      ).set(spec.total_requests)
        if key is not None:
            cache.put(key, spec)
        return spec


def shrink(
    trace: Trace | StreamingTraceSummary,
    pool: WorkloadPool,
    *,
    max_rps: float,
    duration_minutes: int,
    seed: int | np.random.Generator = 0,
    cache: ContentCache | None = None,
    **config: Any,
) -> ExperimentSpec:
    """One-call convenience over :class:`ShrinkRay` with default config."""
    return ShrinkRay(**config).run(
        trace, pool, max_rps=max_rps, duration_minutes=duration_minutes,
        seed=seed, cache=cache,
    )
