"""Trace-function aggregation into "super-Functions".

Paper section 3.1.2 ("Aggregation"): all trace functions with the same
reported mean execution duration are merged into one super-Function whose
invocation series is the sum of its members'.  This collapses Azure's ~50K
functions into ~12.7K Functions while *exactly* preserving the
invocation-weighted duration distribution, and -- as Figure 4 shows -- with
negligible distortion of function popularity.

The audit object returned alongside the aggregated trace carries everything
the Figure-4 analysis needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.popularity import popularity_change_cdf, popularity_shares
from repro.traces.model import Trace

__all__ = ["AggregationAudit", "aggregate_functions"]


@dataclass(frozen=True)
class AggregationAudit:
    """Bookkeeping from one aggregation pass (drives paper Figure 4)."""

    #: Quantised duration key of each *original* function.
    original_keys: np.ndarray
    #: Popularity share of each original function.
    original_shares: np.ndarray
    #: Quantised duration key of each super-Function.
    aggregated_keys: np.ndarray
    #: Popularity share of each super-Function.
    aggregated_shares: np.ndarray
    #: Members per super-Function.
    group_sizes: np.ndarray

    @property
    def n_original(self) -> int:
        return int(self.original_keys.size)

    @property
    def n_aggregated(self) -> int:
        return int(self.aggregated_keys.size)

    def popularity_change_series(self):
        """Sorted popularity changes + CDF probabilities (Figure 4)."""
        return popularity_change_cdf(
            self.original_shares,
            self.original_keys,
            self.aggregated_shares,
            self.aggregated_keys,
        )


def aggregate_functions(
    trace: Trace,
    *,
    quantize_ms: float = 1.0,
) -> tuple[Trace, AggregationAudit]:
    """Merge functions sharing a (quantised) mean execution duration.

    Parameters
    ----------
    trace:
        Single-day input trace.
    quantize_ms:
        Duration quantisation step.  Azure reports millisecond-granularity
        averages, so 1.0 reproduces the paper's grouping; pass a smaller
        step to aggregate less aggressively (ablation knob).

    Returns
    -------
    (aggregated_trace, audit):
        The super-Function trace (durations set to each group's
        invocation-weighted mean; per-minute rows summed) and the
        popularity audit.
    """
    if quantize_ms <= 0:
        raise ValueError(f"quantize_ms must be positive, got {quantize_ms}")

    # Quantised duration keys.  Round-half-away from the raw average, with a
    # floor of one step so sub-quantum functions keep a positive duration.
    keys = np.maximum(
        np.round(trace.durations_ms / quantize_ms), 1.0
    ).astype(np.int64)

    uniq_keys, inverse = np.unique(keys, return_inverse=True)
    n_groups = uniq_keys.size

    # Segment-sum the per-minute matrix: one scatter-add, no Python loop
    # over functions.
    agg_matrix = np.zeros((n_groups, trace.n_minutes), dtype=np.int64)
    np.add.at(agg_matrix, inverse, trace.per_minute.astype(np.int64))

    counts = trace.invocations_per_function.astype(np.float64)
    group_counts = np.zeros(n_groups)
    np.add.at(group_counts, inverse, counts)

    # Invocation-weighted mean duration per group (falls back to the plain
    # mean for groups that were never invoked).
    weighted_dur = np.zeros(n_groups)
    np.add.at(weighted_dur, inverse, trace.durations_ms * counts)
    plain_sum = np.zeros(n_groups)
    np.add.at(plain_sum, inverse, trace.durations_ms)
    group_sizes = np.bincount(inverse, minlength=n_groups)
    durations = np.where(
        group_counts > 0,
        weighted_dur / np.where(group_counts > 0, group_counts, 1.0),
        plain_sum / group_sizes,
    )

    total = counts.sum()
    if total <= 0:
        raise ValueError("trace has no invocations to aggregate")
    audit = AggregationAudit(
        original_keys=keys,
        original_shares=popularity_shares(counts),
        aggregated_keys=uniq_keys,
        aggregated_shares=group_counts / total,
        group_sizes=group_sizes,
    )

    aggregated = Trace(
        name=f"{trace.name}/aggregated",
        function_ids=np.array([f"sf-{k}" for k in uniq_keys]),
        app_ids=np.array([f"sf-app-{k}" for k in uniq_keys]),
        durations_ms=durations,
        per_minute=agg_matrix.astype(np.int64),
        app_memory_mb={},
    )
    return aggregated, audit
