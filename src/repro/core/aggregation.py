"""Trace-function aggregation into "super-Functions".

Paper section 3.1.2 ("Aggregation"): all trace functions with the same
reported mean execution duration are merged into one super-Function whose
invocation series is the sum of its members'.  This collapses Azure's ~50K
functions into ~12.7K Functions while *exactly* preserving the
invocation-weighted duration distribution, and -- as Figure 4 shows -- with
negligible distortion of function popularity.

The audit object returned alongside the aggregated trace carries everything
the Figure-4 analysis needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel import auto_shards, map_shards, shard_bounds
from repro.stats.popularity import popularity_change_cdf, popularity_shares
from repro.telemetry import registry as _telemetry
from repro.traces.model import Trace

__all__ = ["AggregationAudit", "aggregate_functions"]

#: Functions per shard below which sharding is pointless (the segment
#: sums are a handful of vector ops).  Shard count is derived from the
#: trace size only -- never from ``jobs`` -- so results are identical for
#: any worker count (see :mod:`repro.parallel`).
_MIN_FUNCTIONS_PER_SHARD = 256


@dataclass(frozen=True)
class AggregationAudit:
    """Bookkeeping from one aggregation pass (drives paper Figure 4)."""

    #: Quantised duration key of each *original* function.
    original_keys: np.ndarray
    #: Popularity share of each original function.
    original_shares: np.ndarray
    #: Quantised duration key of each super-Function.
    aggregated_keys: np.ndarray
    #: Popularity share of each super-Function.
    aggregated_shares: np.ndarray
    #: Members per super-Function.
    group_sizes: np.ndarray

    @property
    def n_original(self) -> int:
        return int(self.original_keys.size)

    @property
    def n_aggregated(self) -> int:
        return int(self.aggregated_keys.size)

    def popularity_change_series(self) -> tuple[np.ndarray, np.ndarray]:
        """Sorted popularity changes + CDF probabilities (Figure 4)."""
        return popularity_change_cdf(
            self.original_shares,
            self.original_keys,
            self.aggregated_shares,
            self.aggregated_keys,
        )


def _aggregate_shard(
    args: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray,
           np.ndarray]:
    """Segment-sum one contiguous slice of functions by duration key.

    Module-level so it pickles into pool workers.  Returns the shard's
    own unique keys plus its partial sums, merged key-wise by the caller
    in shard order.
    """
    keys, per_minute, durations, counts = args
    uniq, inverse = np.unique(keys, return_inverse=True)
    matrix = np.zeros((uniq.size, per_minute.shape[1]), dtype=np.int64)
    np.add.at(matrix, inverse, per_minute)
    group_counts = np.zeros(uniq.size)
    np.add.at(group_counts, inverse, counts)
    weighted_dur = np.zeros(uniq.size)
    np.add.at(weighted_dur, inverse, durations * counts)
    plain_sum = np.zeros(uniq.size)
    np.add.at(plain_sum, inverse, durations)
    sizes = np.bincount(inverse, minlength=uniq.size)
    return uniq, matrix, group_counts, weighted_dur, plain_sum, sizes


def aggregate_functions(
    trace: Trace,
    *,
    quantize_ms: float = 1.0,
    jobs: int | None = None,
    shards: int | None = None,
) -> tuple[Trace, AggregationAudit]:
    """Merge functions sharing a (quantised) mean execution duration.

    Parameters
    ----------
    trace:
        Single-day input trace.
    quantize_ms:
        Duration quantisation step.  Azure reports millisecond-granularity
        averages, so 1.0 reproduces the paper's grouping; pass a smaller
        step to aggregate less aggressively (ablation knob).
    jobs:
        Worker processes for the sharded segment sums (``None``/1 =
        sequential, 0 = all cores).  The result is identical for any
        value: shard layout depends only on the trace and ``shards``.
    shards:
        Shard-count override (defaults to a data-sized choice).  Part of
        the deterministic contract: the same ``shards`` always yields
        bit-identical output, whatever ``jobs`` is.

    Returns
    -------
    (aggregated_trace, audit):
        The super-Function trace (durations set to each group's
        invocation-weighted mean; per-minute rows summed) and the
        popularity audit.
    """
    if quantize_ms <= 0:
        raise ValueError(f"quantize_ms must be positive, got {quantize_ms}")

    with _telemetry.stage("shrinkray_aggregation",
                          "wall time of the aggregation stage"):
        return _aggregate(trace, quantize_ms=quantize_ms, jobs=jobs,
                          shards=shards)


def _aggregate(
    trace: Trace,
    *,
    quantize_ms: float,
    jobs: int | None,
    shards: int | None,
) -> tuple[Trace, AggregationAudit]:
    # Quantised duration keys.  Round-half-away from the raw average, with a
    # floor of one step so sub-quantum functions keep a positive duration.
    keys = np.maximum(
        np.round(trace.durations_ms / quantize_ms), 1.0
    ).astype(np.int64)

    counts = trace.invocations_per_function.astype(np.float64)
    per_minute = trace.per_minute.astype(np.int64)

    n_shards = shards if shards is not None else auto_shards(
        trace.n_functions, min_per_shard=_MIN_FUNCTIONS_PER_SHARD
    ) or 1
    results = map_shards(
        _aggregate_shard,
        [
            (keys[lo:hi], per_minute[lo:hi],
             trace.durations_ms[lo:hi], counts[lo:hi])
            for lo, hi in shard_bounds(trace.n_functions, n_shards)
        ],
        jobs=jobs,
    )

    uniq_keys = np.unique(np.concatenate([r[0] for r in results]))
    n_groups = uniq_keys.size
    agg_matrix = np.zeros((n_groups, trace.n_minutes), dtype=np.int64)
    group_counts = np.zeros(n_groups)
    weighted_dur = np.zeros(n_groups)
    plain_sum = np.zeros(n_groups)
    group_sizes = np.zeros(n_groups, dtype=np.int64)
    # Ordered reduction: shard partials land in shard order, keeping the
    # floating-point accumulation order fixed for a given shard layout.
    for uniq, matrix, gc, wd, ps, sz in results:
        idx = np.searchsorted(uniq_keys, uniq)
        agg_matrix[idx] += matrix
        group_counts[idx] += gc
        weighted_dur[idx] += wd
        plain_sum[idx] += ps
        group_sizes[idx] += sz

    # Invocation-weighted mean duration per group (falls back to the plain
    # mean for groups that were never invoked).
    durations = np.where(
        group_counts > 0,
        weighted_dur / np.where(group_counts > 0, group_counts, 1.0),
        plain_sum / group_sizes,
    )

    total = counts.sum()
    if total <= 0:
        raise ValueError("trace has no invocations to aggregate")
    audit = AggregationAudit(
        original_keys=keys,
        original_shares=popularity_shares(counts),
        aggregated_keys=uniq_keys,
        aggregated_shares=group_counts / total,
        group_sizes=group_sizes,
    )

    aggregated = Trace(
        name=f"{trace.name}/aggregated",
        function_ids=np.array([f"sf-{k}" for k in uniq_keys]),
        app_ids=np.array([f"sf-app-{k}" for k in uniq_keys]),
        durations_ms=durations,
        per_minute=agg_matrix.astype(np.int64),
        app_memory_mb={},
    )
    reg = _telemetry.active()
    if reg is not None:
        reg.counter("aggregation_functions_in_total",
                    "functions entering the aggregation stage"
                    ).inc(trace.n_functions)
        reg.counter("aggregation_functions_out_total",
                    "super-Functions leaving the aggregation stage"
                    ).inc(n_groups)
    return aggregated, audit
