"""Function-to-Workload mapping (paper section 3.1.3).

Given the aggregated trace Functions and the augmented Workload pool:

1. every Function is associated with the set of Workloads whose average
   runtime lies within a configurable percentage error threshold of its
   reported average;
2. Functions with an empty candidate set fall back to the single closest
   Workload (the paper's relaxation for long-running outliers);
3. from each candidate set, one Workload is selected so that the different
   benchmarks stay *balanced* across Functions while the execution-time
   distribution still converges to the trace's.

The selection pass processes Functions in descending popularity and greedily
picks, among the candidates, the family with the fewest Functions assigned
so far (runtime-closest Workload within that family).  The most popular
Functions therefore resolve while all counters are low -- ties break toward
the runtime-closest candidate, keeping the weighted duration CDF tight --
while the long tail of unpopular Functions does the balancing work that
keeps Figure 12a's occurrence distribution from collapsing onto one
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel import auto_shards, map_shards, shard_bounds
from repro.telemetry import registry as _telemetry
from repro.traces.model import Trace
from repro.workloads.pool import WorkloadPool

__all__ = ["FunctionMapping", "map_functions"]

#: Functions per shard below which the candidate precompute runs as one
#: batch.  Like every sharded stage, the shard count derives from the
#: data only, so any ``jobs`` value yields identical candidates.
_MIN_FUNCTIONS_PER_SHARD = 256


@dataclass
class FunctionMapping:
    """Result of the mapping stage, aligned with the trace's functions."""

    #: Pool index chosen for each Function.
    workload_indices: np.ndarray
    #: Workload id per Function (denormalised for convenience).
    workload_ids: list[str]
    #: Mapped Workload runtime per Function (ms).
    mapped_runtime_ms: np.ndarray
    #: Relative error |mapped - reported| / reported, per Function.
    relative_error: np.ndarray
    #: Functions that needed the closest-workload fallback.
    fallback_mask: np.ndarray
    #: The threshold the mapping was computed with.
    error_threshold_pct: float

    @property
    def n_functions(self) -> int:
        return int(self.workload_indices.size)

    @property
    def n_fallbacks(self) -> int:
        return int(self.fallback_mask.sum())

    def family_assignment_counts(self, pool: WorkloadPool) -> dict[str, int]:
        """Functions mapped per family (unweighted)."""
        out: dict[str, int] = {}
        for idx in self.workload_indices:
            fam = pool.workloads[int(idx)].family
            out[fam] = out.get(fam, 0) + 1
        return out


def _candidate_shard(
    args: tuple[np.ndarray, np.ndarray, float],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Candidate ranges + nearest fallback for one slice of Functions.

    Replicates :meth:`WorkloadPool.within_threshold` /
    :meth:`WorkloadPool.nearest` as vectorised ``searchsorted`` queries
    against the sorted runtime array, so the precompute can fan out over
    workers while the greedy selection stays serial (it carries the
    balance counters).  Module-level for picklability.
    """
    durations, runtimes, pct = args
    lo = durations * (1.0 - pct / 100.0)
    hi = durations * (1.0 + pct / 100.0)
    cand_lo = np.searchsorted(runtimes, lo, side="left")
    cand_hi = np.searchsorted(runtimes, hi, side="right")

    j = np.searchsorted(runtimes, durations)
    jc = np.clip(j, 1, runtimes.size - 1)
    left, right = runtimes[jc - 1], runtimes[jc]
    closer_left = durations - left <= right - durations
    nearest = np.where(closer_left, jc - 1, jc)
    nearest[j == 0] = 0
    nearest[j >= runtimes.size] = runtimes.size - 1
    return cand_lo, cand_hi, nearest


def map_functions(
    trace: Trace,
    pool: WorkloadPool,
    *,
    error_threshold_pct: float = 10.0,
    balance: bool = True,
    memory_targets: np.ndarray | None = None,
    memory_weight: float = 2.0,
    memory_protect_top: int = 64,
    jobs: int | None = None,
    shards: int | None = None,
) -> FunctionMapping:
    """Map every Function of ``trace`` to one Workload of ``pool``.

    Parameters
    ----------
    trace:
        (Typically aggregated) trace whose ``durations_ms`` are the mapping
        targets.
    pool:
        Augmented workload pool.
    error_threshold_pct:
        Maximum allowed divergence between a Function's reported average
        runtime and its mapped Workload's (paper's configurable threshold).
    balance:
        Disable to always take the runtime-closest candidate -- the naive
        strategy the balance-aware selection improves on (ablation knob).
    memory_targets:
        Optional per-Function target memory (MiB).  When given, selection
        first narrows the candidates to a *near-closest runtime band*
        (within ``memory_weight`` percentage points of the best available
        runtime error) and only then minimises memory distance -- the
        paper's section-3.3 memory-fidelity extension.  Bounding the band
        keeps the weighted duration CDF tight even for the head Functions
        that dominate it.
    memory_weight:
        Width of the near-closest runtime band, in percentage points of
        relative runtime error (default 2.0: a candidate may be chosen
        for its memory only if its runtime error exceeds the best
        candidate's by at most 0.02).
    memory_protect_top:
        The N most popular Functions are exempt from the memory tie-break
        and always take the runtime-closest candidate: they carry most of
        the weighted duration CDF, while the memory comparison (paper
        Figure 7) is over *distinct* workloads, where N functions are
        negligible.
    jobs:
        Worker processes for the candidate-set precompute (``None``/1 =
        sequential, 0 = all cores).  Selection itself stays serial -- it
        threads the family balance counters -- so the mapping is
        identical for any ``jobs`` value.
    shards:
        Shard-count override for the precompute (defaults to a
        data-sized choice); any value yields the same mapping.
    """
    if error_threshold_pct < 0:
        raise ValueError("error_threshold_pct must be non-negative")

    durations = trace.durations_ms
    if np.any(durations <= 0):
        raise ValueError("runtime must be positive")
    popularity = trace.invocations_per_function.astype(np.float64)
    n = durations.size
    runtimes = pool.runtimes_ms
    families = np.array([w.family for w in pool.workloads])
    family_names, family_of = np.unique(families, return_inverse=True)
    memories = np.array([w.memory_mb for w in pool.workloads])
    if memory_targets is not None:
        memory_targets = np.asarray(memory_targets, dtype=np.float64)
        if memory_targets.shape != (n,):
            raise ValueError("memory_targets must align with the trace")
        if np.any(memory_targets <= 0):
            raise ValueError("memory targets must be positive")
        if memory_weight < 0:
            raise ValueError("memory_weight must be non-negative")

    def _best(cand_idx: np.ndarray, i: int, rank: int) -> int:
        """Best candidate: runtime-closest, memory breaking near-ties."""
        rt_err = np.abs(runtimes[cand_idx] - durations[i]) / durations[i]
        if memory_targets is None or rank < memory_protect_top:
            return int(cand_idx[np.argmin(rt_err)])
        band = rt_err <= rt_err.min() + memory_weight / 100.0
        in_band = cand_idx[band]
        mem_err = np.abs(memories[in_band] - memory_targets[i]) / \
            memory_targets[i]
        return int(in_band[np.argmin(mem_err)])

    # Candidate ranges are pure per-Function lookups against the sorted
    # runtime array: fan them out over shards, reduce in shard order.
    n_shards = shards if shards is not None else auto_shards(
        n, min_per_shard=_MIN_FUNCTIONS_PER_SHARD
    ) or 1
    parts = map_shards(
        _candidate_shard,
        [
            (durations[lo:hi], np.asarray(runtimes), error_threshold_pct)
            for lo, hi in shard_bounds(n, n_shards)
        ],
        jobs=jobs,
    )
    cand_lo = np.concatenate([p[0] for p in parts])
    cand_hi = np.concatenate([p[1] for p in parts])
    nearest = np.concatenate([p[2] for p in parts])

    chosen = np.empty(n, dtype=np.int64)
    fallback = np.zeros(n, dtype=bool)
    # Functions already assigned to each family; the balancing signal.
    family_count = np.zeros(family_names.size, dtype=np.int64)

    order = np.argsort(popularity)[::-1]  # most popular Functions first
    for rank, i in enumerate(order):
        cand = np.arange(cand_lo[i], cand_hi[i])
        if cand.size == 0:
            k = int(nearest[i])
            fallback[i] = True
        elif cand.size == 1 or not balance:
            k = _best(cand, i, rank)
        else:
            cand_fams = family_of[cand]
            counts = family_count[cand_fams]
            lightest = cand[counts == counts.min()]
            k = _best(lightest, i, rank)
        chosen[i] = k
        family_count[family_of[k]] += 1

    mapped_rt = runtimes[chosen]
    rel_err = np.abs(mapped_rt - durations) / durations
    reg = _telemetry.active()
    if reg is not None:
        reg.counter("mapping_functions_total",
                    "Functions pushed through the mapping stage").inc(n)
        reg.counter("mapping_fallbacks_total",
                    "Functions that needed the closest-workload fallback"
                    ).inc(int(fallback.sum()))
        reg.gauge("mapping_max_relative_error",
                  "largest |mapped - reported| / reported of the last "
                  "mapping").set(float(rel_err.max()))
    return FunctionMapping(
        workload_indices=chosen,
        workload_ids=[pool.workloads[int(k)].workload_id for k in chosen],
        mapped_runtime_ms=mapped_rt,
        relative_error=rel_err,
        fallback_mask=fallback,
        error_threshold_pct=error_threshold_pct,
    )
