"""Smirnov Transform execution mode (paper section 3.2.2).

Instead of replaying per-minute rates, this mode samples invocation
durations directly from the trace's empirical weighted duration CDF via
inverse-transform sampling, then maps each sampled duration to a pool
Workload.  The produced request sample follows the trace's distribution of
invocation execution durations by construction; arrival times are layered
on afterwards by the load generator with whatever inter-arrival
distribution the experiment calls for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.mapping import map_functions
from repro.stats.ecdf import EmpiricalCDF
from repro.stats.sampling import smirnov_sample
from repro.traces.model import Trace
from repro.traces.ops import invocation_duration_cdf
from repro.workloads.pool import WorkloadPool

__all__ = ["SmirnovSample", "smirnov_request_sample"]


@dataclass
class SmirnovSample:
    """A bag of requests produced by the Smirnov Transform mode."""

    #: Workload id of each request, in generation order.
    workload_ids: np.ndarray
    #: The sampled target duration of each request (ms).
    sampled_durations_ms: np.ndarray
    #: Runtime of the mapped workload per request (ms).
    mapped_runtime_ms: np.ndarray
    #: Family of the mapped workload per request.
    families: np.ndarray

    @property
    def n_requests(self) -> int:
        return int(self.workload_ids.size)

    def duration_cdf(self) -> EmpiricalCDF:
        """CDF of mapped runtimes (the FaaSRail curve of Figure 11)."""
        return EmpiricalCDF.from_samples(self.mapped_runtime_ms)

    def family_shares(self) -> dict[str, float]:
        """Per-benchmark share of the sample (Figure 12b)."""
        names, counts = np.unique(self.families, return_counts=True)
        return {str(n): float(c) / self.n_requests
                for n, c in zip(names, counts)}


def smirnov_request_sample(
    trace: Trace,
    pool: WorkloadPool,
    n_requests: int,
    seed: int | np.random.Generator = 0,
    *,
    error_threshold_pct: float = 10.0,
    balance: bool = True,
    quantize_rel: float = 0.02,
    inverse_method: str = "linear",
) -> SmirnovSample:
    """Draw ``n_requests`` workload invocations following the trace's
    invocation-duration distribution.

    Sampled durations are quantised into ``quantize_rel``-wide relative
    buckets before the Workload association, so the (threshold + balance,
    closest-fallback) mapping machinery of section 3.1.3 is reused
    verbatim: each bucket behaves like a Function whose popularity is the
    number of draws that landed in it.  Without quantisation the
    interpolated inverse CDF would make every draw unique and the balancing
    signal would degenerate.

    ``inverse_method="linear"`` is the paper's interpolated inverse; on a
    sparse-support trace (Huawei: 104 functions) it visibly smooths the
    staircase CDF.  ``"step"`` reproduces the trace's atoms exactly.
    """
    if n_requests <= 0:
        raise ValueError("n_requests must be positive")
    if not 0 < quantize_rel < 1:
        raise ValueError("quantize_rel must be in (0, 1)")
    rng = np.random.default_rng(seed)

    target_cdf = invocation_duration_cdf(trace)
    sampled = smirnov_sample(target_cdf, n_requests, rng,
                             method=inverse_method)

    # Quantise to relative log-space buckets; bucket centres become
    # pseudo-Functions with multiplicity.
    step = np.log1p(quantize_rel)
    buckets = np.round(np.log(np.maximum(sampled, 1e-9)) / step)
    uniq_buckets, inverse, counts = np.unique(
        buckets, return_inverse=True, return_counts=True
    )
    uniq = np.exp(uniq_buckets * step)
    pseudo = Trace(
        name=f"{trace.name}/smirnov",
        function_ids=np.array([f"q-{i}" for i in range(uniq.size)]),
        app_ids=np.array([f"q-app-{i}" for i in range(uniq.size)]),
        durations_ms=uniq,
        per_minute=counts[:, None].astype(np.int64),
    )
    mapping = map_functions(
        pseudo, pool,
        error_threshold_pct=error_threshold_pct,
        balance=balance,
    )

    per_request_idx = mapping.workload_indices[inverse]
    workload_ids = np.array(
        [pool.workloads[int(k)].workload_id for k in per_request_idx]
    )
    families = np.array(
        [pool.workloads[int(k)].family for k in per_request_idx]
    )
    return SmirnovSample(
        workload_ids=workload_ids,
        sampled_durations_ms=sampled,
        mapped_runtime_ms=mapping.mapped_runtime_ms[inverse],
        families=families,
    )
