"""Time scaling (paper section 3.2.1.2).

Two methodologies to fit a day-long trace into a target experiment duration:

- **Thumbnails** (default): adjacent trace minutes are aggregated into
  groups, one group per wall-clock experiment minute; group sums preserve
  each function's total invocations and a down-sampled view of its rate
  variability, so the experiment walks through the whole day's diurnal
  pattern in miniature.
- **Minute range**: replay a verbatim window of the trace; no resampling,
  full burst fidelity, no diurnal coverage.
"""

from __future__ import annotations

import numpy as np

from repro.traces.model import Trace

__all__ = ["thumbnail_scale", "minute_range_scale"]


def thumbnail_scale(per_minute: np.ndarray, duration_minutes: int) -> np.ndarray:
    """Aggregate trace minutes into ``duration_minutes`` wall-clock groups.

    When the trace length is not an exact multiple of the target duration,
    group sizes differ by at most one minute (``numpy.array_split``
    boundaries), so no part of the day is dropped.

    Returns an ``(n_functions, duration_minutes)`` int64 matrix whose row
    sums equal the input's row sums exactly.
    """
    per_minute = np.asarray(per_minute)
    if per_minute.ndim != 2:
        raise ValueError("per_minute must be 2-D")
    n_minutes = per_minute.shape[1]
    if not 0 < duration_minutes <= n_minutes:
        raise ValueError(
            f"duration_minutes must be in [1, {n_minutes}], got "
            f"{duration_minutes}"
        )
    # Group boundaries identical to np.array_split's, but realised as one
    # reduceat over the second axis instead of a Python-level split.
    bounds = np.linspace(0, n_minutes, duration_minutes + 1).astype(np.int64)
    return np.add.reduceat(
        per_minute.astype(np.int64), bounds[:-1], axis=1
    )


def minute_range_scale(trace: Trace, start: int, duration_minutes: int) -> Trace:
    """Verbatim window ``[start, start + duration_minutes)`` of the trace.

    Thin wrapper over :meth:`~repro.traces.model.Trace.minute_range` with
    duration semantics matching the thumbnails API.
    """
    if duration_minutes <= 0:
        raise ValueError("duration_minutes must be positive")
    return trace.minute_range(start, start + duration_minutes)
