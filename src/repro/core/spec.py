"""Experiment specifications -- the shrink ray's output artifact.

A spec is the self-contained, replayable description of one scaled-down
experiment: for every (super-)Function, the Workload it was mapped to and
its per-experiment-minute request counts.  The online load generator
(:mod:`repro.loadgen`) consumes specs; they serialise to JSON so experiments
are shareable and repeatable (the consistency goal of paper section 3).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.stats.ecdf import EmpiricalCDF

__all__ = ["SpecEntry", "ExperimentSpec"]

_SPEC_VERSION = 1


@dataclass(frozen=True)
class SpecEntry:
    """One Function of the experiment: identity + mapped Workload."""

    function_id: str
    workload_id: str
    family: str
    runtime_ms: float
    memory_mb: float

    def __post_init__(self) -> None:
        if self.runtime_ms <= 0:
            raise ValueError(f"{self.function_id}: runtime must be positive")
        if self.memory_mb <= 0:
            raise ValueError(f"{self.function_id}: memory must be positive")


@dataclass
class ExperimentSpec:
    """A replayable scaled-down experiment.

    Attributes
    ----------
    name:
        Label, typically derived from the source trace.
    source_trace:
        Name of the input trace.
    max_rps:
        The user's target maximum request rate (requests/second).
    entries:
        One :class:`SpecEntry` per Function.
    per_minute:
        ``(n_entries, duration_minutes)`` int64 request counts.
    metadata:
        Free-form provenance (threshold, seed, mode, ...).
    """

    name: str
    source_trace: str
    max_rps: float
    entries: list[SpecEntry]
    per_minute: np.ndarray
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.per_minute = np.asarray(self.per_minute, dtype=np.int64)
        if not self.entries:
            raise ValueError("spec must contain at least one entry")
        if self.per_minute.ndim != 2 or self.per_minute.shape[0] != len(
            self.entries
        ):
            raise ValueError(
                "per_minute must be (n_entries, duration_minutes); got "
                f"{self.per_minute.shape} for {len(self.entries)} entries"
            )
        if np.any(self.per_minute < 0):
            raise ValueError("request counts must be non-negative")
        if self.max_rps <= 0:
            raise ValueError("max_rps must be positive")

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    @property
    def n_functions(self) -> int:
        return len(self.entries)

    @property
    def duration_minutes(self) -> int:
        return int(self.per_minute.shape[1])

    @property
    def total_requests(self) -> int:
        return int(self.per_minute.sum())

    @property
    def aggregate_per_minute(self) -> np.ndarray:
        return np.asarray(self.per_minute.sum(axis=0))

    @property
    def busiest_minute_rate(self) -> int:
        return int(self.aggregate_per_minute.max())

    @property
    def runtimes_ms(self) -> np.ndarray:
        return np.array([e.runtime_ms for e in self.entries])

    @property
    def requests_per_function(self) -> np.ndarray:
        return np.asarray(self.per_minute.sum(axis=1))

    def invocation_duration_cdf(self) -> EmpiricalCDF:
        """Weighted CDF of the spec's expected invocation durations
        (the Figure-9 curve for the generated load)."""
        counts = self.requests_per_function.astype(np.float64)
        mask = counts > 0
        if not mask.any():
            raise ValueError("spec carries no requests")
        return EmpiricalCDF.from_samples(self.runtimes_ms[mask], counts[mask])

    def family_request_shares(self) -> dict[str, float]:
        """Per-benchmark share of all requests (Figure 12)."""
        counts = self.requests_per_function.astype(np.float64)
        total = counts.sum()
        if total <= 0:
            raise ValueError("spec carries no requests")
        out: dict[str, float] = {}
        for entry, c in zip(self.entries, counts):
            out[entry.family] = out.get(entry.family, 0.0) + c / total
        return out

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "version": _SPEC_VERSION,
            "name": self.name,
            "source_trace": self.source_trace,
            "max_rps": self.max_rps,
            "entries": [
                {
                    "function_id": e.function_id,
                    "workload_id": e.workload_id,
                    "family": e.family,
                    "runtime_ms": e.runtime_ms,
                    "memory_mb": e.memory_mb,
                }
                for e in self.entries
            ],
            "per_minute": self.per_minute.tolist(),
            "metadata": self.metadata,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> ExperimentSpec:
        version = data.get("version")
        if version != _SPEC_VERSION:
            raise ValueError(
                f"unsupported spec version {version!r} "
                f"(expected {_SPEC_VERSION})"
            )
        entries = [SpecEntry(**e) for e in data["entries"]]
        return cls(
            name=data["name"],
            source_trace=data["source_trace"],
            max_rps=data["max_rps"],
            entries=entries,
            per_minute=np.array(data["per_minute"], dtype=np.int64),
            metadata=dict(data.get("metadata", {})),
        )

    def save(self, path: Path | str) -> None:
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: Path | str) -> ExperimentSpec:
        return cls.from_dict(json.loads(Path(path).read_text()))
