"""The full claim table, regenerated and archived per benchmark run.

Runs every figure builder through the claim checker and writes the
markdown report next to the per-figure results -- the machine-refreshable
version of EXPERIMENTS.md's verdict column.
"""

from repro.analysis import generate_report, run_claim_checks


def test_report_all_claims(benchmark, ctx, results_dir):
    checks = benchmark.pedantic(
        lambda: run_claim_checks(ctx), rounds=1, warmup_rounds=0
    )
    (results_dir / "report.md").write_text(generate_report(ctx) + "\n")
    failing = [c for c in checks if not c.passed]
    assert len(checks) == 15
    assert not failing, f"claims failing at bench scale: {failing}"