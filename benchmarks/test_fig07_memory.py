"""Figure 7: memory CDFs -- Azure applications vs FaaSRail workloads.

FaaSRail does not fit memory; its workloads' footprints are literature-
plausible but sit left of Azure's app memory distribution (the paper's
acknowledged gap).
"""


def test_fig07_memory(benchmark, ctx, record_figure):
    data = benchmark.pedantic(ctx.fig7_memory, rounds=3, warmup_rounds=1)
    record_figure("fig07_memory", data)
    s = data["summary"]
    assert s["faasrail_median_mb"] < s["azure_median_mb"]
    assert s["faasrail_median_mb"] > s["azure_median_mb"] / 10
