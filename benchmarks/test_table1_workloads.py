"""Table 1: the ten FunctionBench workloads.

Regenerates the table (family, description-bearing module, vanilla
runtime) and checks the registry is complete and runnable.
"""

import numpy as np

from repro.workloads import default_registry, vanilla_functionbench

EXPECTED_FAMILIES = [
    "chameleon", "cnn_serving", "image_processing", "json_serdes",
    "lr_serving", "lr_training", "matmul", "pyaes", "rnn_serving",
    "video_processing",
]

_SMOKE_PARAMS = {
    "chameleon": {"rows": 20, "cols": 4},
    "cnn_serving": {"side": 16, "channels": 4},
    "image_processing": {"side": 32, "ops": 2},
    "json_serdes": {"n_records": 16, "fields": 4, "roundtrips": 1},
    "matmul": {"n": 16, "reps": 1},
    "lr_serving": {"batch": 32, "features": 8},
    "lr_training": {"n_samples": 64, "features": 8, "iterations": 5},
    "pyaes": {"length": 64, "rounds": 1},
    "rnn_serving": {"seq_len": 4, "hidden": 16},
    "video_processing": {"frames": 2, "side": 16},
}


def test_table1_workloads(benchmark, results_dir):
    registry = default_registry()

    def run_all_smoke():
        rng = np.random.default_rng(0)
        return [registry.get(n).run(rng, **_SMOKE_PARAMS[n])
                for n in EXPECTED_FAMILIES]

    benchmark.pedantic(run_all_smoke, rounds=3, warmup_rounds=1)

    assert registry.names() == EXPECTED_FAMILIES
    vanilla = vanilla_functionbench()
    lines = [f"{'workload':<20}{'module':<46}{'vanilla runtime':>16}"]
    for w in sorted(vanilla, key=lambda w: w.family):
        family = registry.get(w.family)
        lines.append(
            f"{w.family:<20}{type(family).__module__:<46}"
            f"{w.runtime_ms:>13.1f} ms"
        )
    (results_dir / "table1_workloads.txt").write_text("\n".join(lines) + "\n")
    assert len(vanilla) == 10
