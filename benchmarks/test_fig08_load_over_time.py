"""Figure 8: relative load over time -- Azure day, FaaSRail 2h/20rps,
plain Poisson.

FaaSRail's thumbnails must follow the day's local minima and maxima; the
constant-rate Poisson baseline must not.
"""

from repro.core import ShrinkRay


def test_fig08_load_over_time(benchmark, ctx, record_figure):
    # the figure exercises the full shrink-ray run: time it end to end
    azure, pool = ctx.azure, ctx.pool

    def run_shrink():
        return ShrinkRay().run(
            azure, pool, max_rps=ctx.max_rps,
            duration_minutes=ctx.duration_minutes, seed=ctx.seed,
        )

    benchmark.pedantic(run_shrink, rounds=3, warmup_rounds=1)
    data = ctx.fig8_load_over_time()
    record_figure("fig08_load_over_time", data)
    s = data["summary"]
    assert s["corr_faasrail_vs_azure_thumb"] > 0.95
    assert s["corr_poisson_vs_azure_thumb"] < 0.5
    assert s["faasrail_rel_range"] > s["poisson_rel_range"]
