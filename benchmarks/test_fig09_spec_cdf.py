"""Figure 9: invocation-duration CDFs -- Azure (908M) vs FaaSRail-Spec.

The 2h / 20-RPS Spec-mode downscale (~118K requests) must reproduce the
trace's invocation-duration distribution.
"""


def test_fig09_spec_cdf(benchmark, ctx, record_figure):
    data = benchmark.pedantic(ctx.fig9_spec_cdf, rounds=3, warmup_rounds=1)
    record_figure("fig09_spec_cdf", data)
    s = data["summary"]
    assert s["ks_relative_band"] < 0.08
    # the paper's run lands at 117 760 requests for these parameters
    assert 90_000 <= s["total_requests"] <= 145_000
