"""Ablation: thumbnails vs minute-range time scaling.

Thumbnails keep the whole day's diurnal trend in miniature but smooth
steep per-minute peaks; minute-range keeps verbatim burst structure but
sees only its window (paper sections 3.2.1.2 and 3.3).
"""

import numpy as np

from repro.core import ShrinkRay, thumbnail_scale


def test_ablation_timescaling(benchmark, ctx, results_dir):
    azure, pool = ctx.azure, ctx.pool

    def run(mode, start=0):
        return ShrinkRay(time_mode=mode, range_start_minute=start).run(
            azure, pool, max_rps=ctx.max_rps,
            duration_minutes=ctx.duration_minutes, seed=ctx.seed)

    benchmark.pedantic(lambda: run("thumbnails"), rounds=2,
                       warmup_rounds=1)
    thumb = run("thumbnails")
    # place the window on the trace's busiest stretch
    agg = azure.aggregate_per_minute
    windows = np.convolve(agg, np.ones(ctx.duration_minutes), "valid")
    start = int(np.argmax(windows))
    window = run("minute-range", start)

    target = thumbnail_scale(azure.per_minute,
                             ctx.duration_minutes).sum(axis=0)
    corr_thumb = float(np.corrcoef(
        thumb.aggregate_per_minute, target)[0, 1])
    corr_window = float(np.corrcoef(
        window.aggregate_per_minute,
        agg[start:start + ctx.duration_minutes])[0, 1])

    def peakiness(spec):
        rel = spec.aggregate_per_minute / spec.aggregate_per_minute.max()
        return float(np.mean(np.abs(np.diff(rel))))

    lines = [
        f"thumbnails  : corr_to_day_shape={corr_thumb:.4f} "
        f"minute_to_minute_jitter={peakiness(thumb):.4f}",
        f"minute-range: corr_to_window={corr_window:.4f} "
        f"minute_to_minute_jitter={peakiness(window):.4f}",
    ]
    (results_dir / "ablation_timescaling.txt").write_text(
        "\n".join(lines) + "\n")

    # thumbnails track the day; the window tracks its own minutes
    assert corr_thumb > 0.95
    assert corr_window > 0.95
    # thumbnails smooth minute-scale variation relative to the raw window
    assert peakiness(thumb) <= peakiness(window) + 0.05
