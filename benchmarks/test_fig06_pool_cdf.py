"""Figure 6: runtime CDFs of Azure, Huawei, vanilla FunctionBench, pool.

The augmented ~2300-workload pool must approximate the trace CDFs far
better than the 10-point vanilla staircase.
"""

from repro.workloads import build_default_pool


def test_fig06_pool_cdf(benchmark, ctx, record_figure):
    # the figure's expensive step is pool construction
    benchmark.pedantic(build_default_pool, rounds=3, warmup_rounds=1)
    data = ctx.fig6_pool_cdfs()
    record_figure("fig06_pool_cdf", data)
    s = data["summary"]
    assert 1900 <= s["pool_size"] <= 2600
    assert s["ks_pool_vs_azure"] < s["ks_vanilla_vs_azure"]
    assert s["ks_pool_vs_azure"] < 0.45
