"""Ablation: cluster schedulers under representative FaaSRail load.

The affinity-vs-balance tension of the paper's cluster-level discussion,
quantified across all five shipped policies with the platform tracer's
lifecycle counters.
"""

from repro.loadgen import generate_request_trace, replay
from repro.platform import (
    FaaSCluster,
    HashAffinityScheduler,
    LeastLoadedScheduler,
    LocalityAwareScheduler,
    PlatformTracer,
    PowerOfTwoScheduler,
    RandomScheduler,
    lifecycle_summary,
    profiles_from_spec,
    summarize,
)

SCHEDULERS = {
    "random": lambda: RandomScheduler(seed=0),
    "least-loaded": LeastLoadedScheduler,
    "power-of-two": lambda: PowerOfTwoScheduler(seed=0),
    "hash-affinity": HashAffinityScheduler,
    "locality": LocalityAwareScheduler,
}


def test_ablation_schedulers(benchmark, ctx, results_dir):
    from repro.core import shrink

    azure = ctx.azure
    spec = shrink(azure, ctx.pool, max_rps=8.0, duration_minutes=20,
                  seed=ctx.seed)
    load = generate_request_trace(spec, seed=ctx.seed)
    profiles = profiles_from_spec(spec)

    def run(factory):
        tracer = PlatformTracer()
        backend = FaaSCluster(
            profiles, n_nodes=8, node_memory_mb=6_144.0,
            scheduler=factory(), tracer=tracer,
        )
        result = replay(load, backend)
        return summarize(result.records), lifecycle_summary(tracer)

    benchmark.pedantic(lambda: run(LeastLoadedScheduler), rounds=2,
                       warmup_rounds=1)

    lines = [f"{'scheduler':<14} {'cold%':>7} {'imbalance':>10} "
             f"{'reuse':>7} {'evict':>7}"]
    results = {}
    for name, factory in SCHEDULERS.items():
        s, life = run(factory)
        results[name] = (s, life)
        lines.append(
            f"{name:<14} {100 * s['cold_fraction']:>6.2f}% "
            f"{s['node_imbalance']:>9.2f}x {life['reuse_ratio']:>7.2f} "
            f"{life['eviction_rate']:>7.2f}")
    (results_dir / "ablation_schedulers.txt").write_text(
        "\n".join(lines) + "\n")

    # affinity-style policies convert memory into warm starts...
    assert (results["locality"][0]["cold_fraction"]
            <= results["random"][0]["cold_fraction"])
    assert (results["hash-affinity"][0]["cold_fraction"]
            <= results["random"][0]["cold_fraction"])
    # ...while hash affinity concentrates load hardest
    assert (results["hash-affinity"][0]["node_imbalance"]
            >= results["least-loaded"][0]["node_imbalance"])
    # power-of-two lands near least-loaded balance at O(1) probing cost
    assert (results["power-of-two"][0]["node_imbalance"]
            <= results["random"][0]["node_imbalance"] * 1.5)