"""Figure 1: prior-work load generation violates trace statistics.

Regenerates all four panels (function-duration CDFs, invocation-duration
CDFs, popularity, load over time) for Azure vs the plain-Poisson and
random-sampling baselines, and asserts the violations the paper calls out.
"""


def test_fig01_motivation(benchmark, ctx, record_figure):
    data = benchmark.pedantic(
        ctx.fig1_motivation, rounds=3, warmup_rounds=1
    )
    record_figure("fig01_motivation", data)
    s = data["summary"]

    # 1a/1b: both baselines sit far from Azure's invocation-duration CDF
    assert s["ks_inv_poisson_vs_azure"] > 0.3
    assert s["ks_inv_sampling_vs_azure"] > 0.2
    # 1c: Poisson spreads requests uniformly over 10 workloads
    assert s["poisson_top10pct_share"] < 0.2
    # 1d: Poisson load does not fluctuate like the trace does
    assert s["poisson_load_cv"] < s["azure_load_cv"]
