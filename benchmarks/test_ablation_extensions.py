"""Ablations for the section-3.3 extensions built in this reproduction.

- extended workload pool (FunctionBench + vSwarm-style suite) vs default;
- memory-aware mapping vs default (Figure-7 gap);
- variable-input specs vs fixed-input (per-invocation diversity at equal
  duration fidelity);
- baseline shoot-out: one fidelity table across FaaSRail and every
  prior-work strategy.
"""

import numpy as np

from repro.baselines import invitro_spec, random_sampling_spec
from repro.core import ShrinkRay, shrink
from repro.core.spec_ops import fidelity_report
from repro.loadgen import generate_request_trace
from repro.stats import EmpiricalCDF, wasserstein
from repro.workloads import build_extended_pool


def test_ablation_extended_pool(benchmark, ctx, results_dir):
    ext_pool = benchmark.pedantic(build_extended_pool, rounds=2,
                                  warmup_rounds=1)
    azure = ctx.azure
    spec_base = shrink(azure, ctx.pool, max_rps=10.0, duration_minutes=30,
                       seed=ctx.seed)
    spec_ext = shrink(azure, ext_pool, max_rps=10.0, duration_minutes=30,
                      seed=ctx.seed)
    rep_base = fidelity_report(spec_base, azure)
    rep_ext = fidelity_report(spec_ext, azure)
    fams_ext = {e.family for e in spec_ext.entries}
    lines = [
        f"default pool : {len(ctx.pool)} workloads, "
        f"ks={rep_base['invocation_duration_ks']:.4f}",
        f"extended pool: {len(ext_pool)} workloads "
        f"({len(ext_pool.families())} families), "
        f"ks={rep_ext['invocation_duration_ks']:.4f}",
        f"new families mapped: "
        f"{sorted(fams_ext - set(ctx.pool.families()))}",
    ]
    (results_dir / "ablation_extended_pool.txt").write_text(
        "\n".join(lines) + "\n")
    assert len(ext_pool) > len(ctx.pool)
    assert rep_ext["invocation_duration_ks"] < 0.08
    assert fams_ext - set(ctx.pool.families())  # new suites really used


def test_ablation_memory_aware(benchmark, ctx, results_dir):
    azure = ctx.azure
    target = EmpiricalCDF.from_samples(azure.memory_per_app_array())

    def run_aware():
        return ShrinkRay(memory_aware=True).run(
            azure, ctx.pool, max_rps=10.0, duration_minutes=30,
            seed=ctx.seed)

    aware = benchmark.pedantic(run_aware, rounds=2, warmup_rounds=1)
    base = shrink(azure, ctx.pool, max_rps=10.0, duration_minutes=30,
                  seed=ctx.seed)

    def mem_dist(spec):
        mem = np.array([e.memory_mb for e in spec.entries])
        return wasserstein(EmpiricalCDF.from_samples(mem), target)

    d_base, d_aware = mem_dist(base), mem_dist(aware)
    ks_base = fidelity_report(base, azure)["invocation_duration_ks"]
    ks_aware = fidelity_report(aware, azure)["invocation_duration_ks"]
    lines = [
        f"default     : memory W1={d_base:8.1f} MiB  duration ks={ks_base:.4f}",
        f"memory-aware: memory W1={d_aware:8.1f} MiB  duration ks={ks_aware:.4f}",
        "note: memory closeness is pool-limited (the pool's footprints sit",
        "left of Azure's apps, paper sec. 3.3/Fig 7); the tie-break can only",
        "choose within what the runtime band offers.",
    ]
    (results_dir / "ablation_memory_aware.txt").write_text(
        "\n".join(lines) + "\n")
    # duration fidelity must be unharmed; memory distance must not regress
    # beyond noise (the gain is pool-limited, see the note above)
    assert ks_aware < 0.05
    assert d_aware <= d_base * 1.15


def test_ablation_variable_input(benchmark, ctx, results_dir):
    azure = ctx.azure

    def run_variable():
        spec = ShrinkRay(variable_input=True).run(
            azure, ctx.pool, max_rps=10.0, duration_minutes=30,
            seed=ctx.seed)
        return generate_request_trace(spec, seed=ctx.seed)

    var_trace = benchmark.pedantic(run_variable, rounds=2, warmup_rounds=1)
    fixed_spec = shrink(azure, ctx.pool, max_rps=10.0, duration_minutes=30,
                        seed=ctx.seed)
    fixed_trace = generate_request_trace(fixed_spec, seed=ctx.seed)

    counts = azure.invocations_per_function.astype(float)
    mask = counts > 0
    target = EmpiricalCDF.from_samples(azure.durations_ms[mask],
                                       counts[mask])
    from repro.stats.distance import ks_relative_band

    ks_var = ks_relative_band(var_trace.runtimes_ms,
                              azure.durations_ms[mask],
                              y_weights=counts[mask])
    div_var = np.unique(var_trace.workload_ids).size
    div_fixed = np.unique(fixed_trace.workload_ids).size
    lines = [
        f"fixed input   : {div_fixed} distinct workloads invoked",
        f"variable input: {div_var} distinct workloads invoked, "
        f"ks={ks_var:.4f}",
    ]
    (results_dir / "ablation_variable_input.txt").write_text(
        "\n".join(lines) + "\n")
    assert div_var > div_fixed
    assert ks_var < 0.12
    del target


def test_baseline_shootout(benchmark, ctx, results_dir):
    """One table: duration-KS / load-shape / popularity for every strategy."""
    azure = ctx.azure

    def build_all():
        faasrail = ctx.spec
        sampling = random_sampling_spec(
            azure, 100, faasrail.total_requests, ctx.duration_minutes,
            seed=ctx.seed)
        invitro = invitro_spec(
            azure, 100, faasrail.total_requests, ctx.duration_minutes,
            seed=ctx.seed)
        return faasrail, sampling, invitro

    faasrail, sampling, invitro = benchmark.pedantic(
        build_all, rounds=2, warmup_rounds=1)
    lines = [f"{'strategy':<18} {'dur ks':>8} {'load corr':>10} "
             f"{'top10% share':>13}"]
    reports = {}
    for label, spec in (("faasrail", faasrail),
                        ("random-sampling", sampling),
                        ("invitro", invitro)):
        rep = fidelity_report(spec, azure)
        reports[label] = rep
        lines.append(
            f"{label:<18} {rep['invocation_duration_ks']:>8.4f} "
            f"{rep['load_shape_corr']:>10.3f} "
            f"{rep['popularity_top10pct_spec']:>13.3f}")
    (results_dir / "baseline_shootout.txt").write_text(
        "\n".join(lines) + "\n")

    # FaaSRail dominates on duration fidelity and load-shape tracking
    assert (reports["faasrail"]["invocation_duration_ks"]
            < reports["random-sampling"]["invocation_duration_ks"])
    assert (reports["faasrail"]["load_shape_corr"]
            > reports["random-sampling"]["load_shape_corr"])
    # In-Vitro's representative sampling beats random sampling on duration
    assert (reports["invitro"]["invocation_duration_ks"]
            <= reports["random-sampling"]["invocation_duration_ks"] + 0.05)