"""Performance of the array-native simulator core (ISSUE 7 acceptance).

Pins the tentpole's headline numbers on a synthetic 1M-invocation day:

- batched vectorised simulation must be >= 20x the per-record throughput
  of the reference object engine on the same workload;
- peak allocation of the vectorised run must stay under a fixed ceiling
  (columns plus transient event calendar -- far below the object
  engine's per-record object graph);
- and the two paths must agree on the workload's summary metrics, so the
  speedup is measured over identical semantics, not a shortcut.

Throughput is best-of-N on both sides: the first vectorised trial pays
one-time page-fault and allocator costs that a steady-state load service
never sees again.
"""

import gc
import time
import tracemalloc

import numpy as np

from repro.platform import (
    FaaSCluster,
    NoKeepAlive,
    ObjectFaaSCluster,
    RandomScheduler,
    WorkloadProfile,
    summarize,
    summarize_columns,
)

N_INVOCATIONS = 1_000_000
N_WORKLOADS = 200
DAY_S = 86_400.0
OBJECT_SLICE = 50_000  # the object engine gets a slice, not the day
MIN_SPEEDUP = 20.0
PEAK_CEILING_MIB = 450.0


def _day_load(seed=42):
    rng = np.random.default_rng(seed)
    ts = np.sort(rng.uniform(0.0, DAY_S, N_INVOCATIONS))
    wids = [
        f"w{c}"
        for c in rng.integers(0, N_WORKLOADS, N_INVOCATIONS).tolist()
    ]
    return ts, wids


def _profiles():
    return {
        f"w{i}": WorkloadProfile(
            f"w{i}",
            runtime_ms=float(20 + (i * 7) % 400),
            memory_mb=float(128 * (1 + i % 4)),
        )
        for i in range(N_WORKLOADS)
    }


def _make_cluster(cls):
    # roomy nodes: the whole day is admissible, so the vectorised run
    # takes the bulk path and the object run never queues
    return cls(
        _profiles(),
        n_nodes=8,
        node_memory_mb=float(1 << 20),
        keepalive=NoKeepAlive(),
        scheduler=RandomScheduler(seed=9),
    )


def _run_vec(ts, wids):
    cluster = _make_cluster(FaaSCluster)
    cluster.invoke_many(ts, wids)
    return summarize_columns(cluster.drain_columns())


def _run_object(ts, wids):
    cluster = _make_cluster(ObjectFaaSCluster)
    invoke = cluster.invoke
    for t, w in zip(ts.tolist(), wids):
        invoke(t, w)
    return summarize(cluster.drain())


def _best_of(fn, trials):
    best = float("inf")
    result = None
    for _ in range(trials):
        gc.collect()
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _peak_bytes(fn):
    gc.collect()
    tracemalloc.start()
    try:
        result = fn()
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak, result


def test_perf_simulator_throughput_floor():
    ts, wids = _day_load()
    vec_s, vec_summary = _best_of(lambda: _run_vec(ts, wids), trials=3)
    obj_s, obj_summary = _best_of(
        lambda: _run_object(ts[:OBJECT_SLICE], wids[:OBJECT_SLICE]),
        trials=2,
    )
    vec_rate = N_INVOCATIONS / vec_s
    obj_rate = OBJECT_SLICE / obj_s
    speedup = vec_rate / obj_rate
    print(
        f"\nvectorised: {vec_rate:,.0f} rec/s over the full day; "
        f"object: {obj_rate:,.0f} rec/s on a {OBJECT_SLICE:,}-slice; "
        f"speedup {speedup:.1f}x"
    )
    assert vec_summary["n_invocations"] == N_INVOCATIONS
    assert obj_summary["n_invocations"] == OBJECT_SLICE
    assert speedup >= MIN_SPEEDUP, (
        f"vectorised engine only {speedup:.1f}x the object engine "
        f"(floor {MIN_SPEEDUP}x)"
    )


def test_perf_simulator_peak_memory_ceiling():
    ts, wids = _day_load()
    peak, summary = _peak_bytes(lambda: _run_vec(ts, wids))
    peak_mib = peak / 2**20
    print(f"\nvectorised day peak allocations: {peak_mib:.1f} MiB")
    assert summary["n_invocations"] == N_INVOCATIONS
    assert peak_mib < PEAK_CEILING_MIB, (
        f"peak {peak_mib:.1f} MiB exceeds the {PEAK_CEILING_MIB} MiB "
        "ceiling; the bulk path has grown a per-record cost"
    )


def test_perf_simulator_measures_identical_semantics():
    # the slice both engines can afford must agree byte for byte --
    # otherwise the throughput ratio above compares different work
    ts, wids = _day_load()
    sl = slice(0, 20_000)
    vec = _make_cluster(FaaSCluster)
    vec.invoke_many(ts[sl], wids[sl])
    obj = _make_cluster(ObjectFaaSCluster)
    for t, w in zip(ts[sl].tolist(), wids[sl]):
        obj.invoke(t, w)
    assert vec.drain() == obj.drain()
    assert vec.clock_s == obj.clock_s
