"""Performance of the array-native simulator core (ISSUEs 7 and 8).

Pins the tentpole's headline numbers on a synthetic 1M-invocation day:

- batched vectorised simulation must be >= 20x the per-record throughput
  of the reference object engine on the same workload;
- the widened envelope (fixed-TTL keep-alive plus lognormal service
  jitter) must hold >= 15x on the same day -- warm reuses, expiries,
  and per-request jitter draws all replayed in arrays;
- peak allocation of the vectorised run must stay under a fixed ceiling
  (columns plus transient event calendar -- far below the object
  engine's per-record object graph);
- chunked submission must stream a 10x-larger synthetic day through the
  engine under a pinned ceiling dominated by the output columns, not by
  the transient event calendar;
- and the two paths must agree on the workload's summary metrics, so the
  speedup is measured over identical semantics, not a shortcut.

Throughput is best-of-N on both sides: the first vectorised trial pays
one-time page-fault and allocator costs that a steady-state load service
never sees again.
"""

import gc
import time
import tracemalloc

import numpy as np

from repro.platform import (
    CpuModel,
    FaaSCluster,
    FifoCpu,
    FixedKeepAlive,
    NoKeepAlive,
    ObjectFaaSCluster,
    RandomScheduler,
    WorkloadProfile,
    summarize,
    summarize_columns,
)

N_INVOCATIONS = 1_000_000
N_WORKLOADS = 200
DAY_S = 86_400.0
OBJECT_SLICE = 50_000  # the object engine gets a slice, not the day
MIN_SPEEDUP = 20.0
MIN_KEEPALIVE_SPEEDUP = 15.0
MIN_CPU_SPEEDUP = 10.0
PEAK_CEILING_MIB = 450.0
STREAM_ROWS = 10 * N_INVOCATIONS
STREAM_CHUNK_ROWS = 65_536
# The streamed day's peak is ~115 bytes/row: the record columns and
# their one drain-time copy, plus a bounded per-slab transient.  The
# one-shot bulk path's transient calendar scales with the whole trace
# instead (813 MiB measured at 1M rows -- ~8 GiB at this scale).
STREAM_PEAK_CEILING_MIB = 1280.0


def _day_load(seed=42):
    rng = np.random.default_rng(seed)
    ts = np.sort(rng.uniform(0.0, DAY_S, N_INVOCATIONS))
    wids = [
        f"w{c}"
        for c in rng.integers(0, N_WORKLOADS, N_INVOCATIONS).tolist()
    ]
    return ts, wids


def _profiles():
    return {
        f"w{i}": WorkloadProfile(
            f"w{i}",
            runtime_ms=float(20 + (i * 7) % 400),
            memory_mb=float(128 * (1 + i % 4)),
        )
        for i in range(N_WORKLOADS)
    }


def _make_cluster(cls):
    # roomy nodes: the whole day is admissible, so the vectorised run
    # takes the bulk path and the object run never queues
    return cls(
        _profiles(),
        n_nodes=8,
        node_memory_mb=float(1 << 20),
        keepalive=NoKeepAlive(),
        scheduler=RandomScheduler(seed=9),
    )


def _make_keepalive_cluster(cls):
    # the widened envelope: warm sandboxes idle for two minutes, and
    # every service time gets a seeded lognormal jitter draw
    return cls(
        _profiles(),
        n_nodes=8,
        node_memory_mb=float(1 << 20),
        keepalive=FixedKeepAlive(120.0),
        scheduler=RandomScheduler(seed=9),
        service_time_cv=0.5,
        seed=123,
    )


def _run_vec(ts, wids):
    cluster = _make_cluster(FaaSCluster)
    cluster.invoke_many(ts, wids)
    return summarize_columns(cluster.drain_columns())


def _run_object(ts, wids):
    cluster = _make_cluster(ObjectFaaSCluster)
    invoke = cluster.invoke
    for t, w in zip(ts.tolist(), wids):
        invoke(t, w)
    return summarize(cluster.drain())


def _make_cpu_cluster(cls):
    # the contention envelope: zero TTL keeps the slab bulk-eligible,
    # and single-core nodes make overlapping arrivals contend, so the
    # run-queue replay does non-trivial work on the day's load
    return cls(
        _profiles(),
        n_nodes=8,
        node_memory_mb=float(1 << 20),
        keepalive=NoKeepAlive(),
        scheduler=RandomScheduler(seed=9),
        cpu=CpuModel(cores=1, quantum_s=0.020, policy=FifoCpu()),
    )


def _run_cpu_vec(ts, wids):
    cluster = _make_cpu_cluster(FaaSCluster)
    cluster.invoke_many(ts, wids)
    cols = cluster.drain_columns()
    summary = summarize_columns(cols)
    summary["preemptions_total"] = int(np.sum(cols.preemptions))
    return summary


def _run_cpu_object(ts, wids):
    cluster = _make_cpu_cluster(ObjectFaaSCluster)
    invoke = cluster.invoke
    for t, w in zip(ts.tolist(), wids):
        invoke(t, w)
    return summarize(cluster.drain())


def _run_keepalive_vec(ts, wids):
    cluster = _make_keepalive_cluster(FaaSCluster)
    cluster.invoke_many(ts, wids)
    return summarize_columns(cluster.drain_columns())


def _run_keepalive_object(ts, wids):
    cluster = _make_keepalive_cluster(ObjectFaaSCluster)
    invoke = cluster.invoke
    for t, w in zip(ts.tolist(), wids):
        invoke(t, w)
    return summarize(cluster.drain())


def _best_of(fn, trials):
    best = float("inf")
    result = None
    for _ in range(trials):
        gc.collect()
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _peak_bytes(fn):
    gc.collect()
    tracemalloc.start()
    try:
        result = fn()
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak, result


def test_perf_simulator_throughput_floor():
    ts, wids = _day_load()
    vec_s, vec_summary = _best_of(lambda: _run_vec(ts, wids), trials=3)
    obj_s, obj_summary = _best_of(
        lambda: _run_object(ts[:OBJECT_SLICE], wids[:OBJECT_SLICE]),
        trials=2,
    )
    vec_rate = N_INVOCATIONS / vec_s
    obj_rate = OBJECT_SLICE / obj_s
    speedup = vec_rate / obj_rate
    print(
        f"\nvectorised: {vec_rate:,.0f} rec/s over the full day; "
        f"object: {obj_rate:,.0f} rec/s on a {OBJECT_SLICE:,}-slice; "
        f"speedup {speedup:.1f}x"
    )
    assert vec_summary["n_invocations"] == N_INVOCATIONS
    assert obj_summary["n_invocations"] == OBJECT_SLICE
    assert speedup >= MIN_SPEEDUP, (
        f"vectorised engine only {speedup:.1f}x the object engine "
        f"(floor {MIN_SPEEDUP}x)"
    )


def test_perf_simulator_keepalive_jitter_throughput_floor():
    """ISSUE 8 headline: the keep-alive + jitter day must stay >= 15x
    the object engine on the identical configuration -- the warm-reuse
    replay and the bulk jitter draw cannot cost the bulk path its
    advantage."""
    ts, wids = _day_load()
    vec_s, vec_summary = _best_of(
        lambda: _run_keepalive_vec(ts, wids), trials=3
    )
    obj_s, obj_summary = _best_of(
        lambda: _run_keepalive_object(
            ts[:OBJECT_SLICE], wids[:OBJECT_SLICE]
        ),
        trials=2,
    )
    vec_rate = N_INVOCATIONS / vec_s
    obj_rate = OBJECT_SLICE / obj_s
    speedup = vec_rate / obj_rate
    print(
        f"\nkeep-alive+jitter vectorised: {vec_rate:,.0f} rec/s; "
        f"object: {obj_rate:,.0f} rec/s; speedup {speedup:.1f}x"
    )
    assert vec_summary["n_invocations"] == N_INVOCATIONS
    assert obj_summary["n_invocations"] == OBJECT_SLICE
    # keep-alive changes the work itself: warm starts must dominate on
    # a day with two-minute TTLs, else the floor measures the wrong path
    assert vec_summary["cold_fraction"] < 0.5
    assert speedup >= MIN_KEEPALIVE_SPEEDUP, (
        f"keep-alive+jitter bulk path only {speedup:.1f}x the object "
        f"engine (floor {MIN_KEEPALIVE_SPEEDUP}x)"
    )


def test_perf_simulator_cpu_model_throughput_floor():
    """ISSUE 10 headline: with the CPU-contention model enabled the
    zero-TTL slab still takes the bulk teardown route -- the per-node
    run-queue replay is the only sequential piece -- and must hold
    >= 10x the object engine on the identical configuration."""
    ts, wids = _day_load()
    vec_s, vec_summary = _best_of(lambda: _run_cpu_vec(ts, wids), trials=3)
    obj_s, obj_summary = _best_of(
        lambda: _run_cpu_object(ts[:OBJECT_SLICE], wids[:OBJECT_SLICE]),
        trials=2,
    )
    vec_rate = N_INVOCATIONS / vec_s
    obj_rate = OBJECT_SLICE / obj_s
    speedup = vec_rate / obj_rate
    print(
        f"\ncpu-model vectorised: {vec_rate:,.0f} rec/s; "
        f"object: {obj_rate:,.0f} rec/s; speedup {speedup:.1f}x"
    )
    assert vec_summary["n_invocations"] == N_INVOCATIONS
    assert obj_summary["n_invocations"] == OBJECT_SLICE
    # contention must actually engage, else the floor measures an idle
    # run-queue and proves nothing about the replay's cost
    assert vec_summary["preemptions_total"] > 0
    assert speedup >= MIN_CPU_SPEEDUP, (
        f"cpu-model bulk path only {speedup:.1f}x the object engine "
        f"(floor {MIN_CPU_SPEEDUP}x)"
    )


def test_perf_simulator_streaming_peak_ceiling():
    """ISSUE 8 acceptance: a synthetic day 10x the bulk benchmark's
    size streams through ``invoke_chunked`` -- generated slab by slab,
    never materialised -- inside a peak-allocation ceiling that one-shot
    submission could not meet."""
    names = [f"w{i}" for i in range(N_WORKLOADS)]

    def slabs():
        rng = np.random.default_rng(7)
        n_chunks = -(-STREAM_ROWS // STREAM_CHUNK_ROWS)
        span = DAY_S / n_chunks
        lo = 0.0
        done = 0
        for _ in range(n_chunks):
            rows = min(STREAM_CHUNK_ROWS, STREAM_ROWS - done)
            done += rows
            ts = np.sort(rng.uniform(lo, lo + span, rows))
            wids = [
                names[c] for c in rng.integers(0, N_WORKLOADS, rows).tolist()
            ]
            lo += span
            yield ts, wids

    def run():
        cluster = _make_keepalive_cluster(FaaSCluster)
        cluster.invoke_chunked(slabs())
        return summarize_columns(cluster.drain_columns())

    peak, summary = _peak_bytes(run)
    peak_mib = peak / 2**20
    print(
        f"\nstreamed {STREAM_ROWS:,} rows: peak {peak_mib:.1f} MiB "
        f"(ceiling {STREAM_PEAK_CEILING_MIB} MiB)"
    )
    assert summary["n_invocations"] == STREAM_ROWS
    assert peak_mib < STREAM_PEAK_CEILING_MIB, (
        f"streamed peak {peak_mib:.1f} MiB exceeds the "
        f"{STREAM_PEAK_CEILING_MIB} MiB ceiling; chunked submission has "
        "grown a whole-trace transient"
    )


def test_perf_simulator_peak_memory_ceiling():
    ts, wids = _day_load()
    peak, summary = _peak_bytes(lambda: _run_vec(ts, wids))
    peak_mib = peak / 2**20
    print(f"\nvectorised day peak allocations: {peak_mib:.1f} MiB")
    assert summary["n_invocations"] == N_INVOCATIONS
    assert peak_mib < PEAK_CEILING_MIB, (
        f"peak {peak_mib:.1f} MiB exceeds the {PEAK_CEILING_MIB} MiB "
        "ceiling; the bulk path has grown a per-record cost"
    )


def test_perf_simulator_measures_identical_semantics():
    # the slice both engines can afford must agree byte for byte --
    # otherwise the throughput ratio above compares different work
    ts, wids = _day_load()
    sl = slice(0, 20_000)
    vec = _make_cluster(FaaSCluster)
    vec.invoke_many(ts[sl], wids[sl])
    obj = _make_cluster(ObjectFaaSCluster)
    for t, w in zip(ts[sl].tolist(), wids[sl]):
        obj.invoke(t, w)
    assert vec.drain() == obj.drain()
    assert vec.clock_s == obj.clock_s
