"""Robustness: the headline fidelity numbers hold across seeds and traces.

Every figure bench uses one seed; this bench sweeps the pipeline across
seeds (substrate + pipeline randomness) and across all three synthetic
cloud profiles, asserting the claims are not one-seed flukes.
"""

from repro.analysis import seed_sweep
from repro.core import shrink
from repro.core.spec_ops import fidelity_report
from repro.traces import (
    synthetic_azure_trace,
    synthetic_huawei_public_trace,
    synthetic_huawei_trace,
)


def test_robustness_seed_sweep(benchmark, ctx, results_dir):
    results = benchmark.pedantic(
        lambda: seed_sweep(range(5), n_functions=1500, max_rps=8.0,
                           duration_minutes=20, pool=ctx.pool),
        rounds=1, warmup_rounds=0,
    )
    lines = []
    for res in results.values():
        lines.append(f"{res.metric:<28} mean={res.mean:.4f} "
                     f"std={res.std:.4f} "
                     f"range=[{res.best:.4f}, {res.worst:.4f}]")
    (results_dir / "robustness_seeds.txt").write_text(
        "\n".join(lines) + "\n")

    ks = results["invocation_duration_ks"]
    assert ks.worst < 0.12
    assert ks.std < 0.05
    assert results["load_shape_corr"].best > 0.95


def test_robustness_across_traces(benchmark, ctx, results_dir):
    """The pipeline holds on all three cloud profiles."""
    traces = {
        "azure": synthetic_azure_trace(n_functions=1500, seed=71),
        "huawei-private": synthetic_huawei_trace(seed=71),
        "huawei-public": synthetic_huawei_public_trace(
            n_functions=1500, seed=71),
    }

    def run_all():
        out = {}
        for label, trace in traces.items():
            spec = shrink(trace, ctx.pool, max_rps=8.0,
                          duration_minutes=20, seed=71)
            out[label] = fidelity_report(spec, trace)
        return out

    reports = benchmark.pedantic(run_all, rounds=1, warmup_rounds=0)
    lines = [f"{'trace':<16} {'dur ks':>8} {'load corr':>10}"]
    for label, rep in reports.items():
        lines.append(f"{label:<16} {rep['invocation_duration_ks']:>8.4f} "
                     f"{rep['load_shape_corr']:>10.3f}")
    (results_dir / "robustness_traces.txt").write_text(
        "\n".join(lines) + "\n")
    for label, rep in reports.items():
        assert rep["invocation_duration_ks"] < 0.12, label
        assert rep["load_shape_corr"] > 0.9, label