"""Figure 4: CDF of popularity changes caused by aggregation.

Aggregating functions by mean execution duration must leave popularity
essentially untouched (the paper finds only 3 of 12 757 super-Functions
off by as much as 1%).
"""

from repro.core import aggregate_functions


def test_fig04_popularity_change(benchmark, ctx, record_figure):
    # time the aggregation itself (the figure's underlying computation)
    azure = ctx.azure
    benchmark.pedantic(
        lambda: aggregate_functions(azure), rounds=3, warmup_rounds=1
    )
    data = ctx.fig4_popularity_change()
    record_figure("fig04_popularity_change", data)
    s = data["summary"]
    assert s["frac_changes_below_1pct"] >= 0.99
    assert s["n_super_functions"] < s["n_original_functions"]
    assert s["max_change"] < 0.05
