"""Ablation: sub-minute arrival models vs second-scale burstiness.

Poisson arrivals (the default) reproduce the index of dispersion ~1 the
Huawei per-second data motivates; uniform matches it in distribution;
equidistant flattens it (paper section 3.2.1.3).
"""

from repro.loadgen import generate_request_trace


def _per_second_iod(trace, horizon_s):
    per_sec = trace.per_second_rate(horizon_s).astype(float)
    return float(per_sec.var() / per_sec.mean())


def test_ablation_arrivals(benchmark, ctx, results_dir):
    spec = ctx.spec
    horizon = spec.duration_minutes * 60

    benchmark.pedantic(
        lambda: generate_request_trace(spec, seed=5, arrival_mode="poisson"),
        rounds=3, warmup_rounds=1,
    )

    lines = [f"{'mode':<14} {'IoD(per-second)':>16} {'requests':>10}"]
    iods = {}
    for mode in ("poisson", "uniform", "equidistant"):
        trace = generate_request_trace(spec, seed=5, arrival_mode=mode)
        iods[mode] = _per_second_iod(trace, horizon)
        lines.append(f"{mode:<14} {iods[mode]:>16.3f} "
                     f"{trace.n_requests:>10}")
    (results_dir / "ablation_arrivals.txt").write_text(
        "\n".join(lines) + "\n")

    # Poisson/uniform keep second-scale burstiness; equidistant kills it
    assert iods["poisson"] > 0.8
    assert iods["equidistant"] < iods["poisson"]
