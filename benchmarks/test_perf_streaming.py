"""Performance of the streaming ingestion path (ISSUE 5 acceptance).

Pins two numbers: peak ingestion memory must be *sublinear* in input
rows (within 2x while the row count scales 10x, and far below what the
materialising loader allocates on the same input), and chunked CSV
ingestion must hold a conservative rows/second floor.
"""

import gc
import time
import tracemalloc

import numpy as np

from repro.traces import dump_azure_day, load_azure_day, stream_azure_day
from repro.traces.model import Trace

#: Distinct duration values in the controlled traces: keeps the
#: aggregated group state identical across scales, so peak memory
#: isolates what actually grows with row count.
N_DURATION_KEYS = 40

N_MINUTES = 240
CHUNK_ROWS = 256
SMALL_ROWS = 300
LARGE_ROWS = 3000  # 10x the rows of the small input


def _controlled_trace(n_functions, seed):
    rng = np.random.default_rng(seed)
    durations = rng.choice(
        np.linspace(10.0, 4000.0, N_DURATION_KEYS), size=n_functions
    )
    per_minute = rng.integers(
        0, 20, size=(n_functions, N_MINUTES)
    ).astype(np.int64)
    per_minute[:, 0] = 1  # every function invokes at least once
    return Trace(
        name=f"perf-{n_functions}",
        function_ids=np.array([f"f{i}" for i in range(n_functions)]),
        app_ids=np.array([f"a{i % 50}" for i in range(n_functions)]),
        durations_ms=durations,
        per_minute=per_minute,
        app_memory_mb={f"a{i}": 128.0 + i for i in range(50)},
    )


def _peak_bytes(fn):
    gc.collect()
    tracemalloc.start()
    try:
        result = fn()
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak, result


def test_perf_streaming_peak_memory_sublinear(tmp_path):
    small_dir = tmp_path / "small"
    large_dir = tmp_path / "large"
    dump_azure_day(_controlled_trace(SMALL_ROWS, seed=1), small_dir)
    dump_azure_day(_controlled_trace(LARGE_ROWS, seed=2), large_dir)

    peak_small, s_small = _peak_bytes(
        lambda: stream_azure_day(small_dir, chunk_rows=CHUNK_ROWS))
    peak_large, s_large = _peak_bytes(
        lambda: stream_azure_day(large_dir, chunk_rows=CHUNK_ROWS))
    assert s_small.rows_read == SMALL_ROWS
    assert s_large.rows_read == LARGE_ROWS

    # 10x the rows may cost at most 2x the peak: the block size, not the
    # input, bounds the footprint.
    ratio = peak_large / peak_small
    assert ratio <= 2.0, (
        f"peak grew {ratio:.2f}x for 10x rows "
        f"({peak_small} -> {peak_large} bytes)"
    )

    # And the streaming pass must undercut materialising the same CSVs.
    peak_inmem, _trace = _peak_bytes(lambda: load_azure_day(large_dir))
    assert peak_large <= peak_inmem / 2, (
        f"streaming peak {peak_large} not below in-memory load "
        f"{peak_inmem}"
    )


def test_perf_streaming_throughput_floor(tmp_path):
    dump_azure_day(_controlled_trace(LARGE_ROWS, seed=3), tmp_path)

    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        summary = stream_azure_day(tmp_path, chunk_rows=CHUNK_ROWS)
        best = min(best, time.perf_counter() - t0)
    assert summary.rows_read == LARGE_ROWS

    rows_per_sec = LARGE_ROWS / best
    # Deliberately conservative floor for CI machines; the observed rate
    # is typically an order of magnitude higher.
    assert rows_per_sec >= 1500.0, (
        f"streaming ingestion at {rows_per_sec:.0f} rows/s "
        f"(best of 3: {best:.3f}s for {LARGE_ROWS} rows)"
    )
