"""Ablation: aggregation on vs off before mapping.

Aggregation's job (paper 3.1.2) is to cut the function count an order of
magnitude while keeping the duration distribution intact -- and it also
shields popularity under rate scaling.  This bench quantifies both.
"""

from repro.core import ShrinkRay
from repro.stats.distance import ks_relative_band


def _run(ctx, aggregate: bool):
    sr = ShrinkRay(aggregate=aggregate)
    spec = sr.run(ctx.azure, ctx.pool, max_rps=ctx.max_rps,
                  duration_minutes=ctx.duration_minutes, seed=ctx.seed)
    return sr, spec


def test_ablation_aggregation(benchmark, ctx, results_dir):
    sr_on, spec_on = _run(ctx, True)
    benchmark.pedantic(lambda: _run(ctx, False), rounds=2, warmup_rounds=1)
    sr_off, spec_off = _run(ctx, False)

    azure = ctx.azure
    counts = azure.invocations_per_function.astype(float)
    mask = counts > 0

    def fidelity(spec):
        req = spec.requests_per_function.astype(float)
        live = req > 0
        return ks_relative_band(
            spec.runtimes_ms[live], azure.durations_ms[mask],
            x_weights=req[live], y_weights=counts[mask])

    ks_on, ks_off = fidelity(spec_on), fidelity(spec_off)
    lines = [
        f"aggregation ON : functions={spec_on.n_functions:>6} "
        f"ks={ks_on:.4f}",
        f"aggregation OFF: functions={spec_off.n_functions:>6} "
        f"ks={ks_off:.4f}",
    ]
    (results_dir / "ablation_aggregation.txt").write_text(
        "\n".join(lines) + "\n")

    # aggregation reduces the mapping problem substantially...
    assert spec_on.n_functions < 0.8 * spec_off.n_functions
    # ...without costing duration-CDF fidelity
    assert ks_on < 0.08
    assert ks_off < 0.1
