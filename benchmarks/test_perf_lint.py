"""Performance of the incremental lint driver.

The warm-path contract: an unchanged tree re-analyzes zero files and the
run costs at least 5x less than a cold whole-program analysis -- file
hashing plus cached import closures must reconstruct every key without
parsing a single source file.
"""

import time
from pathlib import Path

from repro.cache import ContentCache
from repro.lint.incremental import lint_paths_incremental

SRC_ROOT = Path(__file__).resolve().parents[1] / "src" / "repro"


def test_perf_incremental_warm_at_least_5x_cold(tmp_path, benchmark):
    cache = ContentCache(tmp_path / "lint-cache")

    t0 = time.perf_counter()
    cold, cold_stats = lint_paths_incremental([SRC_ROOT], cache)
    cold_s = time.perf_counter() - t0
    assert cold_stats.reused == 0
    assert cold.ok, "self-run must be clean before timing means anything"

    warm, warm_stats = benchmark(
        lambda: lint_paths_incremental([SRC_ROOT], cache)
    )
    assert warm_stats.reanalyzed == []
    assert warm_stats.reused == warm_stats.files_total == cold_stats.files_total
    assert warm.findings == cold.findings

    warm_s = benchmark.stats["mean"]
    speedup = cold_s / warm_s
    benchmark.extra_info["cold_s"] = cold_s
    benchmark.extra_info["warm_speedup"] = speedup
    assert speedup >= 5.0, (
        f"warm incremental lint only {speedup:.1f}x faster than cold "
        f"({warm_s:.3f}s vs {cold_s:.3f}s)"
    )
