"""Performance of the online load generator itself.

The paper calls its generator "high-performant"; these benches measure
requests generated per second of CPU for Spec-mode realisation and the
simulator's sustained invocation throughput.
"""

import numpy as np

from repro.loadgen import generate_request_trace, replay
from repro.platform import FaaSCluster, profiles_from_spec


def test_perf_generate_spec_mode(benchmark, ctx):
    spec = ctx.spec

    def gen():
        return generate_request_trace(spec, seed=1)

    trace = benchmark(gen)
    rate = trace.n_requests / benchmark.stats["mean"]
    benchmark.extra_info["requests_per_cpu_second"] = rate
    # vectorised generation should comfortably exceed 100K requests/s
    assert rate > 100_000


def test_perf_simulator_throughput(benchmark, ctx):
    spec = ctx.spec
    trace = generate_request_trace(spec, seed=2).slice_time(0.0, 600.0)

    def run():
        backend = FaaSCluster(
            profiles_from_spec(spec), n_nodes=16,
            node_memory_mb=32_768.0,
        )
        return replay(trace, backend)

    result = benchmark.pedantic(run, rounds=3, warmup_rounds=1)
    rate = result.n_requests / benchmark.stats["mean"]
    benchmark.extra_info["simulated_invocations_per_cpu_second"] = rate
    assert rate > 5_000


def test_perf_smirnov_sampling(benchmark, ctx):
    from repro.core import smirnov_request_sample

    azure, pool = ctx.azure, ctx.pool

    def run():
        return smirnov_request_sample(azure, pool, 120_408, seed=3)

    sample = benchmark.pedantic(run, rounds=3, warmup_rounds=1)
    assert sample.n_requests == 120_408


def test_perf_arrival_models(benchmark, ctx):
    """Arrival-offset generation is O(n) array work for any mode."""
    from repro.loadgen import minute_offsets

    rng = np.random.default_rng(0)
    realised = rng.integers(0, 50, size=200_000).astype(np.int64)

    def run():
        return minute_offsets(realised, "poisson",
                              np.random.default_rng(1))

    offsets = benchmark(run)
    assert offsets.size == realised.sum()
