"""Performance of the online load generator itself.

The paper calls its generator "high-performant"; these benches measure
requests generated per second of CPU for Spec-mode realisation and the
simulator's sustained invocation throughput.
"""

import numpy as np

from repro.loadgen import generate_request_trace, replay
from repro.platform import FaaSCluster, profiles_from_spec


def test_perf_generate_spec_mode(benchmark, ctx):
    spec = ctx.spec

    def gen():
        return generate_request_trace(spec, seed=1)

    trace = benchmark(gen)
    rate = trace.n_requests / benchmark.stats["mean"]
    benchmark.extra_info["requests_per_cpu_second"] = rate
    # vectorised generation should comfortably exceed 100K requests/s
    assert rate > 100_000


def test_perf_simulator_throughput(benchmark, ctx):
    spec = ctx.spec
    trace = generate_request_trace(spec, seed=2).slice_time(0.0, 600.0)

    def run():
        backend = FaaSCluster(
            profiles_from_spec(spec), n_nodes=16,
            node_memory_mb=32_768.0,
        )
        return replay(trace, backend)

    result = benchmark.pedantic(run, rounds=3, warmup_rounds=1)
    rate = result.n_requests / benchmark.stats["mean"]
    benchmark.extra_info["simulated_invocations_per_cpu_second"] = rate
    assert rate > 5_000


def test_perf_smirnov_sampling(benchmark, ctx):
    from repro.core import smirnov_request_sample

    azure, pool = ctx.azure, ctx.pool

    def run():
        return smirnov_request_sample(azure, pool, 120_408, seed=3)

    sample = benchmark.pedantic(run, rounds=3, warmup_rounds=1)
    assert sample.n_requests == 120_408


class _NullBackend:
    """Accepts everything instantly: isolates the replay loop itself."""

    def invoke(self, timestamp_s, workload_id):
        pass

    def drain(self):
        return []


def test_perf_replay_hot_loop(benchmark, ctx):
    """The submission loop's own overhead, backend cost excluded.

    Guards the hoisted per-request float()/str() conversions: the loop
    must stay a bare zip-iterate-call, well above 1M requests/s.
    """
    spec = ctx.spec
    trace = generate_request_trace(spec, seed=4)

    def run():
        return replay(trace, _NullBackend())

    result = benchmark(run)
    rate = result.n_requests / benchmark.stats["mean"]
    benchmark.extra_info["replayed_requests_per_cpu_second"] = rate
    assert rate > 1_000_000


def test_perf_replay_resilient_overhead(benchmark, ctx):
    """The resilient path (outcome taxonomy, no faults firing) must stay
    within ~20x of raw submission -- cheap enough to leave on."""
    from repro.loadgen import RetryPolicy

    spec = ctx.spec
    trace = generate_request_trace(spec, seed=5)

    def run():
        return replay(trace, _NullBackend(),
                      retry=RetryPolicy(max_attempts=3))

    result = benchmark(run)
    rate = result.n_requests / benchmark.stats["mean"]
    benchmark.extra_info["resilient_requests_per_cpu_second"] = rate
    assert rate > 300_000


def test_perf_arrival_models(benchmark, ctx):
    """Arrival-offset generation is O(n) array work for any mode."""
    from repro.loadgen import minute_offsets

    rng = np.random.default_rng(0)
    realised = rng.integers(0, 50, size=200_000).astype(np.int64)

    def run():
        return minute_offsets(realised, "poisson",
                              np.random.default_rng(1))

    offsets = benchmark(run)
    assert offsets.size == realised.sum()
