"""Shared fixtures for the figure-reproduction benchmark harness.

Each ``test_figNN_*`` benchmark (a) times the pipeline stage the figure
exercises, (b) asserts the paper's qualitative claim quantitatively, and
(c) writes the rendered figure data to ``benchmarks/results/`` so the
reproduced rows/series can be inspected and diffed against EXPERIMENTS.md.
"""

from pathlib import Path

import pytest

from repro.analysis import FigureContext, render_figure

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def ctx():
    """One shared figure context for the whole benchmark session."""
    return FigureContext(azure_functions=6000, seed=42)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_figure(results_dir):
    """Write a figure's rendered data block to the results directory."""

    def _record(name: str, data: dict) -> None:
        text = render_figure(name, data)
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _record
