"""Performance of the offline pipeline with the content cache.

Pins the two ISSUE-2 acceptance numbers: a warm-cache shrink-ray re-run
must be at least 5x faster than the cold run it memoised, and parallel
generation at ``jobs=1`` must stay at the established sequential
throughput floor (the fan-out path may never tax the sequential case).
"""

import time

from repro.cache import ContentCache
from repro.core import ShrinkRay
from repro.loadgen import generate_request_trace


def _timed(fn, repeats=3):
    """Best-of-N wall time plus the last result."""
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_perf_shrinkray_warm_cache_speedup(ctx, tmp_path, benchmark):
    azure, pool = ctx.azure, ctx.pool
    cache = ContentCache(tmp_path / "cache")
    ray = ShrinkRay()

    def run():
        return ray.run(azure, pool, max_rps=10.0, duration_minutes=60,
                       seed=7, cache=cache)

    t0 = time.perf_counter()
    cold_spec = run()
    cold = time.perf_counter() - t0
    assert cache.misses >= 1 and cache.hits == 0

    warm_spec = benchmark(run)  # every timed iteration is a cache hit
    warm = benchmark.stats["mean"]
    assert cache.hits >= 1

    assert warm_spec.to_dict() == cold_spec.to_dict()
    speedup = cold / warm
    benchmark.extra_info["cold_s"] = cold
    benchmark.extra_info["warm_cache_speedup"] = speedup
    assert speedup >= 5.0, (
        f"warm cache re-run only {speedup:.1f}x faster than cold"
    )


def test_perf_generate_warm_cache_speedup(ctx, tmp_path):
    spec = ctx.spec
    cache = ContentCache(tmp_path / "cache")

    t0 = time.perf_counter()
    cold_trace = generate_request_trace(spec, seed=9, cache=cache)
    cold = time.perf_counter() - t0

    warm, warm_trace = _timed(
        lambda: generate_request_trace(spec, seed=9, cache=cache)
    )
    assert cache.hits >= 1
    assert warm_trace.timestamps_s.tobytes() == cold_trace.timestamps_s.tobytes()
    # A warm generate is bounded by deserialising the request arrays, so
    # the win is smaller than shrink-ray's 5x -- but it must stay a win.
    assert cold / warm >= 1.5, (
        f"warm generate only {cold / warm:.1f}x faster than cold"
    )


def test_perf_generate_jobs1_meets_sequential_floor(ctx, benchmark):
    """jobs=1 routes through the sharded path; it must still clear the
    same 100K req/s bar the plain sequential generator is held to."""
    spec = ctx.spec

    def gen():
        return generate_request_trace(spec, seed=1, jobs=1)

    trace = benchmark(gen)
    rate = trace.n_requests / benchmark.stats["mean"]
    benchmark.extra_info["requests_per_cpu_second_jobs1"] = rate
    assert rate > 100_000
