"""Figure 10: cumulative invocation fraction vs most-popular functions.

FaaSRail's curve is right-shifted (fewer distinct Workloads than Azure
functions) but shows the same extreme skew and similar slope.
"""


def test_fig10_popularity(benchmark, ctx, record_figure):
    data = benchmark.pedantic(ctx.fig10_popularity, rounds=3,
                              warmup_rounds=1)
    record_figure("fig10_popularity", data)
    s = data["summary"]
    assert s["azure_top10pct_share"] > 0.9
    assert s["faasrail_top10pct_share"] > 0.85
    assert s["faasrail_top1pct_share"] <= s["azure_top1pct_share"] + 0.05
