"""Performance floor for the supervised open-loop load service.

The service path adds sharding, checkpointing, heartbeats, and
reconciliation on top of the raw replay loop; these benches pin a floor
under that machinery so robustness never silently eats the generator's
"high-performant" claim.  Floors are conservative: CI runs on small
shared runners and the container may have a single core, so the
multi-worker bench guards supervision overhead (spawn, pipes, merge),
not parallel speedup.
"""

from repro.loadgen import ServiceConfig, generate_request_trace, run_service

#: Aggregate requests/s the service must sustain regardless of worker
#: count -- the "single-process floor" of the acceptance criteria.
SERVICE_FLOOR = 20_000


class _NullBackend:
    """Accepts everything instantly: isolates the service machinery."""

    def invoke(self, timestamp_s, workload_id):
        pass

    def drain(self):
        return []


def _null_factory():
    return _NullBackend()


def _bench_service(benchmark, ctx, tmp_path, workers):
    trace = generate_request_trace(ctx.spec, seed=6)

    def run():
        return run_service(
            trace,
            _null_factory,
            service_dir=tmp_path / f"svc-{workers}",
            config=ServiceConfig(workers=workers, collect_records=False),
        )

    result = benchmark.pedantic(run, rounds=3, warmup_rounds=1)
    assert result.coverage.ok
    rate = result.n_requests / benchmark.stats["mean"]
    benchmark.extra_info["service_requests_per_cpu_second"] = rate
    return rate


def test_perf_service_inline(benchmark, ctx, tmp_path):
    """Shard loop overhead alone (workers=0 runs in-process): outcome
    taxonomy + checkpoint cadence must stay within ~20x of raw replay."""
    rate = _bench_service(benchmark, ctx, tmp_path, workers=0)
    assert rate > 50_000


def test_perf_service_four_workers(benchmark, ctx, tmp_path):
    """4-worker aggregate throughput meets the single-process floor:
    supervision (spawn, pipe traffic, reconcile) must not cost more than
    the sharded work it coordinates."""
    rate = _bench_service(benchmark, ctx, tmp_path, workers=4)
    assert rate > SERVICE_FLOOR
