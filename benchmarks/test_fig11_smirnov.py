"""Figure 11: Smirnov-Transform-mode CDFs vs Azure (a) and Huawei (b).

Also reports the step-inverse variant on Huawei, which removes the
linear-interpolation smoothing the paper's inverse shares.
"""

from repro.core import smirnov_request_sample
from repro.stats.distance import ks_relative_band


def test_fig11_smirnov(benchmark, ctx, record_figure):
    data = benchmark.pedantic(ctx.fig11_smirnov, rounds=3, warmup_rounds=1)
    record_figure("fig11_smirnov", data)
    s = data["summary"]
    assert s["ks_azure"] < 0.08
    assert s["ks_huawei"] < 0.45  # linear inverse smears the staircase

    # step-inverse variant: atoms reproduced exactly
    hw = ctx.huawei
    sample = smirnov_request_sample(hw, ctx.pool, 35_000, seed=ctx.seed,
                                    inverse_method="step")
    counts = hw.invocations_per_function.astype(float)
    ks_step = ks_relative_band(sample.mapped_runtime_ms, hw.durations_ms,
                               y_weights=counts)
    assert ks_step < 0.08
