"""Figure 3: day-to-day CVs of duration & invocations across 14 days.

The statistical justification for working with a single trace day: ~90%
of functions have CV < 1 on both metrics.
"""


def test_fig03_cv(benchmark, ctx, record_figure):
    data = benchmark.pedantic(ctx.fig3_cv, rounds=3, warmup_rounds=1)
    record_figure("fig03_cv", data)
    s = data["summary"]
    assert 0.85 <= s["frac_duration_cv_below_1"] <= 0.97
    assert 0.85 <= s["frac_invocations_cv_below_1"] <= 0.97
