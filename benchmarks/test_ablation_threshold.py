"""Ablation: mapping error-threshold sweep.

A tighter threshold tightens runtime fidelity but starves the balance
selection of candidates; a looser one trades fidelity for balance.  The
sweep prints the whole trade-off curve.
"""

import numpy as np

from repro.core import map_functions
from repro.stats.distance import ks_relative_band

THRESHOLDS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0)


def test_ablation_threshold(benchmark, ctx, results_dir):
    report = ctx.report
    aggregated = report.aggregated_trace
    pool = ctx.pool
    counts = aggregated.invocations_per_function.astype(float)

    benchmark.pedantic(
        lambda: map_functions(aggregated, pool, error_threshold_pct=10.0),
        rounds=2, warmup_rounds=1,
    )

    lines = [f"{'threshold%':>10} {'ks':>8} {'fallbacks':>10} "
             f"{'families_used':>14} {'max_err':>8}"]
    results = {}
    for pct in THRESHOLDS:
        m = map_functions(aggregated, pool, error_threshold_pct=pct)
        ks = ks_relative_band(
            m.mapped_runtime_ms, aggregated.durations_ms,
            x_weights=counts, y_weights=counts)
        fams = len(set(
            pool.workloads[int(k)].family for k in m.workload_indices))
        results[pct] = (ks, m.n_fallbacks, fams)
        lines.append(
            f"{pct:>10.0f} {ks:>8.4f} {m.n_fallbacks:>10} {fams:>14} "
            f"{float(np.max(m.relative_error)):>8.3f}")
    (results_dir / "ablation_threshold.txt").write_text(
        "\n".join(lines) + "\n")

    # tighter thresholds need more fallbacks; looser thresholds fewer
    assert results[1.0][1] >= results[50.0][1]
    # fidelity stays tight across the practical range
    assert results[10.0][0] < 0.12
    # every threshold keeps the full benchmark diversity available
    assert results[10.0][2] == 10
