"""Figure 12: per-benchmark occurrence balance of generated requests.

Azure-mapped load keeps all ten benchmarks represented (lr_training and
cnn_serving rare, for the reasons the paper gives); Huawei-mapped load is
severely imbalanced, with the long-running benchmarks absent.
"""


def test_fig12_balance(benchmark, ctx, record_figure):
    data = benchmark.pedantic(ctx.fig12_balance, rounds=3, warmup_rounds=1)
    record_figure("fig12_balance", data)
    s = data["summary"]

    # 12a: Azure-mapped Spec-mode requests
    assert s["azure_families_present"] >= 9
    assert 0.0 < s["azure_lr_training_share"] < 0.15   # long-running, rare
    assert s["azure_max_share"] < 0.6                  # no collapse

    # 12b: Huawei-mapped Smirnov requests
    assert s["huawei_families_present"] < 10           # some never appear
    assert s["huawei_lr_training_share"] == 0.0        # >3s floor
